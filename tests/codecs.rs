//! Property tests of the binary artifact codecs (`socet-cells`,
//! `socet-gate`, `socet-atpg`): every value round-trips to identical
//! bytes, and every single-byte corruption of an encoded artifact is
//! either rejected with a [`CodecError`] or decodes to a *different*
//! value — never a panic, never a silent identical decode.

use proptest::prelude::*;
use socet::atpg::{decode_test_set, encode_test_set, AtpgMetrics, Coverage, TestSet};
use socet::cells::{decode_area_report, encode_area_report, AreaReport, CellKind, Dec, Enc};
use socet::gate::codec::{decode_netlist, encode_netlist};
use socet::gate::{GateKind, GateNetlist, GateNetlistBuilder};

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Seeded generators. proptest supplies the seed; the structures are built
// deterministically from it so they stay valid by construction.

fn random_report(seed: u64) -> AreaReport {
    let mut r = AreaReport::new();
    let n = (mix(seed) % CellKind::ALL.len() as u64) as usize;
    for (i, kind) in CellKind::ALL.iter().take(n).enumerate() {
        r.tally(*kind, mix(seed ^ i as u64) % 10_000);
    }
    r
}

fn random_netlist(seed: u64) -> GateNetlist {
    let mut b = GateNetlistBuilder::new(&format!("n{:x}", seed & 0xFFFF));
    let n_in = 1 + (mix(seed) % 4) as usize;
    let mut signals: Vec<_> = (0..n_in).map(|i| b.input(&format!("i{i}"))).collect();
    let n_gates = (mix(seed ^ 1) % 12) as usize;
    for g in 0..n_gates {
        let r = mix(seed ^ (100 + g as u64));
        let a = signals[(r % signals.len() as u64) as usize];
        let c = signals[(r >> 8) as usize % signals.len()];
        let s = match r >> 16 & 7 {
            0 => b.gate1(GateKind::Not, a),
            1 => b.gate2(GateKind::And2, a, c),
            2 => b.gate2(GateKind::Or2, a, c),
            3 => b.gate2(GateKind::Xor2, a, c),
            4 => b.gate2(GateKind::Nand2, a, c),
            5 => b.mux(a, c, a),
            6 => b.dff(a),
            _ => b.gate2(GateKind::Nor2, a, c),
        };
        signals.push(s);
    }
    let out = *signals.last().unwrap();
    b.output("o", out);
    b.build().expect("generated netlist is well-formed")
}

fn random_test_set(seed: u64) -> TestSet {
    let width = (mix(seed) % 17) as usize;
    let count = (mix(seed ^ 2) % 8) as usize;
    let patterns = (0..count)
        .map(|p| {
            (0..width)
                .map(|i| mix(seed ^ (p as u64) << 8 ^ i as u64) & 1 == 1)
                .collect()
        })
        .collect();
    TestSet {
        patterns,
        coverage: Coverage {
            total: (mix(seed ^ 3) % 500) as usize,
            detected: (mix(seed ^ 4) % 400) as usize,
            untestable: (mix(seed ^ 5) % 50) as usize,
            aborted: (mix(seed ^ 6) % 20) as usize,
        },
        stats: AtpgMetrics {
            blocks_simulated: mix(seed ^ 7) % 1_000_000,
            cone_gate_evals: mix(seed ^ 8) % 1_000_000,
            ..AtpgMetrics::default()
        },
    }
}

// ---------------------------------------------------------------------------
// Round-trip identity: decode(encode(x)) re-encodes to the same bytes.

fn roundtrip(
    bytes: &[u8],
    reencode: impl Fn(&mut Dec) -> Result<Vec<u8>, socet::cells::CodecError>,
) -> Vec<u8> {
    let mut d = Dec::new(bytes);
    let out = reencode(&mut d).expect("valid artifact decodes");
    assert!(
        d.is_empty(),
        "decoder left {} trailing bytes",
        d.remaining()
    );
    out
}

/// Corruption sweep: flip one bit in every byte position; the decoder
/// must reject the buffer or produce a value that re-encodes differently.
fn corruption_sweep(
    bytes: &[u8],
    what: &str,
    reencode: impl Fn(&mut Dec) -> Result<Vec<u8>, socet::cells::CodecError>,
) {
    for pos in 0..bytes.len() {
        let mut bad = bytes.to_vec();
        bad[pos] ^= 1 << (pos % 8);
        let mut d = Dec::new(&bad);
        match reencode(&mut d) {
            Err(_) => {}
            Ok(re) => assert_ne!(
                re, bytes,
                "{what}: flipping byte {pos} decoded back to the original value"
            ),
        }
    }
}

fn encode_report_bytes(r: &AreaReport) -> Vec<u8> {
    let mut e = Enc::new();
    encode_area_report(r, &mut e);
    e.into_bytes()
}

fn encode_netlist_bytes(n: &GateNetlist) -> Vec<u8> {
    let mut e = Enc::new();
    encode_netlist(n, &mut e);
    e.into_bytes()
}

fn encode_tests_bytes(t: &TestSet) -> Vec<u8> {
    let mut e = Enc::new();
    encode_test_set(t, &mut e);
    e.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn area_report_roundtrip_and_corruption(seed in 1u64..u64::MAX) {
        let bytes = encode_report_bytes(&random_report(seed));
        let re = roundtrip(&bytes, |d| Ok(encode_report_bytes(&decode_area_report(d)?)));
        prop_assert_eq!(&re, &bytes);
        corruption_sweep(&bytes, "area report", |d| {
            Ok(encode_report_bytes(&decode_area_report(d)?))
        });
    }

    #[test]
    fn netlist_roundtrip_and_corruption(seed in 1u64..u64::MAX) {
        let bytes = encode_netlist_bytes(&random_netlist(seed));
        let re = roundtrip(&bytes, |d| Ok(encode_netlist_bytes(&decode_netlist(d)?)));
        prop_assert_eq!(&re, &bytes);
        corruption_sweep(&bytes, "netlist", |d| {
            Ok(encode_netlist_bytes(&decode_netlist(d)?))
        });
    }

    #[test]
    fn test_set_roundtrip_and_corruption(seed in 1u64..u64::MAX) {
        let bytes = encode_tests_bytes(&random_test_set(seed));
        let re = roundtrip(&bytes, |d| Ok(encode_tests_bytes(&decode_test_set(d)?)));
        prop_assert_eq!(&re, &bytes);
        corruption_sweep(&bytes, "test set", |d| {
            Ok(encode_tests_bytes(&decode_test_set(d)?))
        });
    }
}

/// Truncation at every prefix length must error out, never panic.
#[test]
fn truncation_never_panics() {
    let bytes = encode_netlist_bytes(&random_netlist(42));
    for len in 0..bytes.len() {
        let mut d = Dec::new(&bytes[..len]);
        assert!(decode_netlist(&mut d).is_err(), "prefix {len} decoded");
    }
    let bytes = encode_tests_bytes(&random_test_set(42));
    for len in 0..bytes.len() {
        let mut d = Dec::new(&bytes[..len]);
        assert!(decode_test_set(&mut d).is_err(), "prefix {len} decoded");
    }
}
