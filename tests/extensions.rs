//! Integration tests for the beyond-the-paper extensions: parallel episode
//! packing, Pareto analysis, plan reports, DOT exports, memory BIST and
//! synthetic-SOC scaling.

use socet::bist::{march_c, plan_memory_bist, MemoryFault, MemoryModel};
use socet::cells::{CellLibrary, DftCosts};
use socet::core::{
    best_weighted, parallelize, pareto_front, render_plan, schedule, Ccg, CoreTestData, Explorer,
};
use socet::hscan::insert_hscan;
use socet::rtl::export::{dump_core, dump_soc};
use socet::rtl::Soc;
use socet::socs::{barcode_system, generate_soc, SyntheticConfig};
use socet::transparency::{synthesize_versions, Rcg};

fn prepare(soc: &Soc, vectors: usize) -> Vec<Option<CoreTestData>> {
    let costs = DftCosts::default();
    soc.cores()
        .iter()
        .map(|inst| {
            if inst.is_memory() {
                return None;
            }
            let hscan = insert_hscan(inst.core(), &costs);
            let versions = synthesize_versions(inst.core(), &hscan, &costs);
            Some(CoreTestData {
                versions,
                hscan,
                scan_vectors: vectors,
            })
        })
        .collect()
}

#[test]
fn pareto_front_of_system1_is_consistent_with_objectives() {
    let soc = barcode_system();
    let data = prepare(&soc, 50);
    let explorer = Explorer::new(&soc, &data, DftCosts::default());
    let points = explorer.sweep();
    let front = pareto_front(&points);
    assert!(front.len() >= 2, "at least the two extremes survive");
    // Both weighted corners land on the front.
    let lib = CellLibrary::generic_08um();
    for (wt, wa) in [(1.0, 0.0), (0.0, 1.0), (1.0, 0.5)] {
        let best = best_weighted(&points, wt, wa).expect("non-empty");
        let on_front = front.iter().any(|f| {
            f.overhead_cells(&lib) == best.overhead_cells(&lib)
                && f.test_application_time() == best.test_application_time()
        });
        assert!(on_front, "weighted ({wt},{wa}) optimum off the front");
    }
}

#[test]
fn parallel_packing_of_system1_respects_serialization() {
    let soc = barcode_system();
    let data = prepare(&soc, 50);
    let plan = schedule(
        &soc,
        &data,
        &vec![0; soc.cores().len()],
        &DftCosts::default(),
    );
    let par = parallelize(&soc, &plan);
    // All three logic cores share the backbone, so the packing stays
    // serial — and must never exceed the serial bound.
    assert!(par.makespan <= par.serial_tat);
    assert_eq!(par.windows.len(), plan.episodes.len());
}

#[test]
fn report_and_dumps_cover_the_whole_system() {
    let soc = barcode_system();
    let data = prepare(&soc, 50);
    let plan = schedule(
        &soc,
        &data,
        &vec![0; soc.cores().len()],
        &DftCosts::default(),
    );
    let report = render_plan(&soc, &data, &plan);
    for core in ["PREPROCESSOR", "CPU", "DISPLAY"] {
        assert!(report.contains(core), "report misses {core}");
    }
    let soc_dump = dump_soc(&soc);
    assert!(soc_dump.contains("soc System1"));
    assert!(soc_dump.contains("core CPU {"));
    let cpu = soc.core(soc.find_core("CPU").unwrap()).core();
    let core_dump = dump_core(cpu);
    assert!(core_dump.contains("reg IR"));
    assert!(core_dump.contains("reg MAR_page"));
}

#[test]
fn dot_exports_are_well_formed() {
    let soc = barcode_system();
    let data = prepare(&soc, 50);
    let costs = DftCosts::default();
    let ccg = Ccg::build(&soc, &data, &vec![0; soc.cores().len()]);
    let dot = ccg.to_dot(&soc);
    assert!(dot.starts_with("digraph ccg"));
    assert!(dot.trim_end().ends_with('}'));
    assert!(dot.contains("PI NUM"));
    assert!(dot.contains("DISPLAY.ALo"));
    let cpu = soc.core(soc.find_core("CPU").unwrap()).core();
    let rcg = Rcg::extract(cpu, &insert_hscan(cpu, &costs));
    let rdot = rcg.to_dot(cpu);
    assert!(rdot.starts_with("digraph rcg"));
    assert!(rdot.contains("IR"));
    assert!(rdot.contains("O-split"), "IR should be marked O-split");
}

#[test]
fn bist_plans_complement_the_logic_plan() {
    let soc = barcode_system();
    let plans = plan_memory_bist(&soc);
    assert_eq!(plans.len(), 2);
    // March C- really is the engine behind the cycle count.
    for p in &plans {
        let mut mem = MemoryModel::new(p.words.min(256), p.data_width);
        let log = march_c(&mut mem);
        assert!(!log.fault_detected);
        assert_eq!(log.operations, 10 * mem.size());
    }
    // Detection sanity on the RAM-sized memory.
    let mut mem = MemoryModel::new(256, 8);
    mem.inject(MemoryFault::StuckBit {
        addr: 200,
        bit: 7,
        value: true,
    });
    assert!(march_c(&mut mem).fault_detected);
}

#[test]
fn synthetic_socs_schedule_cleanly_at_scale() {
    let soc = generate_soc(&SyntheticConfig {
        cores: 12,
        width: 8,
        pipeline_depth: 3,
        seed: 5,
    });
    let data = prepare(&soc, 20);
    let costs = DftCosts::default();
    let plan = schedule(&soc, &data, &vec![0; soc.cores().len()], &costs);
    assert_eq!(plan.episodes.len(), 12);
    assert!(plan.test_application_time() > 0);
    // Deep-chain cores pay more per vector than tap-adjacent ones.
    let per_vec: Vec<u32> = plan.episodes.iter().map(|e| e.per_vector_cycles).collect();
    assert!(per_vec.iter().max() > per_vec.iter().min());
    // The parallel extension finds at least some overlap thanks to the
    // tap pins... or degrades gracefully to serial.
    let par = parallelize(&soc, &plan);
    assert!(par.makespan <= par.serial_tat);
}
