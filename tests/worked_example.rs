//! The §3 worked example of the paper, end to end.
//!
//! Testing the DISPLAY of System 1 takes:
//!
//! * `525 × 9 + 3 = 4 728` cycles with the CPU in Version 1,
//! * `525 × 4 + 3 = 2 103` cycles with Version 2,
//! * `525 × 3 + 3 = 1 578` cycles with Version 3,
//!
//! while FSCAN-BSCAN needs `(66 + 20) × 105 + (66 + 20) − 1 = 9 115`
//! cycles for the same core. All five numbers must come out of the
//! pipeline exactly.

use socet::baselines::FscanBscanReport;
use socet::cells::DftCosts;
use socet::core::{schedule, CoreTestData};
use socet::hscan::insert_hscan;
use socet::rtl::Soc;
use socet::socs::barcode_system;
use socet::transparency::synthesize_versions;

/// Builds System 1's planning inputs with the paper's 105 combinational
/// vectors for every core (the worked example's premise).
fn paper_inputs(soc: &Soc) -> Vec<Option<CoreTestData>> {
    let costs = DftCosts::default();
    soc.cores()
        .iter()
        .map(|inst| {
            if inst.is_memory() {
                return None;
            }
            let hscan = insert_hscan(inst.core(), &costs);
            let versions = synthesize_versions(inst.core(), &hscan, &costs);
            Some(CoreTestData {
                versions,
                hscan,
                scan_vectors: 105,
            })
        })
        .collect()
}

/// The DISPLAY test time under a given CPU version (PREPROCESSOR fixed at
/// Version 2, its "one cycle NUM -> DB" premise).
fn display_test_time(cpu_version: usize) -> u64 {
    let soc = barcode_system();
    let data = paper_inputs(&soc);
    let prep = soc.find_core("PREPROCESSOR").expect("core exists");
    let cpu = soc.find_core("CPU").expect("core exists");
    let disp = soc.find_core("DISPLAY").expect("core exists");
    let mut choice = vec![0usize; soc.cores().len()];
    choice[prep.index()] = 1; // Version 2: NUM -> DB in one cycle
    choice[cpu.index()] = cpu_version;
    let plan = schedule(&soc, &data, &choice, &DftCosts::default());
    plan.episodes
        .iter()
        .find(|e| e.core == disp)
        .expect("DISPLAY episode exists")
        .test_time()
}

#[test]
fn display_with_cpu_version1_takes_4728_cycles() {
    assert_eq!(display_test_time(0), 525 * 9 + 3);
}

#[test]
fn display_with_cpu_version2_takes_2103_cycles() {
    assert_eq!(display_test_time(1), 525 * 4 + 3);
}

#[test]
fn display_with_cpu_version3_takes_1578_cycles() {
    assert_eq!(display_test_time(2), 525 * 3 + 3);
}

#[test]
fn fscan_bscan_display_takes_9115_cycles() {
    let soc = barcode_system();
    let mut vectors = vec![0u64; soc.cores().len()];
    let disp = soc.find_core("DISPLAY").expect("core exists");
    for c in soc.logic_cores() {
        vectors[c.index()] = 105;
    }
    let report = FscanBscanReport::evaluate(&soc, &vectors, &DftCosts::default());
    let display = report
        .cores
        .iter()
        .find(|c| c.core == disp)
        .expect("DISPLAY accounted");
    assert_eq!(display.test_time(), 9_115);
}

#[test]
fn socet_beats_fscan_bscan_on_the_display_in_every_version() {
    for v in 0..3 {
        assert!(
            display_test_time(v) < 9_115,
            "SOCET with CPU version {} must beat FSCAN-BSCAN",
            v + 1
        );
    }
}

#[test]
fn per_vector_cycles_match_the_papers_arithmetic() {
    // J = 9: one PREPROCESSOR cycle plus the CPU's serialized 6 + 2.
    let soc = barcode_system();
    let data = paper_inputs(&soc);
    let prep = soc.find_core("PREPROCESSOR").expect("core exists");
    let disp = soc.find_core("DISPLAY").expect("core exists");
    let mut choice = vec![0usize; soc.cores().len()];
    choice[prep.index()] = 1;
    let plan = schedule(&soc, &data, &choice, &DftCosts::default());
    let ep = plan
        .episodes
        .iter()
        .find(|e| e.core == disp)
        .expect("DISPLAY episode");
    assert_eq!(ep.per_vector_cycles, 9);
    assert_eq!(ep.tail_cycles, 3);
    assert_eq!(ep.hscan_vectors, 525);
}
