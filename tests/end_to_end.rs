//! End-to-end pipeline tests on the paper's two systems: core-level flow,
//! chip-level planning, baselines and the headline comparisons the paper
//! claims (SOCET's area and test-time advantages over FSCAN-BSCAN, and the
//! area/TAT trade-off between SOCET's own extremes).

use socet::atpg::TpgConfig;
use socet::baselines::{flatten_soc, orig_coverage, FscanBscanReport, TestBusReport};
use socet::cells::{CellLibrary, DftCosts};
use socet::core::{Explorer, Objective};
use socet::flow::prepare_soc;
use socet::rtl::Soc;
use socet::socs::{barcode_system, system2};

fn light_tpg() -> TpgConfig {
    TpgConfig {
        random_patterns: 32,
        max_backtracks: 64,
        ..TpgConfig::default()
    }
}

fn check_system(soc: &Soc) {
    let costs = DftCosts::default();
    let lib = CellLibrary::generic_08um();
    let prepared = prepare_soc(soc, &costs, &light_tpg()).expect("elaboration succeeds");

    // Core-level quality: every core reaches high test efficiency.
    let agg = prepared.aggregate_coverage();
    assert!(
        agg.test_efficiency() > 90.0,
        "{}: aggregate {agg}",
        soc.name()
    );

    // Chip-level: both SOCET extremes, the paper's Fig. 10 endpoints.
    let explorer = Explorer::new(soc, &prepared.data, costs);
    let min_area = explorer.evaluate(&explorer.min_area_choice());
    let min_lat = explorer.evaluate(&explorer.min_latency_choice());
    assert!(
        min_lat.test_application_time() <= min_area.test_application_time(),
        "{}: min-latency {} vs min-area {}",
        soc.name(),
        min_lat.test_application_time(),
        min_area.test_application_time()
    );
    assert!(
        min_area.overhead_cells(&lib) <= min_lat.overhead_cells(&lib),
        "{}: overheads inverted",
        soc.name()
    );

    // FSCAN-BSCAN baseline: SOCET wins on both axes (Tables 2 and 3).
    let fb = FscanBscanReport::evaluate(soc, &prepared.vectors(), &costs);
    let socet_total_area = prepared.hscan_overhead_cells(&lib) + min_area.overhead_cells(&lib);
    assert!(
        socet_total_area < fb.total_cells(&lib),
        "{}: SOCET area {} !< FSCAN-BSCAN {}",
        soc.name(),
        socet_total_area,
        fb.total_cells(&lib)
    );
    assert!(
        min_area.test_application_time() < fb.test_application_time(),
        "{}: SOCET TAT {} !< FSCAN-BSCAN {}",
        soc.name(),
        min_area.test_application_time(),
        fb.test_application_time()
    );

    // The test bus reaches scan speed but cannot test interconnect.
    let tb = TestBusReport::evaluate(soc, &prepared.vectors(), &prepared.depths(), &costs);
    assert!(!tb.interconnect_tested());

    // The un-DFT'd chip has very poor coverage (Table 3 "Orig.").
    let flat = flatten_soc(soc).expect("flattening succeeds");
    let orig = orig_coverage(&flat, 48, 0xdac98);
    assert!(
        orig.fault_coverage() < agg.fault_coverage(),
        "{}: orig {} !< scan-based {}",
        soc.name(),
        orig.fault_coverage(),
        agg.fault_coverage()
    );
}

#[test]
fn system1_pipeline_holds_the_papers_claims() {
    check_system(&barcode_system());
}

#[test]
fn system2_pipeline_holds_the_papers_claims() {
    check_system(&system2());
}

#[test]
fn objective_one_and_two_bracket_the_extremes() {
    let soc = system2();
    let costs = DftCosts::default();
    let lib = CellLibrary::generic_08um();
    let prepared = prepare_soc(&soc, &costs, &light_tpg()).expect("elaboration succeeds");
    let explorer = Explorer::new(&soc, &prepared.data, costs);
    let min_area = explorer.evaluate(&explorer.min_area_choice());

    // Objective (i) with an unlimited budget reaches the sweep optimum.
    let best_tat = explorer
        .sweep()
        .into_iter()
        .map(|p| p.test_application_time())
        .min()
        .expect("sweep is non-empty");
    let obj1 = explorer.optimize(Objective::MinTatUnderArea {
        max_overhead_cells: u64::MAX,
    });
    assert_eq!(obj1.test_application_time(), best_tat);

    // Objective (ii) hits a midpoint budget with less area than the
    // all-out point.
    let target = (min_area.test_application_time() + best_tat) / 2;
    let obj2 = explorer.optimize(Objective::MinAreaUnderTat {
        max_tat_cycles: target,
    });
    assert!(obj2.test_application_time() <= target);
    assert!(obj2.overhead_cells(&lib) <= obj1.overhead_cells(&lib));
}

#[test]
fn design_points_are_reproducible() {
    let soc = barcode_system();
    let costs = DftCosts::default();
    let prepared = prepare_soc(&soc, &costs, &light_tpg()).expect("elaboration succeeds");
    let explorer = Explorer::new(&soc, &prepared.data, costs);
    let a = explorer.evaluate(&explorer.min_area_choice());
    let b = explorer.evaluate(&explorer.min_area_choice());
    assert_eq!(a.test_application_time(), b.test_application_time());
    assert_eq!(a.chip_overhead, b.chip_overhead);
    assert_eq!(a.pair_usage, b.pair_usage);
}

#[test]
fn preprocessor_address_needs_the_fig9_system_mux() {
    // Fig. 9: "the output Address of the PREPROCESSOR is connected to a PO
    // with a system-level test multiplexer since there is no way of
    // observing it by existing paths through the cores."
    let soc = barcode_system();
    let costs = DftCosts::default();
    let prepared = prepare_soc(&soc, &costs, &light_tpg()).expect("elaboration succeeds");
    let explorer = Explorer::new(&soc, &prepared.data, costs);
    let plan = explorer.evaluate(&explorer.min_area_choice());
    let prep = soc.find_core("PREPROCESSOR").expect("core exists");
    let addr = soc
        .core(prep)
        .core()
        .find_port("Address")
        .expect("port exists");
    assert!(
        plan.system_muxes
            .iter()
            .any(|m| m.core == prep && m.port == addr && !m.controls_input),
        "expected an observation mux on PREPROCESSOR.Address, got {:?}",
        plan.system_muxes
    );
}
