//! Observability-layer integration: the trace a pipeline run records has
//! the documented span shape, both exporters emit well-formed output, and
//! recording is observationally inert — it never changes pipeline bytes.

use proptest::prelude::*;
use socet::atpg::TpgConfig;
use socet::cells::DftCosts;
use socet::flow::{prepare_soc_recorded, prepare_soc_with, PrepareOptions, PreparedSoc};
use socet::obs::{names, Counter, Recorder, SpanRec};
use socet::rtl::{Soc, SocBuilder};
use std::path::PathBuf;
use std::sync::Arc;

fn light_tpg() -> TpgConfig {
    TpgConfig {
        random_patterns: 16,
        max_backtracks: 32,
        ..TpgConfig::default()
    }
}

/// Two instances of one core — small enough to prepare repeatedly, rich
/// enough to exercise the memo (one unique core, two instances).
fn twin_soc() -> Soc {
    let gcd = Arc::new(socet::socs::gcd_core());
    let port = |n: &str| gcd.find_port(n).unwrap();
    let mut b = SocBuilder::new("twin");
    let x = b.input_pin("X", 12).unwrap();
    let g = b.output_pin("G", 12).unwrap();
    let a = b.instantiate("gcd_a", Arc::clone(&gcd)).unwrap();
    let c = b.instantiate("gcd_b", Arc::clone(&gcd)).unwrap();
    b.connect_pin_to_core(x, a, port("X")).unwrap();
    b.connect_cores(a, port("G"), c, port("Y")).unwrap();
    b.connect_core_to_pin(c, port("G"), g).unwrap();
    b.build().unwrap()
}

fn fresh_cache_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("obs-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The root-to-leaf name path of span `i`.
fn path(spans: &[SpanRec], i: usize) -> Vec<&'static str> {
    let mut frames = Vec::new();
    let mut cur = Some(i as u32);
    while let Some(id) = cur {
        frames.push(spans[id as usize].name);
        cur = spans[id as usize].parent;
    }
    frames.reverse();
    frames
}

#[test]
fn trace_shape_matches_the_pipeline_structure() {
    let soc = twin_soc();
    let opts = PrepareOptions::new()
        .workers(1)
        .cache_dir(fresh_cache_dir("trace-shape"));
    let mut rec = Recorder::new();
    prepare_soc_recorded(&soc, &DftCosts::default(), &light_tpg(), &opts, &mut rec).unwrap();

    let spans = rec.spans();
    assert_eq!(spans[0].name, names::PREPARE, "root span opens first");
    assert_eq!(spans[0].parent, None);
    assert_eq!(
        spans.iter().filter(|s| s.name == names::PREPARE).count(),
        1,
        "exactly one pipeline root"
    );

    // Golden nesting: prepare → prepare_core → {store_load, hscan,
    // versions, elaborate, atpg → {atpg_random, atpg_podem}, store_write}.
    let expect_under_core = [
        names::STORE_LOAD,
        names::HSCAN,
        names::VERSIONS,
        names::ELABORATE,
        names::ATPG,
        names::STORE_WRITE,
    ];
    for (i, s) in spans.iter().enumerate() {
        let p = path(spans, i);
        match s.name {
            names::PREPARE => assert_eq!(p, [names::PREPARE]),
            names::PREPARE_CORE => assert_eq!(p, [names::PREPARE, names::PREPARE_CORE]),
            names::ATPG_RANDOM | names::ATPG_PODEM => assert_eq!(
                p,
                [names::PREPARE, names::PREPARE_CORE, names::ATPG, s.name]
            ),
            names::FSIM_SHARD => assert_eq!(
                p[..3],
                [names::PREPARE, names::PREPARE_CORE, names::ATPG],
                "fault-sim shards live under the atpg span: {p:?}"
            ),
            name if expect_under_core.contains(&name) => {
                assert_eq!(p, [names::PREPARE, names::PREPARE_CORE, name])
            }
            other => panic!("unexpected span `{other}` in a prepare trace"),
        }
    }
    // One unique core, prepared once; its cold cache probe missed and the
    // artifact was written back.
    assert_eq!(rec.span_count(names::PREPARE_CORE), 1);
    assert_eq!(rec.span_count(names::STORE_LOAD), 1);
    assert_eq!(rec.span_count(names::STORE_WRITE), 1);
    for stage in [names::HSCAN, names::VERSIONS, names::ELABORATE, names::ATPG] {
        assert_eq!(rec.span_count(stage), 1, "stage `{stage}` runs once");
    }
    assert_eq!(rec.counter(Counter::Instances), 2);
    assert_eq!(rec.counter(Counter::UniqueCores), 1);
    assert_eq!(rec.counter(Counter::MemoHits), 1);
    assert_eq!(rec.counter(Counter::DiskMisses), 1);
    assert_eq!(rec.counter(Counter::DiskWrites), 1);
    assert_eq!(rec.counter(Counter::Workers), 1);
    assert_eq!(rec.dropped_spans(), 0);
}

#[test]
fn exporters_emit_wellformed_output() {
    let soc = twin_soc();
    let mut rec = Recorder::new();
    prepare_soc_recorded(
        &soc,
        &DftCosts::default(),
        &light_tpg(),
        &PrepareOptions::new().workers(1),
        &mut rec,
    )
    .unwrap();

    let json = rec.to_json();
    assert!(json_parses(&json), "trace must be valid JSON:\n{json}");
    assert!(json.contains("\"version\": 1"));
    assert!(json.contains("\"name\": \"prepare\""));
    assert!(json.contains("\"instances\": 2"));

    let folded = rec.to_folded();
    assert!(!folded.is_empty(), "profile must not be empty");
    for line in folded.lines() {
        let (stack, ns) = line.rsplit_once(' ').expect("`stack SP value` lines");
        assert!(stack.starts_with("prepare"), "stacks root at the pipeline");
        assert!(ns.parse::<u128>().expect("integer nanoseconds") > 0);
    }
}

/// A minimal JSON recognizer — enough to catch unbalanced structure,
/// missing commas and bad literals in the hand-rolled exporter.
fn json_parses(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize) -> bool {
        ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return true;
                }
                loop {
                    ws(b, i);
                    if !string(b, i) {
                        return false;
                    }
                    ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return false;
                    }
                    *i += 1;
                    if !value(b, i) {
                        return false;
                    }
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return true;
                        }
                        _ => return false,
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return true;
                }
                loop {
                    if !value(b, i) {
                        return false;
                    }
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return true;
                        }
                        _ => return false,
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b'n') => literal(b, i, b"null"),
            Some(b't') => literal(b, i, b"true"),
            Some(b'f') => literal(b, i, b"false"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                *i += 1;
                while b
                    .get(*i)
                    .is_some_and(|c| c.is_ascii_digit() || b".eE+-".contains(c))
                {
                    *i += 1;
                }
                true
            }
            _ => false,
        }
    }
    fn string(b: &[u8], i: &mut usize) -> bool {
        if b.get(*i) != Some(&b'"') {
            return false;
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return true;
                }
                b'\\' => *i += 2,
                _ => *i += 1,
            }
        }
        false
    }
    fn literal(b: &[u8], i: &mut usize, word: &[u8]) -> bool {
        if b.len() - *i >= word.len() && &b[*i..*i + word.len()] == word {
            *i += word.len();
            true
        } else {
            false
        }
    }
    if !value(b, &mut i) {
        return false;
    }
    ws(b, &mut i);
    i == b.len()
}

/// Byte encodings of every instance's artifact (`None` for memories).
fn all_bytes(p: &PreparedSoc, soc: &Soc) -> Vec<Option<Vec<u8>>> {
    (0..soc.cores().len())
        .map(|i| p.artifact_bytes(i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Recording is observationally inert: capturing a full trace changes
    /// no pipeline output bytes, for any worker count and ATPG seed.
    #[test]
    fn recording_changes_no_pipeline_bytes(
        workers in 1usize..5,
        seed in 0u64..3,
    ) {
        let soc = twin_soc();
        let costs = DftCosts::default();
        let tpg = TpgConfig { seed, ..light_tpg() };
        let plain = PrepareOptions::new().workers(workers);
        let (unrecorded, _) = prepare_soc_with(&soc, &costs, &tpg, &plain).unwrap();
        let shared = socet::obs::SharedRecorder::new();
        let traced = PrepareOptions::new().workers(workers).recorder(shared.clone());
        let (recorded, _) = prepare_soc_with(&soc, &costs, &tpg, &traced).unwrap();
        prop_assert_eq!(all_bytes(&recorded, &soc), all_bytes(&unrecorded, &soc));
        let rec = shared.take();
        prop_assert!(rec.span_count(socet::obs::names::PREPARE) >= 1);
    }
}
