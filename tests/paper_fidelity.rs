//! The paper-fidelity pin suite: every number this reproduction matches
//! *exactly* is asserted here, so any drift in the engine shows up as a
//! named failure rather than a quiet change in `EXPERIMENTS.md`.

use socet::cells::{CellLibrary, DftCosts};
use socet::hscan::insert_hscan;
use socet::socs::{cpu_core, display_core, preprocessor_core};
use socet::transparency::{synthesize_versions, CoreVersion};

fn ladder(core: &socet::rtl::Core) -> Vec<CoreVersion> {
    let costs = DftCosts::default();
    let hscan = insert_hscan(core, &costs);
    synthesize_versions(core, &hscan, &costs)
}

#[test]
fn fig6_cpu_ladder_is_exact() {
    let cpu = cpu_core();
    let data = cpu.find_port("Data").expect("port");
    let a_lo = cpu.find_port("AddrLo").expect("port");
    let a_hi = cpu.find_port("AddrHi").expect("port");
    let versions = ladder(&cpu);
    let lib = CellLibrary::generic_08um();
    // Fig. 6, all twelve numbers.
    let expect = [(6, 2, 3u64), (1, 2, 10), (1, 1, 30)];
    for (v, (lo, hi, ovhd)) in versions.iter().zip(expect) {
        assert_eq!(v.pair_latency(data, a_lo), Some(lo), "{} D->A(7-0)", v.name());
        assert_eq!(v.pair_latency(data, a_hi), Some(hi), "{} D->A(11-8)", v.name());
        assert_eq!(v.overhead_cells(&lib), ovhd, "{} overhead", v.name());
    }
}

#[test]
fn fig6_cpu_serialized_totals_are_exact() {
    // D->A(11-0): 8 / 3 / 2 cycles — the transfers share the Data input,
    // so they serialize.
    let cpu = cpu_core();
    let data = cpu.find_port("Data").expect("port");
    let a_lo = cpu.find_port("AddrLo").expect("port");
    let a_hi = cpu.find_port("AddrHi").expect("port");
    let versions = ladder(&cpu);
    let totals: Vec<u32> = versions
        .iter()
        .map(|v| {
            v.pair_latency(data, a_lo).expect("pair")
                + v.pair_latency(data, a_hi).expect("pair")
        })
        .collect();
    assert_eq!(totals, vec![8, 3, 2]);
}

#[test]
fn fig8_preprocessor_latencies_match() {
    let prep = preprocessor_core();
    let num = prep.find_port("NUM").expect("port");
    let db = prep.find_port("DB").expect("port");
    let addr = prep.find_port("Address").expect("port");
    let versions = ladder(&prep);
    // Fig. 8(a): NUM->DB = 5/1/1; NUM->A = 2/2 (V3 stays 2: the 12-bit
    // output cannot ride an 8-bit mux in one cycle — see EXPERIMENTS.md).
    assert_eq!(versions[0].pair_latency(num, db), Some(5));
    assert_eq!(versions[1].pair_latency(num, db), Some(1));
    assert_eq!(versions[2].pair_latency(num, db), Some(1));
    assert_eq!(versions[0].pair_latency(num, addr), Some(2));
    assert_eq!(versions[1].pair_latency(num, addr), Some(2));
}

#[test]
fn fig8_display_latencies_match() {
    let disp = display_core();
    let versions = ladder(&disp);
    let best_out = |v: &CoreVersion, input: &str| -> u32 {
        let ip = disp.find_port(input).expect("port");
        disp.output_ports()
            .iter()
            .filter_map(|o| v.pair_latency(ip, *o))
            .min()
            .expect("reaches an output")
    };
    // Fig. 8(b): D->OUT = 2/2/1, A->OUT = 3/1/1.
    assert_eq!(best_out(&versions[0], "D"), 2);
    assert_eq!(best_out(&versions[1], "D"), 2);
    assert_eq!(best_out(&versions[2], "D"), 1);
    assert_eq!(best_out(&versions[0], "ALo"), 3);
    assert_eq!(best_out(&versions[1], "ALo"), 1);
    assert_eq!(best_out(&versions[2], "ALo"), 1);
}

#[test]
fn section3_control_chains_take_two_cycles() {
    // "the HSCAN chains can be used to transfer the value at input Reset
    // to output Read in two cycles, and input Interrupt to output Write in
    // two cycles."
    let cpu = cpu_core();
    let versions = ladder(&cpu);
    let reset = cpu.find_port("Reset").expect("port");
    let read = cpu.find_port("Read").expect("port");
    let intr = cpu.find_port("Interrupt").expect("port");
    let write = cpu.find_port("Write").expect("port");
    for v in &versions {
        assert_eq!(v.pair_latency(reset, read), Some(2), "{}", v.name());
        assert_eq!(v.pair_latency(intr, write), Some(2), "{}", v.name());
    }
}

#[test]
fn section52_preprocessor_reset_eoc_chain() {
    // The §5.2 worked ΔTAT example relies on edge (Reset, Eoc) with
    // latency 2.
    let prep = preprocessor_core();
    let versions = ladder(&prep);
    let reset = prep.find_port("Reset").expect("port");
    let eoc = prep.find_port("Eoc").expect("port");
    assert_eq!(versions[0].pair_latency(reset, eoc), Some(2));
}

#[test]
fn display_structural_constants_match() {
    let disp = display_core();
    assert_eq!(disp.flip_flop_count(), 66, "66 flip-flops");
    assert_eq!(disp.input_bits(), 20, "20 internal inputs");
    let hscan = insert_hscan(&disp, &DftCosts::default());
    assert_eq!(hscan.sequential_depth(), 4, "HSCAN depth 4");
    assert_eq!(hscan.test_length(105), 525, "525 HSCAN vectors");
}
