//! Determinism and cache-correctness properties of the preparation
//! pipeline: parallel ≡ serial for any worker count, warm disk cache ≡
//! cold run bit for bit, and any input-knob change invalidates the cache.

use proptest::prelude::*;
use socet::atpg::TpgConfig;
use socet::cells::DftCosts;
use socet::flow::{prepare_soc_uncached, prepare_soc_with, PrepareOptions, PreparedSoc};
use socet::rtl::Soc;
use std::path::PathBuf;

fn light_tpg() -> TpgConfig {
    TpgConfig {
        random_patterns: 16,
        max_backtracks: 32,
        ..TpgConfig::default()
    }
}

/// A fresh per-test cache directory under cargo's target tmpdir.
fn fresh_cache_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("prepare-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Byte encodings of every instance's artifact (`None` for memories).
fn all_bytes(p: &PreparedSoc, soc: &Soc) -> Vec<Option<Vec<u8>>> {
    (0..soc.cores().len())
        .map(|i| p.artifact_bytes(i))
        .collect()
}

#[test]
fn parallel_output_is_bit_identical_to_serial() {
    let soc = socet::socs::system2();
    let costs = DftCosts::default();
    let tpg = light_tpg();
    let oracle = prepare_soc_uncached(&soc, &costs, &tpg).unwrap();
    let want = all_bytes(&oracle, &soc);
    for workers in [1, 2, 4, 8] {
        let opts = PrepareOptions::new().workers(workers);
        let (got, m) = prepare_soc_with(&soc, &costs, &tpg, &opts).unwrap();
        assert_eq!(
            all_bytes(&got, &soc),
            want,
            "workers={workers} diverged from the serial oracle"
        );
        assert!(m.workers as usize <= workers);
    }
}

#[test]
fn warm_disk_cache_is_bit_identical_to_cold() {
    let soc = socet::socs::system2();
    let costs = DftCosts::default();
    let tpg = light_tpg();
    let opts = PrepareOptions::new()
        .workers(1)
        .cache_dir(fresh_cache_dir("warm"));
    let (cold, mc) = prepare_soc_with(&soc, &costs, &tpg, &opts).unwrap();
    assert_eq!(mc.disk_hits, 0);
    assert_eq!(mc.disk_writes, mc.unique_cores);
    let (warm, mw) = prepare_soc_with(&soc, &costs, &tpg, &opts).unwrap();
    assert_eq!(
        mw.disk_hits, mw.unique_cores,
        "warm run must hit for every core"
    );
    assert_eq!(mw.disk_misses, 0);
    assert_eq!(all_bytes(&warm, &soc), all_bytes(&cold, &soc));
}

#[test]
fn tpg_change_invalidates_the_cache() {
    let soc = socet::socs::system2();
    let costs = DftCosts::default();
    let opts = PrepareOptions::new()
        .workers(1)
        .cache_dir(fresh_cache_dir("tpg-invalidate"));
    let tpg = light_tpg();
    let (_, first) = prepare_soc_with(&soc, &costs, &tpg, &opts).unwrap();
    assert_eq!(first.disk_writes, first.unique_cores);
    let changed = TpgConfig {
        random_patterns: tpg.random_patterns + 1,
        ..tpg
    };
    let (_, second) = prepare_soc_with(&soc, &costs, &changed, &opts).unwrap();
    assert_eq!(second.disk_hits, 0, "stale entries must not be served");
    assert_eq!(second.disk_misses, second.unique_cores);
    // The original configuration still hits its own entries.
    let (_, third) = prepare_soc_with(&soc, &costs, &tpg, &opts).unwrap();
    assert_eq!(third.disk_hits, third.unique_cores);
}

#[test]
fn dft_cost_change_invalidates_the_cache() {
    let soc = socet::socs::system2();
    let tpg = light_tpg();
    let opts = PrepareOptions::new()
        .workers(1)
        .cache_dir(fresh_cache_dir("costs-invalidate"));
    let costs = DftCosts::default();
    let (_, first) = prepare_soc_with(&soc, &costs, &tpg, &opts).unwrap();
    assert_eq!(first.disk_writes, first.unique_cores);
    let changed = DftCosts {
        hscan_test_mux_per_bit: costs.hscan_test_mux_per_bit + 1,
        ..costs
    };
    let (_, second) = prepare_soc_with(&soc, &changed, &tpg, &opts).unwrap();
    assert_eq!(second.disk_hits, 0, "stale entries must not be served");
    assert_eq!(second.disk_misses, second.unique_cores);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any worker count and any ATPG seed: the pipeline output equals the
    /// serial oracle's, byte for byte.
    #[test]
    fn pipeline_matches_oracle_for_any_worker_count(
        workers in 1usize..9,
        seed in 0u64..4,
    ) {
        let soc = socet::socs::system2();
        let costs = DftCosts::default();
        let tpg = TpgConfig { seed, ..light_tpg() };
        let oracle = prepare_soc_uncached(&soc, &costs, &tpg).unwrap();
        let opts = PrepareOptions::new().workers(workers);
        let (got, _) = prepare_soc_with(&soc, &costs, &tpg, &opts).unwrap();
        prop_assert_eq!(all_bytes(&got, &soc), all_bytes(&oracle, &soc));
    }
}
