//! Integration and property tests of the incremental evaluation engine:
//! CCG patching must be indistinguishable from a from-scratch build, a
//! reused `Scheduler` must produce bit-identical design points, and bad
//! input must surface as typed errors instead of panics.

use proptest::prelude::*;
use socet::cells::DftCosts;
use socet::core::{schedule, try_schedule, Ccg, CoreTestData, Explorer, ScheduleError, Scheduler};
use socet::hscan::insert_hscan;
use socet::rtl::Soc;
use socet::socs::{barcode_system, generate_soc, SyntheticConfig};
use socet::transparency::synthesize_versions;

fn prepare(soc: &Soc) -> Vec<Option<CoreTestData>> {
    let costs = DftCosts::default();
    soc.cores()
        .iter()
        .map(|inst| {
            if inst.is_memory() {
                return None;
            }
            let hscan = insert_hscan(inst.core(), &costs);
            let versions = synthesize_versions(inst.core(), &hscan, &costs);
            Some(CoreTestData {
                versions,
                hscan,
                scan_vectors: 20,
            })
        })
        .collect()
}

fn ladder_len(data: &[Option<CoreTestData>], idx: usize) -> usize {
    data[idx].as_ref().map(|d| d.versions.len()).unwrap_or(1)
}

/// A canonical structural rendering of a CCG: every ordered field, but not
/// the node-lookup hash map (whose Debug iteration order is arbitrary).
fn canon(ccg: &Ccg, soc: &Soc) -> String {
    let outs: Vec<&[usize]> = (0..ccg.nodes().len()).map(|n| ccg.edges_from(n)).collect();
    let ranges: Vec<_> = soc
        .logic_cores()
        .iter()
        .map(|c| ccg.core_edge_range(*c))
        .collect();
    format!(
        "{:?}|{:?}|{outs:?}|{:?}|{:?}|{ranges:?}",
        ccg.nodes(),
        ccg.edges(),
        ccg.pi_nodes(),
        ccg.po_nodes(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Stepping single cores through `Ccg::step_core` must leave a graph
    /// structurally identical to one built from scratch for the final
    /// choice, whatever the step sequence.
    #[test]
    fn incremental_ccg_patching_matches_full_build(
        seed in 1u64..50,
        steps in prop::collection::vec((0usize..100, 0usize..3), 0..10),
    ) {
        let soc = generate_soc(&SyntheticConfig {
            cores: 4,
            width: 8,
            pipeline_depth: 3,
            seed,
        });
        let data = prepare(&soc);
        let logic = soc.logic_cores();
        let mut choice = vec![0usize; soc.cores().len()];
        let mut patched = Ccg::try_build(&soc, &data, &choice).expect("valid start");
        for (which, ver) in steps {
            let cid = logic[which % logic.len()];
            let ver = ver % ladder_len(&data, cid.index());
            choice[cid.index()] = ver;
            patched.step_core(cid, &data, ver).expect("valid step");
            let fresh = Ccg::try_build(&soc, &data, &choice).expect("valid choice");
            prop_assert_eq!(canon(&patched, &soc), canon(&fresh, &soc));
        }
    }

    /// A reused engine evaluating an arbitrary walk through the choice
    /// space must return exactly what a cold one-shot schedule returns at
    /// every point — the incremental path, route cache and scratch reuse
    /// are invisible in the output.
    #[test]
    fn reused_scheduler_is_bit_identical_to_one_shot(
        walk in prop::collection::vec((0usize..100, 0usize..3), 1..8),
    ) {
        let soc = barcode_system();
        let data = prepare(&soc);
        let costs = DftCosts::default();
        let logic = soc.logic_cores();
        let mut engine = Scheduler::new(&soc, &data, &costs);
        let mut choice = vec![0usize; soc.cores().len()];
        for (which, ver) in walk {
            let cid = logic[which % logic.len()];
            choice[cid.index()] = ver % ladder_len(&data, cid.index());
            let warm = engine.evaluate(&choice).expect("valid choice");
            let cold = schedule(&soc, &data, &choice, &costs);
            prop_assert_eq!(format!("{:?}", warm), format!("{:?}", cold));
        }
    }
}

#[test]
fn try_evaluate_reports_missing_core_data() {
    let soc = barcode_system();
    let mut data = prepare(&soc);
    let victim = soc.logic_cores()[1];
    data[victim.index()] = None;
    let ex = Explorer::new(&soc, &data, DftCosts::default());
    match ex.try_evaluate(&vec![0; soc.cores().len()]) {
        Err(ScheduleError::MissingCoreData { core }) => assert_eq!(core, victim),
        other => panic!("expected MissingCoreData, got {other:?}"),
    }
}

#[test]
fn try_evaluate_reports_out_of_range_choice() {
    let soc = barcode_system();
    let data = prepare(&soc);
    let ex = Explorer::new(&soc, &data, DftCosts::default());
    let mut choice = vec![0; soc.cores().len()];
    let victim = soc.logic_cores()[0];
    choice[victim.index()] = 42;
    match ex.try_evaluate(&choice) {
        Err(ScheduleError::ChoiceOutOfRange {
            core,
            choice: c,
            versions,
        }) => {
            assert_eq!(core, victim);
            assert_eq!(c, 42);
            assert!(versions >= 1);
        }
        other => panic!("expected ChoiceOutOfRange, got {other:?}"),
    }
}

#[test]
fn try_schedule_reports_short_choice_vector() {
    let soc = barcode_system();
    let data = prepare(&soc);
    assert!(matches!(
        try_schedule(&soc, &data, &[0], &DftCosts::default()),
        Err(ScheduleError::ChoiceLengthMismatch { .. })
    ));
}

#[test]
fn engine_recovers_after_failed_patch() {
    let soc = barcode_system();
    let data = prepare(&soc);
    let costs = DftCosts::default();
    let mut engine = Scheduler::new(&soc, &data, &costs);
    let good = vec![0; soc.cores().len()];
    engine.evaluate(&good).expect("valid choice");
    let mut bad = good.clone();
    bad[soc.logic_cores()[0].index()] = 42;
    assert!(engine.evaluate(&bad).is_err());
    let after = engine.evaluate(&good).expect("engine must recover");
    let fresh = schedule(&soc, &data, &good, &costs);
    assert_eq!(format!("{after:?}"), format!("{fresh:?}"));
}

#[test]
fn explorer_metrics_count_sweep_work() {
    let soc = barcode_system();
    let data = prepare(&soc);
    let ex = Explorer::new(&soc, &data, DftCosts::default());
    let points = ex.sweep();
    let m = ex.metrics();
    assert_eq!(m.evaluations, points.len() as u64);
    assert!(m.ccg_incremental_patches > 0, "{m}");
    assert!(m.route_cache_hits > 0, "{m}");
    assert!(m.dijkstra_relaxations > 0, "{m}");
}
