//! Second property-test suite: whole-pipeline invariants on synthetic
//! SOCs — the laws the engine must obey regardless of topology.

use proptest::prelude::*;
use socet::atpg::{compact_tests, fault_list, generate_tests, FaultSim, TpgConfig};
use socet::cells::{CellLibrary, DftCosts};
use socet::core::{
    build_controller, interconnect_report, parallelize, pareto_front, schedule, schedule_with,
    CoreTestData, Explorer,
};
use socet::gate::elaborate;
use socet::hscan::insert_hscan;
use socet::rtl::Soc;
use socet::socs::{generate_soc, SyntheticConfig};
use socet::transparency::synthesize_versions;

fn prepare(soc: &Soc, vectors: usize) -> Vec<Option<CoreTestData>> {
    let costs = DftCosts::default();
    soc.cores()
        .iter()
        .map(|inst| {
            if inst.is_memory() {
                return None;
            }
            let hscan = insert_hscan(inst.core(), &costs);
            let versions = synthesize_versions(inst.core(), &hscan, &costs);
            Some(CoreTestData {
                versions,
                hscan,
                scan_vectors: vectors,
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Across random SOCs: unconstrained routing never reports a longer
    /// TAT than reservation-aware routing, parallel packing never exceeds
    /// serial time, and the Pareto front is non-empty.
    #[test]
    fn scheduling_laws_hold_on_synthetic_socs(
        cores in 2usize..7,
        depth in 1usize..5,
        seed in 1u64..1000,
        vectors in 1usize..30,
    ) {
        let soc = generate_soc(&SyntheticConfig {
            cores,
            width: 8,
            pipeline_depth: depth,
            seed,
        });
        let data = prepare(&soc, vectors);
        let costs = DftCosts::default();
        let choice = vec![0usize; soc.cores().len()];
        let with = schedule_with(&soc, &data, &choice, &costs, true);
        let without = schedule_with(&soc, &data, &choice, &costs, false);
        prop_assert!(without.test_application_time() <= with.test_application_time());
        let par = parallelize(&soc, &with);
        prop_assert!(par.makespan <= par.serial_tat);
        prop_assert!(par.speedup() >= 1.0);
        let explorer = Explorer::new(&soc, &data, costs);
        let points = explorer.sweep();
        prop_assert!(!pareto_front(&points).is_empty());
    }

    /// The synthesized controller's cycle-by-cycle behaviour always matches
    /// the plan's episode windows.
    #[test]
    fn controller_matches_plan_windows(
        cores in 2usize..4,
        seed in 1u64..100,
    ) {
        let soc = generate_soc(&SyntheticConfig {
            cores,
            width: 4,
            pipeline_depth: 2,
            seed,
        });
        let data = prepare(&soc, 2); // tiny TAT: simulation stays fast
        let costs = DftCosts::default();
        let plan = schedule(&soc, &data, &vec![0; soc.cores().len()], &costs);
        let ctrl = build_controller(&soc, &plan).expect("controller builds");
        let sim = socet::gate::CombSim::new(&ctrl.netlist);
        let total = plan.test_application_time();
        let mut state = vec![false; ctrl.netlist.flip_flop_count()];
        for cycle in 0..total.min(300) + 2 {
            let (outs, next) = sim.run_with_state(&[false], &state);
            for (k, (_, start, end)) in ctrl.windows.iter().enumerate() {
                prop_assert_eq!(outs[k], cycle >= *start && cycle < *end);
            }
            state = next;
        }
    }

    /// Interconnect accounting always partitions the net list.
    #[test]
    fn interconnect_report_partitions_nets(
        cores in 2usize..7,
        seed in 1u64..500,
    ) {
        let soc = generate_soc(&SyntheticConfig {
            cores,
            width: 8,
            pipeline_depth: 3,
            seed,
        });
        let data = prepare(&soc, 5);
        let plan = schedule(&soc, &data, &vec![0; soc.cores().len()], &DftCosts::default());
        let report = interconnect_report(&soc, &plan);
        prop_assert_eq!(
            report.tested.len() + report.untested.len(),
            soc.nets().len()
        );
        let cov = report.logic_coverage();
        prop_assert!((0.0..=100.0).contains(&cov));
    }

    /// Compaction never loses coverage and never grows the set, on random
    /// synthetic cores.
    #[test]
    fn compaction_laws(
        seed in 1u64..200,
        depth in 1usize..4,
    ) {
        let soc = generate_soc(&SyntheticConfig {
            cores: 1,
            width: 6,
            pipeline_depth: depth,
            seed,
        });
        let core = soc.cores()[0].core();
        let nl = elaborate(core).expect("elaborates").netlist;
        let mut tests = generate_tests(&nl, &TpgConfig::default());
        let faults = fault_list(&nl);
        let mut sim = FaultSim::new(&nl);
        let before_det = sim.detected(&faults, &tests.patterns);
        let stats = compact_tests(&nl, &mut tests);
        prop_assert!(stats.after <= stats.before);
        prop_assert_eq!(sim.detected(&faults, &tests.patterns), before_det);
    }

    /// The version ladder's chip-level consequences are monotone: choosing
    /// a higher version for one core never increases the global TAT.
    #[test]
    fn higher_versions_never_hurt_tat(
        cores in 2usize..5,
        seed in 1u64..300,
        which in 0usize..5,
    ) {
        let soc = generate_soc(&SyntheticConfig {
            cores,
            width: 8,
            pipeline_depth: 4,
            seed,
        });
        let data = prepare(&soc, 10);
        let costs = DftCosts::default();
        let base = vec![0usize; soc.cores().len()];
        let plan0 = schedule(&soc, &data, &base, &costs);
        let target = which % cores;
        let mut upgraded = base.clone();
        upgraded[target] = 2;
        let plan2 = schedule(&soc, &data, &upgraded, &costs);
        prop_assert!(
            plan2.test_application_time() <= plan0.test_application_time(),
            "upgrading core {} raised TAT {} -> {}",
            target,
            plan0.test_application_time(),
            plan2.test_application_time()
        );
        let lib = CellLibrary::generic_08um();
        prop_assert!(plan2.overhead_cells(&lib) >= plan0.overhead_cells(&lib));
    }
}
