//! Property-based tests over randomly generated RTL cores and SOCs: the
//! invariants every stage of the pipeline must hold regardless of input
//! shape.

use proptest::prelude::*;
use socet::atpg::{fault_list, generate_tests, FaultSim, TpgConfig};
use socet::cells::{CellLibrary, DftCosts};
use socet::core::{schedule, CoreTestData};
use socet::gate::{elaborate, CombSim, PackedSim};
use socet::hscan::insert_hscan;
use socet::rtl::{Core, CoreBuilder, Direction, RegisterId, RtlNode, SocBuilder};
use socet::transparency::synthesize_versions;
use std::collections::HashSet;
use std::sync::Arc;

/// A random core: `n` registers of width `w`, wired into a random DAG-ish
/// topology with an input and an output, plus optional extra mux edges.
fn random_core(n_regs: usize, width: u16, extra_edges: &[(usize, usize)]) -> Core {
    let mut b = CoreBuilder::new("rand");
    let i = b.port("i", Direction::In, width).expect("fresh");
    let o = b.port("o", Direction::Out, width).expect("fresh");
    let regs: Vec<RegisterId> = (0..n_regs)
        .map(|k| b.register(&format!("r{k}"), width).expect("fresh"))
        .collect();
    b.connect_mux(RtlNode::Port(i), RtlNode::Reg(regs[0]), 0)
        .expect("consistent");
    for w2 in regs.windows(2) {
        b.connect_mux(RtlNode::Reg(w2[0]), RtlNode::Reg(w2[1]), 0)
            .expect("consistent");
    }
    b.connect_reg_to_port(regs[n_regs - 1], o)
        .expect("consistent");
    let mut used_legs: Vec<u8> = vec![1; n_regs];
    for &(from, to) in extra_edges {
        let (from, to) = (from % n_regs, to % n_regs);
        if from == to {
            continue;
        }
        let leg = used_legs[to];
        if leg == u8::MAX {
            continue;
        }
        used_legs[to] += 1;
        b.connect_mux(RtlNode::Reg(regs[from]), RtlNode::Reg(regs[to]), leg)
            .expect("consistent");
    }
    b.build().expect("randomly generated core is consistent")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every register lands in exactly one HSCAN chain, so the core really
    /// is full-scan.
    #[test]
    fn hscan_chains_cover_all_registers(
        n in 2usize..10,
        width in 1u16..12,
        edges in prop::collection::vec((0usize..10, 0usize..10), 0..6),
    ) {
        let core = random_core(n, width, &edges);
        let h = insert_hscan(&core, &DftCosts::default());
        let mut seen = HashSet::new();
        for chain in h.chains() {
            for link in &chain.links {
                prop_assert!(seen.insert(link.reg), "{} chained twice", link.reg);
            }
        }
        prop_assert_eq!(seen.len(), core.registers().len());
        prop_assert!(h.sequential_depth() >= 1);
        prop_assert!(h.sequential_depth() <= n);
    }

    /// Every synthesized version is complete (all inputs propagate, all
    /// outputs justify), ladder latencies never increase, and overheads
    /// never decrease.
    #[test]
    fn version_ladder_is_monotone(
        n in 2usize..8,
        width in 1u16..10,
        edges in prop::collection::vec((0usize..8, 0usize..8), 0..6),
    ) {
        let core = random_core(n, width, &edges);
        let costs = DftCosts::default();
        let h = insert_hscan(&core, &costs);
        let versions = synthesize_versions(&core, &h, &costs);
        let lib = CellLibrary::generic_08um();
        prop_assert_eq!(versions.len(), 3);
        for v in &versions {
            prop_assert!(v.is_complete(&core), "{} incomplete", v.name());
        }
        let i = core.find_port("i").expect("port");
        let o = core.find_port("o").expect("port");
        let lat: Vec<Option<u32>> = versions.iter().map(|v| v.pair_latency(i, o)).collect();
        for w in lat.windows(2) {
            if let (Some(a), Some(b)) = (w[0], w[1]) {
                prop_assert!(b <= a, "latency rose along the ladder: {lat:?}");
            }
        }
        let ovh: Vec<u64> = versions.iter().map(|v| v.overhead_cells(&lib)).collect();
        for w in ovh.windows(2) {
            prop_assert!(w[1] >= w[0], "overhead fell along the ladder: {ovh:?}");
        }
        // The final version moves data in at most 2 cycles (one register
        // plus the output wire), since every slow data pair gets a mux.
        if let Some(l3) = lat[2] {
            prop_assert!(l3 <= 2, "version 3 latency {l3}");
        }
    }

    /// Transparency latency can never beat the shortest structural path:
    /// at least one register load separates an input from an output here.
    #[test]
    fn latency_at_least_one(
        n in 2usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8), 0..5),
    ) {
        let core = random_core(n, 4, &edges);
        let costs = DftCosts::default();
        let h = insert_hscan(&core, &costs);
        for v in synthesize_versions(&core, &h, &costs) {
            for p in v.paths() {
                prop_assert!(p.latency >= 1);
            }
        }
    }

    /// The packed simulator agrees with the scalar simulator on every
    /// elaborated random core.
    #[test]
    fn packed_and_scalar_simulation_agree(
        n in 2usize..6,
        width in 1u16..8,
        edges in prop::collection::vec((0usize..6, 0usize..6), 0..4),
        pattern_seed in 0u64..u64::MAX,
    ) {
        let core = random_core(n, width, &edges);
        let elab = elaborate(&core).expect("elaboration succeeds");
        let nl = &elab.netlist;
        let comb = CombSim::new(nl);
        let packed = PackedSim::new(nl);
        let n_pi = nl.inputs().len();
        let n_ff = nl.flip_flop_count();
        let mut seed = pattern_seed | 1;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed & 1 != 0
        };
        let pi: Vec<bool> = (0..n_pi).map(|_| next()).collect();
        let ff: Vec<bool> = (0..n_ff).map(|_| next()).collect();
        let scalar = comb.eval_signals(&pi, &ff);
        let piw: Vec<u64> = pi.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        let ffw: Vec<u64> = ff.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        let packed_vals = packed.eval(&piw, &ffw, None);
        for (k, (s, p)) in scalar.iter().zip(&packed_vals).enumerate() {
            let pbit = p & 1 != 0;
            prop_assert_eq!(*s, pbit, "signal {} disagrees", k);
        }
    }

    /// The cone-pruned fault simulator — serial and fault-partitioned —
    /// produces bit-identical detection maps to the retained full-netlist
    /// oracle on every elaborated random core.
    #[test]
    fn cone_fault_sim_matches_naive_oracle(
        n in 2usize..6,
        width in 1u16..8,
        edges in prop::collection::vec((0usize..6, 0usize..6), 0..4),
        pattern_seed in 0u64..u64::MAX,
        n_patterns in 1usize..90,
    ) {
        let core = random_core(n, width, &edges);
        let elab = elaborate(&core).expect("elaboration succeeds");
        let nl = &elab.netlist;
        let faults = fault_list(nl);
        let mut seed = pattern_seed | 1;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed & 1 != 0
        };
        let width = nl.inputs().len() + nl.flip_flop_count();
        let patterns: Vec<Vec<bool>> = (0..n_patterns)
            .map(|_| (0..width).map(|_| next()).collect())
            .collect();
        let naive = FaultSim::new(nl).detected_naive(&faults, &patterns);
        let serial = FaultSim::new(nl).with_workers(1).detected(&faults, &patterns);
        let parallel = FaultSim::new(nl).with_workers(4).detected(&faults, &patterns);
        prop_assert_eq!(&naive, &serial, "serial cone engine diverged");
        prop_assert_eq!(&naive, &parallel, "parallel cone engine diverged");
    }

    /// The ATPG driver's reported coverage is honest: resimulating its
    /// patterns (cone engine and naive oracle alike) re-detects exactly the
    /// faults it claimed.
    #[test]
    fn reported_coverage_survives_resimulation(
        n in 2usize..5,
        width in 1u16..6,
        edges in prop::collection::vec((0usize..5, 0usize..5), 0..4),
        seed in 0u64..u64::MAX,
    ) {
        let core = random_core(n, width, &edges);
        let elab = elaborate(&core).expect("elaboration succeeds");
        let nl = &elab.netlist;
        let cfg = TpgConfig { seed, max_backtracks: 64, ..TpgConfig::default() };
        let tests = generate_tests(nl, &cfg);
        let faults = fault_list(nl);
        let mut sim = FaultSim::new(nl);
        let det = sim.detected(&faults, &tests.patterns);
        let redetected = det.iter().filter(|&&d| d).count();
        prop_assert_eq!(redetected, tests.coverage.detected);
        prop_assert_eq!(tests.stats.fill_mask_events, 0);
        let naive = sim.detected_naive(&faults, &tests.patterns);
        prop_assert_eq!(det, naive);
    }

    /// Scheduling a two-core SOC never double-books: the per-vector cycle
    /// count is at least the largest single transparency latency on any
    /// used route, and the plan is deterministic.
    #[test]
    fn schedule_respects_latencies(
        n in 2usize..6,
        edges in prop::collection::vec((0usize..6, 0usize..6), 0..4),
        vectors in 1usize..40,
    ) {
        let core = Arc::new(random_core(n, 4, &edges));
        let i = core.find_port("i").expect("port");
        let o = core.find_port("o").expect("port");
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 4).expect("fresh");
        let po = sb.output_pin("po", 4).expect("fresh");
        let u0 = sb.instantiate("u0", core.clone()).expect("fresh");
        let u1 = sb.instantiate("u1", core.clone()).expect("fresh");
        sb.connect_pin_to_core(pi, u0, i).expect("consistent");
        sb.connect_cores(u0, o, u1, i).expect("consistent");
        sb.connect_core_to_pin(u1, o, po).expect("consistent");
        let soc = sb.build().expect("consistent");
        let costs = DftCosts::default();
        let h = insert_hscan(&core, &costs);
        let versions = synthesize_versions(&core, &h, &costs);
        let data = vec![
            Some(CoreTestData { versions: versions.clone(), hscan: h.clone(), scan_vectors: vectors }),
            Some(CoreTestData { versions, hscan: h, scan_vectors: vectors }),
        ];
        let choice = vec![0, 0];
        let a = schedule(&soc, &data, &choice, &costs);
        let b = schedule(&soc, &data, &choice, &costs);
        prop_assert_eq!(a.test_application_time(), b.test_application_time());
        // u1's input goes through u0's transparency: its arrival is at
        // least u0's v1 latency for (i, o).
        let min_lat = data[0].as_ref().expect("data").versions[0]
            .pair_latency(i, o)
            .expect("pair exists");
        let ep1 = &a.episodes[1];
        let arrival = ep1.input_arrivals[0].1;
        prop_assert!(arrival >= min_lat, "arrival {arrival} < latency {min_lat}");
    }
}
