//! End-to-end tests of the gate-level replay oracle ([`socet::verify`]):
//! the paper systems replay clean at their design points, randomized
//! synthetic SOCs replay clean across the prepare→schedule→replay
//! pipeline, a deliberately mis-scheduled plan is caught and shrunk to a
//! minimal counterexample, and the whole report is byte-deterministic in
//! the seed.

use proptest::prelude::*;
use socet::socs::SocSpec;
use socet::verify::{
    run_synthetic_cases, verify_soc, verify_spec, CaseOutcome, Skew, VerifyOptions,
};

fn quick() -> VerifyOptions {
    VerifyOptions {
        max_vectors: Some(3),
        ..VerifyOptions::default()
    }
}

#[test]
fn system1_replays_clean_at_paper_design_point() {
    let soc = socet::socs::barcode_system();
    let n = soc.cores().len();
    let report = verify_soc(&soc, 3, &vec![0; n], &quick()).expect("oracle runs");
    assert!(report.ok(), "violations:\n{}", report.render());
    // Every logic core's episode actually replayed physical routes.
    assert_eq!(report.episodes.len(), 3);
    for ep in &report.episodes {
        assert!(ep.checks > 0, "episode {} replayed nothing", ep.core);
        assert!(ep.bits_checked > 0);
    }
    let par = report.parallel.as_ref().expect("parallel phase ran");
    assert!(par.checks > 0);
    assert!(par.makespan <= par.serial_tat);
}

#[test]
fn system2_replays_clean_at_paper_design_point() {
    let soc = socet::socs::system2();
    let n = soc.cores().len();
    let report = verify_soc(&soc, 3, &vec![0; n], &quick()).expect("oracle runs");
    assert!(report.ok(), "violations:\n{}", report.render());
    assert_eq!(report.episodes.len(), 3);
    // System 2's plan routes everything through transparency, no muxes.
    assert!(report.episodes.iter().all(|e| e.system_mux_routes == 0));
}

#[test]
fn non_default_design_points_replay_clean() {
    // Walk a few non-zero version choices on both systems: the shell is
    // rebuilt per choice, so this exercises distinct transparency fabrics.
    for soc in [socet::socs::barcode_system(), socet::socs::system2()] {
        let n = soc.cores().len();
        for c in 1..3usize {
            let mut choice = vec![0; n];
            choice[0] = c % 2;
            choice[n - 1] = c % 3;
            match verify_soc(&soc, 2, &choice, &quick()) {
                Ok(report) => assert!(
                    report.ok(),
                    "choice {choice:?} on {}:\n{}",
                    report.soc,
                    report.render()
                ),
                // Some choices may legitimately be unschedulable.
                Err(socet::verify::VerifyError::Schedule(_)) => {}
                Err(e) => panic!("choice {choice:?}: {e}"),
            }
        }
    }
}

#[test]
fn skewed_claim_is_caught_and_shrinks_to_minimal_soc() {
    // Invariant (a) self-test: shift the *claimed* arrival of one route by
    // a single cycle and the oracle must flag it...
    let soc = socet::socs::barcode_system();
    let n = soc.cores().len();
    // Episode 1 (CPU) route 0 is a replayed, fully tracked transit route,
    // so the claim shift is observable in every direction. (Routes whose
    // checks are hold-gap-skipped or untracked cannot see a skew — that
    // is exactly what the hold-gap/untracked counters report.)
    for delta in [-1i64, 1, 2] {
        let opts = VerifyOptions {
            skew: Some(Skew {
                episode: 1,
                route: 0,
                delta,
            }),
            ..quick()
        };
        let report = verify_soc(&soc, 2, &vec![0; n], &opts).expect("oracle runs");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.detail.contains("invariant a")),
            "delta {delta} not caught:\n{}",
            report.render()
        );
    }

    // ...and the greedy shrinker reduces a failing synthetic case to a
    // spec none of whose shrink candidates still fails.
    let case_seed = 0xDEC0DE;
    let spec = SocSpec::random(case_seed);
    let opts = VerifyOptions {
        skew: Some(Skew {
            episode: 0,
            route: 0,
            delta: 1,
        }),
        ..quick()
    };
    let failing = verify_spec(&spec, case_seed, &opts).expect("oracle runs");
    assert!(!failing.ok(), "skew should fail the synthetic case");
    let minimal = shrink_with(&spec, case_seed, &opts);
    assert!(minimal.cores.len() <= spec.cores.len());
    for cand in minimal
        .cores
        .len()
        .checked_sub(1)
        .map(|_| minimal.shrink_candidates())
        .unwrap_or_default()
    {
        if cand.cores.is_empty() {
            continue;
        }
        let still_fails = matches!(verify_spec(&cand, case_seed, &opts), Ok(r) if !r.ok());
        assert!(
            !still_fails,
            "shrink is not minimal: a candidate still fails"
        );
    }
}

/// Mirrors the harness's greedy shrink loop so the test can assert
/// minimality of the endpoint.
fn shrink_with(spec: &SocSpec, case_seed: u64, opts: &VerifyOptions) -> SocSpec {
    let mut cur = spec.clone();
    'outer: loop {
        for cand in cur.shrink_candidates() {
            if cand.cores.is_empty() {
                continue;
            }
            if matches!(verify_spec(&cand, case_seed, opts), Ok(r) if !r.ok()) {
                cur = cand;
                continue 'outer;
            }
        }
        return cur;
    }
}

#[test]
fn same_seed_same_report_bytes() {
    let soc = socet::socs::barcode_system();
    let n = soc.cores().len();
    let a = verify_soc(&soc, 2, &vec![0; n], &quick()).unwrap().render();
    let b = verify_soc(&soc, 2, &vec![0; n], &quick()).unwrap().render();
    assert_eq!(a, b);
    let sweep_a = run_synthetic_cases(99, 4, &quick()).render();
    let sweep_b = run_synthetic_cases(99, 4, &quick()).render();
    assert_eq!(sweep_a, sweep_b);
    // A different seed changes the drive streams but not the verdict.
    let other = VerifyOptions {
        seed: 0xFEED,
        ..quick()
    };
    let c = verify_soc(&soc, 2, &vec![0; n], &other).unwrap();
    assert!(c.ok());
}

#[test]
fn synthetic_sweep_replays_clean() {
    let report = run_synthetic_cases(0x5EED, 8, &quick());
    assert!(report.ok(), "{}", report.render());
    let passes = report
        .outcomes
        .iter()
        .filter(|o| matches!(o, CaseOutcome::Pass { .. }))
        .count();
    assert!(passes >= 6, "too few scheduled cases:\n{}", report.render());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pipeline property: any seeded synthetic SOC that schedules at a
    /// seeded design point also replays clean on the gate-level shell.
    #[test]
    fn random_specs_replay_clean(seed in 0u64..1_000_000) {
        let spec = SocSpec::random(seed.wrapping_mul(0x9E37_79B9).max(1));
        match verify_spec(&spec, seed, &quick()) {
            Ok(report) => prop_assert!(report.ok(), "{}", report.render()),
            Err(socet::verify::VerifyError::Schedule(_))
            | Err(socet::verify::VerifyError::Search(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}
