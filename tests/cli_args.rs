//! Regression tests for `soctool` argument handling: unknown flags,
//! unknown commands, and surplus positional arguments must all be
//! rejected with exit code 2 and a usage message — historically the tool
//! exited 0 on unknown flags, silently ignoring typos like `--cout`.

use std::process::{Command, Output};

fn soctool(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_soctool"))
        .args(args)
        .output()
        .expect("soctool spawns")
}

fn assert_usage_rejection(args: &[&str]) {
    let out = soctool(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "soctool {args:?} should exit 2, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("usage: soctool"),
        "soctool {args:?} printed no usage:\n{stderr}"
    );
}

#[test]
fn unknown_flags_are_rejected() {
    assert_usage_rejection(&["systems", "--bogus"]);
    assert_usage_rejection(&["report", "system1", "--cout"]); // typo of --stats
    assert_usage_rejection(&["verify", "system1", "--sed", "3"]); // typo of --seed
    assert_usage_rejection(&["atpg", "system1", "-x"]);
}

#[test]
fn unknown_commands_are_rejected() {
    assert_usage_rejection(&["frobnicate"]);
    assert_usage_rejection(&["Report", "system1"]);
    assert_usage_rejection(&[]);
}

#[test]
fn surplus_positionals_are_rejected() {
    assert_usage_rejection(&["systems", "extra"]);
    assert_usage_rejection(&["verify", "system1", "extra", "more"]);
    assert_usage_rejection(&["bist", "system1", "surplus"]);
}

#[test]
fn flag_values_are_not_swallowed_as_positionals() {
    // `--seed` consumes its value; what remains must still be checked.
    assert_usage_rejection(&["verify", "system1", "--seed", "7", "surplus"]);
    // A flag missing its value is an error, not a crash.
    let out = soctool(&["verify", "system1", "--seed"]);
    assert_eq!(out.status.code(), Some(2), "dangling --seed should exit 2");
}

#[test]
fn valid_invocations_still_work() {
    let out = soctool(&["systems"]);
    assert!(out.status.success(), "soctool systems failed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("system1"), "{stdout}");
    assert!(stdout.contains("system2"), "{stdout}");
}
