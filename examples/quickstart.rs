//! Quickstart: make a two-core SOC testable with SOCET in ~60 lines.
//!
//! Build two small cores, wire them into a chip where the second core is
//! embedded (no direct pin access), run the core-level flow, and let the
//! chip-level planner route every test through the neighbours'
//! transparency.
//!
//! Run with: `cargo run --example quickstart`

use socet::atpg::TpgConfig;
use socet::cells::{CellLibrary, DftCosts};
use socet::core::{Explorer, Objective};
use socet::flow::{prepare_soc_with, PrepareOptions};
use socet::rtl::{CoreBuilder, Direction, SocBuilder};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // A small filter core: an input register, a working register, an
    // output register.
    let mut cb = CoreBuilder::new("filter");
    let din = cb.port("din", Direction::In, 8)?;
    let dout = cb.port("dout", Direction::Out, 8)?;
    let r_in = cb.register("r_in", 8)?;
    let r_mid = cb.register("r_mid", 8)?;
    let r_out = cb.register("r_out", 8)?;
    cb.connect_port_to_reg(din, r_in)?;
    cb.connect_reg_to_reg(r_in, r_mid)?;
    cb.connect_reg_to_reg(r_mid, r_out)?;
    cb.connect_reg_to_port(r_out, dout)?;
    let filter = Arc::new(cb.build()?);

    // The chip: PI -> stage0 -> stage1 -> PO. stage1 is embedded.
    let mut sb = SocBuilder::new("quickchip");
    let pi = sb.input_pin("pi", 8)?;
    let po = sb.output_pin("po", 8)?;
    let u0 = sb.instantiate("stage0", filter.clone())?;
    let u1 = sb.instantiate("stage1", filter.clone())?;
    sb.connect_pin_to_core(pi, u0, din)?;
    sb.connect_cores(u0, dout, u1, din)?;
    sb.connect_core_to_pin(u1, dout, po)?;
    let soc = sb.build()?;

    // Core-level flow: HSCAN + transparency versions + ATPG. Both stages
    // share one `Arc<Core>`, so the pipeline prepares the filter once and
    // reuses the artifact for the second instance.
    let costs = DftCosts::default();
    let (prepared, stats) = prepare_soc_with(
        &soc,
        &costs,
        &TpgConfig::default(),
        &PrepareOptions::default(),
    )?;
    let lib = CellLibrary::generic_08um();
    println!("chip `{}`:", soc.name());
    println!(
        "  preparation       : {} instances, {} unique cores, {} memo hits",
        stats.instances, stats.unique_cores, stats.memo_hits
    );
    println!(
        "  original area     : {} cells",
        prepared.original_area_cells(&lib)
    );
    println!(
        "  HSCAN overhead    : {} cells",
        prepared.hscan_overhead_cells(&lib)
    );
    println!("  fault coverage    : {}", prepared.aggregate_coverage());

    // Chip-level planning: minimize test time under a generous budget.
    let explorer = Explorer::new(&soc, &prepared.data, costs);
    let plan = explorer.optimize(Objective::MinTatUnderArea {
        max_overhead_cells: 1_000,
    });
    println!("  chosen versions   : {:?}", plan.choice);
    println!("  chip-level DFT    : {} cells", plan.overhead_cells(&lib));
    println!(
        "  test time         : {} cycles",
        plan.test_application_time()
    );
    for ep in &plan.episodes {
        println!("    {ep}");
    }
    Ok(())
}
