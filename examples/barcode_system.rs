//! The paper's System 1 — the barcode-scanning SOC of Fig. 2 — end to end.
//!
//! Reproduces the §3 worked example live: the DISPLAY's test application
//! time under each CPU version, the FSCAN-BSCAN comparison, and the
//! system-level test mux Fig. 9 places on the PREPROCESSOR's Address
//! output.
//!
//! Run with: `cargo run --release --example barcode_system`

use socet::baselines::FscanBscanReport;
use socet::cells::{CellLibrary, DftCosts};
use socet::core::{schedule, CoreTestData};
use socet::hscan::insert_hscan;
use socet::socs::barcode_system;
use socet::transparency::synthesize_versions;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let soc = barcode_system();
    let costs = DftCosts::default();
    let lib = CellLibrary::generic_08um();

    println!("{soc}");
    // Core-level data with the paper's premise of 105 combinational
    // vectors per core.
    let data: Vec<Option<CoreTestData>> = soc
        .cores()
        .iter()
        .map(|inst| {
            if inst.is_memory() {
                return None;
            }
            let hscan = insert_hscan(inst.core(), &costs);
            let versions = synthesize_versions(inst.core(), &hscan, &costs);
            Some(CoreTestData {
                versions,
                hscan,
                scan_vectors: 105,
            })
        })
        .collect();

    // The version ladders (Figs. 6 and 8).
    for cid in soc.logic_cores() {
        let inst = soc.core(cid);
        println!("\n{} versions:", inst.name());
        for v in &data[cid.index()].as_ref().expect("logic core").versions {
            println!("  {} -> {} cells", v.name(), v.overhead_cells(&lib));
        }
    }

    // The §3 worked example: DISPLAY test time vs CPU version.
    let prep = soc.find_core("PREPROCESSOR").expect("core");
    let cpu = soc.find_core("CPU").expect("core");
    let disp = soc.find_core("DISPLAY").expect("core");
    println!("\nDISPLAY test time (PREPROCESSOR at Version 2):");
    for cpu_v in 0..3 {
        let mut choice = vec![0usize; soc.cores().len()];
        choice[prep.index()] = 1;
        choice[cpu.index()] = cpu_v;
        let plan = schedule(&soc, &data, &choice, &costs);
        let ep = plan
            .episodes
            .iter()
            .find(|e| e.core == disp)
            .expect("DISPLAY episode");
        println!(
            "  CPU Version {}: {} x {} + {} = {} cycles",
            cpu_v + 1,
            ep.hscan_vectors,
            ep.per_vector_cycles,
            ep.tail_cycles,
            ep.test_time()
        );
    }

    // FSCAN-BSCAN on the same core.
    let mut vectors = vec![0u64; soc.cores().len()];
    for c in soc.logic_cores() {
        vectors[c.index()] = 105;
    }
    let fb = FscanBscanReport::evaluate(&soc, &vectors, &costs);
    let fb_disp = fb.cores.iter().find(|c| c.core == disp).expect("DISPLAY");
    println!(
        "  FSCAN-BSCAN  : ({} + {}) x {} + {} = {} cycles",
        fb_disp.flip_flops,
        fb_disp.boundary_bits,
        fb_disp.vectors,
        fb_disp.chain_length() - 1,
        fb_disp.test_time()
    );

    // Whole-chip plan at minimum area, with the Fig. 9 system mux.
    let choice = vec![0usize; soc.cores().len()];
    let plan = schedule(&soc, &data, &choice, &costs);
    println!("\nminimum-area SOCET plan:");
    println!("  global TAT : {} cycles", plan.test_application_time());
    println!("  chip DFT   : {} cells", plan.overhead_cells(&lib));
    for m in &plan.system_muxes {
        let name = soc.core(m.core).name();
        let port = soc.core(m.core).core().port(m.port).name();
        println!("  system mux : {name}.{port} ({} bits)", m.width);
    }
    Ok(())
}
