//! Memory BIST alongside SOCET: the complete chip test.
//!
//! The paper routes test data only through the *logic* cores; RAM and ROM
//! get built-in self-test instead (its reference \[8\]). This example plans
//! distributed BIST for System 1's memories, demonstrates the March C−
//! engine catching injected cell faults, shows LFSR/MISR signature
//! computation, and combines everything into a whole-chip test budget —
//! BIST runs concurrently with the logic episodes, so it adds area but no
//! test time.
//!
//! Run with: `cargo run --release --example memory_bist`

use socet::bist::{march_c, plan_memory_bist, Lfsr, MemoryFault, MemoryModel, Misr};
use socet::cells::{CellLibrary, DftCosts};
use socet::core::{schedule, CoreTestData};
use socet::hscan::insert_hscan;
use socet::socs::barcode_system;
use socet::transparency::synthesize_versions;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let soc = barcode_system();
    let lib = CellLibrary::generic_08um();

    // 1. BIST plans for the memory cores.
    println!("memory BIST plans:");
    let plans = plan_memory_bist(&soc);
    for p in &plans {
        println!(
            "  {:<6} {:>2}-bit address LFSR + {:>2}-bit MISR, {:>6} cells, {:>6} cycles (March C-)",
            soc.core(p.core).name(),
            p.addr_width,
            p.data_width,
            p.overhead_cells(&lib),
            p.test_cycles()
        );
    }

    // 2. The March engine on a faulty memory.
    println!("\nMarch C- demonstration (4K x 8 RAM):");
    let mut clean = MemoryModel::new(4096, 8);
    println!(
        "  clean memory : detected = {}",
        march_c(&mut clean).fault_detected
    );
    let mut faulty = MemoryModel::new(4096, 8);
    faulty.inject(MemoryFault::StuckBit {
        addr: 0x2fa,
        bit: 5,
        value: true,
    });
    faulty.inject(MemoryFault::Coupling {
        aggressor_addr: 0x100,
        victim_addr: 0x101,
        victim_bit: 0,
    });
    let log = march_c(&mut faulty);
    println!(
        "  faulty memory: detected = {} in {} operations",
        log.fault_detected, log.operations
    );

    // 3. Signature analysis: the MISR compacts the read stream.
    println!("\nsignature analysis:");
    let mut addr_gen = Lfsr::new(12, &[11, 5]);
    let mut good_sig = Misr::new(8, &[7, 5, 4, 3]);
    let mut bad_sig = Misr::new(8, &[7, 5, 4, 3]);
    let mut good_mem = MemoryModel::new(4096, 8);
    let mut bad_mem = MemoryModel::new(4096, 8);
    // Fault an address the LFSR provably visits (its first state).
    let faulty_addr = {
        let mut probe = Lfsr::new(12, &[11, 5]);
        (probe.step() as usize) % 4096
    };
    // Stuck-at-0 on a bit the background pattern sets to 1 there.
    bad_mem.inject(MemoryFault::StuckBit {
        addr: faulty_addr | 0x2,
        bit: 1,
        value: false,
    });
    // Write a known pattern everywhere, then read back in LFSR order.
    for a in 0..4096 {
        good_mem.write(a, (a as u64) & 0xff);
        bad_mem.write(a, (a as u64) & 0xff);
    }
    for _ in 0..4096 {
        let a = (addr_gen.step() as usize) % 4096;
        good_sig.absorb(good_mem.read(a));
        bad_sig.absorb(bad_mem.read(a));
    }
    println!("  good signature : {:#04x}", good_sig.signature());
    println!("  bad signature  : {:#04x}", bad_sig.signature());
    println!(
        "  fault visible  : {}",
        good_sig.signature() != bad_sig.signature()
    );

    // 4. The whole-chip budget: SOCET for logic + concurrent BIST.
    let costs = DftCosts::default();
    let data: Vec<Option<CoreTestData>> = soc
        .cores()
        .iter()
        .map(|inst| {
            if inst.is_memory() {
                return None;
            }
            let hscan = insert_hscan(inst.core(), &costs);
            let versions = synthesize_versions(inst.core(), &hscan, &costs);
            Some(CoreTestData {
                versions,
                hscan,
                scan_vectors: 105,
            })
        })
        .collect();
    let plan = schedule(&soc, &data, &vec![0; soc.cores().len()], &costs);
    let logic_tat = plan.test_application_time();
    let bist_tat = plans.iter().map(|p| p.test_cycles()).max().unwrap_or(0);
    let bist_cells: u64 = plans.iter().map(|p| p.overhead_cells(&lib)).sum();
    println!("\nwhole-chip budget:");
    println!(
        "  logic (SOCET)    : {logic_tat} cycles, {} cells",
        plan.overhead_cells(&lib)
    );
    println!("  memories (BIST)  : {bist_tat} cycles, {bist_cells} cells (runs concurrently)");
    println!("  chip test time   : {} cycles", logic_tat.max(bist_tat));
    Ok(())
}
