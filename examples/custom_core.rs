//! Making your own core transparent: the core provider's side of SOCET.
//!
//! Builds a DSP-flavoured core with bit-sliced registers (C-split and
//! O-split nodes), inserts HSCAN, extracts the register connectivity graph,
//! and walks the version ladder, printing every transparency path.
//!
//! Run with: `cargo run --example custom_core`

use socet::cells::{CellLibrary, DftCosts};
use socet::hscan::insert_hscan;
use socet::rtl::{BitRange, CoreBuilder, Direction, FuKind, RtlNode};
use socet::transparency::{synthesize_versions, Rcg};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A multiply-accumulate-ish core: two operand buses land in a packed
    // coefficient register (C-split); the result register fans its halves
    // out to two ports (O-split through the pack register).
    let mut b = CoreBuilder::new("mac");
    let coeff = b.port("coeff", Direction::In, 8)?;
    let sample = b.port("sample", Direction::In, 8)?;
    let start = b.control_port("start", Direction::In)?;
    let hi = b.port("hi", Direction::Out, 8)?;
    let lo = b.port("lo", Direction::Out, 8)?;
    let busy = b.port_with_class("busy", Direction::Out, 1, socet::rtl::SignalClass::Control)?;

    let pack = b.register("pack", 16)?;
    let acc = b.register("acc", 16)?;
    let c1 = b.register("c1", 1)?;
    // C-split pack register: coefficient in the high byte, sample low.
    b.connect_slice(
        RtlNode::Port(sample),
        BitRange::full(8),
        RtlNode::Reg(pack),
        BitRange::new(0, 7),
    )?;
    b.connect_slice(
        RtlNode::Port(coeff),
        BitRange::full(8),
        RtlNode::Reg(pack),
        BitRange::new(8, 15),
    )?;
    b.connect_mux(RtlNode::Reg(pack), RtlNode::Reg(acc), 0)?;
    // O-split accumulator fanout: halves to separate ports.
    b.connect_slice(
        RtlNode::Reg(acc),
        BitRange::new(8, 15),
        RtlNode::Port(hi),
        BitRange::full(8),
    )?;
    b.connect_slice(
        RtlNode::Reg(acc),
        BitRange::new(0, 7),
        RtlNode::Port(lo),
        BitRange::full(8),
    )?;
    b.connect_port_to_reg(start, c1)?;
    b.connect_reg_to_port(c1, busy)?;
    // The MAC unit itself (lossy, bypassed by transparency).
    let mul = b.functional_unit("mul", FuKind::Alu, 16)?;
    b.connect_reg_to_fu(pack, mul)?;
    b.connect_mux(RtlNode::Fu(mul), RtlNode::Reg(acc), 1)?;
    let core = b.build()?;

    // Core-level DFT.
    let costs = DftCosts::default();
    let lib = CellLibrary::generic_08um();
    let hscan = insert_hscan(&core, &costs);
    println!("{core}");
    println!("{hscan}");
    for chain in hscan.chains() {
        println!("  {chain}");
    }

    // The RCG the searches run on.
    let rcg = Rcg::extract(&core, &hscan);
    println!("\n{rcg}");

    // The version ladder.
    let versions = synthesize_versions(&core, &hscan, &costs);
    for v in &versions {
        println!("{} ({} cells):", v.name(), v.overhead_cells(&lib));
        for p in v.paths() {
            let ins: Vec<&str> = p.inputs.iter().map(|i| core.port(*i).name()).collect();
            let outs: Vec<&str> = p.outputs.iter().map(|o| core.port(*o).name()).collect();
            println!(
                "  {} -> {} in {} cycle(s)",
                ins.join("+"),
                outs.join("+"),
                p.latency
            );
        }
    }
    Ok(())
}
