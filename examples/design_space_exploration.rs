//! Design-space exploration on System 2: the Fig. 10-style sweep plus both
//! §5 objectives.
//!
//! Prints every version-combination design point (area overhead vs test
//! application time), then shows how objective (i) — minimum TAT under an
//! area budget — and objective (ii) — minimum area under a TAT budget —
//! pick different points from the same space.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use socet::atpg::TpgConfig;
use socet::cells::{CellLibrary, DftCosts};
use socet::core::{Explorer, Objective};
use socet::flow::prepare_soc;
use socet::socs::system2;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let soc = system2();
    let costs = DftCosts::default();
    let lib = CellLibrary::generic_08um();
    println!("preparing {} (HSCAN + versions + ATPG)...", soc.name());
    let prepared = prepare_soc(&soc, &costs, &TpgConfig::default())?;
    println!(
        "  original area {} cells, HSCAN overhead {} cells, coverage {}",
        prepared.original_area_cells(&lib),
        prepared.hscan_overhead_cells(&lib),
        prepared.aggregate_coverage()
    );

    let explorer = Explorer::new(&soc, &prepared.data, costs);

    // Fig. 10-style sweep: every combination of core versions.
    println!("\ndesign-space sweep (choice -> overhead cells, TAT cycles):");
    let mut points = explorer.sweep();
    points.sort_by_key(|p| p.overhead_cells(&lib));
    for p in &points {
        println!(
            "  {:?} -> {:>5} cells, {:>8} cycles{}",
            p.choice,
            p.overhead_cells(&lib),
            p.test_application_time(),
            if p.system_muxes.is_empty() {
                String::new()
            } else {
                format!(" (+{} system muxes)", p.system_muxes.len())
            }
        );
    }
    let min_area = points
        .iter()
        .min_by_key(|p| p.overhead_cells(&lib))
        .expect("non-empty sweep");
    let min_tat = points
        .iter()
        .min_by_key(|p| p.test_application_time())
        .expect("non-empty sweep");
    println!(
        "\n  extremes: min-area {} cells / {} cycles; min-TAT {} cells / {} cycles",
        min_area.overhead_cells(&lib),
        min_area.test_application_time(),
        min_tat.overhead_cells(&lib),
        min_tat.test_application_time()
    );

    // Objective (i): the best TAT that fits a mid-range area budget.
    let budget = (min_area.overhead_cells(&lib) + min_tat.overhead_cells(&lib)) / 2;
    let obj1 = explorer.optimize(Objective::MinTatUnderArea {
        max_overhead_cells: budget,
    });
    println!(
        "\nobjective (i), area <= {budget} cells: choice {:?}, {} cells, {} cycles",
        obj1.choice,
        obj1.overhead_cells(&lib),
        obj1.test_application_time()
    );

    // Objective (ii): the cheapest point meeting a mid-range TAT budget.
    let tat_budget = (min_area.test_application_time() + min_tat.test_application_time()) / 2;
    let obj2 = explorer.optimize(Objective::MinAreaUnderTat {
        max_tat_cycles: tat_budget,
    });
    println!(
        "objective (ii), TAT <= {tat_budget} cycles: choice {:?}, {} cells, {} cycles",
        obj2.choice,
        obj2.overhead_cells(&lib),
        obj2.test_application_time()
    );
    Ok(())
}
