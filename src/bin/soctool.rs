//! `soctool` — command-line front end for the SOCET flow.
//!
//! ```text
//! soctool systems                      list the built-in systems
//! soctool report <system> [choice]     full test-plan report (e.g. choice 0,1,2)
//! soctool sweep <system>               design-space table + Pareto front
//! soctool dot-rcg <system> <core>      Graphviz of a core's RCG
//! soctool dot-ccg <system> [choice]    Graphviz of the chip's CCG (Fig. 9)
//! soctool atpg <system>                per-core combinational ATPG run
//! soctool prepare <system>             content-addressed preparation pipeline
//! soctool bist <system>                memory BIST plans
//! soctool verify <system>              gate-level replay oracle (see below)
//! ```
//!
//! `report` and `sweep` accept `--stats` to print the evaluation engine's
//! counters (CCG builds vs. incremental patches, Dijkstra relaxations,
//! route-cache hits, stage wall-times); `atpg --stats` prints the fault
//! simulator's counters (cone pruning, fault dropping, parallel shards);
//! `prepare --stats` prints the preparation pipeline's counters (memo and
//! disk-cache hits, stage wall-times). `prepare` also accepts
//! `--cache-dir PATH` (on-disk artifact store) and `--workers N`
//! (`0` = auto).
//!
//! `report`, `sweep` and `prepare` accept `--trace PATH` (machine-readable
//! JSON trace of the run's spans and counters) and `--profile PATH`
//! (collapsed-stack profile for flamegraph tooling) — both exporters of
//! the unified observability layer ([`socet::obs`]).
//!
//! `verify` replays scheduled test programs on the gate-level
//! transparency shell and checks the three oracle invariants
//! ([`socet::verify`]): `soctool verify system1|system2 [--cases K]`
//! fully replays the paper design point (all-zeros choice) and then `K-1`
//! further lexicographic design points with the vector count capped;
//! `soctool verify synthetic [--seed N] [--cases K]` runs the randomized
//! harness over `K` seeded synthetic SOCs with greedy shrinking. The same
//! `--seed` produces byte-identical output.
//!
//! Systems: `system1` (the barcode SOC), `system2`, or `synthetic:<n>`
//! for an n-core generated SOC.
//!
//! Unknown flags or surplus positional arguments are rejected with exit
//! code 2 and the usage text.

use socet::bist::plan_memory_bist;
use socet::cells::{CellLibrary, DftCosts};
use socet::core::{parallelize, pareto_front, render_plan, Ccg, CoreTestData, Explorer};
use socet::hscan::insert_hscan;
use socet::obs::{Recorder, SharedRecorder};
use socet::rtl::Soc;
use socet::socs::{barcode_system, generate_soc, system2, SyntheticConfig};
use socet::transparency::{synthesize_versions, Rcg};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: soctool <command> [args] [--stats]\n\
         commands:\n\
           systems\n\
           report  <system> [choice] [--stats] [--trace PATH] [--profile PATH]\n\
           sweep   <system> [--stats] [--trace PATH] [--profile PATH]\n\
           dot-rcg <system> <core-name>\n\
           dot-ccg <system> [choice]\n\
           atpg    <system> [--stats]\n\
           prepare <system> [--stats] [--cache-dir PATH] [--workers N]\n\
                   [--trace PATH] [--profile PATH]\n\
           bist    <system>\n\
           verify  <system> [--seed N] [--cases K] [--stats]\n\
         systems: system1 | system2 | synthetic:<cores>\n\
                  (verify also accepts `synthetic` = randomized harness)\n\
         --stats: print engine counters (evaluation, ATPG or preparation)\n\
         --trace: write the run's JSON trace; --profile: collapsed stacks"
    );
    ExitCode::from(2)
}

/// Writes the recorder's exports to the `--trace` / `--profile` targets.
/// Returns `false` (and reports to stderr) if a write fails.
fn export_trace(rec: &Recorder, trace: Option<&PathBuf>, profile: Option<&PathBuf>) -> bool {
    let mut ok = true;
    if let Some(path) = trace {
        if let Err(e) = std::fs::write(path, rec.to_json()) {
            eprintln!("cannot write trace {}: {e}", path.display());
            ok = false;
        }
    }
    if let Some(path) = profile {
        if let Err(e) = std::fs::write(path, rec.to_folded()) {
            eprintln!("cannot write profile {}: {e}", path.display());
            ok = false;
        }
    }
    ok
}

fn load_system(name: &str) -> Option<Soc> {
    match name {
        "system1" => Some(barcode_system()),
        "system2" => Some(system2()),
        other => {
            let n: usize = other.strip_prefix("synthetic:")?.parse().ok()?;
            Some(generate_soc(&SyntheticConfig {
                cores: n,
                ..SyntheticConfig::default()
            }))
        }
    }
}

fn prepare(soc: &Soc, vectors: usize) -> Vec<Option<CoreTestData>> {
    let costs = DftCosts::default();
    soc.cores()
        .iter()
        .map(|inst| {
            if inst.is_memory() {
                return None;
            }
            let hscan = insert_hscan(inst.core(), &costs);
            let versions = synthesize_versions(inst.core(), &hscan, &costs);
            Some(CoreTestData {
                versions,
                hscan,
                scan_vectors: vectors,
            })
        })
        .collect()
}

fn parse_choice(soc: &Soc, arg: Option<&str>) -> Option<Vec<usize>> {
    match arg {
        None => Some(vec![0; soc.cores().len()]),
        Some(s) => {
            let parts: Result<Vec<usize>, _> = s.split(',').map(str::parse).collect();
            let mut v = parts.ok()?;
            v.resize(soc.cores().len(), 0);
            Some(v)
        }
    }
}

/// Removes `--flag VALUE` from `args`, returning the value if present.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let at = args.iter().position(|a| a == flag)?;
    if at + 1 >= args.len() {
        return None;
    }
    let value = args.remove(at + 1);
    args.remove(at);
    Some(value)
}

/// Maximum positional argument count (command included) per command; the
/// parser rejects anything beyond it so typos never silently no-op.
fn max_positionals(cmd: &str) -> Option<usize> {
    match cmd {
        "systems" => Some(1),
        "sweep" | "atpg" | "prepare" | "bist" | "verify" => Some(2),
        "report" | "dot-rcg" | "dot-ccg" => Some(3),
        _ => None,
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stats = {
        let before = args.len();
        args.retain(|a| a != "--stats");
        args.len() != before
    };
    let cache_dir = take_flag_value(&mut args, "--cache-dir").map(PathBuf::from);
    let workers = take_flag_value(&mut args, "--workers").and_then(|w| w.parse::<usize>().ok());
    let trace = take_flag_value(&mut args, "--trace").map(PathBuf::from);
    let profile = take_flag_value(&mut args, "--profile").map(PathBuf::from);
    let seed = take_flag_value(&mut args, "--seed").and_then(|s| s.parse::<u64>().ok());
    let cases = take_flag_value(&mut args, "--cases").and_then(|s| s.parse::<u64>().ok());
    // Everything left must be a positional argument: an unknown flag (or a
    // flag whose value was consumed as a positional) must not be silently
    // accepted.
    if let Some(bad) = args.iter().find(|a| a.starts_with('-')) {
        eprintln!("unknown flag `{bad}`");
        return usage();
    }
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    match max_positionals(cmd) {
        None => {
            eprintln!("unknown command `{cmd}`");
            return usage();
        }
        Some(max) if args.len() > max => {
            eprintln!("unexpected argument `{}`", args[max]);
            return usage();
        }
        Some(_) => {}
    }
    if cmd == "systems" {
        println!("system1      the paper's barcode SOC (CPU, PREPROCESSOR, DISPLAY, RAM, ROM)");
        println!("system2      graphics -> GCD -> X.25 pipeline");
        println!("synthetic:N  generated N-core backbone-with-taps SOC");
        return ExitCode::SUCCESS;
    }
    let Some(system_name) = args.get(1) else {
        return usage();
    };
    if cmd == "verify" && system_name == "synthetic" {
        let opts = socet::verify::VerifyOptions {
            seed: seed.unwrap_or(0x50CE7),
            max_vectors: Some(4),
            ..Default::default()
        };
        let report =
            socet::verify::run_synthetic_cases(seed.unwrap_or(0x50CE7), cases.unwrap_or(10), &opts);
        print!("{}", report.render());
        return if report.ok() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let Some(soc) = load_system(system_name) else {
        eprintln!("unknown system `{system_name}`");
        return usage();
    };
    let costs = DftCosts::default();
    let lib = CellLibrary::generic_08um();
    match cmd {
        "report" => {
            let data = prepare(&soc, 105);
            let Some(choice) = parse_choice(&soc, args.get(2).map(String::as_str)) else {
                return usage();
            };
            let explorer = Explorer::new(&soc, &data, costs);
            let plan = match explorer.try_evaluate(&choice) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("cannot evaluate choice {choice:?}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", render_plan(&soc, &data, &plan));
            let par = parallelize(&soc, &plan);
            println!("\nparallel extension: {par}");
            match socet::core::build_controller(&soc, &plan) {
                Ok(ctrl) => println!(
                    "test controller : {} cells ({}-bit counter, {} windows)",
                    ctrl.area_cells(&lib),
                    ctrl.counter_bits,
                    ctrl.windows.len()
                ),
                Err(e) => println!("test controller : synthesis failed ({e})"),
            }
            if stats {
                println!("\n{}", explorer.metrics());
            }
            if !export_trace(&explorer.take_recorder(), trace.as_ref(), profile.as_ref()) {
                return ExitCode::FAILURE;
            }
        }
        "sweep" => {
            let data = prepare(&soc, 105);
            let explorer = Explorer::new(&soc, &data, costs);
            let points = explorer.sweep();
            println!("{:>10} {:>12}  choice", "ovhd", "TAT");
            let mut sorted: Vec<_> = points.iter().collect();
            sorted.sort_by_key(|p| (p.overhead_cells(&lib), p.test_application_time()));
            for p in &sorted {
                println!(
                    "{:>10} {:>12}  {:?}",
                    p.overhead_cells(&lib),
                    p.test_application_time(),
                    p.choice
                );
            }
            println!("\npareto front:");
            for p in pareto_front(&points) {
                println!(
                    "{:>10} {:>12}  {:?}",
                    p.overhead_cells(&lib),
                    p.test_application_time(),
                    p.choice
                );
            }
            if stats {
                println!("\n{}", explorer.metrics());
            }
            if !export_trace(&explorer.take_recorder(), trace.as_ref(), profile.as_ref()) {
                return ExitCode::FAILURE;
            }
        }
        "dot-rcg" => {
            let Some(core_name) = args.get(2) else {
                return usage();
            };
            let Some(cid) = soc.find_core(core_name) else {
                eprintln!("unknown core `{core_name}`");
                return ExitCode::from(2);
            };
            let core = soc.core(cid).core();
            let hscan = insert_hscan(core, &costs);
            let rcg = Rcg::extract(core, &hscan);
            print!("{}", rcg.to_dot(core));
        }
        "dot-ccg" => {
            let data = prepare(&soc, 105);
            let Some(choice) = parse_choice(&soc, args.get(2).map(String::as_str)) else {
                return usage();
            };
            let ccg = Ccg::build(&soc, &data, &choice);
            print!("{}", ccg.to_dot(&soc));
        }
        "atpg" => {
            let prepared =
                match socet::flow::prepare_soc(&soc, &costs, &socet::atpg::TpgConfig::default()) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("cannot prepare {}: {e}", soc.name());
                        return ExitCode::FAILURE;
                    }
                };
            println!(
                "{:<14} {:>7} {:>8} {:>8} {:>8}",
                "core", "faults", "FC%", "TEff%", "vectors"
            );
            for (inst, tests) in soc.cores().iter().zip(&prepared.tests) {
                match tests {
                    Some(t) => println!(
                        "{:<14} {:>7} {:>8.2} {:>8.2} {:>8}",
                        inst.name(),
                        t.coverage.total,
                        t.coverage.fault_coverage(),
                        t.coverage.test_efficiency(),
                        t.vector_count()
                    ),
                    None => println!("{:<14} {:>7}", inst.name(), "memory"),
                }
            }
            let agg = prepared.aggregate_coverage();
            println!("\naggregate: {agg}");
            if stats {
                println!("\n{}", prepared.atpg_stats());
            }
        }
        "prepare" => {
            let shared = SharedRecorder::new();
            let mut opts = socet::flow::PrepareOptions::new()
                .workers(workers.unwrap_or(0))
                .recorder(shared.clone());
            if let Some(dir) = cache_dir {
                opts = opts.cache_dir(dir);
            }
            let tpg = socet::atpg::TpgConfig::default();
            let (prepared, m) = match socet::flow::prepare_soc_with(&soc, &costs, &tpg, &opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("cannot prepare {}: {e}", soc.name());
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{:<14} {:>8} {:>8} {:>8} {:>8}",
                "core", "gates", "FFs", "vectors", "FC%"
            );
            for (inst, i) in soc.cores().iter().zip(0..) {
                match (&prepared.netlists[i], &prepared.tests[i]) {
                    (Some(nl), Some(t)) => println!(
                        "{:<14} {:>8} {:>8} {:>8} {:>8.2}",
                        inst.name(),
                        nl.gates().len(),
                        nl.flip_flop_count(),
                        t.vector_count(),
                        t.coverage.fault_coverage()
                    ),
                    _ => println!("{:<14} {:>8}", inst.name(), "memory"),
                }
            }
            println!("\naggregate: {}", prepared.aggregate_coverage());
            if stats {
                println!("\n{m}");
            }
            if !export_trace(&shared.take(), trace.as_ref(), profile.as_ref()) {
                return ExitCode::FAILURE;
            }
        }
        "verify" => {
            let data = prepare(&soc, 105);
            let limits: Vec<usize> = data
                .iter()
                .map(|d| d.as_ref().map_or(1, |d| d.versions.len().max(1)))
                .collect();
            let base_seed = seed.unwrap_or(0x50CE7);
            let cases = cases.unwrap_or(1).max(1);
            let mut choice = vec![0usize; limits.len()];
            let mut all_ok = true;
            let (mut checks, mut bits) = (0u64, 0u64);
            for case in 0..cases {
                // Case 0 is the paper design point, replayed in full; the
                // rest sample the design space with capped vector counts.
                let opts = socet::verify::VerifyOptions {
                    seed: base_seed,
                    max_vectors: if case == 0 { None } else { Some(4) },
                    ..Default::default()
                };
                match socet::core::try_schedule(&soc, &data, &choice, &costs) {
                    Ok(plan) => match socet::verify::verify_design_point(&soc, &data, &plan, &opts)
                    {
                        Ok(report) => {
                            print!("{}", report.render());
                            all_ok &= report.ok();
                            checks += report.episodes.iter().map(|e| e.checks).sum::<u64>()
                                + report.parallel.as_ref().map_or(0, |p| p.checks);
                            bits += report.episodes.iter().map(|e| e.bits_checked).sum::<u64>();
                        }
                        Err(e) => {
                            eprintln!("cannot replay choice {choice:?}: {e}");
                            all_ok = false;
                        }
                    },
                    Err(e) => println!("choice {choice:?}: unschedulable ({e})"),
                }
                let advanced = (0..choice.len()).rev().any(|i| {
                    if choice[i] + 1 < limits[i] {
                        choice[i] += 1;
                        choice[i + 1..].fill(0);
                        true
                    } else {
                        false
                    }
                });
                if !advanced && case + 1 < cases {
                    println!("design space exhausted after {} cases", case + 1);
                    break;
                }
            }
            if stats {
                println!("total: {checks} checks, {bits} bits compared");
            }
            if !all_ok {
                return ExitCode::FAILURE;
            }
        }
        "bist" => {
            let plans = plan_memory_bist(&soc);
            if plans.is_empty() {
                println!("no memory cores in {}", soc.name());
            }
            for p in &plans {
                println!(
                    "{:<8} {:>2}-bit LFSR + {:>2}-bit MISR, {:>6} cells, {:>8} cycles",
                    soc.core(p.core).name(),
                    p.addr_width,
                    p.data_width,
                    p.overhead_cells(&lib),
                    p.test_cycles()
                );
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
