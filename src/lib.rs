//! SOCET — a reproduction of *"A Fast and Low Cost Testing Technique for
//! Core-Based System-on-Chip"* (Ghosh, Dey, Jha — DAC 1998) as a Rust
//! library suite.
//!
//! This facade crate re-exports the whole workspace and adds the
//! end-to-end [`flow`]: RTL core → HSCAN insertion → transparency version
//! ladder → gate-level elaboration → combinational ATPG → chip-level test
//! planning and design-space exploration.
//!
//! # Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`cells`] | `socet-cells` | cell library, area reports, DFT cost knobs |
//! | [`rtl`] | `socet-rtl` | RTL netlists: cores, SOCs, bit-sliced connections |
//! | [`gate`] | `socet-gate` | gate netlists, elaboration, logic simulation |
//! | [`atpg`] | `socet-atpg` | stuck-at faults, PODEM, fault simulation |
//! | [`hscan`] | `socet-hscan` | HSCAN scan-chain construction |
//! | [`transparency`] | `socet-transparency` | RCG, path search, core versions |
//! | [`core`] | `socet-core` | CCG, routed schedules, iterative improvement |
//! | [`obs`] | `socet-obs` | spans, counters, recorders, trace exporters |
//! | [`baselines`] | `socet-baselines` | FSCAN-BSCAN, test bus, chip flattening |
//! | [`bist`] | `socet-bist` | memory BIST: LFSR/MISR, March C−, BIST plans |
//! | [`socs`] | `socet-socs` | the paper's System 1 (barcode) and System 2 |
//!
//! # Quickstart
//!
//! ```
//! use socet::flow::prepare_soc;
//! use socet::core::{Explorer, Objective};
//! use socet::cells::DftCosts;
//!
//! // The paper's System 1 with a light ATPG budget for the doc test.
//! let soc = socet::socs::barcode_system();
//! let costs = DftCosts::default();
//! let tpg = socet::atpg::TpgConfig { random_patterns: 16, max_backtracks: 64, ..Default::default() };
//! let prepared = prepare_soc(&soc, &costs, &tpg)?;
//! let explorer = Explorer::new(&soc, &prepared.data, costs);
//! let plan = explorer.optimize(Objective::MinTatUnderArea { max_overhead_cells: 10_000 });
//! assert!(plan.test_application_time() > 0);
//! # Ok::<(), socet::flow::PrepareError>(())
//! ```

pub use socet_atpg as atpg;
pub use socet_baselines as baselines;
pub use socet_bist as bist;
pub use socet_cells as cells;
pub use socet_core as core;
pub use socet_gate as gate;
pub use socet_hscan as hscan;
pub use socet_obs as obs;
pub use socet_rtl as rtl;
pub use socet_socs as socs;
pub use socet_transparency as transparency;
pub use socet_verify as verify;

pub mod flow;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        let _ = crate::cells::DftCosts::default();
        let _ = crate::socs::barcode_system();
    }
}
