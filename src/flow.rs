//! The end-to-end SOCET flow: core-level DFT + test generation, then
//! chip-level planning inputs.
//!
//! This is the "first part" of the paper's two-part methodology — the
//! one-time, per-core work the core provider (hard/firm cores) or the user
//! (soft cores) performs: HSCAN insertion, transparency version synthesis,
//! gate-level elaboration and combinational ATPG. Its output,
//! [`PreparedSoc`], feeds the chip-level
//! [`Explorer`](socet_core::Explorer) directly.
//!
//! # The preparation pipeline
//!
//! The core-level flow is a pure function of `(Core, DftCosts, TpgConfig)`,
//! so [`prepare_soc_with`] content-addresses it:
//!
//! * repeated instances of one core (common in real SOCs — two identical
//!   DSPs, four identical bus bridges) are prepared **once** and the
//!   artifact shared across instances (the in-process memo);
//! * unique cores are prepared in **parallel** across worker threads, with
//!   an index-ordered merge that makes the output bit-identical to the
//!   serial flow for any worker count;
//! * an optional **on-disk artifact store** keyed by the same fingerprint
//!   makes warm re-runs skip the flow entirely; any change to the core
//!   structure, the DFT cost knobs or the ATPG configuration changes the
//!   key and invalidates the entry.
//!
//! Every stage records through the unified observability layer
//! ([`socet::obs`](crate::obs)): the pipeline opens a `prepare` span, each
//! unique core a `prepare_core` span with the `hscan` / `versions` /
//! `elaborate` / `atpg` / store spans nested inside, and the cache counters
//! land in typed [`Counter`](socet_obs::Counter) slots.
//! [`PrepareMetrics`](socet_core::PrepareMetrics) is a view derived from
//! that recorder ([`PrepareMetrics::from_recorder`]); pass a
//! [`SharedRecorder`] through [`PrepareOptions::recorder`] to capture the
//! full trace (`soctool prepare --trace out.json --profile out.folded`).

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use socet_atpg::{decode_test_set, encode_test_set, generate_tests, Coverage, TestSet, TpgConfig};
use socet_cells::{CellLibrary, CodecError, Dec, DftCosts, Enc, Fingerprint, StableHasher};
use socet_core::{CoreTestData, PrepareMetrics};
use socet_gate::codec::{decode_netlist, encode_netlist};
use socet_gate::{elaborate, GateError, GateNetlist};
use socet_hscan::{decode_hscan, encode_hscan, insert_hscan};
use socet_obs::{names, Counter, Recorder, SharedRecorder};
use socet_rtl::{Core, CoreInstanceId, Soc};
use socet_transparency::{decode_versions, encode_versions, synthesize_versions};

/// Per-core artifacts of the SOCET core-level flow for a whole SOC.
#[derive(Debug)]
pub struct PreparedSoc {
    /// Chip-level planning inputs, indexed by core instance (`None` for
    /// memory cores).
    pub data: Vec<Option<CoreTestData>>,
    /// Elaborated gate netlists of the logic cores.
    pub netlists: Vec<Option<GateNetlist>>,
    /// Generated per-core test sets (the precomputed test sequences the
    /// paper assumes each core ships with).
    pub tests: Vec<Option<TestSet>>,
}

impl PreparedSoc {
    /// Merged fault accounting over every logic core: the chip's fault
    /// coverage when every core receives its precomputed test set (SOCET
    /// and FSCAN-BSCAN both achieve this, Table 3).
    ///
    /// Fault populations are counted **per physical instance**: an SOC
    /// carrying two instances of one core contributes that core's fault
    /// list twice, because both physical copies are really tested. The
    /// preparation memo shares the *artifact* across repeated instances,
    /// never the accounting.
    pub fn aggregate_coverage(&self) -> Coverage {
        self.tests
            .iter()
            .flatten()
            .fold(Coverage::default(), |acc, t| acc.merge(&t.coverage))
    }

    /// Original (pre-DFT) chip area in cells: the sum of the logic cores'
    /// elaborated netlists.
    pub fn original_area_cells(&self, lib: &CellLibrary) -> u64 {
        self.netlists
            .iter()
            .flatten()
            .map(|nl| nl.area().cells(lib))
            .sum()
    }

    /// Total HSCAN (core-level DFT) overhead in cells.
    pub fn hscan_overhead_cells(&self, lib: &CellLibrary) -> u64 {
        self.data
            .iter()
            .flatten()
            .map(|d| d.hscan.overhead_cells(lib))
            .sum()
    }

    /// Full-scan vector count per core instance (0 for memory cores), the
    /// input the FSCAN-BSCAN baseline needs.
    pub fn vectors(&self) -> Vec<u64> {
        self.tests
            .iter()
            .map(|t| t.as_ref().map(|t| t.vector_count() as u64).unwrap_or(0))
            .collect()
    }

    /// A design-space explorer over `soc` fed by this prepared data — the
    /// handoff from the per-core flow to chip-level planning. The explorer
    /// keeps one warm evaluation engine, so repeated `evaluate`, `sweep`
    /// and `optimize` calls share its incremental CCG and route cache.
    pub fn explorer<'a>(&'a self, soc: &'a Soc, costs: DftCosts) -> socet_core::Explorer<'a> {
        socet_core::Explorer::new(soc, &self.data, costs)
    }

    /// Merged ATPG-engine counters over every logic core's test
    /// generation. Counted **per physical instance**, like
    /// [`aggregate_coverage`](Self::aggregate_coverage) — render it
    /// directly, or fold it into a [`Recorder`](socet_obs::Recorder) with
    /// [`socet_atpg::AtpgMetrics::record_into`].
    pub fn atpg_stats(&self) -> socet_atpg::AtpgMetrics {
        let mut m = socet_atpg::AtpgMetrics::new();
        for t in self.tests.iter().flatten() {
            m.merge(&t.stats);
        }
        m
    }

    /// HSCAN chain depth per core instance (0 for memory cores), the input
    /// the test-bus baseline needs.
    pub fn depths(&self) -> Vec<u64> {
        self.data
            .iter()
            .map(|d| {
                d.as_ref()
                    .map(|d| d.hscan.sequential_depth() as u64)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// The canonical byte encoding of instance `i`'s prepared artifact, or
    /// `None` for memory cores. Two instances prepared identically encode
    /// to identical bytes — the equality the pipeline's determinism tests
    /// check (the codec is a bijection, so byte equality *is* value
    /// equality).
    pub fn artifact_bytes(&self, i: usize) -> Option<Vec<u8>> {
        let artifact = CoreArtifact {
            data: self.data.get(i)?.clone()?,
            netlist: self.netlists.get(i)?.clone()?,
            tests: self.tests.get(i)?.clone()?,
        };
        let mut e = Enc::new();
        encode_artifact(&artifact, &mut e);
        Some(e.into_bytes())
    }
}

/// A core-level flow failure, pinned to the SOC instance it occurred on.
///
/// [`prepare_soc`] processes instances in declaration order conceptually;
/// whatever the worker count, the error reported is the one the serial
/// flow would have hit first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepareError {
    /// The failing core instance.
    pub core: CoreInstanceId,
    /// The failing instance's name in the SOC.
    pub name: String,
    /// The underlying elaboration failure.
    pub source: GateError,
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "preparing core instance `{}` (#{}) failed: {}",
            self.name,
            self.core.index(),
            self.source
        )
    }
}

impl Error for PrepareError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

/// Knobs of the preparation pipeline. [`Default`] / [`PrepareOptions::new`]
/// mean: auto worker count, no on-disk artifact store, no trace capture.
///
/// The struct is `#[non_exhaustive]`: build it with the chainable
/// constructors so new knobs stop being breaking changes.
///
/// # Examples
///
/// ```
/// use socet::flow::PrepareOptions;
/// let opts = PrepareOptions::new().workers(4).cache_dir("/tmp/socet-cache");
/// assert_eq!(opts.workers, 4);
/// assert!(opts.cache_dir.is_some());
/// assert!(opts.recorder.is_none());
/// ```
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct PrepareOptions {
    /// Worker threads for the fan-out over unique cores; `0` picks
    /// [`std::thread::available_parallelism`]. The output is bit-identical
    /// for every value.
    pub workers: usize,
    /// Directory of the on-disk artifact store; `None` disables it. The
    /// directory is created on first write.
    pub cache_dir: Option<PathBuf>,
    /// Shared recorder the pipeline folds its full event stream (spans and
    /// counters) into; `None` skips the hand-off. Aggregate counters are
    /// always collected either way — this knob only adds trace capture.
    pub recorder: Option<SharedRecorder>,
}

impl PrepareOptions {
    /// The default options: auto worker count, no disk store, no trace.
    pub fn new() -> Self {
        PrepareOptions::default()
    }

    /// Sets the worker-thread count (`0` = auto).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables the on-disk artifact store under `dir`.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Captures the pipeline's trace into `rec` (merged in after the run).
    pub fn recorder(mut self, rec: SharedRecorder) -> Self {
        self.recorder = Some(rec);
        self
    }
}

/// One prepared core: everything the flow derives from
/// `(Core, DftCosts, TpgConfig)`.
#[derive(Debug, Clone)]
struct CoreArtifact {
    data: CoreTestData,
    netlist: GateNetlist,
    tests: TestSet,
}

/// The content hash keying the artifact memo and the on-disk store: the
/// full RTL structure plus every DFT cost knob and ATPG configuration
/// knob. Any input change changes the fingerprint — that is the cache
/// invalidation rule; there is no other one.
pub fn artifact_fingerprint(core: &Core, costs: &DftCosts, tpg: &TpgConfig) -> Fingerprint {
    let mut h = StableHasher::new();
    h.write_str("socet-artifact-v1");
    core.fingerprint_into(&mut h);
    costs.fingerprint_into(&mut h);
    tpg.fingerprint_into(&mut h);
    h.finish()
}

fn encode_artifact(a: &CoreArtifact, e: &mut Enc) {
    encode_netlist(&a.netlist, e);
    encode_hscan(&a.data.hscan, e);
    encode_versions(&a.data.versions, e);
    e.put_usize(a.data.scan_vectors);
    encode_test_set(&a.tests, e);
}

fn decode_artifact(bytes: &[u8]) -> Result<CoreArtifact, CodecError> {
    let mut d = Dec::new(bytes);
    let netlist = decode_netlist(&mut d)?;
    let hscan = decode_hscan(&mut d)?;
    let versions = decode_versions(&mut d)?;
    let scan_vectors = d.get_usize()?;
    let tests = decode_test_set(&mut d)?;
    if !d.is_empty() {
        return Err(CodecError::Corrupt("trailing bytes after artifact"));
    }
    Ok(CoreArtifact {
        data: CoreTestData {
            versions,
            hscan,
            scan_vectors,
        },
        netlist,
        tests,
    })
}

/// On-disk store entry layout: magic, fingerprint echo, length-prefixed
/// payload, payload checksum. The fingerprint echo catches hash-truncated
/// file names; the checksum catches torn writes.
const STORE_MAGIC: &[u8; 4] = b"SCTA";

fn store_path(dir: &Path, fp: Fingerprint) -> PathBuf {
    dir.join(format!("{}.socet", fp.to_hex()))
}

fn checksum(payload: &[u8]) -> Fingerprint {
    let mut h = StableHasher::new();
    h.write_bytes(payload);
    h.finish()
}

/// Loads an artifact from the store; any anomaly — missing file, bad
/// magic, fingerprint mismatch, torn payload, codec failure — is a cache
/// miss, never an error.
fn load_artifact(dir: &Path, fp: Fingerprint) -> Option<CoreArtifact> {
    let bytes = fs::read(store_path(dir, fp)).ok()?;
    let mut d = Dec::new(&bytes);
    if d.get_raw(4).ok()? != STORE_MAGIC {
        return None;
    }
    let hi = d.get_u64().ok()?;
    let lo = d.get_u64().ok()?;
    if (u128::from(hi) << 64 | u128::from(lo)) != fp.0 {
        return None;
    }
    let len = d.get_usize().ok()?;
    if len != d.remaining().checked_sub(16)? {
        return None;
    }
    let payload = d.get_raw(len).ok()?;
    let sum_hi = d.get_u64().ok()?;
    let sum_lo = d.get_u64().ok()?;
    if (u128::from(sum_hi) << 64 | u128::from(sum_lo)) != checksum(payload).0 {
        return None;
    }
    decode_artifact(payload).ok()
}

/// Distinguishes this process's temporary store files from any concurrent
/// writer's (threads within the process disambiguate via the sequence).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Stores an artifact; best-effort (an unwritable cache directory slows
/// the next run down, it does not fail this one). Writes to a temporary
/// sibling and renames so concurrent readers never see a torn entry.
///
/// The temporary name carries the process id and a per-process sequence
/// number: two processes (or threads) racing to store the same fingerprint
/// each rename their *own* fully written file, so the survivor is always a
/// loadable entry. (With a shared `<fp>.tmp` name, one racer could rename
/// the other's half-written file — the checksum hid that as a silent miss.)
fn store_artifact(dir: &Path, fp: Fingerprint, artifact: &CoreArtifact) -> bool {
    let mut payload = Enc::new();
    encode_artifact(artifact, &mut payload);
    let payload = payload.into_bytes();
    let sum = checksum(&payload);
    let mut e = Enc::new();
    e.put_raw(STORE_MAGIC);
    e.put_u64((fp.0 >> 64) as u64);
    e.put_u64(fp.0 as u64);
    e.put_usize(payload.len());
    e.put_raw(&payload);
    e.put_u64((sum.0 >> 64) as u64);
    e.put_u64(sum.0 as u64);
    let write = || -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            "{}.{}.{}.tmp",
            fp.to_hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, e.bytes())?;
        fs::rename(&tmp, store_path(dir, fp)).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    };
    write().is_ok()
}

/// Runs the core-level flow on one unique core, consulting the disk store
/// when configured. Stage wall-times and cache counters land in the
/// thread's installed [`Recorder`]: the `prepare_core` span opened here
/// nests the `hscan` / `versions` / `elaborate` / `atpg` spans the stage
/// crates record themselves, plus the `store_load` / `store_write` spans
/// around disk-store traffic.
fn prepare_unique(
    core: &Core,
    costs: &DftCosts,
    tpg: &TpgConfig,
    cache: Option<(&Path, Fingerprint)>,
) -> Result<CoreArtifact, GateError> {
    let _core_span = socet_obs::span(names::PREPARE_CORE);
    if let Some((dir, fp)) = cache {
        let hit = {
            let _span = socet_obs::span(names::STORE_LOAD);
            load_artifact(dir, fp)
        };
        if let Some(artifact) = hit {
            socet_obs::add(Counter::DiskHits, 1);
            return Ok(artifact);
        }
        socet_obs::add(Counter::DiskMisses, 1);
    }

    let hscan = insert_hscan(core, costs);
    let versions = synthesize_versions(core, &hscan, costs);
    let elab = elaborate(core)?;
    let tests = generate_tests(&elab.netlist, tpg);

    let artifact = CoreArtifact {
        data: CoreTestData {
            versions,
            hscan,
            scan_vectors: tests.vector_count(),
        },
        netlist: elab.netlist,
        tests,
    };
    if let Some((dir, fp)) = cache {
        let _span = socet_obs::span(names::STORE_WRITE);
        if store_artifact(dir, fp, &artifact) {
            socet_obs::add(Counter::DiskWrites, 1);
        }
    }
    Ok(artifact)
}

/// One unique core of the SOC plus the logic instances carrying it.
struct Group<'a> {
    core: &'a Core,
    fp: Fingerprint,
    instances: Vec<usize>,
}

/// Buckets the SOC's logic instances by core content. The `Arc` pointer
/// identity of [`CoreInstance::core`](socet_rtl::CoreInstance) is the fast
/// path; otherwise the fingerprint decides, double-checked by structural
/// equality so a (astronomically unlikely, but cheap to guard) 128-bit
/// collision degrades to an extra preparation instead of wrong data. A
/// colliding core is re-keyed with a salted fingerprint so the disk store
/// stays injective.
fn group_by_core<'a>(soc: &'a Soc, costs: &DftCosts, tpg: &TpgConfig) -> Vec<Group<'a>> {
    let mut groups: Vec<Group<'a>> = Vec::new();
    for (i, inst) in soc.cores().iter().enumerate() {
        if inst.is_memory() {
            continue;
        }
        socet_obs::add(Counter::Instances, 1);
        let core = inst.core();
        if let Some(g) = groups.iter_mut().find(|g| std::ptr::eq(g.core, core)) {
            g.instances.push(i);
            socet_obs::add(Counter::MemoHits, 1);
            continue;
        }
        let mut fp = artifact_fingerprint(core, costs, tpg);
        match groups.iter_mut().find(|g| g.fp == fp) {
            Some(g) if *g.core == *core => {
                g.instances.push(i);
                socet_obs::add(Counter::MemoHits, 1);
                continue;
            }
            Some(_) => {
                let mut salt = 0u64;
                while groups.iter().any(|g| g.fp == fp) {
                    let mut h = StableHasher::new();
                    h.write_str("socet-collision-salt");
                    h.write_u64(salt);
                    h.write_u64((fp.0 >> 64) as u64);
                    h.write_u64(fp.0 as u64);
                    fp = h.finish();
                    salt += 1;
                }
            }
            None => {}
        }
        groups.push(Group {
            core,
            fp,
            instances: vec![i],
        });
    }
    socet_obs::add(Counter::UniqueCores, groups.len() as u64);
    groups
}

/// Runs the core-level flow on one core: HSCAN, version synthesis,
/// elaboration, ATPG.
///
/// # Errors
///
/// Propagates [`GateError`] from elaboration (pathological cores only).
///
/// # Examples
///
/// ```
/// use socet::flow::prepare_core;
/// use socet::cells::DftCosts;
/// use socet::atpg::TpgConfig;
/// let core = socet::socs::gcd_core();
/// let (data, _netlist, tests) = prepare_core(&core, &DftCosts::default(), &TpgConfig::default())?;
/// assert_eq!(data.versions.len(), 3);
/// assert!(tests.coverage.fault_coverage() > 50.0);
/// # Ok::<(), socet::gate::GateError>(())
/// ```
pub fn prepare_core(
    core: &Core,
    costs: &DftCosts,
    tpg: &TpgConfig,
) -> Result<(CoreTestData, GateNetlist, TestSet), GateError> {
    let artifact = prepare_unique(core, costs, tpg, None)?;
    Ok((artifact.data, artifact.netlist, artifact.tests))
}

/// Runs the core-level flow on every logic core of `soc` through the
/// content-addressed pipeline with default options (auto worker count, no
/// disk store).
///
/// # Errors
///
/// Returns the [`PrepareError`] for the first instance (in declaration
/// order) whose elaboration fails — the same instance the serial flow
/// would report.
pub fn prepare_soc(
    soc: &Soc,
    costs: &DftCosts,
    tpg: &TpgConfig,
) -> Result<PreparedSoc, PrepareError> {
    prepare_soc_with(soc, costs, tpg, &PrepareOptions::default()).map(|(p, _)| p)
}

/// [`prepare_soc`] with explicit [`PrepareOptions`], also returning the
/// pipeline's [`PrepareMetrics`].
///
/// The result is bit-identical to the serial, uncached flow for every
/// worker count and cache state: repeated instances share one preparation
/// (the flow is deterministic, so sharing is observationally invisible),
/// parallel workers merge in instance order, and a disk hit decodes to
/// exactly the value that was encoded (the codec is a bijection).
///
/// The returned [`PrepareMetrics`] is a view over a fresh [`Recorder`]
/// that observed the run ([`PrepareMetrics::from_recorder`]); when
/// [`PrepareOptions::recorder`] is set, the recorder itself — spans and
/// all — is folded into the shared handle afterwards.
pub fn prepare_soc_with(
    soc: &Soc,
    costs: &DftCosts,
    tpg: &TpgConfig,
    opts: &PrepareOptions,
) -> Result<(PreparedSoc, PrepareMetrics), PrepareError> {
    let mut rec = Recorder::new();
    let result = prepare_soc_recorded(soc, costs, tpg, opts, &mut rec);
    let metrics = PrepareMetrics::from_recorder(&rec);
    if let Some(shared) = &opts.recorder {
        shared.lock().merge_child(rec);
    }
    result.map(|prepared| (prepared, metrics))
}

/// [`prepare_soc_with`] recording into a caller-owned [`Recorder`]: the
/// run's full event stream — the `prepare` root span, per-core stage
/// spans, cache counters — lands in `rec`, ready for
/// [`Recorder::to_json`] / [`Recorder::to_folded`] or a
/// [`PrepareMetrics::from_recorder`] view.
///
/// # Errors
///
/// Same contract as [`prepare_soc_with`].
pub fn prepare_soc_recorded(
    soc: &Soc,
    costs: &DftCosts,
    tpg: &TpgConfig,
    opts: &PrepareOptions,
    rec: &mut Recorder,
) -> Result<PreparedSoc, PrepareError> {
    let span = rec.begin(names::PREPARE);
    let result = {
        let _sink = rec.install();
        prepare_soc_inner(soc, costs, tpg, opts)
    };
    rec.end(span);
    result
}

/// The pipeline body. Runs with the caller's recorder installed as the
/// thread's sink; parallel workers record into forks of it, adopted back
/// in spawn order so the merged stream is deterministic.
fn prepare_soc_inner(
    soc: &Soc,
    costs: &DftCosts,
    tpg: &TpgConfig,
    opts: &PrepareOptions,
) -> Result<PreparedSoc, PrepareError> {
    let groups = group_by_core(soc, costs, tpg);
    let cache_dir = opts.cache_dir.as_deref();

    let workers = if opts.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.workers
    }
    .min(groups.len())
    .max(1);
    socet_obs::add(Counter::Workers, workers as u64);

    let mut results: Vec<Option<Result<CoreArtifact, GateError>>> = Vec::new();
    results.resize_with(groups.len(), || None);

    if workers <= 1 {
        for (gi, g) in groups.iter().enumerate() {
            let cache = cache_dir.map(|d| (d, g.fp));
            results[gi] = Some(prepare_unique(g.core, costs, tpg, cache));
        }
    } else {
        let chunk = groups.len().div_ceil(workers);
        let indexed: Vec<(usize, &Group)> = groups.iter().enumerate().collect();
        let shards = std::thread::scope(|s| {
            let handles: Vec<_> = indexed
                .chunks(chunk)
                .map(|part| {
                    // Forked on the parent thread so the worker's recorder
                    // shares the parent's epoch and enabledness.
                    let mut rec = socet_obs::fork_local();
                    s.spawn(move || {
                        let out: Vec<(usize, Result<CoreArtifact, GateError>)> = {
                            let _sink = rec.install();
                            part.iter()
                                .map(|(gi, g)| {
                                    let cache = cache_dir.map(|d| (d, g.fp));
                                    (*gi, prepare_unique(g.core, costs, tpg, cache))
                                })
                                .collect()
                        };
                        (out, rec)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("prepare worker panicked"))
                .collect::<Vec<_>>()
        });
        // Deterministic merge: shards in spawn order, groups slotted by
        // index, worker recorders adopted into the caller's in the same
        // order — the serial and parallel event streams aggregate alike.
        for (out, rec) in shards {
            socet_obs::adopt([rec]);
            for (gi, r) in out {
                results[gi] = Some(r);
            }
        }
    }

    // Error semantics match the serial flow: the first instance in
    // declaration order whose group failed is the one reported.
    let mut by_instance: Vec<Option<usize>> = vec![None; soc.cores().len()];
    for (gi, g) in groups.iter().enumerate() {
        for &i in &g.instances {
            by_instance[i] = Some(gi);
        }
    }
    for (i, inst) in soc.cores().iter().enumerate() {
        let Some(gi) = by_instance[i] else { continue };
        if let Some(Err(e)) = results[gi].as_ref() {
            return Err(PrepareError {
                core: CoreInstanceId::from_index(i),
                name: inst.name().to_owned(),
                source: e.clone(),
            });
        }
    }

    let n = soc.cores().len();
    let mut data = Vec::with_capacity(n);
    let mut netlists = Vec::with_capacity(n);
    let mut tests = Vec::with_capacity(n);
    for gi in by_instance {
        match gi {
            Some(gi) => {
                let artifact = results[gi]
                    .as_ref()
                    .and_then(|r| r.as_ref().ok())
                    .expect("errors handled above");
                data.push(Some(artifact.data.clone()));
                netlists.push(Some(artifact.netlist.clone()));
                tests.push(Some(artifact.tests.clone()));
            }
            None => {
                data.push(None);
                netlists.push(None);
                tests.push(None);
            }
        }
    }
    Ok(PreparedSoc {
        data,
        netlists,
        tests,
    })
}

/// The plain serial flow, one [`prepare_core`] per logic instance with no
/// memo, no parallelism and no disk store — the oracle the pipeline's
/// equivalence tests compare against.
///
/// # Errors
///
/// Returns the [`PrepareError`] for the first failing instance.
pub fn prepare_soc_uncached(
    soc: &Soc,
    costs: &DftCosts,
    tpg: &TpgConfig,
) -> Result<PreparedSoc, PrepareError> {
    let n = soc.cores().len();
    let mut data = Vec::with_capacity(n);
    let mut netlists = Vec::with_capacity(n);
    let mut tests = Vec::with_capacity(n);
    for (i, inst) in soc.cores().iter().enumerate() {
        if inst.is_memory() {
            data.push(None);
            netlists.push(None);
            tests.push(None);
            continue;
        }
        let (d, nl, t) = prepare_core(inst.core(), costs, tpg).map_err(|source| PrepareError {
            core: CoreInstanceId::from_index(i),
            name: inst.name().to_owned(),
            source,
        })?;
        data.push(Some(d));
        netlists.push(Some(nl));
        tests.push(Some(t));
    }
    Ok(PreparedSoc {
        data,
        netlists,
        tests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_rtl::SocBuilder;
    use std::sync::Arc;

    fn light_tpg() -> TpgConfig {
        TpgConfig {
            random_patterns: 16,
            max_backtracks: 32,
            ..TpgConfig::default()
        }
    }

    #[test]
    fn gcd_core_prepares_cleanly() {
        let core = socet_socs::gcd_core();
        let tpg = TpgConfig {
            random_patterns: 32,
            max_backtracks: 128,
            ..TpgConfig::default()
        };
        let (data, nl, tests) = prepare_core(&core, &DftCosts::default(), &tpg).unwrap();
        assert_eq!(data.versions.len(), 3);
        assert!(nl.flip_flop_count() > 0);
        assert!(tests.coverage.fault_coverage() > 60.0, "{}", tests.coverage);
        assert_eq!(data.scan_vectors, tests.vector_count());
    }

    #[test]
    fn prepared_system2_has_all_logic_cores() {
        let soc = socet_socs::system2();
        let prepared = prepare_soc(&soc, &DftCosts::default(), &light_tpg()).unwrap();
        assert_eq!(prepared.data.iter().flatten().count(), 3);
        assert!(prepared.aggregate_coverage().total > 0);
        let lib = CellLibrary::generic_08um();
        assert!(prepared.original_area_cells(&lib) > 500);
        assert!(prepared.hscan_overhead_cells(&lib) > 0);
        assert_eq!(prepared.vectors().len(), 3);
    }

    /// A SOC carrying two instances of one shared core plus a memory —
    /// the shape the artifact memo exists for.
    fn twin_soc() -> Soc {
        let gcd = Arc::new(socet_socs::gcd_core());
        let mem = Arc::new(socet_socs::memory_core("ram", 8, 8));
        let port = |n: &str| gcd.find_port(n).unwrap();
        let mut b = SocBuilder::new("twin");
        let x = b.input_pin("X", 12).unwrap();
        let g = b.output_pin("G", 12).unwrap();
        let addr = b.input_pin("Addr", 8).unwrap();
        let a = b.instantiate("gcd_a", Arc::clone(&gcd)).unwrap();
        let c = b.instantiate("gcd_b", Arc::clone(&gcd)).unwrap();
        let m = b.instantiate_memory("ram", Arc::clone(&mem)).unwrap();
        b.connect_pin_to_core(x, a, port("X")).unwrap();
        b.connect_cores(a, port("G"), c, port("Y")).unwrap();
        b.connect_core_to_pin(c, port("G"), g).unwrap();
        b.connect_pin_to_core(addr, m, mem.find_port("Addr").unwrap())
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn repeated_instances_share_one_preparation() {
        let soc = twin_soc();
        let (prepared, m) = prepare_soc_with(
            &soc,
            &DftCosts::default(),
            &light_tpg(),
            &PrepareOptions::default(),
        )
        .unwrap();
        // Counted once, used twice.
        assert_eq!(m.instances, 2);
        assert_eq!(m.unique_cores, 1);
        assert_eq!(m.memo_hits, 1);
        // Both instances carry the same artifact, byte for byte.
        let a = prepared.artifact_bytes(0).unwrap();
        let b = prepared.artifact_bytes(1).unwrap();
        assert_eq!(a, b);
        assert!(prepared.artifact_bytes(2).is_none(), "memory core");
        // ...and identical to what the memo-free serial flow computes.
        let oracle = prepare_soc_uncached(&soc, &DftCosts::default(), &light_tpg()).unwrap();
        assert_eq!(a, oracle.artifact_bytes(0).unwrap());
    }

    #[test]
    fn aggregate_coverage_counts_each_physical_instance() {
        let soc = twin_soc();
        let prepared = prepare_soc(&soc, &DftCosts::default(), &light_tpg()).unwrap();
        let single = prepared.tests[0].as_ref().unwrap().coverage;
        let agg = prepared.aggregate_coverage();
        // Two physical copies of the core: double the population, double
        // the detections — sharing the prepared artifact must not halve
        // the chip-level accounting.
        assert_eq!(agg.total, 2 * single.total);
        assert_eq!(agg.detected, 2 * single.detected);
        assert!(agg.total > 0);
        assert_eq!(agg.fault_coverage(), single.fault_coverage());
    }

    #[test]
    fn structural_twins_behind_different_arcs_still_memoize() {
        // Two separately built (pointer-distinct) but identical cores must
        // fall into one group via the fingerprint + structural check.
        let first = Arc::new(socet_socs::gcd_core());
        let second = Arc::new(socet_socs::gcd_core());
        let port = |n: &str| first.find_port(n).unwrap();
        let mut b = SocBuilder::new("twins");
        let x = b.input_pin("X", 12).unwrap();
        let g = b.output_pin("G", 12).unwrap();
        let a = b.instantiate("a", first.clone()).unwrap();
        let c = b.instantiate("b", second).unwrap();
        b.connect_pin_to_core(x, a, port("X")).unwrap();
        b.connect_cores(a, port("G"), c, port("Y")).unwrap();
        b.connect_core_to_pin(c, port("G"), g).unwrap();
        let soc = b.build().unwrap();
        let (_, m) = prepare_soc_with(
            &soc,
            &DftCosts::default(),
            &light_tpg(),
            &PrepareOptions::default(),
        )
        .unwrap();
        assert_eq!(m.unique_cores, 1);
        assert_eq!(m.memo_hits, 1);
    }

    #[test]
    fn prepare_error_names_the_instance() {
        // No CoreBuilder-constructible core makes `elaborate` return an
        // error today (its failure modes guard builder misuse), so pin the
        // error type's contract directly: Display names the instance, the
        // gate-level cause stays reachable through `Error::source`.
        let e = PrepareError {
            core: CoreInstanceId::from_index(3),
            name: "dsp_1".to_owned(),
            source: GateError::NoOutputs,
        };
        let shown = e.to_string();
        assert!(shown.contains("dsp_1"), "{shown}");
        assert!(shown.contains("#3"), "{shown}");
        assert!(shown.contains("no outputs"), "{shown}");
        let src = std::error::Error::source(&e).expect("source is chained");
        assert_eq!(src.to_string(), GateError::NoOutputs.to_string());
    }

    #[test]
    fn fingerprint_tracks_every_input() {
        let core = socet_socs::gcd_core();
        let costs = DftCosts::default();
        let tpg = light_tpg();
        let base = artifact_fingerprint(&core, &costs, &tpg);
        assert_eq!(base, artifact_fingerprint(&core, &costs, &tpg));
        let other_tpg = TpgConfig {
            random_patterns: tpg.random_patterns + 1,
            ..tpg
        };
        assert_ne!(base, artifact_fingerprint(&core, &costs, &other_tpg));
        let other_costs = DftCosts {
            hscan_test_mux_per_bit: costs.hscan_test_mux_per_bit + 1,
            ..costs
        };
        assert_ne!(base, artifact_fingerprint(&core, &other_costs, &tpg));
        assert_ne!(
            base,
            artifact_fingerprint(&socet_socs::x25_core(), &costs, &tpg)
        );
    }

    #[test]
    fn disk_store_round_trips_and_rejects_anomalies() {
        let dir = std::env::temp_dir().join(format!("socet-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let core = socet_socs::gcd_core();
        let costs = DftCosts::default();
        let tpg = light_tpg();
        let fp = artifact_fingerprint(&core, &costs, &tpg);
        let artifact = prepare_unique(&core, &costs, &tpg, None).unwrap();
        assert!(load_artifact(&dir, fp).is_none(), "cold store");
        assert!(store_artifact(&dir, fp, &artifact));
        let back = load_artifact(&dir, fp).expect("warm store");
        let (mut ea, mut eb) = (Enc::new(), Enc::new());
        encode_artifact(&artifact, &mut ea);
        encode_artifact(&back, &mut eb);
        assert_eq!(ea.bytes(), eb.bytes(), "decode inverts encode exactly");
        // A torn write (truncated payload) must read as a miss.
        let path = store_path(&dir, fp);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        assert!(load_artifact(&dir, fp).is_none(), "torn entry is a miss");
        // A different fingerprint never resolves to this entry.
        fs::write(&path, &bytes).unwrap();
        assert!(load_artifact(&dir, Fingerprint(fp.0 ^ 1)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interleaved_writers_leave_a_loadable_entry() {
        // Two writers racing to store the same fingerprint (two processes
        // or two threads warming one cache) must each publish their own
        // fully written temporary — whichever rename lands last, the entry
        // loads. With a shared `<fp>.tmp` name, writer B could rename
        // writer A's half-written file into place.
        let dir = std::env::temp_dir().join(format!("socet-store-race-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let core = socet_socs::gcd_core();
        let costs = DftCosts::default();
        let tpg = light_tpg();
        let fp = artifact_fingerprint(&core, &costs, &tpg);
        let artifact = prepare_unique(&core, &costs, &tpg, None).unwrap();
        for round in 0..8 {
            std::thread::scope(|s| {
                let a = s.spawn(|| store_artifact(&dir, fp, &artifact));
                let b = s.spawn(|| store_artifact(&dir, fp, &artifact));
                assert!(a.join().unwrap(), "round {round}: writer a");
                assert!(b.join().unwrap(), "round {round}: writer b");
            });
            assert!(
                load_artifact(&dir, fp).is_some(),
                "round {round}: surviving entry must load"
            );
        }
        // No stranded temporaries: every tmp either renamed or was removed.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stranded temporaries: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn serial_and_parallel_runs_report_identical_counters() {
        // Satellite pin: the recorder merge charges worker counters the
        // same way the serial flow does — aggregate counters must not
        // depend on the fan-out (only `workers` itself differs by design,
        // so compare it explicitly).
        let soc = socet_socs::system2();
        let costs = DftCosts::default();
        let tpg = light_tpg();
        let (_, serial) =
            prepare_soc_with(&soc, &costs, &tpg, &PrepareOptions::new().workers(1)).unwrap();
        let (_, parallel) =
            prepare_soc_with(&soc, &costs, &tpg, &PrepareOptions::new().workers(3)).unwrap();
        assert_eq!(serial.workers, 1);
        assert_eq!(parallel.workers, 3, "system2 has 3 unique logic cores");
        assert_eq!(serial.instances, parallel.instances);
        assert_eq!(serial.unique_cores, parallel.unique_cores);
        assert_eq!(serial.memo_hits, parallel.memo_hits);
        assert_eq!(serial.disk_hits, parallel.disk_hits);
        assert_eq!(serial.disk_misses, parallel.disk_misses);
        assert_eq!(serial.disk_writes, parallel.disk_writes);
    }
}
