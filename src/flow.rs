//! The end-to-end SOCET flow: core-level DFT + test generation, then
//! chip-level planning inputs.
//!
//! This is the "first part" of the paper's two-part methodology — the
//! one-time, per-core work the core provider (hard/firm cores) or the user
//! (soft cores) performs: HSCAN insertion, transparency version synthesis,
//! gate-level elaboration and combinational ATPG. Its output,
//! [`PreparedSoc`], feeds the chip-level
//! [`Explorer`](socet_core::Explorer) directly.

use socet_atpg::{generate_tests, Coverage, TestSet, TpgConfig};
use socet_cells::{CellLibrary, DftCosts};
use socet_core::CoreTestData;
use socet_gate::{elaborate, GateError, GateNetlist};
use socet_hscan::insert_hscan;
use socet_rtl::{Core, Soc};
use socet_transparency::synthesize_versions;

/// Per-core artifacts of the SOCET core-level flow for a whole SOC.
#[derive(Debug)]
pub struct PreparedSoc {
    /// Chip-level planning inputs, indexed by core instance (`None` for
    /// memory cores).
    pub data: Vec<Option<CoreTestData>>,
    /// Elaborated gate netlists of the logic cores.
    pub netlists: Vec<Option<GateNetlist>>,
    /// Generated per-core test sets (the precomputed test sequences the
    /// paper assumes each core ships with).
    pub tests: Vec<Option<TestSet>>,
}

impl PreparedSoc {
    /// Merged fault accounting over every logic core: the chip's fault
    /// coverage when every core receives its precomputed test set (SOCET
    /// and FSCAN-BSCAN both achieve this, Table 3).
    pub fn aggregate_coverage(&self) -> Coverage {
        self.tests
            .iter()
            .flatten()
            .fold(Coverage::default(), |acc, t| acc.merge(&t.coverage))
    }

    /// Original (pre-DFT) chip area in cells: the sum of the logic cores'
    /// elaborated netlists.
    pub fn original_area_cells(&self, lib: &CellLibrary) -> u64 {
        self.netlists
            .iter()
            .flatten()
            .map(|nl| nl.area().cells(lib))
            .sum()
    }

    /// Total HSCAN (core-level DFT) overhead in cells.
    pub fn hscan_overhead_cells(&self, lib: &CellLibrary) -> u64 {
        self.data
            .iter()
            .flatten()
            .map(|d| d.hscan.overhead_cells(lib))
            .sum()
    }

    /// Full-scan vector count per core instance (0 for memory cores), the
    /// input the FSCAN-BSCAN baseline needs.
    pub fn vectors(&self) -> Vec<u64> {
        self.tests
            .iter()
            .map(|t| t.as_ref().map(|t| t.vector_count() as u64).unwrap_or(0))
            .collect()
    }

    /// A design-space explorer over `soc` fed by this prepared data — the
    /// handoff from the per-core flow to chip-level planning. The explorer
    /// keeps one warm evaluation engine, so repeated `evaluate`, `sweep`
    /// and `optimize` calls share its incremental CCG and route cache.
    pub fn explorer<'a>(&'a self, soc: &'a Soc, costs: DftCosts) -> socet_core::Explorer<'a> {
        socet_core::Explorer::new(soc, &self.data, costs)
    }

    /// Merged ATPG-engine counters over every logic core's test
    /// generation, ready for [`socet_core::Metrics::merge_atpg`].
    pub fn atpg_stats(&self) -> socet_atpg::AtpgMetrics {
        let mut m = socet_atpg::AtpgMetrics::new();
        for t in self.tests.iter().flatten() {
            m.merge(&t.stats);
        }
        m
    }

    /// HSCAN chain depth per core instance (0 for memory cores), the input
    /// the test-bus baseline needs.
    pub fn depths(&self) -> Vec<u64> {
        self.data
            .iter()
            .map(|d| {
                d.as_ref()
                    .map(|d| d.hscan.sequential_depth() as u64)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Runs the core-level flow on one core: HSCAN, version synthesis,
/// elaboration, ATPG.
///
/// # Errors
///
/// Propagates [`GateError`] from elaboration (pathological cores only).
///
/// # Examples
///
/// ```
/// use socet::flow::prepare_core;
/// use socet::cells::DftCosts;
/// use socet::atpg::TpgConfig;
/// let core = socet::socs::gcd_core();
/// let (data, _netlist, tests) = prepare_core(&core, &DftCosts::default(), &TpgConfig::default())?;
/// assert_eq!(data.versions.len(), 3);
/// assert!(tests.coverage.fault_coverage() > 50.0);
/// # Ok::<(), socet::gate::GateError>(())
/// ```
pub fn prepare_core(
    core: &Core,
    costs: &DftCosts,
    tpg: &TpgConfig,
) -> Result<(CoreTestData, GateNetlist, TestSet), GateError> {
    let hscan = insert_hscan(core, costs);
    let versions = synthesize_versions(core, &hscan, costs);
    let elab = elaborate(core)?;
    let tests = generate_tests(&elab.netlist, tpg);
    let data = CoreTestData {
        versions,
        hscan,
        scan_vectors: tests.vector_count(),
    };
    Ok((data, elab.netlist, tests))
}

/// Runs [`prepare_core`] on every logic core of `soc`.
///
/// # Errors
///
/// Propagates the first elaboration failure.
pub fn prepare_soc(soc: &Soc, costs: &DftCosts, tpg: &TpgConfig) -> Result<PreparedSoc, GateError> {
    let n = soc.cores().len();
    let mut data = Vec::with_capacity(n);
    let mut netlists = Vec::with_capacity(n);
    let mut tests = Vec::with_capacity(n);
    for inst in soc.cores() {
        if inst.is_memory() {
            data.push(None);
            netlists.push(None);
            tests.push(None);
            continue;
        }
        let (d, nl, t) = prepare_core(inst.core(), costs, tpg)?;
        data.push(Some(d));
        netlists.push(Some(nl));
        tests.push(Some(t));
    }
    Ok(PreparedSoc {
        data,
        netlists,
        tests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_core_prepares_cleanly() {
        let core = socet_socs::gcd_core();
        let tpg = TpgConfig {
            random_patterns: 32,
            max_backtracks: 128,
            ..TpgConfig::default()
        };
        let (data, nl, tests) = prepare_core(&core, &DftCosts::default(), &tpg).unwrap();
        assert_eq!(data.versions.len(), 3);
        assert!(nl.flip_flop_count() > 0);
        assert!(tests.coverage.fault_coverage() > 60.0, "{}", tests.coverage);
        assert_eq!(data.scan_vectors, tests.vector_count());
    }

    #[test]
    fn prepared_system2_has_all_logic_cores() {
        let soc = socet_socs::system2();
        let tpg = TpgConfig {
            random_patterns: 16,
            max_backtracks: 32,
            ..TpgConfig::default()
        };
        let prepared = prepare_soc(&soc, &DftCosts::default(), &tpg).unwrap();
        assert_eq!(prepared.data.iter().flatten().count(), 3);
        assert!(prepared.aggregate_coverage().total > 0);
        let lib = CellLibrary::generic_08um();
        assert!(prepared.original_area_cells(&lib) > 500);
        assert!(prepared.hscan_overhead_cells(&lib) > 0);
        assert_eq!(prepared.vectors().len(), 3);
    }
}
