//! Typed errors of the chip-level evaluation engine.
//!
//! The original scheduler documented its failure modes as panics ("Panics
//! if a logic core lacks test data or its choice is out of range"). Design-
//! space exploration evaluates thousands of points, often over user-supplied
//! or generated inputs; a bad point must come back as a value the explorer
//! can report or skip, not a process abort. The panicking entry points
//! ([`schedule`](crate::schedule::schedule), `Explorer::evaluate`) survive
//! as thin wrappers for callers who want the old contract.

use socet_rtl::{CoreInstanceId, PortId};
use socet_transparency::SearchError;
use std::fmt;

/// Everything that can go wrong building, routing, or assembling one
/// design point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A logic core has no [`CoreTestData`](crate::plan::CoreTestData)
    /// entry (the slot is `None` or the data slice is too short).
    MissingCoreData {
        /// The core whose data is missing.
        core: CoreInstanceId,
    },
    /// A core's selected version index exceeds its ladder.
    ChoiceOutOfRange {
        /// The core whose choice is invalid.
        core: CoreInstanceId,
        /// The offending version index.
        choice: usize,
        /// The ladder height actually available.
        versions: usize,
    },
    /// The choice vector does not cover every core instance.
    ChoiceLengthMismatch {
        /// `soc.cores().len()`.
        expected: usize,
        /// `choice.len()`.
        got: usize,
    },
    /// A core port expected in the CCG is absent — only reachable if the
    /// graph was built for a different SOC than it is now used with.
    PortNotInCcg {
        /// The core owning the port.
        core: CoreInstanceId,
        /// The missing port.
        port: PortId,
    },
    /// Transparency version synthesis failed for a core (no input or no
    /// output ports).
    Transparency(SearchError),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::MissingCoreData { core } => {
                write!(f, "logic core {core} lacks test data")
            }
            ScheduleError::ChoiceOutOfRange {
                core,
                choice,
                versions,
            } => write!(
                f,
                "version choice {choice} for core {core} is out of range (ladder has {versions})"
            ),
            ScheduleError::ChoiceLengthMismatch { expected, got } => write!(
                f,
                "choice vector covers {got} cores but the SOC has {expected}"
            ),
            ScheduleError::PortNotInCcg { core, port } => {
                write!(f, "port {port} of core {core} is not a CCG node")
            }
            ScheduleError::Transparency(e) => write!(f, "transparency synthesis failed: {e}"),
        }
    }
}

impl From<SearchError> for ScheduleError {
    fn from(e: SearchError) -> Self {
        ScheduleError::Transparency(e)
    }
}

impl std::error::Error for ScheduleError {}
