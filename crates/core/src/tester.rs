//! Tester-program generation: the per-cycle pin schedule behind an
//! episode's `vectors × per_vector + tail` arithmetic.
//!
//! A routed [`CoreEpisode`] says *when* each core input's data must be in
//! place relative to its vector slot; the tester works backwards from that:
//! a value arriving through a transparency route of latency `a` must be
//! presented at the chip pin `a` cycles earlier. This module expands an
//! episode into that explicit drive program — the artifact an ATE would
//! actually execute — and its invariants are strong enough to catch
//! scheduling bugs (every vector of every input is presented exactly once,
//! inside its own slot, never before the episode starts).

use crate::plan::CoreEpisode;
use socet_rtl::{PortId, Soc};
use std::fmt;

/// One pin-presentation action of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveAction {
    /// Cycle (from episode start) at which the tester presents the data.
    pub cycle: u64,
    /// Which test vector (0-based) the data belongs to.
    pub vector: u64,
    /// The core-under-test input port the data is destined for.
    pub target_input: PortId,
    /// Cycles the data spends in flight through transparency paths.
    pub transit: u32,
}

/// A tester program for one episode.
#[derive(Debug, Clone)]
pub struct TesterProgram {
    /// All drive actions, sorted by cycle then port.
    pub drives: Vec<DriveAction>,
    /// Total program length in cycles (equals the episode's test time).
    pub length: u64,
}

impl fmt::Display for TesterProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tester program: {} drives over {} cycles",
            self.drives.len(),
            self.length
        )
    }
}

/// Expands `episode` into its tester program.
///
/// Slot `v` of the episode spans
/// `[v·per_vector, (v+1)·per_vector)`; data for an input with arrival `a`
/// is presented at the pins `a` cycles before its slot ends, i.e. at
/// `(v+1)·per_vector − a`.
///
/// # Examples
///
/// ```no_run
/// use socet_core::tester::tester_program;
/// # fn demo(soc: &socet_rtl::Soc, ep: &socet_core::CoreEpisode) {
/// let program = tester_program(soc, ep);
/// assert_eq!(program.length, ep.test_time());
/// # }
/// ```
pub fn tester_program(soc: &Soc, episode: &CoreEpisode) -> TesterProgram {
    let _ = soc; // reserved for pin-name annotation
    let per = u64::from(episode.per_vector_cycles);
    let mut drives =
        Vec::with_capacity(episode.hscan_vectors as usize * episode.input_arrivals.len());
    for v in 0..episode.hscan_vectors {
        let slot_end = (v + 1) * per;
        for (port, arrival) in &episode.input_arrivals {
            drives.push(DriveAction {
                cycle: slot_end - u64::from(*arrival).min(slot_end),
                vector: v,
                target_input: *port,
                transit: *arrival,
            });
        }
    }
    drives.sort_by_key(|d| (d.cycle, d.target_input.index(), d.vector));
    TesterProgram {
        drives,
        length: episode.test_time(),
    }
}

/// Checks the program's structural invariants; returns a violation
/// description, or `None` when clean. Used by tests and available to
/// downstream tooling as a sanity gate.
pub fn validate_program(episode: &CoreEpisode, program: &TesterProgram) -> Option<String> {
    let per = u64::from(episode.per_vector_cycles);
    let expected = episode.hscan_vectors as usize * episode.input_arrivals.len();
    if program.drives.len() != expected {
        return Some(format!(
            "expected {expected} drives, found {}",
            program.drives.len()
        ));
    }
    for d in &program.drives {
        if d.vector >= episode.hscan_vectors {
            return Some(format!("vector {} out of range", d.vector));
        }
        let slot_end = (d.vector + 1) * per;
        if d.cycle + u64::from(d.transit) != slot_end && d.cycle != 0 {
            return Some(format!(
                "drive at cycle {} + transit {} misses slot end {}",
                d.cycle, d.transit, slot_end
            ));
        }
        if d.cycle > program.length {
            return Some(format!("drive at {} beyond program end", d.cycle));
        }
    }
    // Exactly one drive per (vector, input).
    let mut seen = std::collections::HashSet::new();
    for d in &program.drives {
        if !seen.insert((d.vector, d.target_input)) {
            return Some(format!(
                "duplicate drive for vector {} input {}",
                d.vector, d.target_input
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CoreTestData;
    use crate::schedule::schedule;
    use socet_cells::DftCosts;
    use socet_hscan::insert_hscan;
    use socet_rtl::{CoreBuilder, Direction, SocBuilder};
    use socet_transparency::synthesize_versions;
    use std::sync::Arc;

    fn chain_plan() -> (socet_rtl::Soc, crate::plan::DesignPoint) {
        let mut b = CoreBuilder::new("buf");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_reg_to_reg(r1, r2).unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        let core = Arc::new(b.build().unwrap());
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_cores(u0, o, u1, i).unwrap();
        sb.connect_core_to_pin(u1, o, po).unwrap();
        let soc = sb.build().unwrap();
        let costs = DftCosts::default();
        let hscan = insert_hscan(&core, &costs);
        let td = CoreTestData {
            versions: synthesize_versions(&core, &hscan, &costs),
            hscan,
            scan_vectors: 7,
        };
        let data = vec![Some(td.clone()), Some(td)];
        let plan = schedule(&soc, &data, &[0, 0], &costs);
        (soc, plan)
    }

    #[test]
    fn program_validates_for_every_episode() {
        let (soc, plan) = chain_plan();
        for ep in &plan.episodes {
            let program = tester_program(&soc, ep);
            assert_eq!(program.length, ep.test_time());
            assert_eq!(validate_program(ep, &program), None);
        }
    }

    #[test]
    fn embedded_core_drives_lead_their_slots() {
        let (soc, plan) = chain_plan();
        // u1's input arrives through u0 (2 cycles): its drives land 2
        // cycles before each slot end.
        let ep = &plan.episodes[1];
        let program = tester_program(&soc, ep);
        let per = u64::from(ep.per_vector_cycles);
        for d in &program.drives {
            assert_eq!(d.transit, 2);
            assert_eq!(d.cycle + 2, (d.vector + 1) * per);
        }
    }

    #[test]
    fn drives_are_sorted_and_unique() {
        let (soc, plan) = chain_plan();
        let program = tester_program(&soc, &plan.episodes[0]);
        for w in program.drives.windows(2) {
            assert!(
                (w[0].cycle, w[0].target_input.index(), w[0].vector)
                    < (w[1].cycle, w[1].target_input.index(), w[1].vector)
            );
        }
    }
}
