//! The core connectivity graph (CCG) of §5 of the paper.
//!
//! Nodes are chip PIs and POs plus every logic core's input and output
//! ports; edges are the chip-level interconnect (zero latency) and the
//! transparency paths of each core's *selected version* (their latency is
//! the edge cost). Transparency edges carry *resources* — the RCG edges the
//! transfer occupies plus the source port itself — which the scheduler
//! reserves over time intervals, reproducing the paper's "reserve the edges
//! for the cycles in which they will be used".

use crate::error::ScheduleError;
use crate::plan::CoreTestData;
use socet_rtl::{ChipPinId, CoreInstanceId, Direction, PortId, Soc, SocEndpoint};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// A node of the CCG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcgNode {
    /// A chip primary input.
    Pi(ChipPinId),
    /// A chip primary output.
    Po(ChipPinId),
    /// An input port of a logic core.
    CoreIn(CoreInstanceId, PortId),
    /// An output port of a logic core.
    CoreOut(CoreInstanceId, PortId),
}

impl fmt::Display for CcgNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcgNode::Pi(p) => write!(f, "PI:{p}"),
            CcgNode::Po(p) => write!(f, "PO:{p}"),
            CcgNode::CoreIn(c, p) => write!(f, "{c}.in:{p}"),
            CcgNode::CoreOut(c, p) => write!(f, "{c}.out:{p}"),
        }
    }
}

/// A resource a transparency transfer occupies for its duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// An RCG edge inside a core (identified by its index).
    RcgEdge(CoreInstanceId, u32),
    /// A core input port: it can present only one value stream at a time.
    InputPort(CoreInstanceId, PortId),
}

/// What realizes a CCG edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcgEdgeKind {
    /// A chip-level net: free, instantaneous, conflict-free. `net` is the
    /// index of the [`SocNet`](socet_rtl::SocNet) behind it.
    Interconnect {
        /// Index into [`Soc::nets`](socet_rtl::Soc::nets).
        net: usize,
    },
    /// A transparency path of `core`'s selected version (`path` indexes the
    /// version's path list).
    Transparency {
        /// The core the data passes through.
        core: CoreInstanceId,
        /// Index of the path within the selected version.
        path: usize,
    },
}

/// One CCG edge.
#[derive(Debug, Clone)]
pub struct CcgEdge {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Transfer latency in cycles.
    pub latency: u32,
    /// Realization.
    pub kind: CcgEdgeKind,
    /// Resources occupied while the transfer is in flight.
    pub resources: Vec<Resource>,
}

/// The core connectivity graph for one version choice.
///
/// Edges are laid out canonically: one contiguous *group* of transparency
/// edges per logic core (in [`Soc::logic_cores`] order), then every
/// interconnect edge. [`Ccg::step_core`] exploits the grouping to patch a
/// single core's version in place — the inner move of the §5.2 iterative-
/// improvement loop and of a lexicographic sweep, where consecutive points
/// differ in one core — instead of rebuilding the whole graph.
#[derive(Debug, Clone)]
pub struct Ccg {
    nodes: Vec<CcgNode>,
    index: HashMap<CcgNode, usize>,
    edges: Vec<CcgEdge>,
    out_edges: Vec<Vec<usize>>,
    pis: Vec<usize>,
    pos: Vec<usize>,
    /// Per logic core, the range of its transparency-edge group in `edges`.
    trans_ranges: Vec<(CoreInstanceId, Range<usize>)>,
}

impl Ccg {
    /// Builds the CCG of `soc` with each logic core using
    /// `choice[core.index()]` of its version ladder.
    ///
    /// `data[i]` must be `Some` for every logic core and may be `None` for
    /// memory cores (which take no part in test routing).
    ///
    /// # Panics
    ///
    /// Panics if a logic core lacks test data or its choice is out of
    /// range.
    pub fn build(soc: &Soc, data: &[Option<CoreTestData>], choice: &[usize]) -> Ccg {
        Ccg::try_build(soc, data, choice).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`Ccg::build`]: missing test data, out-of-range and
    /// too-short choices come back as a [`ScheduleError`].
    pub fn try_build(
        soc: &Soc,
        data: &[Option<CoreTestData>],
        choice: &[usize],
    ) -> Result<Ccg, ScheduleError> {
        if choice.len() < soc.cores().len() {
            return Err(ScheduleError::ChoiceLengthMismatch {
                expected: soc.cores().len(),
                got: choice.len(),
            });
        }
        let mut ccg = Ccg {
            nodes: Vec::new(),
            index: HashMap::new(),
            edges: Vec::new(),
            out_edges: Vec::new(),
            pis: Vec::new(),
            pos: Vec::new(),
            trans_ranges: Vec::new(),
        };
        // Pins, then every core port: the node set depends only on the SOC,
        // never on the version choice, so incremental patches only ever
        // touch edges.
        for pin in soc.primary_inputs() {
            let i = ccg.intern(CcgNode::Pi(pin));
            ccg.pis.push(i);
        }
        for pin in soc.primary_outputs() {
            let i = ccg.intern(CcgNode::Po(pin));
            ccg.pos.push(i);
        }
        for cid in soc.logic_cores() {
            let core = soc.core(cid).core();
            for p in core.input_ports() {
                ccg.intern(CcgNode::CoreIn(cid, p));
            }
            for p in core.output_ports() {
                ccg.intern(CcgNode::CoreOut(cid, p));
            }
        }
        // Transparency edges, one contiguous group per core.
        for cid in soc.logic_cores() {
            let start = ccg.edges.len();
            let group = ccg.core_group_edges(cid, data, choice[cid.index()])?;
            ccg.edges.extend(group);
            ccg.trans_ranges.push((cid, start..ccg.edges.len()));
        }
        // Interconnect from the SOC nets (skipping memory-core endpoints).
        for (ni, net) in soc.nets().iter().enumerate() {
            let from = ccg.net_node(soc, &net.src);
            let to = ccg.net_node(soc, &net.dst);
            if let (Some(from), Some(to)) = (from, to) {
                ccg.edges.push(CcgEdge {
                    from,
                    to,
                    latency: 0,
                    kind: CcgEdgeKind::Interconnect { net: ni },
                    resources: Vec::new(),
                });
            }
        }
        ccg.reindex();
        Ok(ccg)
    }

    /// Re-points `core`'s transparency-edge group at version `new_choice`,
    /// leaving every other edge untouched. Returns the number of edges
    /// written.
    ///
    /// The patched graph is structurally identical to a fresh
    /// [`Ccg::try_build`] with the updated choice — same edge order, same
    /// adjacency lists — so routing over it is bit-for-bit deterministic
    /// either way (the `incremental_patching_equals_full_build` property
    /// test pins this).
    pub fn step_core(
        &mut self,
        core: CoreInstanceId,
        data: &[Option<CoreTestData>],
        new_choice: usize,
    ) -> Result<usize, ScheduleError> {
        let ri = self
            .trans_ranges
            .iter()
            .position(|(c, _)| *c == core)
            .ok_or(ScheduleError::MissingCoreData { core })?;
        let group = self.core_group_edges(core, data, new_choice)?;
        let written = group.len();
        let range = self.trans_ranges[ri].1.clone();
        let delta = written as isize - range.len() as isize;
        self.edges.splice(range.clone(), group);
        self.trans_ranges[ri].1 = range.start..range.start + written;
        for (_, r) in self.trans_ranges.iter_mut().skip(ri + 1) {
            *r = ((r.start as isize + delta) as usize)..((r.end as isize + delta) as usize);
        }
        self.reindex();
        Ok(written)
    }

    /// The transparency edges of `core` under version `choice`, in the
    /// canonical (version pair) order shared by full builds and patches.
    fn core_group_edges(
        &self,
        cid: CoreInstanceId,
        data: &[Option<CoreTestData>],
        choice: usize,
    ) -> Result<Vec<CcgEdge>, ScheduleError> {
        let td = data
            .get(cid.index())
            .and_then(|d| d.as_ref())
            .ok_or(ScheduleError::MissingCoreData { core: cid })?;
        let version = td
            .versions
            .get(choice)
            .ok_or(ScheduleError::ChoiceOutOfRange {
                core: cid,
                choice,
                versions: td.versions.len(),
            })?;
        let mut group = Vec::new();
        for (input, output, latency, path) in version.pairs() {
            let from =
                self.find(CcgNode::CoreIn(cid, input))
                    .ok_or(ScheduleError::PortNotInCcg {
                        core: cid,
                        port: input,
                    })?;
            let to =
                self.find(CcgNode::CoreOut(cid, output))
                    .ok_or(ScheduleError::PortNotInCcg {
                        core: cid,
                        port: output,
                    })?;
            let mut resources: Vec<Resource> = version.paths()[path]
                .edges
                .iter()
                .map(|e| Resource::RcgEdge(cid, e.index() as u32))
                .collect();
            resources.push(Resource::InputPort(cid, input));
            group.push(CcgEdge {
                from,
                to,
                latency,
                kind: CcgEdgeKind::Transparency { core: cid, path },
                resources,
            });
        }
        Ok(group)
    }

    /// Rebuilds the adjacency lists from `edges`. Both build and patch end
    /// here, which is what makes patched and fresh graphs structurally
    /// identical.
    fn reindex(&mut self) {
        for v in &mut self.out_edges {
            v.clear();
        }
        for (ei, e) in self.edges.iter().enumerate() {
            self.out_edges[e.from].push(ei);
        }
    }

    /// The range of `core`'s transparency-edge group in [`Ccg::edges`].
    pub fn core_edge_range(&self, core: CoreInstanceId) -> Option<Range<usize>> {
        self.trans_ranges
            .iter()
            .find(|(c, _)| *c == core)
            .map(|(_, r)| r.clone())
    }

    fn net_node(&mut self, soc: &Soc, ep: &SocEndpoint) -> Option<usize> {
        match *ep {
            SocEndpoint::Pin { pin, .. } => {
                let node = match soc.pin(pin).direction() {
                    Direction::In => CcgNode::Pi(pin),
                    Direction::Out => CcgNode::Po(pin),
                };
                Some(self.intern(node))
            }
            SocEndpoint::CorePort { core, port, .. } => {
                if soc.core(core).is_memory() {
                    return None;
                }
                let dir = soc.core(core).core().port(port).direction();
                let node = match dir {
                    Direction::In => CcgNode::CoreIn(core, port),
                    Direction::Out => CcgNode::CoreOut(core, port),
                };
                Some(self.intern(node))
            }
        }
    }

    fn intern(&mut self, node: CcgNode) -> usize {
        if let Some(&i) = self.index.get(&node) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(node);
        self.index.insert(node, i);
        self.out_edges.push(Vec::new());
        i
    }

    /// All nodes; indices are stable.
    pub fn nodes(&self) -> &[CcgNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[CcgEdge] {
        &self.edges
    }

    /// Indices of edges leaving `node`.
    pub fn edges_from(&self, node: usize) -> &[usize] {
        &self.out_edges[node]
    }

    /// Node index of `node`, if present.
    pub fn find(&self, node: CcgNode) -> Option<usize> {
        self.index.get(&node).copied()
    }

    /// Renders the CCG as Graphviz DOT — the Fig. 9 picture for any SOC.
    /// Interconnect edges are thin, transparency edges carry their latency
    /// as the label.
    ///
    /// # Examples
    ///
    /// See the `custom_core` example; the output starts with
    /// `digraph ccg`.
    pub fn to_dot(&self, soc: &Soc) -> String {
        use std::fmt::Write as _;
        let name = |n: &CcgNode| match n {
            CcgNode::Pi(p) => format!("PI {}", soc.pin(*p).name()),
            CcgNode::Po(p) => format!("PO {}", soc.pin(*p).name()),
            CcgNode::CoreIn(c, p) => format!(
                "{}.{}",
                soc.core(*c).name(),
                soc.core(*c).core().port(*p).name()
            ),
            CcgNode::CoreOut(c, p) => format!(
                "{}.{}",
                soc.core(*c).name(),
                soc.core(*c).core().port(*p).name()
            ),
        };
        let mut out = String::from("digraph ccg {\n  rankdir=LR;\n");
        for n in &self.nodes {
            let shape = match n {
                CcgNode::Pi(_) => "invtriangle",
                CcgNode::Po(_) => "triangle",
                _ => "ellipse",
            };
            let _ = writeln!(out, "  \"{}\" [shape={shape}];", name(n));
        }
        for e in &self.edges {
            match e.kind {
                CcgEdgeKind::Interconnect { .. } => {
                    let _ = writeln!(
                        out,
                        "  \"{}\" -> \"{}\" [color=gray];",
                        name(&self.nodes[e.from]),
                        name(&self.nodes[e.to])
                    );
                }
                CcgEdgeKind::Transparency { .. } => {
                    let _ = writeln!(
                        out,
                        "  \"{}\" -> \"{}\" [label=\"{}\", penwidth=2];",
                        name(&self.nodes[e.from]),
                        name(&self.nodes[e.to]),
                        e.latency
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Indices of the PI nodes.
    pub fn pi_nodes(&self) -> &[usize] {
        &self.pis
    }

    /// Indices of the PO nodes.
    pub fn po_nodes(&self) -> &[usize] {
        &self.pos
    }
}

impl fmt::Display for Ccg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ccg: {} nodes, {} edges",
            self.nodes.len(),
            self.edges.len()
        )?;
        for e in &self.edges {
            writeln!(
                f,
                "  {} -> {} ({} cycles)",
                self.nodes[e.from], self.nodes[e.to], e.latency
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CoreTestData;
    use socet_cells::DftCosts;
    use socet_hscan::insert_hscan;
    use socet_rtl::{CoreBuilder, SocBuilder};
    use socet_transparency::synthesize_versions;
    use std::sync::Arc;

    fn buf_core(name: &str) -> Arc<socet_rtl::Core> {
        let mut b = CoreBuilder::new(name);
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        Arc::new(b.build().unwrap())
    }

    fn data_for(core: &socet_rtl::Core) -> CoreTestData {
        let costs = DftCosts::default();
        let hscan = insert_hscan(core, &costs);
        let versions = synthesize_versions(core, &hscan, &costs);
        CoreTestData {
            versions,
            hscan,
            scan_vectors: 10,
        }
    }

    #[test]
    fn two_core_chain_builds_expected_graph() {
        let core = buf_core("buf");
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_cores(u0, o, u1, i).unwrap();
        sb.connect_core_to_pin(u1, o, po).unwrap();
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&core)), Some(data_for(&core))];
        let ccg = Ccg::build(&soc, &data, &[0, 0]);
        // Nodes: 1 PI + 1 PO + 2 cores x 2 ports.
        assert_eq!(ccg.nodes().len(), 6);
        // Edges: 3 interconnect + 2 transparency (one per core, i->o).
        let trans = ccg
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, CcgEdgeKind::Transparency { .. }))
            .count();
        assert_eq!(trans, 2);
        let inter = ccg.edges().len() - trans;
        assert_eq!(inter, 3);
        // Every transparency edge reserves its source port.
        for e in ccg.edges() {
            if let CcgEdgeKind::Transparency { core, .. } = e.kind {
                assert!(e
                    .resources
                    .iter()
                    .any(|r| matches!(r, Resource::InputPort(c, _) if *c == core)));
            }
        }
    }

    #[test]
    fn memory_cores_are_invisible() {
        let core = buf_core("buf");
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let ram = sb.instantiate_memory("ram", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_core_to_pin(u0, o, po).unwrap();
        sb.connect_cores(u0, o, ram, i).unwrap();
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&core)), None];
        let ccg = Ccg::build(&soc, &data, &[0, 0]);
        // RAM contributes no nodes: 1 PI + 1 PO + 2 core ports.
        assert_eq!(ccg.nodes().len(), 4);
        assert!(ccg.nodes().iter().all(
            |n| !matches!(n, CcgNode::CoreIn(c, _) | CcgNode::CoreOut(c, _) if c.index() == 1)
        ));
    }

    #[test]
    fn version_choice_changes_edge_latency() {
        // A 2-deep pipeline core: v1 latency 2, v3 latency 1.
        let mut b = CoreBuilder::new("pipe");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_reg_to_reg(r1, r2).unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        let core = Arc::new(b.build().unwrap());
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_core_to_pin(u0, o, po).unwrap();
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&core))];
        let lat_of = |choice: usize| {
            let ccg = Ccg::build(&soc, &data, &[choice]);
            ccg.edges()
                .iter()
                .filter(|e| matches!(e.kind, CcgEdgeKind::Transparency { .. }))
                .map(|e| e.latency)
                .min()
                .unwrap()
        };
        assert_eq!(lat_of(0), 2);
        assert_eq!(lat_of(2), 1);
    }
}
