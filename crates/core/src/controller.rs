//! Test-controller synthesis: the "small finite-state machine" §5.2 adds
//! to the chip to sequence the test.
//!
//! The controller is a cycle counter plus one window comparator per
//! episode: output `test_en_<core>` is high exactly while that core's
//! episode runs, and `done` rises when the whole test is over. These are
//! the signals that drive each core's clock gate and transparency-mode
//! controls. [`build_controller`] emits real gates (a `socet-gate`
//! netlist), so the controller can be simulated, area-costed against the
//! `DftCosts::test_controller_cells` estimate, and folded into the chip.

use crate::plan::DesignPoint;
use socet_cells::CellLibrary;
use socet_gate::{GateError, GateKind, GateNetlist, GateNetlistBuilder, SignalId};
use socet_rtl::{CoreInstanceId, Soc};

/// A synthesized test controller.
#[derive(Debug)]
pub struct TestController {
    /// The controller netlist: inputs `[reset]`, outputs one
    /// `test_en_<core>` per episode followed by `done`.
    pub netlist: GateNetlist,
    /// Episode windows, `(core, start, end)`, in output order.
    pub windows: Vec<(CoreInstanceId, u64, u64)>,
    /// Counter width in bits.
    pub counter_bits: u16,
}

impl TestController {
    /// Controller area in cells.
    pub fn area_cells(&self, lib: &CellLibrary) -> u64 {
        self.netlist.area().cells(lib)
    }
}

/// Builds the controller for `plan`'s serial episode order.
///
/// # Errors
///
/// Propagates [`GateError`] (never expected for well-formed plans).
///
/// # Examples
///
/// See the `controller_asserts_windows` test: the generated gates are
/// simulated cycle by cycle and every enable is checked against its
/// episode window.
pub fn build_controller(soc: &Soc, plan: &DesignPoint) -> Result<TestController, GateError> {
    let mut windows = Vec::new();
    let mut clock = 0u64;
    for ep in &plan.episodes {
        let start = clock;
        clock += ep.test_time();
        windows.push((ep.core, start, clock));
    }
    let total = clock.max(1);
    let counter_bits = (64 - total.leading_zeros()).max(1) as u16;

    let mut b = GateNetlistBuilder::new("test_controller");
    let reset = b.input("reset");
    // Ripple counter with synchronous reset, saturating at `total`:
    // q' = reset ? 0 : (done ? q : q + 1). Without the saturation the
    // counter would wrap 2^bits - total cycles after `done` and re-assert
    // the first episode's enable (found by the replay oracle's
    // cycle-accurate controller test).
    let qs: Vec<SignalId> = (0..counter_bits).map(|_| b.dff_deferred()).collect();
    let nreset = b.gate1(GateKind::Not, reset);
    let running = {
        let done = build_ge_const(&mut b, &qs, total);
        b.gate1(GateKind::Not, done)
    };
    let mut carry = running;
    for &q in &qs {
        let sum = b.gate2(GateKind::Xor2, q, carry);
        let next_carry = b.gate2(GateKind::And2, q, carry);
        let gated = b.gate2(GateKind::And2, sum, nreset);
        b.set_dff_input(q, gated);
        carry = next_carry;
    }
    // Window comparators.
    for (core, start, end) in &windows {
        let ge_start = build_ge_const(&mut b, &qs, *start);
        let ge_end = build_ge_const(&mut b, &qs, *end);
        let lt_end = b.gate1(GateKind::Not, ge_end);
        let en = b.gate2(GateKind::And2, ge_start, lt_end);
        b.output(&format!("test_en_{}", soc.core(*core).name()), en);
    }
    let done = build_ge_const(&mut b, &qs, total);
    b.output("done", done);
    let netlist = b.build()?;
    Ok(TestController {
        netlist,
        windows,
        counter_bits,
    })
}

/// Combinational `x >= K` against a constant, MSB-first recursion:
/// at a 1-bit of K the counter bit must be 1 *and* the lower bits must
/// carry the comparison; at a 0-bit a 1 wins outright.
fn build_ge_const(b: &mut GateNetlistBuilder, bits: &[SignalId], k: u64) -> SignalId {
    let mut acc = b.const1(); // equal-prefix base case: x >= 0
    for (i, &bit) in bits.iter().enumerate() {
        let k_bit = k >> i & 1 != 0;
        acc = if k_bit {
            b.gate2(GateKind::And2, bit, acc)
        } else {
            b.gate2(GateKind::Or2, bit, acc)
        };
    }
    // Counter values above 2^bits never occur, but a constant beyond the
    // range must read as "never reached".
    if k >> bits.len() != 0 {
        return b.const0();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CoreTestData;
    use crate::schedule::schedule;
    use socet_cells::DftCosts;
    use socet_gate::CombSim;
    use socet_hscan::insert_hscan;
    use socet_rtl::{CoreBuilder, Direction, SocBuilder};
    use socet_transparency::synthesize_versions;
    use std::sync::Arc;

    fn tiny_plan() -> (socet_rtl::Soc, DesignPoint) {
        let mut b = CoreBuilder::new("buf");
        let i = b.port("i", Direction::In, 4).unwrap();
        let o = b.port("o", Direction::Out, 4).unwrap();
        let r = b.register("r", 4).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = Arc::new(b.build().unwrap());
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 4).unwrap();
        let po = sb.output_pin("po", 4).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_cores(u0, o, u1, i).unwrap();
        sb.connect_core_to_pin(u1, o, po).unwrap();
        let soc = sb.build().unwrap();
        let costs = DftCosts::default();
        let hscan = insert_hscan(&core, &costs);
        let td = CoreTestData {
            versions: synthesize_versions(&core, &hscan, &costs),
            hscan,
            scan_vectors: 3, // tiny TAT so the simulation stays fast
        };
        let data = vec![Some(td.clone()), Some(td)];
        let plan = schedule(&soc, &data, &[0, 0], &costs);
        (soc, plan)
    }

    #[test]
    fn controller_asserts_windows() {
        let (soc, plan) = tiny_plan();
        let ctrl = build_controller(&soc, &plan).unwrap();
        let total: u64 = plan.test_application_time();
        let sim = CombSim::new(&ctrl.netlist);
        let n_ff = ctrl.netlist.flip_flop_count();
        let mut state = vec![false; n_ff];
        // Cycle 0 state is all zeros (as after reset).
        for cycle in 0..total + 3 {
            let (outs, next) = sim.run_with_state(&[false], &state);
            for (k, (core, start, end)) in ctrl.windows.iter().enumerate() {
                let want = cycle >= *start && cycle < *end;
                assert_eq!(
                    outs[k], want,
                    "cycle {cycle}: enable for {core} (window {start}..{end})"
                );
            }
            let done = outs[ctrl.windows.len()];
            assert_eq!(done, cycle >= total, "cycle {cycle}: done");
            state = next;
        }
    }

    #[test]
    fn reset_holds_the_counter_at_zero() {
        let (soc, plan) = tiny_plan();
        let ctrl = build_controller(&soc, &plan).unwrap();
        let sim = CombSim::new(&ctrl.netlist);
        let mut state = vec![true; ctrl.netlist.flip_flop_count()];
        // With reset asserted the next state is zero regardless.
        let (_, next) = sim.run_with_state(&[true], &state);
        assert!(next.iter().all(|&b| !b));
        state = next;
        let (outs, _) = sim.run_with_state(&[false], &state);
        // At cycle 0 the first episode is active.
        assert!(outs[0]);
    }

    #[test]
    fn controller_area_is_modest() {
        let (soc, plan) = tiny_plan();
        let ctrl = build_controller(&soc, &plan).unwrap();
        let lib = CellLibrary::generic_08um();
        // "This usually consists of a small finite-state machine": a couple
        // of dozen cells for a two-episode plan.
        let cells = ctrl.area_cells(&lib);
        assert!(cells > 5 && cells < 120, "{cells} cells");
        assert!(ctrl.counter_bits >= 4);
    }
}
