//! Human-readable test-plan reports: the "sign-off sheet" a test engineer
//! would read before committing a design point to silicon.

use crate::plan::{CoreTestData, DesignPoint};
use socet_cells::CellLibrary;
use socet_rtl::Soc;
use std::fmt::Write as _;

/// Renders a complete, multi-section report for one design point:
/// the chosen versions, per-episode cycle accounting, port arrival tables,
/// system-level test muxes and the overhead breakdown.
///
/// # Examples
///
/// ```
/// use socet_core::{schedule, report::render_plan, CoreTestData};
/// use socet_cells::DftCosts;
/// use socet_hscan::insert_hscan;
/// use socet_transparency::synthesize_versions;
/// # use socet_rtl::{CoreBuilder, Direction, SocBuilder};
/// # use std::sync::Arc;
/// # let mut b = CoreBuilder::new("buf");
/// # let i = b.port("i", Direction::In, 8)?;
/// # let o = b.port("o", Direction::Out, 8)?;
/// # let r = b.register("r", 8)?;
/// # b.connect_port_to_reg(i, r)?;
/// # b.connect_reg_to_port(r, o)?;
/// # let core = Arc::new(b.build()?);
/// # let mut sb = SocBuilder::new("chip");
/// # let pi = sb.input_pin("pi", 8)?;
/// # let po = sb.output_pin("po", 8)?;
/// # let u0 = sb.instantiate("u0", core.clone())?;
/// # sb.connect_pin_to_core(pi, u0, i)?;
/// # sb.connect_core_to_pin(u0, o, po)?;
/// # let soc = sb.build()?;
/// let costs = DftCosts::default();
/// let hscan = insert_hscan(&core, &costs);
/// let data = vec![Some(CoreTestData {
///     versions: synthesize_versions(&core, &hscan, &costs),
///     hscan,
///     scan_vectors: 10,
/// })];
/// let plan = schedule(&soc, &data, &[0], &costs);
/// let text = render_plan(&soc, &data, &plan);
/// assert!(text.contains("test plan for soc chip"));
/// assert!(text.contains("global test application time"));
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
pub fn render_plan(soc: &Soc, data: &[Option<CoreTestData>], plan: &DesignPoint) -> String {
    let lib = CellLibrary::generic_08um();
    let mut out = String::new();
    let _ = writeln!(out, "test plan for {}", soc);
    let _ = writeln!(out, "================================================");

    // Section 1: chosen versions.
    let _ = writeln!(out, "\ncore versions:");
    for cid in soc.logic_cores() {
        let inst = soc.core(cid);
        let Some(td) = data[cid.index()].as_ref() else {
            continue;
        };
        let v = &td.versions[plan.choice[cid.index()]];
        let _ = writeln!(
            out,
            "  {:<14} {:<10} (+{} cells transparency, +{} cells HSCAN, depth {}, {} vectors)",
            inst.name(),
            v.name(),
            v.overhead_cells(&lib),
            td.hscan.overhead_cells(&lib),
            td.hscan.sequential_depth(),
            td.scan_vectors,
        );
    }

    // Section 2: episodes.
    let _ = writeln!(out, "\ntest episodes (sequential):");
    let mut clock: u64 = 0;
    for ep in &plan.episodes {
        let inst = soc.core(ep.core);
        let start = clock;
        clock += ep.test_time();
        let _ = writeln!(
            out,
            "  [{start:>8} .. {clock:>8}) {:<14} {} vectors x {} cycles + {} tail",
            inst.name(),
            ep.hscan_vectors,
            ep.per_vector_cycles,
            ep.tail_cycles
        );
        for (p, t) in &ep.input_arrivals {
            let _ = writeln!(
                out,
                "      control {:<12} ready at cycle {t} of each vector slot",
                inst.core().port(*p).name()
            );
        }
        for (p, t) in &ep.output_arrivals {
            let _ = writeln!(
                out,
                "      observe {:<12} lands {t} cycle(s) after the slot",
                inst.core().port(*p).name()
            );
        }
    }

    // Section 3: system muxes.
    if plan.system_muxes.is_empty() {
        let _ = writeln!(out, "\nsystem-level test muxes: none");
    } else {
        let _ = writeln!(out, "\nsystem-level test muxes:");
        for m in &plan.system_muxes {
            let inst = soc.core(m.core);
            let _ = writeln!(
                out,
                "  {:<14} {:<12} {} ({} bits)",
                inst.name(),
                inst.core().port(m.port).name(),
                if m.controls_input {
                    "controlled from a PI"
                } else {
                    "observed at a PO"
                },
                m.width
            );
        }
    }

    // Section 4: interconnect coverage.
    let inter = crate::interconnect::interconnect_report(soc, plan);
    let _ = writeln!(out, "\n{inter}");

    // Section 5: totals.
    let _ = writeln!(out, "\ntotals:");
    let _ = writeln!(
        out,
        "  chip-level DFT overhead      : {} cells ({})",
        plan.overhead_cells(&lib),
        plan.chip_overhead
    );
    let _ = writeln!(
        out,
        "  global test application time : {} cycles",
        plan.test_application_time()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::schedule;
    use socet_cells::DftCosts;
    use socet_hscan::insert_hscan;
    use socet_rtl::{CoreBuilder, Direction, SocBuilder};
    use socet_transparency::synthesize_versions;
    use std::sync::Arc;

    fn tiny() -> (Soc, Vec<Option<CoreTestData>>) {
        let mut b = CoreBuilder::new("buf");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = Arc::new(b.build().unwrap());
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_cores(u0, o, u1, i).unwrap();
        sb.connect_core_to_pin(u1, o, po).unwrap();
        let soc = sb.build().unwrap();
        let costs = DftCosts::default();
        let hscan = insert_hscan(&core, &costs);
        let td = CoreTestData {
            versions: synthesize_versions(&core, &hscan, &costs),
            hscan,
            scan_vectors: 10,
        };
        (soc, vec![Some(td.clone()), Some(td)])
    }

    #[test]
    fn report_contains_all_sections() {
        let (soc, data) = tiny();
        let plan = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        let text = render_plan(&soc, &data, &plan);
        for needle in [
            "core versions:",
            "test episodes (sequential):",
            "system-level test muxes",
            "global test application time",
            "u0",
            "u1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn episode_windows_are_contiguous() {
        let (soc, data) = tiny();
        let plan = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        let text = render_plan(&soc, &data, &plan);
        // The second episode starts where the first ends.
        let t0 = plan.episodes[0].test_time();
        assert!(text.contains(&format!("[{:>8} .. ", 0)));
        assert!(text.contains(&format!("[{t0:>8} .. ")), "{text}");
    }
}
