//! Observability for the evaluation engine.
//!
//! Design-space exploration spends its time in three places — building (or
//! patching) the CCG, reservation-aware routing, and plan assembly — and
//! the interesting efficiency questions ("how many Dijkstra relaxations per
//! point?", "how often does routing fall back to a system mux?", "how much
//! of the graph did incremental patching actually rebuild?") are invisible
//! from the outside. [`Metrics`] is a plain counter struct every stage
//! increments; the [`Scheduler`](crate::schedule::Scheduler) owns one, the
//! [`Explorer`](crate::explore::Explorer) aggregates across evaluations,
//! and `soctool report --stats` / `fig10_design_space` print it.
//!
//! Since the unified observability layer (`socet_obs`, re-exported as
//! [`crate::obs`]), these structs are **views**: every stage records typed
//! counters and spans into a [`Recorder`](socet_obs::Recorder), and
//! [`Metrics::from_recorder`] / [`PrepareMetrics::from_recorder`] /
//! [`AtpgMetrics::from_recorder`] derive the familiar shapes from the one
//! event stream. The ad-hoc merge helpers survive as thin shims (some
//! deprecated) so downstream code keeps compiling.

use socet_atpg::AtpgMetrics;
use socet_obs::{names, Counter, Recorder};
use std::fmt;
use std::time::Duration;

/// Counters and stage wall-times of one core-preparation pipeline run
/// (`socet::flow::prepare_soc`): how many physical instances were requested,
/// how many unique cores actually had to be prepared, and where each
/// artifact came from — computed fresh, shared through the in-process memo,
/// or loaded from the on-disk store.
///
/// Stage times are summed across workers, so under parallel preparation
/// they exceed the wall-clock `total_time` — that gap *is* the parallel
/// speedup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrepareMetrics {
    /// Core instances in the SOC (memory cores included).
    pub instances: u64,
    /// Distinct logic cores prepared (the memo collapses repeats).
    pub unique_cores: u64,
    /// Instances served by the in-process memo instead of a fresh run.
    pub memo_hits: u64,
    /// Unique cores loaded from the on-disk artifact store.
    pub disk_hits: u64,
    /// Unique cores looked up on disk and not found (or found corrupt).
    pub disk_misses: u64,
    /// Artifacts written to the on-disk store this run.
    pub disk_writes: u64,
    /// Worker threads used for the unique-core fan-out.
    pub workers: u64,
    /// Wall time in HSCAN insertion, summed across workers.
    pub hscan_time: Duration,
    /// Wall time in transparency-version synthesis, summed across workers.
    pub versions_time: Duration,
    /// Wall time in gate-level elaboration, summed across workers.
    pub elaborate_time: Duration,
    /// Wall time in combinational ATPG, summed across workers.
    pub atpg_time: Duration,
    /// Wall time in artifact store I/O (read + decode + encode + write).
    pub io_time: Duration,
    /// End-to-end wall time of the pipeline run.
    pub total_time: Duration,
}

impl PrepareMetrics {
    /// A zeroed instance.
    pub fn new() -> Self {
        PrepareMetrics::default()
    }

    /// The view of one recorder's preparation counters and stage spans:
    /// counts come from the typed counter slots, stage times from the
    /// exact per-name span aggregates (`io_time` is store load + store
    /// write, `total_time` the enclosing `prepare` span).
    pub fn from_recorder(rec: &Recorder) -> Self {
        PrepareMetrics {
            instances: rec.counter(Counter::Instances),
            unique_cores: rec.counter(Counter::UniqueCores),
            memo_hits: rec.counter(Counter::MemoHits),
            disk_hits: rec.counter(Counter::DiskHits),
            disk_misses: rec.counter(Counter::DiskMisses),
            disk_writes: rec.counter(Counter::DiskWrites),
            workers: rec.counter(Counter::Workers),
            hscan_time: rec.span_total(names::HSCAN),
            versions_time: rec.span_total(names::VERSIONS),
            elaborate_time: rec.span_total(names::ELABORATE),
            atpg_time: rec.span_total(names::ATPG),
            io_time: rec.span_total(names::STORE_LOAD) + rec.span_total(names::STORE_WRITE),
            total_time: rec.span_total(names::PREPARE),
        }
    }

    /// Folds `other` into `self` — used to aggregate across pipeline runs
    /// (counters and times add; `workers` keeps the widest fan-out seen).
    #[deprecated(
        since = "0.1.0",
        note = "aggregate through socet_obs::Recorder::merge_child and derive \
                the view with PrepareMetrics::from_recorder"
    )]
    pub fn merge(&mut self, other: &PrepareMetrics) {
        self.instances += other.instances;
        self.unique_cores += other.unique_cores;
        self.memo_hits += other.memo_hits;
        self.disk_hits += other.disk_hits;
        self.disk_misses += other.disk_misses;
        self.disk_writes += other.disk_writes;
        self.workers = self.workers.max(other.workers);
        self.hscan_time += other.hscan_time;
        self.versions_time += other.versions_time;
        self.elaborate_time += other.elaborate_time;
        self.atpg_time += other.atpg_time;
        self.io_time += other.io_time;
        self.total_time += other.total_time;
    }
}

impl fmt::Display for PrepareMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "prepare pipeline stats:")?;
        writeln!(
            f,
            "  instances              : {} ({} unique cores, {} workers)",
            self.instances, self.unique_cores, self.workers
        )?;
        writeln!(f, "  memo hits              : {}", self.memo_hits)?;
        writeln!(
            f,
            "  artifact cache         : {} disk hits, {} disk misses, {} disk writes",
            self.disk_hits, self.disk_misses, self.disk_writes
        )?;
        writeln!(
            f,
            "  stage times            : hscan {}, versions {}, elaborate {}, atpg {}, io {}",
            fmt_time(self.hscan_time),
            fmt_time(self.versions_time),
            fmt_time(self.elaborate_time),
            fmt_time(self.atpg_time),
            fmt_time(self.io_time)
        )?;
        write!(
            f,
            "  total wall time        : {}",
            fmt_time(self.total_time)
        )
    }
}

/// Counters and stage wall-times accumulated across evaluations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Design points evaluated (successful `Scheduler::evaluate` calls).
    pub evaluations: u64,
    /// CCGs built from scratch.
    pub ccg_full_builds: u64,
    /// Incremental per-core patches applied instead of full rebuilds.
    pub ccg_incremental_patches: u64,
    /// Edges written while building or patching CCGs (a full build counts
    /// every edge; a patch counts only the stepped core's group).
    pub ccg_edges_rebuilt: u64,
    /// Routing requests issued (one per core port per evaluation).
    pub route_attempts: u64,
    /// Core episodes served from the route cache (a core's routes do not
    /// depend on its own version choice, so sweeps revisit them often).
    pub route_cache_hits: u64,
    /// Edge relaxations performed inside Dijkstra.
    pub dijkstra_relaxations: u64,
    /// Ports no route could reach, resolved with a system-level test mux.
    pub system_mux_fallbacks: u64,
    /// Wall time spent building/patching CCGs.
    pub build_time: Duration,
    /// Wall time spent routing.
    pub route_time: Duration,
    /// Wall time spent assembling design points (overhead accounting,
    /// sorting).
    pub assemble_time: Duration,
    /// Counters of the ATPG engines run on behalf of this flow (all zero
    /// when no test generation happened).
    pub atpg: AtpgMetrics,
    /// Counters of the core-preparation pipeline (all zero when no
    /// preparation happened in this flow).
    pub prepare: PrepareMetrics,
}

impl Metrics {
    /// A zeroed instance.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The view of one recorder's full event stream: engine counters and
    /// stage spans, with the embedded ATPG and preparation blocks derived
    /// from the same recorder.
    pub fn from_recorder(rec: &Recorder) -> Self {
        Metrics {
            evaluations: rec.counter(Counter::Evaluations),
            ccg_full_builds: rec.counter(Counter::CcgFullBuilds),
            ccg_incremental_patches: rec.counter(Counter::CcgIncrementalPatches),
            ccg_edges_rebuilt: rec.counter(Counter::CcgEdgesRebuilt),
            route_attempts: rec.counter(Counter::RouteAttempts),
            route_cache_hits: rec.counter(Counter::RouteCacheHits),
            dijkstra_relaxations: rec.counter(Counter::DijkstraRelaxations),
            system_mux_fallbacks: rec.counter(Counter::SystemMuxFallbacks),
            build_time: rec.span_total(names::BUILD),
            route_time: rec.span_total(names::ROUTE),
            assemble_time: rec.span_total(names::ASSEMBLE),
            atpg: AtpgMetrics::from_recorder(rec),
            prepare: PrepareMetrics::from_recorder(rec),
        }
    }

    /// Folds `other` into `self` — used to aggregate per-worker metrics
    /// after a parallel sweep.
    pub fn merge(&mut self, other: &Metrics) {
        self.evaluations += other.evaluations;
        self.ccg_full_builds += other.ccg_full_builds;
        self.ccg_incremental_patches += other.ccg_incremental_patches;
        self.ccg_edges_rebuilt += other.ccg_edges_rebuilt;
        self.route_attempts += other.route_attempts;
        self.route_cache_hits += other.route_cache_hits;
        self.dijkstra_relaxations += other.dijkstra_relaxations;
        self.system_mux_fallbacks += other.system_mux_fallbacks;
        self.build_time += other.build_time;
        self.route_time += other.route_time;
        self.assemble_time += other.assemble_time;
        self.atpg.merge(&other.atpg);
        self.merge_prepare_fields(&other.prepare);
    }

    /// Folds one ATPG run's counters (e.g. a
    /// [`TestSet`](socet_atpg::TestSet)'s `stats`) into this flow's totals.
    #[deprecated(
        since = "0.1.0",
        note = "record through a socet_obs::Recorder (AtpgMetrics::record_into \
                or AtpgMetrics::publish) and derive with Metrics::from_recorder"
    )]
    pub fn merge_atpg(&mut self, stats: &AtpgMetrics) {
        self.atpg.merge(stats);
    }

    /// Folds one preparation pipeline run's counters into this flow's
    /// totals.
    #[deprecated(
        since = "0.1.0",
        note = "aggregate through socet_obs::Recorder::merge_child and derive \
                the view with Metrics::from_recorder"
    )]
    pub fn merge_prepare(&mut self, stats: &PrepareMetrics) {
        self.merge_prepare_fields(stats);
    }

    fn merge_prepare_fields(&mut self, stats: &PrepareMetrics) {
        let p = &mut self.prepare;
        p.instances += stats.instances;
        p.unique_cores += stats.unique_cores;
        p.memo_hits += stats.memo_hits;
        p.disk_hits += stats.disk_hits;
        p.disk_misses += stats.disk_misses;
        p.disk_writes += stats.disk_writes;
        p.workers = p.workers.max(stats.workers);
        p.hscan_time += stats.hscan_time;
        p.versions_time += stats.versions_time;
        p.elaborate_time += stats.elaborate_time;
        p.atpg_time += stats.atpg_time;
        p.io_time += stats.io_time;
        p.total_time += stats.total_time;
    }
}

fn fmt_time(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{:.3} s", us as f64 / 1e6)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "evaluation engine stats:")?;
        writeln!(f, "  evaluations            : {}", self.evaluations)?;
        writeln!(
            f,
            "  ccg builds             : {} full, {} incremental patches",
            self.ccg_full_builds, self.ccg_incremental_patches
        )?;
        writeln!(f, "  ccg edges rebuilt      : {}", self.ccg_edges_rebuilt)?;
        writeln!(f, "  route attempts         : {}", self.route_attempts)?;
        writeln!(f, "  route cache hits       : {}", self.route_cache_hits)?;
        writeln!(
            f,
            "  dijkstra relaxations   : {}",
            self.dijkstra_relaxations
        )?;
        writeln!(
            f,
            "  system-mux fallbacks   : {}",
            self.system_mux_fallbacks
        )?;
        write!(
            f,
            "  stage times            : build {}, route {}, assemble {}",
            fmt_time(self.build_time),
            fmt_time(self.route_time),
            fmt_time(self.assemble_time)
        )?;
        if self.atpg != AtpgMetrics::default() {
            write!(f, "\n{}", self.atpg)?;
        }
        if self.prepare != PrepareMetrics::default() {
            write!(f, "\n{}", self.prepare)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_counter() {
        let mut a = Metrics {
            evaluations: 1,
            ccg_full_builds: 2,
            ccg_incremental_patches: 3,
            ccg_edges_rebuilt: 4,
            route_attempts: 5,
            route_cache_hits: 11,
            dijkstra_relaxations: 6,
            system_mux_fallbacks: 7,
            build_time: Duration::from_micros(8),
            route_time: Duration::from_micros(9),
            assemble_time: Duration::from_micros(10),
            atpg: AtpgMetrics {
                blocks_simulated: 12,
                ..AtpgMetrics::default()
            },
            prepare: PrepareMetrics::default(),
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.evaluations, 2);
        assert_eq!(a.ccg_edges_rebuilt, 8);
        assert_eq!(a.system_mux_fallbacks, 14);
        assert_eq!(a.route_time, Duration::from_micros(18));
        assert_eq!(a.atpg.blocks_simulated, 24);
    }

    #[test]
    fn views_derive_from_one_recorder() {
        let mut rec = Recorder::new();
        rec.record(Counter::Evaluations, 3);
        rec.record(Counter::RouteAttempts, 7);
        rec.record(Counter::Instances, 4);
        rec.record(Counter::UniqueCores, 2);
        rec.record(Counter::Workers, 8);
        rec.record(Counter::BlocksSimulated, 5);
        let b = rec.begin(names::BUILD);
        rec.end(b);
        let h = rec.begin(names::HSCAN);
        rec.end(h);

        let m = Metrics::from_recorder(&rec);
        assert_eq!(m.evaluations, 3);
        assert_eq!(m.route_attempts, 7);
        assert_eq!(m.build_time, rec.span_total(names::BUILD));
        // The embedded blocks derive from the same event stream.
        assert_eq!(m.atpg.blocks_simulated, 5);
        assert_eq!(m.prepare.instances, 4);
        assert_eq!(m.prepare.unique_cores, 2);
        assert_eq!(m.prepare.workers, 8);
        assert_eq!(m.prepare.hscan_time, rec.span_total(names::HSCAN));
        assert_eq!(
            PrepareMetrics::from_recorder(&rec),
            m.prepare,
            "both views read the same slots"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn merge_atpg_folds_engine_counters() {
        let mut m = Metrics::new();
        m.merge_atpg(&AtpgMetrics {
            cone_gate_evals: 5,
            fill_mask_events: 1,
            ..AtpgMetrics::default()
        });
        m.merge_atpg(&AtpgMetrics {
            cone_gate_evals: 7,
            ..AtpgMetrics::default()
        });
        assert_eq!(m.atpg.cone_gate_evals, 12);
        assert_eq!(m.atpg.fill_mask_events, 1);
        // The ATPG block only renders once counters are nonzero.
        assert!(!Metrics::new().to_string().contains("atpg engine stats"));
        assert!(m.to_string().contains("atpg engine stats"));
    }

    #[test]
    fn display_names_every_counter() {
        let m = Metrics::new();
        let s = m.to_string();
        for needle in [
            "evaluations",
            "ccg builds",
            "relaxations",
            "system-mux",
            "stage times",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn prepare_metrics_merge_and_render() {
        let mut a = PrepareMetrics {
            instances: 4,
            unique_cores: 2,
            memo_hits: 2,
            disk_hits: 1,
            disk_misses: 1,
            disk_writes: 1,
            workers: 2,
            hscan_time: Duration::from_micros(1),
            versions_time: Duration::from_micros(2),
            elaborate_time: Duration::from_micros(3),
            atpg_time: Duration::from_micros(4),
            io_time: Duration::from_micros(5),
            total_time: Duration::from_micros(6),
        };
        let b = PrepareMetrics { workers: 8, ..a };
        a.merge(&b);
        assert_eq!(a.instances, 8);
        assert_eq!(a.memo_hits, 4);
        assert_eq!(a.disk_hits, 2);
        assert_eq!(a.workers, 8, "merge keeps the widest fan-out");
        assert_eq!(a.total_time, Duration::from_micros(12));
        // The CI cache-smoke step greps for "<n> disk hits" with n > 0.
        assert!(a.to_string().contains("2 disk hits"), "{a}");
    }

    #[test]
    #[allow(deprecated)]
    fn prepare_block_renders_only_when_nonzero() {
        let mut m = Metrics::new();
        assert!(!m.to_string().contains("prepare pipeline stats"));
        m.merge_prepare(&PrepareMetrics {
            instances: 3,
            ..PrepareMetrics::default()
        });
        assert!(m.to_string().contains("prepare pipeline stats"));
        assert!(m.to_string().contains("0 disk hits"));
    }
}
