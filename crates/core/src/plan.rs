//! Data types of the chip-level test plan: per-core test data, design
//! points, episodes and system-level test muxes.

use socet_cells::{AreaReport, CellLibrary};
use socet_hscan::HscanResult;
use socet_rtl::{CoreInstanceId, PortId};
use socet_transparency::CoreVersion;
use std::fmt;

/// Everything the chip-level planner needs to know about one core, produced
/// by the core provider (hard/firm cores) or the user (soft cores) — the
/// "one-time cost" of §1 of the paper.
#[derive(Debug, Clone)]
pub struct CoreTestData {
    /// The version ladder (minimum area first).
    pub versions: Vec<CoreVersion>,
    /// The HSCAN result: chains, depth, core-level overhead.
    pub hscan: HscanResult,
    /// Precomputed full-scan (combinational) vector count for the core.
    pub scan_vectors: usize,
}

impl CoreTestData {
    /// HSCAN test length for this core: each combinational vector costs
    /// `depth` shift cycles plus one apply cycle.
    pub fn hscan_vectors(&self) -> usize {
        self.hscan.test_length(self.scan_vectors)
    }
}

/// A system-level test multiplexer connecting a core port directly to a
/// chip pin, the fallback when no transparency route exists (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemMux {
    /// The core whose port gets direct access.
    pub core: CoreInstanceId,
    /// The port connected to a chip pin.
    pub port: PortId,
    /// `true` when the mux *controls* an input from a PI, `false` when it
    /// *observes* an output at a PO.
    pub controls_input: bool,
    /// The port's width in bits (the mux is that wide).
    pub width: u16,
}

impl fmt::Display for SystemMux {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "system mux {} {}.{} ({} bits)",
            if self.controls_input {
                "into"
            } else {
                "out of"
            },
            self.core,
            self.port,
            self.width
        )
    }
}

/// One transparency hop of a routed itinerary: the data crosses core
/// `core` from input `input` to output `output` through transparency path
/// `path` of the chosen version, entering `start` cycles after the route's
/// launch and leaving `latency` cycles later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteHop {
    /// The transit core the hop crosses.
    pub core: CoreInstanceId,
    /// The transit core's input port the data enters through.
    pub input: PortId,
    /// The transit core's output port the data leaves through.
    pub output: PortId,
    /// Index of the transparency path used, within the chosen version's
    /// path list.
    pub path: usize,
    /// Cycles after the route's launch at which the data enters the hop.
    pub start: u32,
    /// The hop's register latency (cycles spent inside the transit core).
    pub latency: u32,
}

/// The full routed itinerary of one core port: which chip pin the data
/// enters or leaves through and every transparency hop in between, in
/// travel order. The replay oracle uses this to reproduce the exact
/// cycle-by-cycle transport on the gate-level netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteItinerary {
    /// The core-under-test port this itinerary justifies (input) or
    /// observes (output).
    pub port: PortId,
    /// Total route latency in cycles (equals the episode's arrival entry
    /// for the same port).
    pub arrival: u32,
    /// The chip pin at the far end, or `None` when the port fell back to a
    /// system-level test mux (direct pin access, no routed transport).
    pub pin: Option<socet_rtl::ChipPinId>,
    /// Transparency hops in travel order (empty for direct pin routes and
    /// system-mux fallbacks).
    pub hops: Vec<RouteHop>,
}

impl RouteItinerary {
    /// Whether this port is served by a system-level test mux instead of a
    /// routed transparency path.
    pub fn is_system_mux(&self) -> bool {
        self.pin.is_none()
    }
}

/// The routed test episode of one core under test.
#[derive(Debug, Clone)]
pub struct CoreEpisode {
    /// The core under test.
    pub core: CoreInstanceId,
    /// Cycles to deliver one test vector to every core input (the paper's
    /// "nine cycles" for the DISPLAY), never below one scan-shift cycle.
    pub per_vector_cycles: u32,
    /// Cycles to flush the last response: remaining scan-out plus the
    /// observation latency of the slowest output route.
    pub tail_cycles: u32,
    /// HSCAN vectors applied.
    pub hscan_vectors: u64,
    /// Arrival time of each core input's test data, in cycles from the
    /// start of a vector slot.
    pub input_arrivals: Vec<(PortId, u32)>,
    /// Observation latency of each core output.
    pub output_arrivals: Vec<(PortId, u32)>,
    /// Full routed itinerary of each core input (same order as
    /// `input_arrivals`).
    pub input_routes: Vec<RouteItinerary>,
    /// Full routed itinerary of each core output (same order as
    /// `output_arrivals`).
    pub output_routes: Vec<RouteItinerary>,
    /// Cores whose transparency this episode routes through.
    pub transit_cores: Vec<CoreInstanceId>,
    /// Chip pins this episode drives or observes.
    pub pins: Vec<socet_rtl::ChipPinId>,
}

impl CoreEpisode {
    /// Test application time of this episode:
    /// `hscan_vectors × per_vector + tail`.
    pub fn test_time(&self) -> u64 {
        self.hscan_vectors * u64::from(self.per_vector_cycles) + u64::from(self.tail_cycles)
    }
}

impl fmt::Display for CoreEpisode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {}: {} vectors x {} cycles + {} = {}",
            self.core,
            self.hscan_vectors,
            self.per_vector_cycles,
            self.tail_cycles,
            self.test_time()
        )
    }
}

/// One evaluated point of the design space: a version choice, its routed
/// schedule, and the resulting cost pair.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Chosen version index per core instance (entries for memory cores are
    /// 0 and unused).
    pub choice: Vec<usize>,
    /// Chip-level DFT overhead: transparency logic + system-level test
    /// muxes + test controller + clock gating.
    pub chip_overhead: AreaReport,
    /// The routed episode of every logic core, in test order.
    pub episodes: Vec<CoreEpisode>,
    /// System-level test muxes the routing had to add.
    pub system_muxes: Vec<SystemMux>,
    /// How often each transparency pair `(through-core, input, output)` was
    /// used across the whole solution — the raw counts of the paper's §5.2
    /// "latency number" (usage × latency, summed per core).
    pub pair_usage: Vec<((CoreInstanceId, PortId, PortId), u32)>,
    /// Indices of SOC nets that carry test data somewhere in the plan —
    /// the interconnect the test exercises (§1 notes the test bus cannot
    /// test inter-core wiring; SOCET covers it as a side effect).
    pub tested_nets: Vec<usize>,
}

impl DesignPoint {
    /// Global test application time: cores are tested one after another.
    pub fn test_application_time(&self) -> u64 {
        self.episodes.iter().map(CoreEpisode::test_time).sum()
    }

    /// Chip-level overhead in cells.
    pub fn overhead_cells(&self, lib: &CellLibrary) -> u64 {
        self.chip_overhead.cells(lib)
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "design point {:?}: TAT {} cycles, {} muxes",
            self.choice,
            self.test_application_time(),
            self.system_muxes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_test_time_formula() {
        let ep = CoreEpisode {
            core: dummy_core(),
            per_vector_cycles: 9,
            tail_cycles: 3,
            hscan_vectors: 525,
            input_arrivals: vec![],
            output_arrivals: vec![],
            input_routes: vec![],
            output_routes: vec![],
            transit_cores: vec![],
            pins: vec![],
        };
        // The paper's DISPLAY worked example: 525 x 9 + 3 = 4 728.
        assert_eq!(ep.test_time(), 4_728);
    }

    #[test]
    fn design_point_sums_episodes() {
        let mk = |t: u64| CoreEpisode {
            core: dummy_core(),
            per_vector_cycles: 1,
            tail_cycles: 0,
            hscan_vectors: t,
            input_arrivals: vec![],
            output_arrivals: vec![],
            input_routes: vec![],
            output_routes: vec![],
            transit_cores: vec![],
            pins: vec![],
        };
        let dp = DesignPoint {
            choice: vec![0, 0],
            chip_overhead: AreaReport::new(),
            episodes: vec![mk(100), mk(200)],
            system_muxes: vec![],
            pair_usage: vec![],
            tested_nets: vec![],
        };
        assert_eq!(dp.test_application_time(), 300);
    }

    fn dummy_core() -> CoreInstanceId {
        // Handles are dense indices; recover one through a real SOC.
        use socet_rtl::{CoreBuilder, Direction, SocBuilder};
        use std::sync::Arc;
        let mut b = CoreBuilder::new("c");
        let i = b.port("i", Direction::In, 1).unwrap();
        let o = b.port("o", Direction::Out, 1).unwrap();
        let r = b.register("r", 1).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = Arc::new(b.build().unwrap());
        let mut sb = SocBuilder::new("s");
        let pi = sb.input_pin("pi", 1).unwrap();
        let po = sb.output_pin("po", 1).unwrap();
        let u = sb.instantiate("u", core).unwrap();
        sb.connect_pin_to_core(pi, u, i).unwrap();
        sb.connect_core_to_pin(u, o, po).unwrap();
        sb.build().unwrap();
        u
    }
}
