//! SOCET chip-level test planning — the primary contribution of the DAC'98
//! paper *"A Fast and Low Cost Testing Technique for Core-Based
//! System-on-Chip"*.
//!
//! Given an SOC netlist ([`Soc`](socet_rtl::Soc)) and, per core, a version
//! ladder of transparency trade-offs plus HSCAN scan data
//! ([`CoreTestData`]), this crate:
//!
//! 1. builds the core connectivity graph ([`Ccg`]) whose edge costs are
//!    transparency latencies (§5, Fig. 9);
//! 2. identifies justification and propagation paths for every core under
//!    test with a reservation-aware shortest-path [`Router`] — reused edges
//!    wait out the cycles they are reserved for, and ports that cannot be
//!    reached get system-level test multiplexers (§5.1);
//! 3. computes each core's test episode and the global test application
//!    time (the paper's `525 × 9 + 3` style accounting, [`CoreEpisode`]);
//! 4. explores the design space ([`Explorer`]): an exhaustive sweep (the
//!    points of Fig. 10) and the iterative-improvement loop of §5.2 with
//!    cost `C = w1·ΔTAT + w2·ΔA`, for both paper objectives
//!    ([`Objective::MinTatUnderArea`], [`Objective::MinAreaUnderTat`]).
//!
//! # Examples
//!
//! ```
//! use socet_rtl::{CoreBuilder, Direction, SocBuilder};
//! use socet_hscan::insert_hscan;
//! use socet_cells::DftCosts;
//! use socet_transparency::synthesize_versions;
//! use socet_core::{CoreTestData, Explorer, Objective};
//! use std::sync::Arc;
//!
//! // One small core, instantiated twice in a chain.
//! let mut b = CoreBuilder::new("buf");
//! let i = b.port("i", Direction::In, 8)?;
//! let o = b.port("o", Direction::Out, 8)?;
//! let r = b.register("r", 8)?;
//! b.connect_port_to_reg(i, r)?;
//! b.connect_reg_to_port(r, o)?;
//! let core = Arc::new(b.build()?);
//!
//! let mut sb = SocBuilder::new("chip");
//! let pi = sb.input_pin("pi", 8)?;
//! let po = sb.output_pin("po", 8)?;
//! let u0 = sb.instantiate("u0", core.clone())?;
//! let u1 = sb.instantiate("u1", core.clone())?;
//! sb.connect_pin_to_core(pi, u0, i)?;
//! sb.connect_cores(u0, o, u1, i)?;
//! sb.connect_core_to_pin(u1, o, po)?;
//! let soc = sb.build()?;
//!
//! let costs = DftCosts::default();
//! let hscan = insert_hscan(&core, &costs);
//! let data = CoreTestData {
//!     versions: synthesize_versions(&core, &hscan, &costs),
//!     hscan,
//!     scan_vectors: 12,
//! };
//! let per_core = vec![Some(data.clone()), Some(data)];
//! let explorer = Explorer::new(&soc, &per_core, costs);
//! let plan = explorer.optimize(Objective::MinTatUnderArea {
//!     max_overhead_cells: 10_000,
//! });
//! assert!(plan.test_application_time() > 0);
//! # Ok::<(), socet_rtl::RtlError>(())
//! ```

/// The unified observability layer: structured spans, typed counters, a
/// per-worker [`Recorder`](obs::Recorder), and trace exporters. Every
/// SOCET crate records through it; the metrics structs in [`metrics`] are
/// views derived from one recorder.
pub use socet_obs as obs;

pub mod ccg;
pub mod controller;
pub mod error;
pub mod explore;
pub mod interconnect;
pub mod metrics;
pub mod parallel;
pub mod pareto;
pub mod plan;
pub mod report;
pub mod schedule;
pub mod tester;

pub use ccg::{Ccg, CcgEdge, CcgEdgeKind, CcgNode, Resource};
pub use controller::{build_controller, TestController};
pub use error::ScheduleError;
pub use explore::{Explorer, Objective};
pub use interconnect::{interconnect_report, InterconnectReport, UntestedReason};
pub use metrics::{Metrics, PrepareMetrics};
pub use parallel::{parallelize, ParallelSchedule};
pub use pareto::{best_weighted, pareto_front};
pub use plan::{CoreEpisode, CoreTestData, DesignPoint, RouteHop, RouteItinerary, SystemMux};
pub use report::render_plan;
pub use schedule::{schedule, schedule_with, try_schedule, RouteResult, Router, Scheduler};
pub use tester::{tester_program, validate_program, DriveAction, TesterProgram};

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_compile() {
        // The crate-level doc example is the real integration test; this
        // just pins the public names.
        fn _take(_: crate::Objective) {}
    }
}
