//! Interconnect test coverage — the structural advantage §1 claims over
//! the test-bus architecture.
//!
//! The test bus isolates every core, so "the test bus architecture is
//! unable to test the interconnect that exists between cores". SOCET's
//! test data *rides* the functional interconnect: every net a routed plan
//! crosses is exercised against stuck faults for free. This module reports
//! which nets a [`DesignPoint`] covers and classifies the rest.

use crate::plan::DesignPoint;
use socet_rtl::{Soc, SocEndpoint};
use std::fmt;

/// Why a net went untested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UntestedReason {
    /// The net touches a memory core — excluded from SOCET routing; its
    /// interconnect is exercised by the memory's BIST collar instead.
    MemoryNet,
    /// The net exists in the CCG but no route of this plan happened to
    /// cross it (another version choice or extra episodes could).
    NotRouted,
}

impl fmt::Display for UntestedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UntestedReason::MemoryNet => "memory net (BIST domain)",
            UntestedReason::NotRouted => "not crossed by any route",
        })
    }
}

/// The interconnect coverage of one design point.
#[derive(Debug, Clone)]
pub struct InterconnectReport {
    /// Indices of nets carrying test data.
    pub tested: Vec<usize>,
    /// Indices and reasons for the rest.
    pub untested: Vec<(usize, UntestedReason)>,
}

impl InterconnectReport {
    /// Coverage over the logic-domain nets (memory nets excluded from the
    /// denominator, matching the paper's BIST split).
    pub fn logic_coverage(&self) -> f64 {
        let untested_logic = self
            .untested
            .iter()
            .filter(|(_, r)| *r == UntestedReason::NotRouted)
            .count();
        let total = self.tested.len() + untested_logic;
        if total == 0 {
            100.0
        } else {
            self.tested.len() as f64 / total as f64 * 100.0
        }
    }
}

impl fmt::Display for InterconnectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interconnect: {} nets tested, {} untested ({:.1}% of logic nets)",
            self.tested.len(),
            self.untested.len(),
            self.logic_coverage()
        )
    }
}

/// Classifies every net of `soc` against `plan`.
///
/// # Examples
///
/// ```no_run
/// use socet_core::interconnect::interconnect_report;
/// # fn demo(soc: &socet_rtl::Soc, plan: &socet_core::DesignPoint) {
/// let report = interconnect_report(soc, plan);
/// println!("{report}");
/// # }
/// ```
pub fn interconnect_report(soc: &Soc, plan: &DesignPoint) -> InterconnectReport {
    let mut tested = Vec::new();
    let mut untested = Vec::new();
    for (ni, net) in soc.nets().iter().enumerate() {
        if plan.tested_nets.contains(&ni) {
            tested.push(ni);
            continue;
        }
        let touches_memory = [&net.src, &net.dst].iter().any(
            |ep| matches!(ep, SocEndpoint::CorePort { core, .. } if soc.core(*core).is_memory()),
        );
        untested.push((
            ni,
            if touches_memory {
                UntestedReason::MemoryNet
            } else {
                UntestedReason::NotRouted
            },
        ));
    }
    InterconnectReport { tested, untested }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CoreTestData;
    use crate::schedule::schedule;
    use socet_cells::DftCosts;
    use socet_hscan::insert_hscan;
    use socet_transparency::synthesize_versions;

    fn prepare(soc: &Soc) -> Vec<Option<CoreTestData>> {
        let costs = DftCosts::default();
        soc.cores()
            .iter()
            .map(|inst| {
                if inst.is_memory() {
                    return None;
                }
                let hscan = insert_hscan(inst.core(), &costs);
                let versions = synthesize_versions(inst.core(), &hscan, &costs);
                Some(CoreTestData {
                    versions,
                    hscan,
                    scan_vectors: 20,
                })
            })
            .collect()
    }

    #[test]
    fn system1_covers_its_logic_backbone() {
        let soc = socet_socs::barcode_system();
        let data = prepare(&soc);
        let plan = schedule(
            &soc,
            &data,
            &vec![0; soc.cores().len()],
            &DftCosts::default(),
        );
        let report = interconnect_report(&soc, &plan);
        // The PREPROCESSOR->CPU and CPU->DISPLAY data paths are routed
        // through, so the backbone is covered.
        assert!(report.logic_coverage() > 50.0, "{report}");
        // The memory nets are classified, not silently dropped.
        assert!(report
            .untested
            .iter()
            .any(|(_, r)| *r == UntestedReason::MemoryNet));
        // Totals add up.
        assert_eq!(
            report.tested.len() + report.untested.len(),
            soc.nets().len()
        );
    }

    #[test]
    fn pin_only_soc_has_full_logic_coverage() {
        // A plan whose routes never cross core-to-core nets (every port
        // direct at pins) shows what the test bus world looks like.
        use socet_rtl::{CoreBuilder, Direction, SocBuilder};
        use std::sync::Arc;
        let mut b = CoreBuilder::new("buf");
        let i = b.port("i", Direction::In, 4).unwrap();
        let o = b.port("o", Direction::Out, 4).unwrap();
        let r = b.register("r", 4).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = Arc::new(b.build().unwrap());
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 4).unwrap();
        let po = sb.output_pin("po", 4).unwrap();
        let u = sb.instantiate("u", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u, i).unwrap();
        sb.connect_core_to_pin(u, o, po).unwrap();
        let soc = sb.build().unwrap();
        let data = prepare(&soc);
        let plan = schedule(&soc, &data, &[0], &DftCosts::default());
        let report = interconnect_report(&soc, &plan);
        // Pin nets ARE crossed here (SOCET still exercises them); there are
        // simply no core-to-core nets to miss.
        assert_eq!(report.logic_coverage(), 100.0);
    }
}
