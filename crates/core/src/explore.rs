//! Design-space exploration: the iterative-improvement core-version
//! selection of §5.2 and the exhaustive sweep behind Fig. 10.
//!
//! Every entry point comes in two flavours — a panicking one matching the
//! original API ([`Explorer::evaluate`], [`Explorer::sweep`],
//! [`Explorer::optimize`]) and a `try_` variant returning
//! [`ScheduleError`]. All of them run on reusable [`Scheduler`] engines:
//! the sweep walks the choice space in an order where neighbouring points
//! differ in few cores, so almost every evaluation is an incremental CCG
//! patch; the §5.2 loop additionally memoizes evaluated points (the
//! strict/lateral passes probe the same candidates repeatedly). Sweeps
//! fan out over [`std::thread::scope`] when the host has more than one
//! CPU, splitting the lexicographic index range into contiguous chunks so
//! the output order stays deterministic.

use crate::error::ScheduleError;
use crate::metrics::Metrics;
use crate::plan::{CoreTestData, DesignPoint};
use crate::schedule::Scheduler;
use socet_cells::{CellLibrary, DftCosts};
use socet_obs::{names, Recorder};
use socet_rtl::{CoreInstanceId, Soc};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// The user's optimization objective (paper §5, objectives (i) and (ii)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Objective (i): minimize global test application time subject to a
    /// chip-level test-area budget in cells (`w1 = 1, w2 = 0`).
    MinTatUnderArea {
        /// Maximum allowed chip-level DFT overhead in cells.
        max_overhead_cells: u64,
    },
    /// Objective (ii): minimize test-area overhead subject to a test
    /// application time budget in cycles (`w1 = 0, w2 = 1`).
    MinAreaUnderTat {
        /// Maximum allowed global test application time in cycles.
        max_tat_cycles: u64,
    },
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::MinTatUnderArea { max_overhead_cells } => {
                write!(f, "min TAT s.t. overhead <= {max_overhead_cells} cells")
            }
            Objective::MinAreaUnderTat { max_tat_cycles } => {
                write!(f, "min overhead s.t. TAT <= {max_tat_cycles} cycles")
            }
        }
    }
}

/// Design-space explorer over one SOC and its cores' version ladders.
///
/// # Examples
///
/// See the crate-level documentation of [`socet-core`](crate) and the
/// `design_space_exploration` example.
#[derive(Debug)]
pub struct Explorer<'a> {
    soc: &'a Soc,
    data: &'a [Option<CoreTestData>],
    costs: DftCosts,
    lib: CellLibrary,
    /// The warm evaluation engine: its cached CCG, router scratch and
    /// route cache survive across `evaluate`/`optimize`/`sweep` calls.
    engine: Mutex<Option<Scheduler<'a>>>,
    /// Explorer-wide recorder: every engine's events (including all sweep
    /// workers') are folded in, in deterministic order.
    rec: Mutex<Recorder>,
}

impl<'a> Explorer<'a> {
    /// Creates an explorer.
    pub fn new(soc: &'a Soc, data: &'a [Option<CoreTestData>], costs: DftCosts) -> Self {
        Explorer {
            soc,
            data,
            costs,
            lib: CellLibrary::generic_08um(),
            engine: Mutex::new(None),
            rec: Mutex::new(Recorder::new()),
        }
    }

    /// Uses a custom cell library for area accounting.
    pub fn with_library(mut self, lib: CellLibrary) -> Self {
        self.lib = lib;
        self
    }

    /// A fresh evaluation engine over this explorer's SOC.
    fn scheduler(&self) -> Scheduler<'a> {
        Scheduler::new(self.soc, self.data, &self.costs)
    }

    /// Runs `f` on the explorer's warm engine (created on first use),
    /// folding the engine's recorded events into the explorer-wide
    /// recorder.
    fn with_engine<R>(&self, f: impl FnOnce(&mut Scheduler<'a>) -> R) -> R {
        let mut guard = self.engine.lock().expect("engine lock");
        let engine = guard.get_or_insert_with(|| self.scheduler());
        let r = f(engine);
        let rec = engine.take_recorder();
        drop(guard);
        self.absorb(rec);
        r
    }

    /// Folds one engine's recorded events into the explorer-wide recorder.
    fn absorb(&self, rec: Recorder) {
        self.rec.lock().expect("recorder lock").merge_child(rec);
    }

    /// Engine counters aggregated over every evaluation this explorer has
    /// run (including all sweep workers), as the [`Metrics`] view over the
    /// explorer-wide recorder.
    pub fn metrics(&self) -> Metrics {
        Metrics::from_recorder(&self.rec.lock().expect("recorder lock"))
    }

    /// The explorer-wide recorder — spans and counters of every evaluation
    /// so far — for trace export; a fresh (empty) one takes its place.
    pub fn take_recorder(&self) -> Recorder {
        let mut guard = self.rec.lock().expect("recorder lock");
        let fresh = guard.fork();
        std::mem::replace(&mut *guard, fresh)
    }

    /// Routes and schedules one version choice.
    ///
    /// # Panics
    ///
    /// Panics on invalid input — use [`Explorer::try_evaluate`] for the
    /// typed-error contract.
    pub fn evaluate(&self, choice: &[usize]) -> DesignPoint {
        self.try_evaluate(choice).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Routes and schedules one version choice, reporting invalid input
    /// (missing core data, out-of-range or short choice vectors) as a
    /// [`ScheduleError`] instead of panicking.
    pub fn try_evaluate(&self, choice: &[usize]) -> Result<DesignPoint, ScheduleError> {
        self.with_engine(|sched| sched.evaluate(choice))
    }

    /// The minimum-area starting choice: version 1 everywhere.
    pub fn min_area_choice(&self) -> Vec<usize> {
        vec![0; self.soc.cores().len()]
    }

    /// The minimum-latency choice: the last version everywhere.
    pub fn min_latency_choice(&self) -> Vec<usize> {
        self.soc
            .cores()
            .iter()
            .enumerate()
            .map(|(i, _)| {
                self.data[i]
                    .as_ref()
                    .map(|d| d.versions.len() - 1)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Exhaustively evaluates every version combination — the paper's
    /// Fig. 10 plots these points for System 1.
    ///
    /// Points are returned in lexicographic choice order.
    ///
    /// # Panics
    ///
    /// Panics on invalid input — use [`Explorer::try_sweep`].
    pub fn sweep(&self) -> Vec<DesignPoint> {
        self.try_sweep().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`Explorer::sweep`].
    ///
    /// The sweep runs on every available CPU: the lexicographic index
    /// range is split into contiguous chunks, one scoped worker thread per
    /// chunk, each with its own incremental [`Scheduler`]; chunks are
    /// concatenated in spawn order, so the result is identical to the
    /// sequential sweep.
    pub fn try_sweep(&self) -> Result<Vec<DesignPoint>, ScheduleError> {
        let span = self.rec.lock().expect("recorder lock").begin(names::SWEEP);
        let result = self.try_sweep_inner();
        self.rec.lock().expect("recorder lock").end(span);
        result
    }

    fn try_sweep_inner(&self) -> Result<Vec<DesignPoint>, ScheduleError> {
        let logic = self.soc.logic_cores();
        let radios: Vec<usize> = logic
            .iter()
            .map(|c| {
                self.data[c.index()]
                    .as_ref()
                    .map(|d| d.versions.len())
                    .unwrap_or(1)
            })
            .collect();
        let total: usize = radios.iter().product();
        let ncores = self.soc.cores().len();
        let choice_of = |mut k: usize| {
            let mut choice = vec![0usize; ncores];
            for (ci, c) in logic.iter().enumerate() {
                choice[c.index()] = k % radios[ci];
                k /= radios[ci];
            }
            choice
        };
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(total.max(1));
        if workers <= 1 {
            return self.with_engine(|sched| {
                let mut points = Vec::with_capacity(total);
                for k in 0..total {
                    points.push(sched.evaluate(&choice_of(k))?);
                }
                Ok(points)
            });
        }
        let chunk = total.div_ceil(workers);
        let results: Vec<Result<(Vec<DesignPoint>, Recorder), ScheduleError>> =
            std::thread::scope(|s| {
                let choice_of = &choice_of;
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        s.spawn(move || {
                            let lo = w * chunk;
                            let hi = ((w + 1) * chunk).min(total);
                            let mut sched = self.scheduler();
                            let mut points = Vec::with_capacity(hi - lo);
                            for k in lo..hi {
                                points.push(sched.evaluate(&choice_of(k))?);
                            }
                            Ok((points, sched.take_recorder()))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect()
            });
        // Index-ordered merge: chunks concatenate and recorders fold in
        // spawn order, so both the points and the trace are deterministic.
        let mut points = Vec::with_capacity(total);
        let mut first_err = None;
        for r in results {
            match r {
                Ok((p, rec)) => {
                    points.extend(p);
                    self.absorb(rec);
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(points),
        }
    }

    /// §5.2 latency number of `core` under `version_idx`, given the pair
    /// usage of the current solution: `Σ usage(i,o) × latency(i,o)`.
    fn latency_number(&self, dp: &DesignPoint, core: CoreInstanceId, version_idx: usize) -> u64 {
        let Some(td) = self.data[core.index()].as_ref() else {
            return 0;
        };
        let version = &td.versions[version_idx];
        dp.pair_usage
            .iter()
            .filter(|((c, _, _), _)| *c == core)
            .map(|((_, i, o), count)| {
                let lat = version.pair_latency(*i, *o).unwrap_or_else(|| {
                    td.versions[dp.choice[core.index()]]
                        .pair_latency(*i, *o)
                        .unwrap_or(0)
                });
                u64::from(*count) * u64::from(lat)
            })
            .sum()
    }

    /// The iterative-improvement loop of §5.2.
    ///
    /// Starting from the minimum-area configuration, repeatedly replace one
    /// core with its next-more-expensive version, scoring candidates with
    /// `C = w1·ΔTAT + w2·ΔA`:
    ///
    /// * objective (i): pick the candidate with the largest ΔTAT that still
    ///   fits the area budget; stop when none fits;
    /// * objective (ii): pick the cheapest ΔA with non-zero ΔTAT; stop as
    ///   soon as the TAT budget is met (or no candidate helps).
    ///
    /// # Panics
    ///
    /// Panics on invalid input — use [`Explorer::try_optimize`].
    pub fn optimize(&self, objective: Objective) -> DesignPoint {
        self.try_optimize(objective)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`Explorer::optimize`].
    ///
    /// Runs on one incremental engine and memoizes evaluated points — the
    /// strict and lateral passes probe the same neighbouring choices over
    /// and over, and a memo hit skips the whole build/route/assemble
    /// pipeline.
    pub fn try_optimize(&self, objective: Objective) -> Result<DesignPoint, ScheduleError> {
        let span = self
            .rec
            .lock()
            .expect("recorder lock")
            .begin(names::OPTIMIZE);
        let mut memo: HashMap<Vec<usize>, DesignPoint> = HashMap::new();
        let result = self.with_engine(|sched| self.optimize_inner(objective, sched, &mut memo));
        self.rec.lock().expect("recorder lock").end(span);
        result
    }

    fn optimize_inner(
        &self,
        objective: Objective,
        sched: &mut Scheduler<'_>,
        memo: &mut HashMap<Vec<usize>, DesignPoint>,
    ) -> Result<DesignPoint, ScheduleError> {
        let mut choice = self.min_area_choice();
        let mut current = eval_memo(sched, memo, &choice)?;
        // Version indices only ever increase, so the loop is bounded by the
        // total ladder height.
        loop {
            if let Objective::MinAreaUnderTat { max_tat_cycles } = objective {
                if current.test_application_time() <= max_tat_cycles {
                    return Ok(current);
                }
            }
            let mut candidates = self.candidates(&current, &choice);
            match objective {
                // w1 = 1, w2 = 0: biggest predicted ΔTAT first.
                Objective::MinTatUnderArea { .. } => {
                    candidates.sort_by_key(|c| (-c.dtat, c.da));
                }
                // w1 = 0, w2 = 1: cheapest ΔA with non-zero ΔTAT first,
                // zero-ΔTAT stepping stones last.
                Objective::MinAreaUnderTat { .. } => {
                    candidates.sort_by_key(|c| (c.dtat == 0, c.da));
                }
            }
            let budget = match objective {
                Objective::MinTatUnderArea { max_overhead_cells } => max_overhead_cells,
                Objective::MinAreaUnderTat { .. } => u64::MAX,
            };
            // Improving move first; failing that, a lateral (equal-TAT)
            // move unlocks deeper versions of the same ladder.
            let mut accepted = None;
            for strict in [true, false] {
                for cand in &candidates {
                    let mut next_choice = choice.clone();
                    next_choice[cand.core.index()] += 1;
                    let next = eval_memo(sched, memo, &next_choice)?;
                    if next.overhead_cells(&self.lib) > budget {
                        continue;
                    }
                    let tat = next.test_application_time();
                    let ok = if strict {
                        tat < current.test_application_time()
                    } else {
                        tat <= current.test_application_time()
                            && next_choice[cand.core.index()] < self.ladder_len(cand.core)
                    };
                    if ok {
                        accepted = Some((next_choice, next));
                        break;
                    }
                }
                if accepted.is_some() {
                    break;
                }
            }
            match accepted {
                Some((nc, np)) => {
                    choice = nc;
                    current = np;
                }
                None => return Ok(current),
            }
        }
    }

    fn ladder_len(&self, core: CoreInstanceId) -> usize {
        self.data[core.index()]
            .as_ref()
            .map(|d| d.versions.len())
            .unwrap_or(1)
    }

    /// All single-step replacement moves with their predicted `ΔTAT`
    /// (latency-number drop, §5.2) and `ΔA`.
    fn candidates(&self, current: &DesignPoint, choice: &[usize]) -> Vec<Candidate> {
        let mut v = Vec::new();
        for core in self.soc.logic_cores() {
            let Some(td) = self.data[core.index()].as_ref() else {
                continue;
            };
            let cur_v = choice[core.index()];
            if cur_v + 1 >= td.versions.len() {
                continue;
            }
            let dtat = self.latency_number(current, core, cur_v) as i64
                - self.latency_number(current, core, cur_v + 1) as i64;
            let da = td.versions[cur_v + 1].overhead_cells(&self.lib) as i64
                - td.versions[cur_v].overhead_cells(&self.lib) as i64;
            v.push(Candidate { core, dtat, da });
        }
        v
    }
}

/// Evaluates through the memo: a previously seen choice skips the engine
/// entirely.
fn eval_memo(
    sched: &mut Scheduler<'_>,
    memo: &mut HashMap<Vec<usize>, DesignPoint>,
    choice: &[usize],
) -> Result<DesignPoint, ScheduleError> {
    if let Some(dp) = memo.get(choice) {
        return Ok(dp.clone());
    }
    let dp = sched.evaluate(choice)?;
    memo.insert(choice.to_vec(), dp.clone());
    Ok(dp)
}

/// A single-step replacement move considered by the §5.2 loop.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    core: CoreInstanceId,
    dtat: i64,
    da: i64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_hscan::insert_hscan;
    use socet_rtl::{CoreBuilder, Direction, SocBuilder};
    use socet_transparency::synthesize_versions;
    use std::sync::Arc;

    fn data_for(core: &socet_rtl::Core, vectors: usize) -> CoreTestData {
        let costs = DftCosts::default();
        let hscan = insert_hscan(core, &costs);
        let versions = synthesize_versions(core, &hscan, &costs);
        CoreTestData {
            versions,
            hscan,
            scan_vectors: vectors,
        }
    }

    fn pipeline_core(name: &str, depth: usize) -> Arc<socet_rtl::Core> {
        let mut b = CoreBuilder::new(name);
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let regs: Vec<_> = (0..depth)
            .map(|k| b.register(&format!("r{k}"), 8).unwrap())
            .collect();
        b.connect_port_to_reg(i, regs[0]).unwrap();
        for w in regs.windows(2) {
            b.connect_reg_to_reg(w[0], w[1]).unwrap();
        }
        b.connect_reg_to_port(regs[depth - 1], o).unwrap();
        Arc::new(b.build().unwrap())
    }

    fn three_core_soc() -> (Soc, Vec<Option<CoreTestData>>) {
        let a = pipeline_core("a", 4);
        let b = pipeline_core("b", 3);
        let c = pipeline_core("c", 2);
        let (ai, ao) = (a.find_port("i").unwrap(), a.find_port("o").unwrap());
        let (bi, bo) = (b.find_port("i").unwrap(), b.find_port("o").unwrap());
        let (ci, co) = (c.find_port("i").unwrap(), c.find_port("o").unwrap());
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let ua = sb.instantiate("ua", a.clone()).unwrap();
        let ub = sb.instantiate("ub", b.clone()).unwrap();
        let uc = sb.instantiate("uc", c.clone()).unwrap();
        sb.connect_pin_to_core(pi, ua, ai).unwrap();
        sb.connect_cores(ua, ao, ub, bi).unwrap();
        sb.connect_cores(ub, bo, uc, ci).unwrap();
        sb.connect_core_to_pin(uc, co, po).unwrap();
        let soc = sb.build().unwrap();
        let data = vec![
            Some(data_for(&a, 20)),
            Some(data_for(&b, 15)),
            Some(data_for(&c, 10)),
        ];
        (soc, data)
    }

    #[test]
    fn sweep_covers_all_combinations() {
        let (soc, data) = three_core_soc();
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        let points = ex.sweep();
        assert_eq!(points.len(), 27);
        // Area and TAT are anticorrelated at the extremes.
        let lib = CellLibrary::generic_08um();
        let min_area = points
            .iter()
            .min_by_key(|p| p.overhead_cells(&lib))
            .unwrap();
        let min_tat = points
            .iter()
            .min_by_key(|p| p.test_application_time())
            .unwrap();
        assert!(min_area.test_application_time() >= min_tat.test_application_time());
        assert!(min_area.overhead_cells(&lib) <= min_tat.overhead_cells(&lib));
    }

    #[test]
    fn sweep_is_in_lexicographic_choice_order() {
        let (soc, data) = three_core_soc();
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        let points = ex.sweep();
        for (k, p) in points.iter().enumerate() {
            assert_eq!(p.choice, vec![k % 3, (k / 3) % 3, (k / 9) % 3], "point {k}");
        }
    }

    #[test]
    fn sweep_matches_per_point_evaluation() {
        let (soc, data) = three_core_soc();
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        for p in ex.sweep() {
            let fresh = ex.evaluate(&p.choice);
            assert_eq!(format!("{p:?}"), format!("{fresh:?}"), "at {:?}", p.choice);
        }
    }

    #[test]
    fn sweep_accumulates_metrics() {
        let (soc, data) = three_core_soc();
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        ex.sweep();
        let m = ex.metrics();
        assert_eq!(m.evaluations, 27);
        // On one engine, 26 of the 27 points patch incrementally; with
        // more workers each chunk pays one full build.
        assert!(m.ccg_full_builds >= 1);
        assert!(m.ccg_full_builds + m.ccg_incremental_patches >= 27, "{m}");
        assert!(m.route_attempts > 0);
    }

    #[test]
    fn try_evaluate_reports_missing_core_data() {
        let (soc, mut data) = three_core_soc();
        data[2] = None;
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        assert!(matches!(
            ex.try_evaluate(&[0, 0, 0]),
            Err(ScheduleError::MissingCoreData { core }) if core.index() == 2
        ));
    }

    #[test]
    fn try_evaluate_reports_out_of_range_choice() {
        let (soc, data) = three_core_soc();
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        assert!(matches!(
            ex.try_evaluate(&[0, 7, 0]),
            Err(ScheduleError::ChoiceOutOfRange {
                choice: 7,
                versions: 3,
                ..
            })
        ));
    }

    #[test]
    fn objective_one_respects_area_budget() {
        let (soc, data) = three_core_soc();
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        let lib = CellLibrary::generic_08um();
        let baseline = ex.evaluate(&ex.min_area_choice());
        let budget = baseline.overhead_cells(&lib) + 40;
        let dp = ex.optimize(Objective::MinTatUnderArea {
            max_overhead_cells: budget,
        });
        assert!(dp.overhead_cells(&lib) <= budget);
        assert!(dp.test_application_time() <= baseline.test_application_time());
    }

    #[test]
    fn objective_one_with_huge_budget_approaches_min_tat() {
        let (soc, data) = three_core_soc();
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        let dp = ex.optimize(Objective::MinTatUnderArea {
            max_overhead_cells: u64::MAX,
        });
        let sweep_best = ex
            .sweep()
            .into_iter()
            .map(|p| p.test_application_time())
            .min()
            .unwrap();
        assert_eq!(dp.test_application_time(), sweep_best);
    }

    #[test]
    fn objective_two_stops_at_budget() {
        let (soc, data) = three_core_soc();
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        let lib = CellLibrary::generic_08um();
        let min_area = ex.evaluate(&ex.min_area_choice());
        let min_tat = ex.optimize(Objective::MinTatUnderArea {
            max_overhead_cells: u64::MAX,
        });
        // A budget halfway between the extremes.
        let target = (min_area.test_application_time() + min_tat.test_application_time()) / 2;
        let dp = ex.optimize(Objective::MinAreaUnderTat {
            max_tat_cycles: target,
        });
        assert!(dp.test_application_time() <= target);
        // It should be cheaper than the all-out min-TAT point.
        assert!(dp.overhead_cells(&lib) <= min_tat.overhead_cells(&lib));
    }

    #[test]
    fn min_latency_choice_indexes_last_versions() {
        let (soc, data) = three_core_soc();
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        assert_eq!(ex.min_latency_choice(), vec![2, 2, 2]);
        assert_eq!(ex.min_area_choice(), vec![0, 0, 0]);
    }

    #[test]
    fn evaluate_is_pure() {
        let (soc, data) = three_core_soc();
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        let a = ex.evaluate(&[0, 1, 2, 0, 0][..soc.cores().len()]);
        let b = ex.evaluate(&[0, 1, 2, 0, 0][..soc.cores().len()]);
        assert_eq!(a.test_application_time(), b.test_application_time());
        assert_eq!(a.chip_overhead, b.chip_overhead);
    }

    #[test]
    fn unreachable_tat_budget_returns_best_effort() {
        let (soc, data) = three_core_soc();
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        let dp = ex.optimize(Objective::MinAreaUnderTat { max_tat_cycles: 1 });
        // 1 cycle is impossible; the loop must still terminate with the
        // best TAT it can find.
        let best = ex
            .sweep()
            .into_iter()
            .map(|p| p.test_application_time())
            .min()
            .unwrap();
        assert_eq!(dp.test_application_time(), best);
    }

    #[test]
    fn zero_area_budget_stays_at_minimum() {
        let (soc, data) = three_core_soc();
        let ex = Explorer::new(&soc, &data, DftCosts::default());
        let lib = CellLibrary::generic_08um();
        let baseline = ex.evaluate(&ex.min_area_choice());
        let dp = ex.optimize(Objective::MinTatUnderArea {
            max_overhead_cells: 0,
        });
        // Nothing fits a zero budget beyond the baseline itself.
        assert_eq!(dp.overhead_cells(&lib), baseline.overhead_cells(&lib));
    }

    #[test]
    fn objective_display() {
        let o = Objective::MinTatUnderArea {
            max_overhead_cells: 100,
        };
        assert!(o.to_string().contains("100"));
    }
}
