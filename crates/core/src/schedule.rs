//! Test-path identification and episode scheduling (paper §5.1).
//!
//! For each core under test, every input must be fed from a chip PI and
//! every output observed at a chip PO through the transparency of the
//! surrounding cores. Paths are found with a reservation-aware Dijkstra:
//! a transparency edge used during cycles `[t, t+L)` is *reserved* there,
//! and a later path that wants the same resources waits (the core clocks
//! are freezable, so data can be held). When no route exists at all, a
//! system-level test multiplexer connects the port straight to a chip pin.

use crate::ccg::{Ccg, CcgEdgeKind, CcgNode, Resource};
use crate::plan::{CoreEpisode, CoreTestData, DesignPoint, SystemMux};
use socet_cells::{AreaReport, CellKind, DftCosts};
use socet_rtl::{CoreInstanceId, PortId, Soc};
use std::collections::{BinaryHeap, HashMap};
use std::cmp::Reverse;

/// A routed path: its arrival time and the transparency pairs it crossed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteResult {
    /// Cycles from the start of the vector slot until the data is in place.
    pub arrival: u32,
    /// `(through-core, input, output)` of every transparency edge used.
    pub used_pairs: Vec<(CoreInstanceId, PortId, PortId)>,
    /// The chip pin the route starts from (justification) or ends at
    /// (observation).
    pub pin: Option<socet_rtl::ChipPinId>,
    /// Indices of the SOC nets the route crosses — the interconnect this
    /// test exercises (the coverage the test-bus architecture cannot give).
    pub crossed_nets: Vec<usize>,
}

/// Reservation-aware router over one CCG. Reservations accumulate across
/// routes, so the order of [`Router::route_to_input`] calls matters — the
/// scheduler routes a core's inputs in declaration order, exactly like the
/// paper routes `A(7 downto 0)` before `A(11 downto 8)`.
#[derive(Debug)]
pub struct Router<'a> {
    ccg: &'a Ccg,
    reservations: HashMap<Resource, Vec<(u32, u32)>>,
    enforce: bool,
}

impl<'a> Router<'a> {
    /// A router with no reservations.
    pub fn new(ccg: &'a Ccg) -> Self {
        Router {
            ccg,
            reservations: HashMap::new(),
            enforce: true,
        }
    }

    /// A router that *ignores* resource conflicts — the ablation baseline
    /// showing what goes wrong without the paper's edge reservations:
    /// per-vector times come out optimistically low because concurrent
    /// transfers through shared transparency logic are impossible in
    /// hardware.
    pub fn new_unconstrained(ccg: &'a Ccg) -> Self {
        Router {
            ccg,
            reservations: HashMap::new(),
            enforce: false,
        }
    }

    /// Routes test data from any chip PI to `target` (a `CoreIn` node),
    /// avoiding the transparency of `exclude` (the core under test), and
    /// reserves the resources the chosen path occupies.
    pub fn route_to_input(
        &mut self,
        target: usize,
        exclude: CoreInstanceId,
    ) -> Option<RouteResult> {
        let sources: Vec<usize> = self.ccg.pi_nodes().to_vec();
        self.dijkstra(&sources, |n| n == target, exclude)
    }

    /// Routes a response from `source` (a `CoreOut` node) to any chip PO,
    /// with the same exclusion and reservation behaviour.
    pub fn route_from_output(
        &mut self,
        source: usize,
        exclude: CoreInstanceId,
    ) -> Option<RouteResult> {
        let pos: Vec<usize> = self.ccg.po_nodes().to_vec();
        self.dijkstra(&[source], |n| pos.contains(&n), exclude)
    }

    /// Earliest `t' >= t` at which all `resources` are free for
    /// `[t', t'+dur)`.
    fn earliest_start(&self, resources: &[Resource], mut t: u32, dur: u32) -> u32 {
        if !self.enforce {
            return t;
        }
        loop {
            let mut pushed = None;
            for r in resources {
                if let Some(intervals) = self.reservations.get(r) {
                    for &(a, b) in intervals {
                        if t < b && a < t + dur {
                            let candidate = b;
                            pushed = Some(pushed.map_or(candidate, |p: u32| p.max(candidate)));
                        }
                    }
                }
            }
            match pushed {
                Some(nt) => t = nt,
                None => return t,
            }
        }
    }

    fn reserve(&mut self, resources: &[Resource], start: u32, dur: u32) {
        for r in resources {
            self.reservations
                .entry(*r)
                .or_default()
                .push((start, start + dur));
        }
    }

    fn dijkstra(
        &mut self,
        sources: &[usize],
        is_target: impl Fn(usize) -> bool,
        exclude: CoreInstanceId,
    ) -> Option<RouteResult> {
        let n = self.ccg.nodes().len();
        let mut dist = vec![u32::MAX; n];
        let mut pred: Vec<Option<(usize, u32)>> = vec![None; n]; // (edge, start)
        let mut heap = BinaryHeap::new();
        for &s in sources {
            dist[s] = 0;
            heap.push(Reverse((0u32, s)));
        }
        let mut best_target = None;
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if is_target(u) {
                best_target = Some(u);
                break;
            }
            for &ei in self.ccg.edges_from(u) {
                let e = &self.ccg.edges()[ei];
                if let CcgEdgeKind::Transparency { core, .. } = e.kind {
                    if core == exclude {
                        continue;
                    }
                }
                let (start, arrival) = match e.kind {
                    CcgEdgeKind::Interconnect { .. } => (d, d),
                    CcgEdgeKind::Transparency { .. } => {
                        let dur = e.latency.max(1);
                        let start = self.earliest_start(&e.resources, d, dur);
                        (start, start + e.latency)
                    }
                };
                if arrival < dist[e.to] {
                    dist[e.to] = arrival;
                    pred[e.to] = Some((ei, start));
                    heap.push(Reverse((arrival, e.to)));
                }
            }
        }
        let target = best_target?;
        // Walk back, reserving and collecting transparency pairs.
        let mut used_pairs = Vec::new();
        let mut crossed_nets = Vec::new();
        let mut node = target;
        let mut terminal = target;
        while let Some((ei, start)) = pred[node] {
            let e = &self.ccg.edges()[ei];
            if let CcgEdgeKind::Interconnect { net } = e.kind {
                crossed_nets.push(net);
            }
            if let CcgEdgeKind::Transparency { core, .. } = e.kind {
                let dur = e.latency.max(1);
                let resources = e.resources.clone();
                self.reserve(&resources, start, dur);
                let input = match self.ccg.nodes()[e.from] {
                    CcgNode::CoreIn(_, p) => p,
                    other => unreachable!("transparency edge from {other}"),
                };
                let output = match self.ccg.nodes()[e.to] {
                    CcgNode::CoreOut(_, p) => p,
                    other => unreachable!("transparency edge into {other}"),
                };
                used_pairs.push((core, input, output));
            }
            node = e.from;
            terminal = node;
        }
        used_pairs.reverse();
        // One endpoint of the path is the CCG node we started from or
        // reached; report whichever end is a chip pin.
        let pin = [terminal, target]
            .into_iter()
            .find_map(|n| match self.ccg.nodes()[n] {
                CcgNode::Pi(p) | CcgNode::Po(p) => Some(p),
                _ => None,
            });
        crossed_nets.reverse();
        Some(RouteResult {
            arrival: dist[target],
            used_pairs,
            pin,
            crossed_nets,
        })
    }
}

/// Routes and schedules the complete test of `soc` under a version choice,
/// producing a [`DesignPoint`].
///
/// Cores are tested one after another (episode order = declaration order);
/// each episode gets a fresh reservation table because nothing else is in
/// flight while a core is under test.
///
/// # Panics
///
/// Panics if a logic core lacks test data or its choice index is out of
/// range.
pub fn schedule(
    soc: &Soc,
    data: &[Option<CoreTestData>],
    choice: &[usize],
    costs: &DftCosts,
) -> DesignPoint {
    schedule_with(soc, data, choice, costs, true)
}

/// Like [`schedule`] but with the reservation machinery switchable —
/// `reservations = false` is the ablation baseline whose per-vector times
/// ignore shared-resource serialization (and are therefore unrealizable in
/// hardware).
pub fn schedule_with(
    soc: &Soc,
    data: &[Option<CoreTestData>],
    choice: &[usize],
    costs: &DftCosts,
    reservations: bool,
) -> DesignPoint {
    let ccg = Ccg::build(soc, data, choice);
    let mut episodes = Vec::new();
    let mut system_muxes: Vec<SystemMux> = Vec::new();
    let mut pair_usage: HashMap<(CoreInstanceId, PortId, PortId), u32> = HashMap::new();
    let mut tested_nets: std::collections::HashSet<usize> = std::collections::HashSet::new();

    for cid in soc.logic_cores() {
        let inst = soc.core(cid);
        let core = inst.core();
        let td = data[cid.index()].as_ref().expect("logic core test data");
        let mut router = if reservations {
            Router::new(&ccg)
        } else {
            Router::new_unconstrained(&ccg)
        };
        let mut input_arrivals = Vec::new();
        let mut output_arrivals = Vec::new();
        let mut transit: Vec<CoreInstanceId> = Vec::new();
        let mut pins: Vec<socet_rtl::ChipPinId> = Vec::new();

        for p in core.input_ports() {
            let node = ccg
                .find(CcgNode::CoreIn(cid, p))
                .expect("core inputs are CCG nodes");
            match router.route_to_input(node, cid) {
                Some(route) => {
                    for pair in &route.used_pairs {
                        *pair_usage.entry(*pair).or_default() += 1;
                        if !transit.contains(&pair.0) {
                            transit.push(pair.0);
                        }
                    }
                    if let Some(pin) = route.pin {
                        if !pins.contains(&pin) {
                            pins.push(pin);
                        }
                    }
                    tested_nets.extend(route.crossed_nets.iter().copied());
                    input_arrivals.push((p, route.arrival));
                }
                None => {
                    push_mux(&mut system_muxes, SystemMux {
                        core: cid,
                        port: p,
                        controls_input: true,
                        width: core.port(p).width(),
                    });
                    input_arrivals.push((p, 0));
                }
            }
        }
        for p in core.output_ports() {
            let node = ccg
                .find(CcgNode::CoreOut(cid, p))
                .expect("core outputs are CCG nodes");
            match router.route_from_output(node, cid) {
                Some(route) => {
                    for pair in &route.used_pairs {
                        *pair_usage.entry(*pair).or_default() += 1;
                        if !transit.contains(&pair.0) {
                            transit.push(pair.0);
                        }
                    }
                    if let Some(pin) = route.pin {
                        if !pins.contains(&pin) {
                            pins.push(pin);
                        }
                    }
                    tested_nets.extend(route.crossed_nets.iter().copied());
                    output_arrivals.push((p, route.arrival));
                }
                None => {
                    push_mux(&mut system_muxes, SystemMux {
                        core: cid,
                        port: p,
                        controls_input: false,
                        width: core.port(p).width(),
                    });
                    output_arrivals.push((p, 0));
                }
            }
        }

        let max_in = input_arrivals.iter().map(|(_, a)| *a).max().unwrap_or(0);
        let max_out = output_arrivals.iter().map(|(_, a)| *a).max().unwrap_or(0);
        let per_vector = max_in.max(max_out).max(1);
        let depth = td.hscan.sequential_depth() as u32;
        let tail = depth.saturating_sub(1) + max_out;
        episodes.push(CoreEpisode {
            core: cid,
            per_vector_cycles: per_vector,
            tail_cycles: tail,
            hscan_vectors: td.hscan_vectors() as u64,
            input_arrivals,
            output_arrivals,
            transit_cores: transit,
            pins,
        });
    }

    // Chip-level overhead: selected transparency versions + system muxes +
    // test controller + clock gating.
    let mut chip_overhead = AreaReport::new();
    for cid in soc.logic_cores() {
        let td = data[cid.index()].as_ref().expect("logic core test data");
        chip_overhead += td.versions[choice[cid.index()]].overhead().clone();
    }
    for m in &system_muxes {
        chip_overhead.tally(
            CellKind::Mux2,
            costs.system_test_mux_per_bit * u64::from(m.width),
        );
    }
    chip_overhead.tally(CellKind::And2, costs.test_controller_cells);
    chip_overhead.tally(
        CellKind::And2,
        costs.clock_gate_per_core * soc.logic_cores().len() as u64,
    );

    let mut usage: Vec<_> = pair_usage.into_iter().collect();
    usage.sort_by_key(|((c, i, o), _)| (c.index(), i.index(), o.index()));
    let mut tested: Vec<usize> = tested_nets.into_iter().collect();
    tested.sort_unstable();
    DesignPoint {
        choice: choice.to_vec(),
        chip_overhead,
        episodes,
        system_muxes,
        pair_usage: usage,
        tested_nets: tested,
    }
}

fn push_mux(muxes: &mut Vec<SystemMux>, m: SystemMux) {
    if !muxes
        .iter()
        .any(|x| x.core == m.core && x.port == m.port && x.controls_input == m.controls_input)
    {
        muxes.push(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_hscan::insert_hscan;
    use socet_rtl::{CoreBuilder, Direction, SocBuilder};
    use socet_transparency::synthesize_versions;
    use std::sync::Arc;

    fn data_for(core: &socet_rtl::Core, vectors: usize) -> CoreTestData {
        let costs = DftCosts::default();
        let hscan = insert_hscan(core, &costs);
        let versions = synthesize_versions(core, &hscan, &costs);
        CoreTestData {
            versions,
            hscan,
            scan_vectors: vectors,
        }
    }

    fn buf_core(name: &str, depth: usize) -> Arc<socet_rtl::Core> {
        let mut b = CoreBuilder::new(name);
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let regs: Vec<_> = (0..depth)
            .map(|k| b.register(&format!("r{k}"), 8).unwrap())
            .collect();
        b.connect_port_to_reg(i, regs[0]).unwrap();
        for w in regs.windows(2) {
            b.connect_reg_to_reg(w[0], w[1]).unwrap();
        }
        b.connect_reg_to_port(regs[depth - 1], o).unwrap();
        Arc::new(b.build().unwrap())
    }

    /// PI -> u0 -> u1 -> PO; u1's input is only reachable through u0.
    fn chain_soc(depth: usize) -> (Soc, Vec<Option<CoreTestData>>) {
        let core = buf_core("buf", depth);
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_cores(u0, o, u1, i).unwrap();
        sb.connect_core_to_pin(u1, o, po).unwrap();
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&core, 10)), Some(data_for(&core, 10))];
        (soc, data)
    }

    #[test]
    fn embedded_core_pays_upstream_latency() {
        let (soc, data) = chain_soc(3);
        let dp = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        assert_eq!(dp.episodes.len(), 2);
        // u0's input is a PI (arrival 0 -> per-vector 1)... but u0's output
        // must travel through u1 (3-deep): per-vector = 3.
        let ep0 = &dp.episodes[0];
        assert_eq!(ep0.per_vector_cycles, 3);
        // u1's input arrives through u0 (3 cycles); outputs are POs.
        let ep1 = &dp.episodes[1];
        assert_eq!(ep1.per_vector_cycles, 3);
        assert!(dp.system_muxes.is_empty());
    }

    #[test]
    fn min_latency_versions_cut_tat() {
        let (soc, data) = chain_soc(4);
        let costs = DftCosts::default();
        let slow = schedule(&soc, &data, &[0, 0], &costs);
        let fast = schedule(&soc, &data, &[2, 2], &costs);
        assert!(
            fast.test_application_time() < slow.test_application_time(),
            "fast {} !< slow {}",
            fast.test_application_time(),
            slow.test_application_time()
        );
        // And the fast point costs more area.
        let lib = socet_cells::CellLibrary::generic_08um();
        assert!(fast.overhead_cells(&lib) > slow.overhead_cells(&lib));
    }

    #[test]
    fn unreachable_port_gets_system_mux() {
        // u0 feeds u1, but u1's output goes nowhere (no PO, no consumer):
        // observing u1 needs a system mux; u0's output is observable only
        // through u1 -> also a mux for u0's output.
        let core = buf_core("buf", 2);
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_pin_to_core(pi, u1, i).unwrap();
        sb.connect_core_to_pin(u0, o, po).unwrap();
        // u1's output dangles at chip level (allowed: the net list only
        // requires the instance to be touched).
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&core, 5)), Some(data_for(&core, 5))];
        let dp = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        assert_eq!(dp.system_muxes.len(), 1);
        let m = dp.system_muxes[0];
        assert_eq!(m.core, u1);
        assert!(!m.controls_input);
    }

    #[test]
    fn unreachable_input_gets_control_mux() {
        // A core whose input is fed by nothing routable: needs an input-side
        // system mux.
        let core = buf_core("buf", 2);
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let po2 = sb.output_pin("po2", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_core_to_pin(u0, o, po).unwrap();
        // u1's input dangles; its output is pinned out.
        sb.connect_core_to_pin(u1, o, po2).unwrap();
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&core, 5)), Some(data_for(&core, 5))];
        let dp = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        let m = dp
            .system_muxes
            .iter()
            .find(|m| m.core == u1)
            .expect("u1 needs a mux");
        assert!(m.controls_input);
        assert_eq!(m.width, 8);
    }

    #[test]
    fn per_vector_cycles_never_below_one() {
        let (soc, data) = chain_soc(1);
        let dp = schedule(&soc, &data, &[2, 2], &DftCosts::default());
        for ep in &dp.episodes {
            assert!(ep.per_vector_cycles >= 1);
        }
    }

    #[test]
    fn core_under_test_never_transits_itself() {
        let (soc, data) = chain_soc(3);
        let dp = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        for ep in &dp.episodes {
            assert!(
                !ep.transit_cores.contains(&ep.core),
                "{} routed through itself",
                ep.core
            );
        }
    }

    #[test]
    fn pair_usage_counts_transits() {
        let (soc, data) = chain_soc(2);
        let dp = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        // u1 is used to observe u0's output; u0 is used to control u1's
        // input: both cores' (i, o) pair is used exactly once.
        assert_eq!(dp.pair_usage.len(), 2);
        for (_, count) in &dp.pair_usage {
            assert_eq!(*count, 1);
        }
    }

    #[test]
    fn reservation_serializes_shared_resources() {
        // One upstream core fans out to a two-input consumer: both inputs
        // justify through the same upstream transparency path, so the
        // second waits.
        let up = buf_core("up", 1);
        let ui = up.find_port("i").unwrap();
        let uo = up.find_port("o").unwrap();
        let mut b = CoreBuilder::new("two_in");
        let a = b.port("a", Direction::In, 8).unwrap();
        let c = b.port("c", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let ra = b.register("ra", 8).unwrap();
        let rc = b.register("rc", 8).unwrap();
        b.connect_mux(socet_rtl::RtlNode::Port(a), socet_rtl::RtlNode::Reg(ra), 0)
            .unwrap();
        b.connect_port_to_reg(c, rc).unwrap();
        b.connect_reg_to_port(ra, o).unwrap();
        // rc reaches o through ra's other mux leg.
        b.connect_mux(socet_rtl::RtlNode::Reg(rc), socet_rtl::RtlNode::Reg(ra), 1)
            .unwrap();
        let two = Arc::new(b.build().unwrap());
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("up", up.clone()).unwrap();
        let u1 = sb.instantiate("two", two.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, ui).unwrap();
        sb.connect_cores(u0, uo, u1, a).unwrap();
        sb.connect_cores(u0, uo, u1, c).unwrap();
        sb.connect_core_to_pin(u1, o, po).unwrap();
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&up, 5)), Some(data_for(&two, 5))];
        let dp = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        let ep1 = &dp.episodes[1];
        // Input a arrives after 1 cycle (through `up`); input c must wait
        // for the shared path: arrival 2.
        let arrivals: Vec<u32> = ep1.input_arrivals.iter().map(|(_, t)| *t).collect();
        assert_eq!(arrivals, vec![1, 2]);
        assert_eq!(ep1.per_vector_cycles, 2);
    }
}
