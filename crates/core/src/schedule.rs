//! Test-path identification and episode scheduling (paper §5.1).
//!
//! For each core under test, every input must be fed from a chip PI and
//! every output observed at a chip PO through the transparency of the
//! surrounding cores. Paths are found with a reservation-aware Dijkstra:
//! a transparency edge used during cycles `[t, t+L)` is *reserved* there,
//! and a later path that wants the same resources waits (the core clocks
//! are freezable, so data can be held). When no route exists at all, a
//! system-level test multiplexer connects the port straight to a chip pin.
//!
//! Evaluation is organized around a reusable [`Scheduler`] that runs three
//! stages per design point — **build** (construct or incrementally patch
//! the [`Ccg`]), **route** (reservation-aware path search per core under
//! test), **assemble** (overhead accounting and plan normalization) — and
//! keeps its Dijkstra scratch (distance/predecessor arrays, heap,
//! reservation table) alive across evaluations. The §5.2 improvement loop
//! and the Fig. 10 sweep evaluate thousands of adjacent points; reusing
//! the graph and the scratch is what makes them cheap. The free functions
//! [`schedule`]/[`schedule_with`] remain as one-shot wrappers.

use crate::ccg::{Ccg, CcgEdgeKind, CcgNode, Resource};
use crate::error::ScheduleError;
use crate::metrics::Metrics;
use crate::plan::{CoreEpisode, CoreTestData, DesignPoint, RouteHop, RouteItinerary, SystemMux};
use socet_cells::{AreaReport, CellKind, DftCosts};
use socet_obs::{names, Counter, Recorder};
use socet_rtl::{CoreInstanceId, PortId, Soc};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A routed path: its arrival time and the transparency pairs it crossed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteResult {
    /// Cycles from the start of the vector slot until the data is in place.
    pub arrival: u32,
    /// `(through-core, input, output)` of every transparency edge used.
    pub used_pairs: Vec<(CoreInstanceId, PortId, PortId)>,
    /// The chip pin the route starts from (justification) or ends at
    /// (observation).
    pub pin: Option<socet_rtl::ChipPinId>,
    /// Indices of the SOC nets the route crosses — the interconnect this
    /// test exercises (the coverage the test-bus architecture cannot give).
    pub crossed_nets: Vec<usize>,
    /// Transparency hops in travel order, with their launch-relative start
    /// cycles — the full itinerary the replay oracle reproduces.
    pub hops: Vec<RouteHop>,
}

/// Reusable routing workspace: Dijkstra arrays, the priority queue and the
/// reservation table. Owned by a [`Scheduler`] between evaluations so the
/// hot loop never reallocates them.
#[derive(Debug, Default)]
struct RouterScratch {
    dist: Vec<u32>,
    pred: Vec<Option<(usize, u32)>>,
    heap: BinaryHeap<Reverse<(u32, usize)>>,
    reservations: HashMap<Resource, Vec<(u32, u32)>>,
}

/// Reservation-aware router over one CCG. Reservations accumulate across
/// routes, so the order of [`Router::route_to_input`] calls matters — the
/// scheduler routes a core's inputs in declaration order, exactly like the
/// paper routes `A(7 downto 0)` before `A(11 downto 8)`.
#[derive(Debug)]
pub struct Router<'a> {
    ccg: &'a Ccg,
    scratch: RouterScratch,
    enforce: bool,
    relaxations: u64,
    attempts: u64,
}

impl<'a> Router<'a> {
    /// A router with no reservations.
    pub fn new(ccg: &'a Ccg) -> Self {
        Router::with_scratch(ccg, RouterScratch::default(), true)
    }

    /// A router that *ignores* resource conflicts — the ablation baseline
    /// showing what goes wrong without the paper's edge reservations:
    /// per-vector times come out optimistically low because concurrent
    /// transfers through shared transparency logic are impossible in
    /// hardware.
    pub fn new_unconstrained(ccg: &'a Ccg) -> Self {
        Router::with_scratch(ccg, RouterScratch::default(), false)
    }

    /// A router recycling a previous router's buffers. Reservations are
    /// cleared (each core under test starts with an idle chip); the arrays
    /// keep their capacity.
    fn with_scratch(ccg: &'a Ccg, mut scratch: RouterScratch, enforce: bool) -> Self {
        scratch.reservations.clear();
        scratch.heap.clear();
        Router {
            ccg,
            scratch,
            enforce,
            relaxations: 0,
            attempts: 0,
        }
    }

    /// Returns the workspace and the `(relaxations, attempts)` counters.
    fn dismantle(self) -> (RouterScratch, u64, u64) {
        (self.scratch, self.relaxations, self.attempts)
    }

    /// Routes test data from any chip PI to `target` (a `CoreIn` node),
    /// avoiding the transparency of `exclude` (the core under test), and
    /// reserves the resources the chosen path occupies.
    pub fn route_to_input(
        &mut self,
        target: usize,
        exclude: CoreInstanceId,
    ) -> Option<RouteResult> {
        let ccg = self.ccg;
        self.dijkstra(ccg.pi_nodes(), |n| n == target, exclude)
    }

    /// Routes a response from `source` (a `CoreOut` node) to any chip PO,
    /// with the same exclusion and reservation behaviour.
    pub fn route_from_output(
        &mut self,
        source: usize,
        exclude: CoreInstanceId,
    ) -> Option<RouteResult> {
        let ccg = self.ccg;
        self.dijkstra(&[source], |n| ccg.po_nodes().contains(&n), exclude)
    }

    fn dijkstra(
        &mut self,
        sources: &[usize],
        is_target: impl Fn(usize) -> bool,
        exclude: CoreInstanceId,
    ) -> Option<RouteResult> {
        self.attempts += 1;
        let ccg = self.ccg;
        let enforce = self.enforce;
        let scratch = &mut self.scratch;
        let n = ccg.nodes().len();
        scratch.dist.clear();
        scratch.dist.resize(n, u32::MAX);
        scratch.pred.clear();
        scratch.pred.resize(n, None);
        scratch.heap.clear();
        for &s in sources {
            scratch.dist[s] = 0;
            scratch.heap.push(Reverse((0u32, s)));
        }
        let mut best_target = None;
        let mut relaxations = 0u64;
        while let Some(Reverse((d, u))) = scratch.heap.pop() {
            if d > scratch.dist[u] {
                continue;
            }
            if is_target(u) {
                best_target = Some(u);
                break;
            }
            for &ei in ccg.edges_from(u) {
                let e = &ccg.edges()[ei];
                relaxations += 1;
                if let CcgEdgeKind::Transparency { core, .. } = e.kind {
                    if core == exclude {
                        continue;
                    }
                }
                let (start, arrival) = match e.kind {
                    CcgEdgeKind::Interconnect { .. } => (d, d),
                    CcgEdgeKind::Transparency { .. } => {
                        let dur = e.latency.max(1);
                        let start =
                            earliest_start(&scratch.reservations, enforce, &e.resources, d, dur);
                        (start, start + e.latency)
                    }
                };
                if arrival < scratch.dist[e.to] {
                    scratch.dist[e.to] = arrival;
                    scratch.pred[e.to] = Some((ei, start));
                    scratch.heap.push(Reverse((arrival, e.to)));
                }
            }
        }
        self.relaxations += relaxations;
        let target = best_target?;
        // Walk back, reserving and collecting transparency pairs.
        let mut used_pairs = Vec::new();
        let mut crossed_nets = Vec::new();
        let mut hops = Vec::new();
        let mut node = target;
        let mut terminal = target;
        while let Some((ei, start)) = scratch.pred[node] {
            let e = &ccg.edges()[ei];
            if let CcgEdgeKind::Interconnect { net } = e.kind {
                crossed_nets.push(net);
            }
            if let CcgEdgeKind::Transparency { core, path } = e.kind {
                let dur = e.latency.max(1);
                reserve(&mut scratch.reservations, &e.resources, start, dur);
                let input = match ccg.nodes()[e.from] {
                    CcgNode::CoreIn(_, p) => p,
                    other => unreachable!("transparency edge from {other}"),
                };
                let output = match ccg.nodes()[e.to] {
                    CcgNode::CoreOut(_, p) => p,
                    other => unreachable!("transparency edge into {other}"),
                };
                used_pairs.push((core, input, output));
                hops.push(RouteHop {
                    core,
                    input,
                    output,
                    path,
                    start,
                    latency: e.latency,
                });
            }
            node = e.from;
            terminal = node;
        }
        used_pairs.reverse();
        hops.reverse();
        // One endpoint of the path is the CCG node we started from or
        // reached; report whichever end is a chip pin.
        let pin = [terminal, target]
            .into_iter()
            .find_map(|n| match ccg.nodes()[n] {
                CcgNode::Pi(p) | CcgNode::Po(p) => Some(p),
                _ => None,
            });
        crossed_nets.reverse();
        Some(RouteResult {
            arrival: scratch.dist[target],
            used_pairs,
            pin,
            crossed_nets,
            hops,
        })
    }
}

/// Earliest `t' >= t` at which all `resources` are free for `[t', t'+dur)`.
fn earliest_start(
    reservations: &HashMap<Resource, Vec<(u32, u32)>>,
    enforce: bool,
    resources: &[Resource],
    mut t: u32,
    dur: u32,
) -> u32 {
    if !enforce {
        return t;
    }
    loop {
        let mut pushed = None;
        for r in resources {
            if let Some(intervals) = reservations.get(r) {
                for &(a, b) in intervals {
                    if t < b && a < t + dur {
                        let candidate = b;
                        pushed = Some(pushed.map_or(candidate, |p: u32| p.max(candidate)));
                    }
                }
            }
        }
        match pushed {
            Some(nt) => t = nt,
            None => return t,
        }
    }
}

fn reserve(
    reservations: &mut HashMap<Resource, Vec<(u32, u32)>>,
    resources: &[Resource],
    start: u32,
    dur: u32,
) {
    for r in resources {
        reservations
            .entry(*r)
            .or_default()
            .push((start, start + dur));
    }
}

/// The routed (but not yet cost-accounted) output of the route stage.
struct RoutedPlan {
    episodes: Vec<CoreEpisode>,
    system_muxes: Vec<SystemMux>,
    pair_usage: HashMap<(CoreInstanceId, PortId, PortId), u32>,
    tested_nets: HashSet<usize>,
}

/// Everything the route stage produces for one core under test. A core's
/// routes never use its own transparency edges, so the outcome depends
/// only on the *other* cores' version choices — cacheable under that key.
#[derive(Debug, Clone)]
struct CoreRouteOutcome {
    episode: CoreEpisode,
    muxes: Vec<SystemMux>,
    pair_usage: Vec<((CoreInstanceId, PortId, PortId), u32)>,
    tested_nets: Vec<usize>,
}

/// Bound on cached per-core route outcomes before the cache is reset —
/// a backstop for very large design spaces, far above any paper system.
const ROUTE_CACHE_CAP: usize = 65_536;

/// Reusable, incremental, instrumented evaluation engine for one SOC.
///
/// A `Scheduler` caches the [`Ccg`] of the last evaluated choice and the
/// router's scratch buffers. Evaluating a neighbouring choice — the common
/// case in the §5.2 loop and in a lexicographic sweep — patches only the
/// stepped cores' edge groups and reuses every allocation. All failure
/// modes are typed ([`ScheduleError`]); [`Metrics`] counts what each stage
/// did.
///
/// # Examples
///
/// ```
/// # use socet_rtl::{CoreBuilder, Direction, SocBuilder};
/// # use socet_hscan::insert_hscan;
/// # use socet_cells::DftCosts;
/// # use socet_transparency::synthesize_versions;
/// # use socet_core::{CoreTestData, Scheduler};
/// # use std::sync::Arc;
/// # let mut b = CoreBuilder::new("buf");
/// # let i = b.port("i", Direction::In, 8).unwrap();
/// # let o = b.port("o", Direction::Out, 8).unwrap();
/// # let r = b.register("r", 8).unwrap();
/// # b.connect_port_to_reg(i, r).unwrap();
/// # b.connect_reg_to_port(r, o).unwrap();
/// # let core = Arc::new(b.build().unwrap());
/// # let mut sb = SocBuilder::new("chip");
/// # let pi = sb.input_pin("pi", 8).unwrap();
/// # let po = sb.output_pin("po", 8).unwrap();
/// # let u0 = sb.instantiate("u0", core.clone()).unwrap();
/// # sb.connect_pin_to_core(pi, u0, i).unwrap();
/// # sb.connect_core_to_pin(u0, o, po).unwrap();
/// # let soc = sb.build().unwrap();
/// # let costs = DftCosts::default();
/// # let hscan = insert_hscan(&core, &costs);
/// # let data = vec![Some(CoreTestData {
/// #     versions: synthesize_versions(&core, &hscan, &costs),
/// #     hscan,
/// #     scan_vectors: 10,
/// # })];
/// let mut scheduler = Scheduler::new(&soc, &data, &costs);
/// let slow = scheduler.evaluate(&[0])?;
/// let fast = scheduler.evaluate(&[2])?; // patches one core, reuses buffers
/// assert!(fast.test_application_time() <= slow.test_application_time());
/// assert_eq!(scheduler.metrics().evaluations, 2);
/// assert_eq!(scheduler.metrics().ccg_incremental_patches, 1);
/// # Ok::<(), socet_core::ScheduleError>(())
/// ```
#[derive(Debug)]
pub struct Scheduler<'a> {
    soc: &'a Soc,
    data: &'a [Option<CoreTestData>],
    costs: DftCosts,
    enforce: bool,
    ccg: Option<Ccg>,
    choice: Vec<usize>,
    scratch: Option<RouterScratch>,
    route_cache: HashMap<(CoreInstanceId, Vec<usize>), CoreRouteOutcome>,
    rec: Recorder,
}

impl<'a> Scheduler<'a> {
    /// An engine over `soc` with reservations enforced (the paper's
    /// behaviour).
    pub fn new(soc: &'a Soc, data: &'a [Option<CoreTestData>], costs: &DftCosts) -> Self {
        Scheduler {
            soc,
            data,
            costs: *costs,
            enforce: true,
            ccg: None,
            choice: Vec::new(),
            scratch: None,
            route_cache: HashMap::new(),
            rec: Recorder::new(),
        }
    }

    /// Switches the reservation machinery — `false` is the ablation
    /// baseline of [`schedule_with`].
    pub fn with_reservations(mut self, enforce: bool) -> Self {
        self.enforce = enforce;
        // Cached graph and routes were computed under the old setting.
        self.ccg = None;
        self.choice.clear();
        self.route_cache.clear();
        self
    }

    /// The accumulated counters since construction (or the last
    /// [`Scheduler::take_recorder`]), as the familiar [`Metrics`] view over
    /// the engine's recorder.
    pub fn metrics(&self) -> Metrics {
        Metrics::from_recorder(&self.rec)
    }

    /// The engine's recorder, for trace export or folding into a parent
    /// recorder; a fresh (empty) one takes its place.
    pub fn take_recorder(&mut self) -> Recorder {
        let fresh = self.rec.fork();
        std::mem::replace(&mut self.rec, fresh)
    }

    /// Returns the accumulated metrics and resets them to zero.
    #[deprecated(
        since = "0.1.0",
        note = "use Scheduler::take_recorder and derive the view with \
                Metrics::from_recorder"
    )]
    pub fn take_metrics(&mut self) -> Metrics {
        Metrics::from_recorder(&self.take_recorder())
    }

    /// Routes and schedules one version choice: build → route → assemble.
    pub fn evaluate(&mut self, choice: &[usize]) -> Result<DesignPoint, ScheduleError> {
        let span = self.rec.begin(names::EVALUATE);
        let result = self.evaluate_inner(choice);
        self.rec.end(span);
        result
    }

    fn evaluate_inner(&mut self, choice: &[usize]) -> Result<DesignPoint, ScheduleError> {
        self.build_stage(choice)?;
        let ccg = self.ccg.take().expect("build stage just set the graph");
        let routed = self.route_stage(&ccg, choice);
        self.ccg = Some(ccg);
        let routed = routed?;
        let span = self.rec.begin(names::ASSEMBLE);
        let dp = self.assemble_stage(choice, routed);
        self.rec.end(span);
        let dp = dp?;
        self.rec.record(Counter::Evaluations, 1);
        Ok(dp)
    }

    /// Build stage: construct the CCG, or — when one is cached for a
    /// same-length choice — patch only the cores whose version changed.
    fn build_stage(&mut self, choice: &[usize]) -> Result<(), ScheduleError> {
        let span = self.rec.begin(names::BUILD);
        let result = self.build_stage_inner(choice);
        self.rec.end(span);
        match result {
            Ok(()) => {
                self.choice.clear();
                self.choice.extend_from_slice(choice);
                Ok(())
            }
            Err(e) => {
                // A failed patch may have been applied partially; drop the
                // graph so the next evaluation rebuilds from scratch.
                self.ccg = None;
                self.choice.clear();
                Err(e)
            }
        }
    }

    fn build_stage_inner(&mut self, choice: &[usize]) -> Result<(), ScheduleError> {
        if choice.len() < self.soc.cores().len() {
            return Err(ScheduleError::ChoiceLengthMismatch {
                expected: self.soc.cores().len(),
                got: choice.len(),
            });
        }
        match self.ccg.take() {
            Some(mut ccg) if self.choice.len() == choice.len() => {
                for cid in self.soc.logic_cores() {
                    let (old, new) = (self.choice[cid.index()], choice[cid.index()]);
                    if old != new {
                        let written = ccg.step_core(cid, self.data, new)?;
                        self.rec.record(Counter::CcgIncrementalPatches, 1);
                        self.rec.record(Counter::CcgEdgesRebuilt, written as u64);
                    }
                }
                self.ccg = Some(ccg);
            }
            _ => {
                let ccg = Ccg::try_build(self.soc, self.data, choice)?;
                self.rec.record(Counter::CcgFullBuilds, 1);
                self.rec
                    .record(Counter::CcgEdgesRebuilt, ccg.edges().len() as u64);
                self.ccg = Some(ccg);
            }
        }
        Ok(())
    }

    /// Route stage: test-path identification for every core under test.
    /// Cores are tested one after another (episode order = declaration
    /// order); each episode gets a fresh reservation table because nothing
    /// else is in flight while a core is under test.
    ///
    /// A core under test never routes through its own transparency, so its
    /// outcome depends only on the other cores' choices; outcomes are
    /// cached under that key and replayed on revisit.
    fn route_stage(&mut self, ccg: &Ccg, choice: &[usize]) -> Result<RoutedPlan, ScheduleError> {
        let span = self.rec.begin(names::ROUTE);
        let result = self.route_stage_inner(ccg, choice);
        self.rec.end(span);
        result
    }

    fn route_stage_inner(
        &mut self,
        ccg: &Ccg,
        choice: &[usize],
    ) -> Result<RoutedPlan, ScheduleError> {
        let mut routed = RoutedPlan {
            episodes: Vec::new(),
            system_muxes: Vec::new(),
            pair_usage: HashMap::new(),
            tested_nets: HashSet::new(),
        };
        for cid in self.soc.logic_cores() {
            // The cache key: the full choice vector with the core's own
            // slot masked out (its value cannot affect the outcome).
            let mut key = choice.to_vec();
            key[cid.index()] = usize::MAX;
            if let Some(outcome) = self.route_cache.get(&(cid, key.clone())) {
                self.rec.record(Counter::RouteCacheHits, 1);
                routed.merge(outcome);
                continue;
            }
            let outcome = self.route_core(ccg, cid)?;
            routed.merge(&outcome);
            if self.route_cache.len() >= ROUTE_CACHE_CAP {
                self.route_cache.clear();
            }
            self.route_cache.insert((cid, key), outcome);
        }
        Ok(routed)
    }

    /// Routes every port of one core under test.
    fn route_core(
        &mut self,
        ccg: &Ccg,
        cid: CoreInstanceId,
    ) -> Result<CoreRouteOutcome, ScheduleError> {
        let core = self.soc.core(cid).core();
        let td = self.data[cid.index()]
            .as_ref()
            .ok_or(ScheduleError::MissingCoreData { core: cid })?;
        let mut router =
            Router::with_scratch(ccg, self.scratch.take().unwrap_or_default(), self.enforce);
        let mut outcome = CoreRouteOutcome {
            episode: CoreEpisode {
                core: cid,
                per_vector_cycles: 0,
                tail_cycles: 0,
                hscan_vectors: td.hscan_vectors() as u64,
                input_arrivals: Vec::new(),
                output_arrivals: Vec::new(),
                input_routes: Vec::new(),
                output_routes: Vec::new(),
                transit_cores: Vec::new(),
                pins: Vec::new(),
            },
            muxes: Vec::new(),
            pair_usage: Vec::new(),
            tested_nets: Vec::new(),
        };

        for p in core.input_ports() {
            let node = ccg
                .find(CcgNode::CoreIn(cid, p))
                .ok_or(ScheduleError::PortNotInCcg { core: cid, port: p })?;
            match router.route_to_input(node, cid) {
                Some(route) => {
                    outcome.absorb_route(&route);
                    outcome.episode.input_arrivals.push((p, route.arrival));
                    outcome.episode.input_routes.push(RouteItinerary {
                        port: p,
                        arrival: route.arrival,
                        pin: route.pin,
                        hops: route.hops,
                    });
                }
                None => {
                    self.rec.record(Counter::SystemMuxFallbacks, 1);
                    push_mux(
                        &mut outcome.muxes,
                        SystemMux {
                            core: cid,
                            port: p,
                            controls_input: true,
                            width: core.port(p).width(),
                        },
                    );
                    outcome.episode.input_arrivals.push((p, 0));
                    outcome.episode.input_routes.push(RouteItinerary {
                        port: p,
                        arrival: 0,
                        pin: None,
                        hops: Vec::new(),
                    });
                }
            }
        }
        for p in core.output_ports() {
            let node = ccg
                .find(CcgNode::CoreOut(cid, p))
                .ok_or(ScheduleError::PortNotInCcg { core: cid, port: p })?;
            match router.route_from_output(node, cid) {
                Some(route) => {
                    outcome.absorb_route(&route);
                    outcome.episode.output_arrivals.push((p, route.arrival));
                    outcome.episode.output_routes.push(RouteItinerary {
                        port: p,
                        arrival: route.arrival,
                        pin: route.pin,
                        hops: route.hops,
                    });
                }
                None => {
                    self.rec.record(Counter::SystemMuxFallbacks, 1);
                    push_mux(
                        &mut outcome.muxes,
                        SystemMux {
                            core: cid,
                            port: p,
                            controls_input: false,
                            width: core.port(p).width(),
                        },
                    );
                    outcome.episode.output_arrivals.push((p, 0));
                    outcome.episode.output_routes.push(RouteItinerary {
                        port: p,
                        arrival: 0,
                        pin: None,
                        hops: Vec::new(),
                    });
                }
            }
        }

        let (scratch, relaxations, attempts) = router.dismantle();
        self.scratch = Some(scratch);
        self.rec.record(Counter::DijkstraRelaxations, relaxations);
        self.rec.record(Counter::RouteAttempts, attempts);

        let ep = &mut outcome.episode;
        let max_in = ep.input_arrivals.iter().map(|(_, a)| *a).max().unwrap_or(0);
        let max_out = ep
            .output_arrivals
            .iter()
            .map(|(_, a)| *a)
            .max()
            .unwrap_or(0);
        ep.per_vector_cycles = max_in.max(max_out).max(1);
        let depth = td.hscan.sequential_depth() as u32;
        // The tail must never be zero: with `per_vector == max_in`, the last
        // vector's data is still in transit at cycle `vectors × per_vector`,
        // so a zero tail (depth-1 chains observed directly at pins) would
        // end the episode's window one cycle before its final capture —
        // and back-to-back packing would let the next episode's test mode
        // corrupt that in-flight vector (found by the replay oracle).
        ep.tail_cycles = (depth.saturating_sub(1) + max_out).max(1);
        Ok(outcome)
    }

    /// Assemble stage: chip-level overhead accounting — selected
    /// transparency versions + system muxes + test controller + clock
    /// gating — and plan normalization.
    fn assemble_stage(
        &mut self,
        choice: &[usize],
        routed: RoutedPlan,
    ) -> Result<DesignPoint, ScheduleError> {
        let mut chip_overhead = AreaReport::new();
        for cid in self.soc.logic_cores() {
            let td = self.data[cid.index()]
                .as_ref()
                .ok_or(ScheduleError::MissingCoreData { core: cid })?;
            chip_overhead += td.versions[choice[cid.index()]].overhead().clone();
        }
        for m in &routed.system_muxes {
            chip_overhead.tally(
                CellKind::Mux2,
                self.costs.system_test_mux_per_bit * u64::from(m.width),
            );
        }
        chip_overhead.tally(CellKind::And2, self.costs.test_controller_cells);
        chip_overhead.tally(
            CellKind::And2,
            self.costs.clock_gate_per_core * self.soc.logic_cores().len() as u64,
        );

        let mut usage: Vec<_> = routed.pair_usage.into_iter().collect();
        usage.sort_by_key(|((c, i, o), _)| (c.index(), i.index(), o.index()));
        let mut tested: Vec<usize> = routed.tested_nets.into_iter().collect();
        tested.sort_unstable();
        Ok(DesignPoint {
            choice: choice.to_vec(),
            chip_overhead,
            episodes: routed.episodes,
            system_muxes: routed.system_muxes,
            pair_usage: usage,
            tested_nets: tested,
        })
    }
}

impl RoutedPlan {
    /// Folds one core's routed outcome into the accumulating plan.
    fn merge(&mut self, outcome: &CoreRouteOutcome) {
        self.episodes.push(outcome.episode.clone());
        self.system_muxes.extend(outcome.muxes.iter().copied());
        for (pair, count) in &outcome.pair_usage {
            *self.pair_usage.entry(*pair).or_default() += count;
        }
        self.tested_nets.extend(outcome.tested_nets.iter().copied());
    }
}

impl CoreRouteOutcome {
    /// Folds one route's pair usage, transit cores, pins and crossed nets
    /// into this core's outcome.
    fn absorb_route(&mut self, route: &RouteResult) {
        for pair in &route.used_pairs {
            match self.pair_usage.iter_mut().find(|(p, _)| p == pair) {
                Some((_, count)) => *count += 1,
                None => self.pair_usage.push((*pair, 1)),
            }
            if !self.episode.transit_cores.contains(&pair.0) {
                self.episode.transit_cores.push(pair.0);
            }
        }
        if let Some(pin) = route.pin {
            if !self.episode.pins.contains(&pin) {
                self.episode.pins.push(pin);
            }
        }
        self.tested_nets.extend(route.crossed_nets.iter().copied());
    }
}

/// Routes and schedules the complete test of `soc` under a version choice,
/// producing a [`DesignPoint`].
///
/// One-shot wrapper over [`Scheduler`].
///
/// # Panics
///
/// Panics if a logic core lacks test data or its choice index is out of
/// range. Use [`try_schedule`] for the typed-error contract.
pub fn schedule(
    soc: &Soc,
    data: &[Option<CoreTestData>],
    choice: &[usize],
    costs: &DftCosts,
) -> DesignPoint {
    try_schedule(soc, data, choice, costs).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`schedule`].
pub fn try_schedule(
    soc: &Soc,
    data: &[Option<CoreTestData>],
    choice: &[usize],
    costs: &DftCosts,
) -> Result<DesignPoint, ScheduleError> {
    Scheduler::new(soc, data, costs).evaluate(choice)
}

/// Like [`schedule`] but with the reservation machinery switchable —
/// `reservations = false` is the ablation baseline whose per-vector times
/// ignore shared-resource serialization (and are therefore unrealizable in
/// hardware).
pub fn schedule_with(
    soc: &Soc,
    data: &[Option<CoreTestData>],
    choice: &[usize],
    costs: &DftCosts,
    reservations: bool,
) -> DesignPoint {
    Scheduler::new(soc, data, costs)
        .with_reservations(reservations)
        .evaluate(choice)
        .unwrap_or_else(|e| panic!("{e}"))
}

fn push_mux(muxes: &mut Vec<SystemMux>, m: SystemMux) {
    if !muxes
        .iter()
        .any(|x| x.core == m.core && x.port == m.port && x.controls_input == m.controls_input)
    {
        muxes.push(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_hscan::insert_hscan;
    use socet_rtl::{CoreBuilder, Direction, SocBuilder};
    use socet_transparency::synthesize_versions;
    use std::sync::Arc;

    fn data_for(core: &socet_rtl::Core, vectors: usize) -> CoreTestData {
        let costs = DftCosts::default();
        let hscan = insert_hscan(core, &costs);
        let versions = synthesize_versions(core, &hscan, &costs);
        CoreTestData {
            versions,
            hscan,
            scan_vectors: vectors,
        }
    }

    fn buf_core(name: &str, depth: usize) -> Arc<socet_rtl::Core> {
        let mut b = CoreBuilder::new(name);
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let regs: Vec<_> = (0..depth)
            .map(|k| b.register(&format!("r{k}"), 8).unwrap())
            .collect();
        b.connect_port_to_reg(i, regs[0]).unwrap();
        for w in regs.windows(2) {
            b.connect_reg_to_reg(w[0], w[1]).unwrap();
        }
        b.connect_reg_to_port(regs[depth - 1], o).unwrap();
        Arc::new(b.build().unwrap())
    }

    /// PI -> u0 -> u1 -> PO; u1's input is only reachable through u0.
    fn chain_soc(depth: usize) -> (Soc, Vec<Option<CoreTestData>>) {
        let core = buf_core("buf", depth);
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_cores(u0, o, u1, i).unwrap();
        sb.connect_core_to_pin(u1, o, po).unwrap();
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&core, 10)), Some(data_for(&core, 10))];
        (soc, data)
    }

    #[test]
    fn embedded_core_pays_upstream_latency() {
        let (soc, data) = chain_soc(3);
        let dp = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        assert_eq!(dp.episodes.len(), 2);
        // u0's input is a PI (arrival 0 -> per-vector 1)... but u0's output
        // must travel through u1 (3-deep): per-vector = 3.
        let ep0 = &dp.episodes[0];
        assert_eq!(ep0.per_vector_cycles, 3);
        // u1's input arrives through u0 (3 cycles); outputs are POs.
        let ep1 = &dp.episodes[1];
        assert_eq!(ep1.per_vector_cycles, 3);
        assert!(dp.system_muxes.is_empty());
    }

    #[test]
    fn min_latency_versions_cut_tat() {
        let (soc, data) = chain_soc(4);
        let costs = DftCosts::default();
        let slow = schedule(&soc, &data, &[0, 0], &costs);
        let fast = schedule(&soc, &data, &[2, 2], &costs);
        assert!(
            fast.test_application_time() < slow.test_application_time(),
            "fast {} !< slow {}",
            fast.test_application_time(),
            slow.test_application_time()
        );
        // And the fast point costs more area.
        let lib = socet_cells::CellLibrary::generic_08um();
        assert!(fast.overhead_cells(&lib) > slow.overhead_cells(&lib));
    }

    #[test]
    fn unreachable_port_gets_system_mux() {
        // u0 feeds u1, but u1's output goes nowhere (no PO, no consumer):
        // observing u1 needs a system mux; u0's output is observable only
        // through u1 -> also a mux for u0's output.
        let core = buf_core("buf", 2);
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_pin_to_core(pi, u1, i).unwrap();
        sb.connect_core_to_pin(u0, o, po).unwrap();
        // u1's output dangles at chip level (allowed: the net list only
        // requires the instance to be touched).
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&core, 5)), Some(data_for(&core, 5))];
        let dp = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        assert_eq!(dp.system_muxes.len(), 1);
        let m = dp.system_muxes[0];
        assert_eq!(m.core, u1);
        assert!(!m.controls_input);
    }

    #[test]
    fn unreachable_input_gets_control_mux() {
        // A core whose input is fed by nothing routable: needs an input-side
        // system mux.
        let core = buf_core("buf", 2);
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let po2 = sb.output_pin("po2", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_core_to_pin(u0, o, po).unwrap();
        // u1's input dangles; its output is pinned out.
        sb.connect_core_to_pin(u1, o, po2).unwrap();
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&core, 5)), Some(data_for(&core, 5))];
        let dp = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        let m = dp
            .system_muxes
            .iter()
            .find(|m| m.core == u1)
            .expect("u1 needs a mux");
        assert!(m.controls_input);
        assert_eq!(m.width, 8);
    }

    #[test]
    fn per_vector_cycles_never_below_one() {
        let (soc, data) = chain_soc(1);
        let dp = schedule(&soc, &data, &[2, 2], &DftCosts::default());
        for ep in &dp.episodes {
            assert!(ep.per_vector_cycles >= 1);
        }
    }

    #[test]
    fn core_under_test_never_transits_itself() {
        let (soc, data) = chain_soc(3);
        let dp = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        for ep in &dp.episodes {
            assert!(
                !ep.transit_cores.contains(&ep.core),
                "{} routed through itself",
                ep.core
            );
        }
    }

    #[test]
    fn pair_usage_counts_transits() {
        let (soc, data) = chain_soc(2);
        let dp = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        // u1 is used to observe u0's output; u0 is used to control u1's
        // input: both cores' (i, o) pair is used exactly once.
        assert_eq!(dp.pair_usage.len(), 2);
        for (_, count) in &dp.pair_usage {
            assert_eq!(*count, 1);
        }
    }

    #[test]
    fn reservation_serializes_shared_resources() {
        // One upstream core fans out to a two-input consumer: both inputs
        // justify through the same upstream transparency path, so the
        // second waits.
        let up = buf_core("up", 1);
        let ui = up.find_port("i").unwrap();
        let uo = up.find_port("o").unwrap();
        let mut b = CoreBuilder::new("two_in");
        let a = b.port("a", Direction::In, 8).unwrap();
        let c = b.port("c", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let ra = b.register("ra", 8).unwrap();
        let rc = b.register("rc", 8).unwrap();
        b.connect_mux(socet_rtl::RtlNode::Port(a), socet_rtl::RtlNode::Reg(ra), 0)
            .unwrap();
        b.connect_port_to_reg(c, rc).unwrap();
        b.connect_reg_to_port(ra, o).unwrap();
        // rc reaches o through ra's other mux leg.
        b.connect_mux(socet_rtl::RtlNode::Reg(rc), socet_rtl::RtlNode::Reg(ra), 1)
            .unwrap();
        let two = Arc::new(b.build().unwrap());
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("up", up.clone()).unwrap();
        let u1 = sb.instantiate("two", two.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, ui).unwrap();
        sb.connect_cores(u0, uo, u1, a).unwrap();
        sb.connect_cores(u0, uo, u1, c).unwrap();
        sb.connect_core_to_pin(u1, o, po).unwrap();
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&up, 5)), Some(data_for(&two, 5))];
        let dp = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        let ep1 = &dp.episodes[1];
        // Input a arrives after 1 cycle (through `up`); input c must wait
        // for the shared path: arrival 2.
        let arrivals: Vec<u32> = ep1.input_arrivals.iter().map(|(_, t)| *t).collect();
        assert_eq!(arrivals, vec![1, 2]);
        assert_eq!(ep1.per_vector_cycles, 2);
    }

    #[test]
    fn try_schedule_reports_missing_data_instead_of_panicking() {
        let (soc, mut data) = chain_soc(2);
        data[1] = None;
        let err = try_schedule(&soc, &data, &[0, 0], &DftCosts::default());
        assert!(matches!(
            err,
            Err(ScheduleError::MissingCoreData { core }) if core.index() == 1
        ));
    }

    #[test]
    fn try_schedule_reports_out_of_range_choice() {
        let (soc, data) = chain_soc(2);
        let err = try_schedule(&soc, &data, &[0, 9], &DftCosts::default());
        assert!(matches!(
            err,
            Err(ScheduleError::ChoiceOutOfRange {
                choice: 9,
                versions: 3,
                ..
            })
        ));
    }

    #[test]
    fn try_schedule_reports_short_choice_vector() {
        let (soc, data) = chain_soc(2);
        let err = try_schedule(&soc, &data, &[0], &DftCosts::default());
        assert!(matches!(
            err,
            Err(ScheduleError::ChoiceLengthMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn reused_scheduler_matches_one_shot_schedules() {
        let (soc, data) = chain_soc(3);
        let costs = DftCosts::default();
        let mut sched = Scheduler::new(&soc, &data, &costs);
        // Walk a version ladder up and back down with one engine; every
        // point must be bit-identical to a fresh one-shot schedule.
        for choice in [[0, 0], [1, 0], [1, 2], [0, 2], [0, 0]] {
            let reused = sched.evaluate(&choice).unwrap();
            let fresh = schedule(&soc, &data, &choice, &costs);
            assert_eq!(format!("{reused:?}"), format!("{fresh:?}"), "at {choice:?}");
        }
        let m = sched.metrics();
        assert_eq!(m.evaluations, 5);
        assert_eq!(m.ccg_full_builds, 1);
        // Four follow-up evaluations, each stepping one or two cores.
        assert!(m.ccg_incremental_patches >= 4, "{m}");
        assert!(m.route_attempts > 0);
        assert!(m.dijkstra_relaxations > 0);
    }

    #[test]
    fn scheduler_recovers_after_error() {
        let (soc, data) = chain_soc(2);
        let costs = DftCosts::default();
        let mut sched = Scheduler::new(&soc, &data, &costs);
        assert!(sched.evaluate(&[0, 0]).is_ok());
        assert!(sched.evaluate(&[0, 99]).is_err());
        // The engine must full-rebuild after a failed patch, not reuse a
        // half-patched graph.
        let dp = sched.evaluate(&[1, 1]).unwrap();
        let fresh = schedule(&soc, &data, &[1, 1], &costs);
        assert_eq!(format!("{dp:?}"), format!("{fresh:?}"));
    }
}
