//! Parallel test scheduling — an extension beyond the paper.
//!
//! The paper tests cores strictly one after another (global TAT is the sum
//! of the episodes). But two episodes whose *resources* are disjoint —
//! neither tests or routes through a core the other needs, and they touch
//! different chip pins — can run concurrently under independent core
//! clocks. [`parallelize`] packs a routed [`DesignPoint`]'s episodes with
//! greedy longest-first list scheduling and reports the resulting makespan;
//! the `ablation_parallel` bench quantifies the gain.

use crate::plan::{CoreEpisode, DesignPoint};
use socet_rtl::{ChipPinId, CoreInstanceId, Soc};
use std::fmt;

/// One resource an episode occupies for its whole duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum EpisodeResource {
    /// A core: under test or carrying transparency traffic.
    Core(CoreInstanceId),
    /// A chip pin driven or observed.
    Pin(ChipPinId),
}

fn resources_of(ep: &CoreEpisode) -> Vec<EpisodeResource> {
    let mut v = vec![EpisodeResource::Core(ep.core)];
    for c in &ep.transit_cores {
        v.push(EpisodeResource::Core(*c));
    }
    for p in &ep.pins {
        v.push(EpisodeResource::Pin(*p));
    }
    v
}

/// A concurrent packing of a design point's episodes.
#[derive(Debug, Clone)]
pub struct ParallelSchedule {
    /// `(core, start cycle, end cycle)` per episode, in start order.
    pub windows: Vec<(CoreInstanceId, u64, u64)>,
    /// Total cycles until the last episode finishes.
    pub makespan: u64,
    /// The serial TAT the paper would report, for comparison.
    pub serial_tat: u64,
}

impl ParallelSchedule {
    /// Speedup of the parallel packing over the paper's serial order.
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            1.0
        } else {
            self.serial_tat as f64 / self.makespan as f64
        }
    }
}

impl fmt::Display for ParallelSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parallel schedule: {} episodes, makespan {} (serial {}, x{:.2})",
            self.windows.len(),
            self.makespan,
            self.serial_tat,
            self.speedup()
        )
    }
}

/// Packs `plan`'s episodes concurrently wherever their resource sets are
/// disjoint.
///
/// Greedy longest-processing-time list scheduling: episodes are sorted by
/// duration (longest first) and each is placed at the earliest cycle where
/// no already-placed, time-overlapping episode shares a resource with it.
/// The result never exceeds the serial TAT and equals it exactly when every
/// pair of episodes conflicts (e.g. a linear chain of cores, where each
/// core's test routes through the others).
///
/// # Examples
///
/// See `examples/design_space_exploration.rs` and the
/// `schedule/parallel_vs_serial` bench.
pub fn parallelize(soc: &Soc, plan: &DesignPoint) -> ParallelSchedule {
    let _ = soc; // reserved for future pin-capacity modelling
    let mut order: Vec<&CoreEpisode> = plan.episodes.iter().collect();
    order.sort_by_key(|e| std::cmp::Reverse(e.test_time()));

    let mut placed: Vec<(u64, u64, Vec<EpisodeResource>, CoreInstanceId)> = Vec::new();
    for ep in order {
        let res = resources_of(ep);
        let dur = ep.test_time();
        // Candidate start times: 0 and the end of every placed episode.
        let mut candidates: Vec<u64> = std::iter::once(0)
            .chain(placed.iter().map(|(_, end, _, _)| *end))
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        let start = candidates
            .into_iter()
            .find(|&s| {
                placed.iter().all(|(ps, pe, pres, _)| {
                    let overlaps = s < *pe && *ps < s + dur;
                    !overlaps || !pres.iter().any(|r| res.contains(r))
                })
            })
            .expect("time 0 after every placed episode always exists");
        placed.push((start, start + dur, res, ep.core));
    }
    placed.sort_by_key(|(s, ..)| *s);
    let makespan = placed.iter().map(|(_, e, _, _)| *e).max().unwrap_or(0);
    ParallelSchedule {
        windows: placed
            .iter()
            .map(|(s, e, _, core)| (*core, *s, *e))
            .collect(),
        makespan,
        serial_tat: plan.test_application_time(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CoreTestData;
    use crate::schedule::schedule;
    use socet_cells::DftCosts;
    use socet_hscan::insert_hscan;
    use socet_rtl::{CoreBuilder, Direction, SocBuilder};
    use socet_transparency::synthesize_versions;
    use std::sync::Arc;

    fn buf_core() -> Arc<socet_rtl::Core> {
        let mut b = CoreBuilder::new("buf");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        Arc::new(b.build().unwrap())
    }

    fn data_for(core: &socet_rtl::Core, vectors: usize) -> CoreTestData {
        let costs = DftCosts::default();
        let hscan = insert_hscan(core, &costs);
        CoreTestData {
            versions: synthesize_versions(core, &hscan, &costs),
            hscan,
            scan_vectors: vectors,
        }
    }

    #[test]
    fn independent_cores_run_concurrently() {
        // Two cores, each with its own pins: fully parallel.
        let core = buf_core();
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi0 = sb.input_pin("pi0", 8).unwrap();
        let pi1 = sb.input_pin("pi1", 8).unwrap();
        let po0 = sb.output_pin("po0", 8).unwrap();
        let po1 = sb.output_pin("po1", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi0, u0, i).unwrap();
        sb.connect_pin_to_core(pi1, u1, i).unwrap();
        sb.connect_core_to_pin(u0, o, po0).unwrap();
        sb.connect_core_to_pin(u1, o, po1).unwrap();
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&core, 10)), Some(data_for(&core, 10))];
        let plan = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        let par = parallelize(&soc, &plan);
        assert!(
            par.makespan < par.serial_tat,
            "independent episodes should overlap: {par}"
        );
        assert!((par.speedup() - 2.0).abs() < 0.2, "{par}");
    }

    #[test]
    fn chained_cores_stay_serial() {
        // u0 feeds u1: testing either uses the other -> full conflict.
        let core = buf_core();
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_cores(u0, o, u1, i).unwrap();
        sb.connect_core_to_pin(u1, o, po).unwrap();
        let soc = sb.build().unwrap();
        let data = vec![Some(data_for(&core, 10)), Some(data_for(&core, 10))];
        let plan = schedule(&soc, &data, &[0, 0], &DftCosts::default());
        let par = parallelize(&soc, &plan);
        assert_eq!(par.makespan, par.serial_tat, "{par}");
    }

    #[test]
    fn makespan_never_exceeds_serial() {
        let soc = socet_socs::barcode_system();
        let costs = DftCosts::default();
        let data: Vec<Option<CoreTestData>> = soc
            .cores()
            .iter()
            .map(|inst| {
                if inst.is_memory() {
                    None
                } else {
                    Some(data_for(inst.core(), 20))
                }
            })
            .collect();
        let plan = schedule(&soc, &data, &vec![0; soc.cores().len()], &costs);
        let par = parallelize(&soc, &plan);
        assert!(par.makespan <= par.serial_tat);
        // Windows don't overlap when they share resources.
        for (k, (c1, s1, e1)) in par.windows.iter().enumerate() {
            for (c2, s2, e2) in par.windows.iter().skip(k + 1) {
                if c1 == c2 {
                    continue;
                }
                let overlap = s1 < e2 && s2 < e1;
                if overlap {
                    let ep1 = plan.episodes.iter().find(|e| e.core == *c1).unwrap();
                    let ep2 = plan.episodes.iter().find(|e| e.core == *c2).unwrap();
                    let r1 = resources_of(ep1);
                    let r2 = resources_of(ep2);
                    assert!(!r1.iter().any(|r| r2.contains(r)), "conflicting overlap");
                }
            }
        }
    }
}
