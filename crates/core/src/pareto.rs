//! Pareto-front extraction and weighted scalarization over the design
//! space — the natural generalization of the paper's two objectives.
//!
//! The paper's §5 cost function `C = w1·ΔTAT + w2·ΔA` only ever uses the
//! two corner settings `(1, 0)` and `(0, 1)`. This module exposes the full
//! dial: [`pareto_front`] filters a swept design space down to its
//! non-dominated points, and [`best_weighted`] picks the point minimizing
//! an arbitrary `w1·TAT + w2·Area` blend.

use crate::plan::DesignPoint;
use socet_cells::CellLibrary;

/// The non-dominated subset of `points` under (area overhead, test
/// application time), sorted by increasing area.
///
/// A point dominates another when it is no worse on both axes and strictly
/// better on at least one.
///
/// # Examples
///
/// ```no_run
/// use socet_core::{Explorer, pareto::pareto_front};
/// # fn demo(explorer: &Explorer<'_>) {
/// let swept = explorer.sweep();
/// let front = pareto_front(&swept);
/// assert!(front.len() <= swept.len());
/// # }
/// ```
pub fn pareto_front(points: &[DesignPoint]) -> Vec<&DesignPoint> {
    let lib = CellLibrary::generic_08um();
    let mut front: Vec<&DesignPoint> = Vec::new();
    for p in points {
        let pa = p.overhead_cells(&lib);
        let pt = p.test_application_time();
        let dominated = points.iter().any(|q| {
            let qa = q.overhead_cells(&lib);
            let qt = q.test_application_time();
            (qa < pa && qt <= pt) || (qa <= pa && qt < pt)
        });
        if !dominated {
            // Deduplicate cost-identical points.
            if !front
                .iter()
                .any(|f| f.overhead_cells(&lib) == pa && f.test_application_time() == pt)
            {
                front.push(p);
            }
        }
    }
    front.sort_by_key(|p| (p.overhead_cells(&lib), p.test_application_time()));
    front
}

/// The point of `points` minimizing `w_tat·TAT + w_area·Area`, ties broken
/// toward lower area. Returns `None` for an empty slice.
///
/// With `w_tat = 1, w_area = 0` this is the unconstrained version of the
/// paper's objective (i); with `w_tat = 0, w_area = 1`, of objective (ii).
pub fn best_weighted(points: &[DesignPoint], w_tat: f64, w_area: f64) -> Option<&DesignPoint> {
    let lib = CellLibrary::generic_08um();
    points.iter().min_by(|a, b| {
        let score = |p: &DesignPoint| {
            w_tat * p.test_application_time() as f64 + w_area * p.overhead_cells(&lib) as f64
        };
        score(a)
            .partial_cmp(&score(b))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.overhead_cells(&lib).cmp(&b.overhead_cells(&lib)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::plan::CoreTestData;
    use socet_cells::DftCosts;
    use socet_hscan::insert_hscan;
    use socet_rtl::{CoreBuilder, Direction, SocBuilder};
    use socet_transparency::synthesize_versions;
    use std::sync::Arc;

    fn setup() -> (socet_rtl::Soc, Vec<Option<CoreTestData>>) {
        let mut b = CoreBuilder::new("pipe");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        let r3 = b.register("r3", 8).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_reg_to_reg(r1, r2).unwrap();
        b.connect_reg_to_reg(r2, r3).unwrap();
        b.connect_reg_to_port(r3, o).unwrap();
        let core = Arc::new(b.build().unwrap());
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_cores(u0, o, u1, i).unwrap();
        sb.connect_core_to_pin(u1, o, po).unwrap();
        let soc = sb.build().unwrap();
        let costs = DftCosts::default();
        let hscan = insert_hscan(&core, &costs);
        let td = CoreTestData {
            versions: synthesize_versions(&core, &hscan, &costs),
            hscan,
            scan_vectors: 25,
        };
        (soc, vec![Some(td.clone()), Some(td)])
    }

    #[test]
    fn front_is_non_dominated_and_sorted() {
        let (soc, data) = setup();
        let explorer = Explorer::new(&soc, &data, DftCosts::default());
        let points = explorer.sweep();
        let front = pareto_front(&points);
        let lib = CellLibrary::generic_08um();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].overhead_cells(&lib) < w[1].overhead_cells(&lib));
            assert!(w[0].test_application_time() > w[1].test_application_time());
        }
        // No swept point dominates a front point.
        for f in &front {
            for p in &points {
                let better_area = p.overhead_cells(&lib) < f.overhead_cells(&lib);
                let better_tat = p.test_application_time() < f.test_application_time();
                let no_worse = p.overhead_cells(&lib) <= f.overhead_cells(&lib)
                    && p.test_application_time() <= f.test_application_time();
                assert!(!(no_worse && (better_area || better_tat)));
            }
        }
    }

    #[test]
    fn corner_weights_match_extremes() {
        let (soc, data) = setup();
        let explorer = Explorer::new(&soc, &data, DftCosts::default());
        let points = explorer.sweep();
        let lib = CellLibrary::generic_08um();
        let min_tat = best_weighted(&points, 1.0, 0.0).unwrap();
        assert_eq!(
            min_tat.test_application_time(),
            points
                .iter()
                .map(|p| p.test_application_time())
                .min()
                .unwrap()
        );
        let min_area = best_weighted(&points, 0.0, 1.0).unwrap();
        assert_eq!(
            min_area.overhead_cells(&lib),
            points.iter().map(|p| p.overhead_cells(&lib)).min().unwrap()
        );
    }

    #[test]
    fn empty_input_yields_none_or_empty() {
        assert!(best_weighted(&[], 1.0, 1.0).is_none());
        assert!(pareto_front(&[]).is_empty());
    }
}
