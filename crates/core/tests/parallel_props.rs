//! Property tests of the parallel packer ([`socet_core::parallelize`]):
//! on a population of seeded synthetic SOCs, every packed schedule keeps
//! time-overlapping episodes resource-disjoint and never takes longer
//! than the paper's serial order.

use proptest::prelude::*;
use socet_cells::DftCosts;
use socet_core::{parallelize, try_schedule, CoreEpisode, CoreTestData, DesignPoint};
use socet_hscan::insert_hscan;
use socet_rtl::Soc;
use socet_socs::SocSpec;
use socet_transparency::try_synthesize_versions;

/// Mirrors the packer's private resource model: an episode occupies its
/// CUT, every transit core, and every chip pin it drives or observes.
fn resources(ep: &CoreEpisode) -> Vec<(u8, usize)> {
    let mut v = vec![(0u8, ep.core.index())];
    v.extend(ep.transit_cores.iter().map(|c| (0u8, c.index())));
    v.extend(ep.pins.iter().map(|p| (1u8, p.index())));
    v
}

/// Prepares and schedules a synthetic SOC at the all-default design point.
/// Returns `None` when the spec is legitimately unschedulable (no routes,
/// version synthesis fails) — those seeds are skipped, not failed.
fn plan_for(spec: &SocSpec) -> Option<(Soc, DesignPoint)> {
    let soc = spec.build();
    let costs = DftCosts::default();
    let mut data: Vec<Option<CoreTestData>> = Vec::new();
    for inst in soc.cores() {
        if inst.is_memory() {
            data.push(None);
            continue;
        }
        let hscan = insert_hscan(inst.core(), &costs);
        let versions = try_synthesize_versions(inst.core(), &hscan, &costs).ok()?;
        data.push(Some(CoreTestData {
            versions,
            hscan,
            scan_vectors: 4,
        }));
    }
    let choice = vec![0; soc.cores().len()];
    let plan = try_schedule(&soc, &data, &choice, &costs).ok()?;
    Some((soc, plan))
}

fn assert_packing_sound(soc: &Soc, plan: &DesignPoint) {
    let par = parallelize(soc, plan);
    assert!(
        par.makespan <= par.serial_tat,
        "packed TAT {} exceeds serial {} on {}",
        par.makespan,
        par.serial_tat,
        soc.name()
    );
    assert_eq!(par.windows.len(), plan.episodes.len());
    // Every episode's window is exactly its test time.
    for (core, start, end) in &par.windows {
        let ep = plan.episodes.iter().find(|e| e.core == *core).unwrap();
        assert_eq!(end - start, ep.test_time(), "window length for {core}");
    }
    // Pairwise: overlapping windows must have disjoint resource sets.
    for (k, (c1, s1, e1)) in par.windows.iter().enumerate() {
        for (c2, s2, e2) in par.windows.iter().skip(k + 1) {
            if s1 >= e2 || s2 >= e1 {
                continue; // no time overlap
            }
            let ep1 = plan.episodes.iter().find(|e| e.core == *c1).unwrap();
            let ep2 = plan.episodes.iter().find(|e| e.core == *c2).unwrap();
            let r1 = resources(ep1);
            let shared: Vec<_> = resources(ep2)
                .into_iter()
                .filter(|r| r1.contains(r))
                .collect();
            assert!(
                shared.is_empty(),
                "episodes {c1} and {c2} overlap in time ({s1}..{e1} vs {s2}..{e2}) \
                 sharing resources {shared:?} on {}",
                soc.name()
            );
        }
    }
}

/// The headline sweep: 100 seeded synthetic SOCs, every schedulable one
/// packs soundly. A floor on schedulable seeds guards against the skip
/// path silently swallowing the whole population.
#[test]
fn hundred_synthetic_socs_pack_soundly() {
    let mut scheduled = 0u32;
    for seed in 1..=100u64 {
        let spec = SocSpec::random(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Some((soc, plan)) = plan_for(&spec) {
            assert_packing_sound(&soc, &plan);
            scheduled += 1;
        }
    }
    assert!(scheduled >= 60, "only {scheduled}/100 seeds schedulable");
}

#[test]
fn paper_systems_pack_soundly() {
    for soc in [socet_socs::barcode_system(), socet_socs::system2()] {
        let costs = DftCosts::default();
        let data: Vec<Option<CoreTestData>> = soc
            .cores()
            .iter()
            .map(|inst| {
                if inst.is_memory() {
                    return None;
                }
                let hscan = insert_hscan(inst.core(), &costs);
                Some(CoreTestData {
                    versions: try_synthesize_versions(inst.core(), &hscan, &costs).unwrap(),
                    hscan,
                    scan_vectors: 20,
                })
            })
            .collect();
        let choice = vec![0; soc.cores().len()];
        let plan = try_schedule(&soc, &data, &choice, &costs).unwrap();
        assert_packing_sound(&soc, &plan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same invariants under proptest's seed exploration, plus shrinking
    /// to a small offending spec if one ever appears.
    #[test]
    fn packed_schedules_stay_sound(seed in 1u64..u64::MAX) {
        if let Some((soc, plan)) = plan_for(&SocSpec::random(seed)) {
            let par = parallelize(&soc, &plan);
            prop_assert!(par.makespan <= par.serial_tat);
            assert_packing_sound(&soc, &plan);
        }
    }
}
