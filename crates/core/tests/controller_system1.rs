//! Cycle-accurate cross-check of the synthesized test controller against
//! the tester drive programs for the full System 1 plan: every episode
//! enable matches its serial window on every cycle, every tester drive
//! lands inside its episode's enable window, the counter saturates past
//! `done` (no wrap re-asserting episode 0), and the Verilog export of the
//! controller survives a hand-written structural re-parse.

use socet_cells::DftCosts;
use socet_core::tester::{tester_program, validate_program};
use socet_core::{build_controller, try_schedule, CoreTestData, DesignPoint};
use socet_gate::export::to_verilog;
use socet_gate::CombSim;
use socet_hscan::insert_hscan;
use socet_rtl::Soc;
use socet_transparency::try_synthesize_versions;

fn system1_plan() -> (Soc, DesignPoint) {
    let soc = socet_socs::barcode_system();
    let costs = DftCosts::default();
    let data: Vec<Option<CoreTestData>> = soc
        .cores()
        .iter()
        .map(|inst| {
            if inst.is_memory() {
                return None;
            }
            let hscan = insert_hscan(inst.core(), &costs);
            Some(CoreTestData {
                versions: try_synthesize_versions(inst.core(), &hscan, &costs).unwrap(),
                hscan,
                scan_vectors: 10,
            })
        })
        .collect();
    let choice = vec![0; soc.cores().len()];
    let plan = try_schedule(&soc, &data, &choice, &costs).unwrap();
    (soc, plan)
}

/// Simulates the controller for `cycles` cycles (reset low) and returns
/// the per-cycle output trace.
fn trace(ctrl: &socet_core::TestController, cycles: u64) -> Vec<Vec<bool>> {
    let sim = CombSim::new(&ctrl.netlist);
    let mut state = vec![false; ctrl.netlist.flip_flop_count()];
    let mut rows = Vec::with_capacity(cycles as usize);
    for _ in 0..cycles {
        let (outs, next) = sim.run_with_state(&[false], &state);
        rows.push(outs);
        state = next;
    }
    rows
}

#[test]
fn controller_matches_tester_programs_on_system1() {
    let (soc, plan) = system1_plan();
    let ctrl = build_controller(&soc, &plan).unwrap();
    let total = plan.test_application_time();
    assert!(total > 0);

    // The controller's windows are exactly the plan's serial offsets.
    let mut offset = 0u64;
    assert_eq!(ctrl.windows.len(), plan.episodes.len());
    for (ep, (core, start, end)) in plan.episodes.iter().zip(&ctrl.windows) {
        assert_eq!(*core, ep.core);
        assert_eq!(*start, offset);
        assert_eq!(*end, offset + ep.test_time());
        offset = *end;
    }
    assert_eq!(offset, total);

    // Simulate far enough past `done` to cross the counter's power-of-two
    // boundary: a wrapping counter would re-assert episode 0 there.
    let horizon = (1u64 << ctrl.counter_bits) + 8;
    let rows = trace(&ctrl, horizon);
    for (cycle, outs) in rows.iter().enumerate() {
        let cycle = cycle as u64;
        for (k, (core, start, end)) in ctrl.windows.iter().enumerate() {
            assert_eq!(
                outs[k],
                cycle >= *start && cycle < *end,
                "cycle {cycle}: enable for {core} (window {start}..{end})"
            );
        }
        assert_eq!(
            outs[ctrl.windows.len()],
            cycle >= total,
            "cycle {cycle}: done"
        );
    }

    // Every episode's tester program validates, and each drive lands on a
    // cycle where the simulated controller asserts that episode's enable.
    for (k, ep) in plan.episodes.iter().enumerate() {
        let program = tester_program(&soc, ep);
        assert_eq!(program.length, ep.test_time());
        assert_eq!(validate_program(ep, &program), None);
        let (_, start, end) = ctrl.windows[k];
        for d in &program.drives {
            let abs = start + d.cycle;
            assert!(abs < end, "drive past window end");
            assert!(
                rows[abs as usize][k],
                "drive for vector {} at absolute cycle {abs} outside enable",
                d.vector
            );
        }
    }
}

#[test]
fn controller_verilog_reparses_structurally() {
    let (soc, plan) = system1_plan();
    let ctrl = build_controller(&soc, &plan).unwrap();
    let v = to_verilog(&ctrl.netlist);

    // Header: one module, one clk, the reset input, every enable output
    // plus done, one endmodule.
    assert_eq!(
        v.matches("module ").count() - v.matches("endmodule").count(),
        0
    );
    assert!(v.contains("module test_controller("));
    assert!(v.contains("input wire clk"));
    assert!(v.contains("input wire reset"));
    for (core, ..) in &ctrl.windows {
        let name = format!("output wire test_en_{}", soc.core(*core).name());
        assert!(v.contains(&name), "missing {name}");
    }
    assert!(v.contains("output wire done"));
    assert_eq!(v.matches("endmodule").count(), 1);

    // Hand-rolled re-parse (no Verilog parser in-tree): collect every
    // defined name (wire/reg declarations) and every assigned name, then
    // check each reg gets exactly one non-blocking assignment and each
    // assigned wire was declared.
    let mut regs = Vec::new();
    let mut wires = Vec::new();
    let mut assigned = Vec::new();
    let mut clocked = Vec::new();
    for line in v.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("reg ") {
            regs.push(rest.trim_end_matches(';').to_owned());
        } else if let Some(rest) = line.strip_prefix("wire ") {
            wires.push(rest.trim_end_matches(';').to_owned());
        } else if let Some(rest) = line.strip_prefix("assign ") {
            assigned.push(rest.split('=').next().unwrap().trim().to_owned());
        } else if let Some((lhs, _)) = line.split_once(" <= ") {
            clocked.push(lhs.trim().to_owned());
        }
    }
    assert_eq!(
        regs.len(),
        ctrl.netlist.flip_flop_count(),
        "one reg per flip-flop"
    );
    assert_eq!(clocked.len(), regs.len(), "one <= per reg");
    for r in &regs {
        assert_eq!(clocked.iter().filter(|c| *c == r).count(), 1, "reg {r}");
        assert!(!assigned.contains(r), "reg {r} also continuously assigned");
    }
    // Every internal wire is driven exactly once; output-port assigns bind
    // names declared in the header rather than as wires.
    for w in &wires {
        assert_eq!(
            assigned.iter().filter(|a| *a == w).count(),
            1,
            "wire {w} not driven exactly once"
        );
    }
    let n_outputs = ctrl.windows.len() + 1;
    assert_eq!(assigned.len(), wires.len() + n_outputs);
    // All identifiers are legal Verilog names.
    for name in regs.iter().chain(&wires).chain(&assigned) {
        assert!(
            name.chars().all(|c| c.is_alphanumeric() || c == '_'),
            "bad identifier {name}"
        );
    }
}
