//! Standard-cell library and area model for the SOCET workspace.
//!
//! The DAC'98 paper reports every area number in *cells* — the cell count of
//! the design after technology mapping with a .8µm library using an in-house
//! synthesis tool. This crate is the stand-in for that library and tool's
//! accounting side: it defines the cell kinds the rest of the workspace maps
//! RTL constructs onto, the per-kind area, and the [`AreaReport`] bookkeeping
//! used by the DFT engines to report overheads.
//!
//! # Examples
//!
//! ```
//! use socet_cells::{CellKind, CellLibrary, AreaReport};
//!
//! let lib = CellLibrary::generic_08um();
//! let mut area = AreaReport::new();
//! area.tally(CellKind::Mux2, 8); // an 8-bit 2:1 multiplexer
//! area.tally(CellKind::Dff, 8);  // an 8-bit register
//! assert_eq!(area.cells(&lib), 8 * u64::from(lib.area_of(CellKind::Mux2))
//!     + 8 * u64::from(lib.area_of(CellKind::Dff)));
//! ```

pub mod codec;
pub mod library;
pub mod report;

pub use codec::{
    decode_area_report, encode_area_report, CodecError, Dec, Enc, Fingerprint, StableHasher,
};
pub use library::{CellKind, CellLibrary};
pub use report::{AreaReport, DftCosts};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_are_usable() {
        let lib = CellLibrary::generic_08um();
        assert!(lib.area_of(CellKind::ScanDff) > lib.area_of(CellKind::Inv));
    }
}
