//! Cell kinds and the per-kind area table.
//!
//! Areas are expressed in abstract *cell units*: the paper counts mapped
//! cells, so a simple gate is one unit and wider structures scale with their
//! gate decomposition. The default [`CellLibrary::generic_08um`] table mirrors
//! a typical .8µm standard-cell offering.

use std::fmt;

/// The kinds of cells the SOCET tool-chain maps RTL constructs onto.
///
/// The set is deliberately small — it is what a mid-90s synthesis flow would
/// target for datapath + control logic, plus the DFT-specific cells (scan
/// flip-flops, boundary-scan cells) the paper's comparisons require.
///
/// # Examples
///
/// ```
/// use socet_cells::CellKind;
/// assert_eq!(CellKind::Mux2.to_string(), "MUX2");
/// assert!(CellKind::ALL.contains(&CellKind::ScanDff));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2:1 multiplexer (one bit).
    Mux2,
    /// D flip-flop (one bit).
    Dff,
    /// Scan-equipped D flip-flop (one bit); integrates the test mux.
    ScanDff,
    /// Boundary-scan cell (one bit), used by the FSCAN-BSCAN baseline.
    BscanCell,
    /// Transparent latch (one bit), used by freeze/hold structures.
    Latch,
    /// Full adder bit, the unit of ripple datapath operators.
    FullAdder,
    /// Tri-state buffer (one bit), used for bus interconnect.
    Tribuf,
}

impl CellKind {
    /// Every cell kind, in a stable order.
    pub const ALL: [CellKind; 13] = [
        CellKind::Inv,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Mux2,
        CellKind::Dff,
        CellKind::ScanDff,
        CellKind::BscanCell,
        CellKind::Latch,
        CellKind::FullAdder,
        CellKind::Tribuf,
    ];

    /// Short library name of the cell, e.g. `"NAND2"`.
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(socet_cells::CellKind::Dff.name(), "DFF");
    /// ```
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "INV",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Dff => "DFF",
            CellKind::ScanDff => "SDFF",
            CellKind::BscanCell => "BSC",
            CellKind::Latch => "LATCH",
            CellKind::FullAdder => "FA",
            CellKind::Tribuf => "TRIBUF",
        }
    }

    /// Whether the cell is sequential (holds state across clock edges).
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_cells::CellKind;
    /// assert!(CellKind::Dff.is_sequential());
    /// assert!(!CellKind::Mux2.is_sequential());
    /// ```
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            CellKind::Dff | CellKind::ScanDff | CellKind::BscanCell | CellKind::Latch
        )
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A cell library: the per-kind area table used for all cell counting.
///
/// The paper's numbers come from "technology mapping with a .8µm cell
/// library"; [`CellLibrary::generic_08um`] is our reconstruction. Areas are
/// in integer cell units so that reports match the paper's "(cells)" columns.
///
/// # Examples
///
/// ```
/// use socet_cells::{CellKind, CellLibrary};
/// let lib = CellLibrary::generic_08um();
/// // A scan flip-flop costs more than a plain flip-flop...
/// assert!(lib.area_of(CellKind::ScanDff) > lib.area_of(CellKind::Dff));
/// // ...but less than a flip-flop plus a discrete mux would.
/// assert!(lib.area_of(CellKind::ScanDff)
///     <= lib.area_of(CellKind::Dff) + lib.area_of(CellKind::Mux2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellLibrary {
    name: String,
    area: [u32; CellKind::ALL.len()],
}

impl CellLibrary {
    /// A generic .8µm-class library where every mapped cell counts as the
    /// number of equivalent simple cells it occupies.
    pub fn generic_08um() -> Self {
        let mut area = [1u32; CellKind::ALL.len()];
        for (i, kind) in CellKind::ALL.iter().enumerate() {
            area[i] = match kind {
                CellKind::Inv => 1,
                CellKind::Nand2 => 1,
                CellKind::Nor2 => 1,
                CellKind::And2 => 1,
                CellKind::Or2 => 1,
                CellKind::Xor2 => 1,
                CellKind::Mux2 => 1,
                CellKind::Dff => 1,
                // A scan DFF replaces DFF + integrated mux; counting it as a
                // single (larger) cell matches the paper's remark that the
                // test mux "can be integrated with the destination flip-flops".
                CellKind::ScanDff => 2,
                CellKind::BscanCell => 3,
                CellKind::Latch => 1,
                CellKind::FullAdder => 2,
                CellKind::Tribuf => 1,
            };
        }
        CellLibrary {
            name: "generic-0.8um".to_owned(),
            area,
        }
    }

    /// Builds a library with a custom area table.
    ///
    /// `area_of` is sampled once per [`CellKind`].
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_cells::{CellKind, CellLibrary};
    /// let lib = CellLibrary::from_fn("unit", |_| 1);
    /// assert_eq!(lib.area_of(CellKind::ScanDff), 1);
    /// ```
    pub fn from_fn(name: &str, mut area_of: impl FnMut(CellKind) -> u32) -> Self {
        let mut area = [0u32; CellKind::ALL.len()];
        for (i, kind) in CellKind::ALL.iter().enumerate() {
            area[i] = area_of(*kind);
        }
        CellLibrary {
            name: name.to_owned(),
            area,
        }
    }

    /// The library's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Area, in cell units, of one instance of `kind`.
    pub fn area_of(&self, kind: CellKind) -> u32 {
        let idx = CellKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("CellKind::ALL covers every variant");
        self.area[idx]
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::generic_08um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_kind_once() {
        let mut names: Vec<&str> = CellKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CellKind::ALL.len());
    }

    #[test]
    fn sequential_classification() {
        assert!(CellKind::ScanDff.is_sequential());
        assert!(CellKind::Latch.is_sequential());
        assert!(CellKind::BscanCell.is_sequential());
        for k in [
            CellKind::Inv,
            CellKind::Xor2,
            CellKind::FullAdder,
            CellKind::Tribuf,
        ] {
            assert!(!k.is_sequential(), "{k} should be combinational");
        }
    }

    #[test]
    fn default_is_generic_08um() {
        assert_eq!(CellLibrary::default(), CellLibrary::generic_08um());
    }

    #[test]
    fn from_fn_samples_each_kind() {
        let lib = CellLibrary::from_fn("test", |k| if k == CellKind::Dff { 7 } else { 2 });
        assert_eq!(lib.area_of(CellKind::Dff), 7);
        assert_eq!(lib.area_of(CellKind::Mux2), 2);
        assert_eq!(lib.name(), "test");
    }

    #[test]
    fn display_matches_name() {
        for k in CellKind::ALL {
            assert_eq!(k.to_string(), k.name());
        }
    }
}
