//! Structural fingerprinting and the compact binary codec shared by the
//! artifact stores of the preparation pipeline.
//!
//! Everything here is hand-rolled over `std`: the workspace builds with an
//! empty cargo registry, so there is no serde and no external hash crate.
//! Two pieces live in this lowest-level crate because every other crate
//! depends on it:
//!
//! * [`StableHasher`] / [`Fingerprint`] — a process- and platform-stable
//!   128-bit structural hash (two independent FNV-1a 64 lanes). `std`'s
//!   `DefaultHasher` is randomly keyed per `RandomState`, which would make
//!   on-disk cache keys unusable across runs; this one is deterministic by
//!   construction.
//! * [`Enc`] / [`Dec`] — little-endian byte writer/reader primitives used
//!   by the per-crate `codec` modules (`socet-gate`, `socet-hscan`,
//!   `socet-transparency`, `socet-atpg`) to serialize prepared-core
//!   artifacts.

use crate::library::CellKind;
use crate::report::{AreaReport, DftCosts};
use std::error::Error;
use std::fmt;

/// A 128-bit stable content hash, printable as 32 hex digits (the on-disk
/// artifact file name of the preparation pipeline).
///
/// # Examples
///
/// ```
/// use socet_cells::codec::StableHasher;
/// let mut h = StableHasher::new();
/// h.write_str("core");
/// let a = h.finish();
/// let mut h2 = StableHasher::new();
/// h2.write_str("core");
/// assert_eq!(a, h2.finish());      // deterministic across instances
/// assert_eq!(a.to_hex().len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The fingerprint as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic structural hasher: two FNV-1a 64 lanes with distinct
/// offset bases, the second additionally rotated per byte so the lanes
/// decorrelate. Stable across processes, platforms and runs.
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl StableHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        StableHasher {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(x))
                .wrapping_mul(FNV_PRIME)
                .rotate_left(5);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u16` (little-endian).
    pub fn write_u16(&mut self, v: u16) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64` so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Feeds a length-prefixed string (prefixing prevents concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated 128-bit fingerprint.
    pub fn finish(&self) -> Fingerprint {
        // A final avalanche round so short inputs still spread into the
        // high lane.
        let mut a = self.a;
        let mut b = self.b;
        a ^= b.rotate_left(32);
        a = a.wrapping_mul(FNV_PRIME);
        b ^= a.rotate_left(17);
        b = b.wrapping_mul(FNV_PRIME);
        Fingerprint((u128::from(a) << 64) | u128::from(b))
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// Decoding failure of the binary artifact codec.
///
/// The artifact cache treats any decode error as a miss — a corrupt or
/// stale file is recomputed and overwritten, never trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the expected field.
    UnexpectedEof,
    /// A structural invariant of the encoded form failed.
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => f.write_str("unexpected end of encoded artifact"),
            CodecError::Corrupt(what) => write!(f, "corrupt encoded artifact: {what}"),
        }
    }
}

impl Error for CodecError {}

/// Little-endian byte writer.
///
/// # Examples
///
/// ```
/// use socet_cells::codec::{Dec, Enc};
/// let mut e = Enc::new();
/// e.put_u32(7);
/// e.put_str("chain");
/// let bytes = e.into_bytes();
/// let mut d = Dec::new(&bytes);
/// assert_eq!(d.get_u32().unwrap(), 7);
/// assert_eq!(d.get_str().unwrap(), "chain");
/// assert!(d.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// A view of the bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian byte reader over a borrowed buffer.
#[derive(Debug, Clone)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a `usize` (stored as `u64`); errors if it overflows the host.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.get_u64()?).map_err(|_| CodecError::Corrupt("usize overflow"))
    }

    /// Reads a boolean; errors on any byte other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Corrupt("boolean out of range")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Corrupt("invalid utf-8"))
    }

    /// Reads `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

/// Encodes an [`AreaReport`] as `(kind, count)` pairs in the stable
/// [`CellKind::ALL`] order.
pub fn encode_area_report(report: &AreaReport, e: &mut Enc) {
    let pairs: Vec<(CellKind, u64)> = report.iter().collect();
    e.put_usize(pairs.len());
    for (kind, count) in pairs {
        let idx = CellKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("CellKind::ALL covers every variant");
        e.put_u8(idx as u8);
        e.put_u64(count);
    }
}

/// Decodes an [`AreaReport`] written by [`encode_area_report`].
pub fn decode_area_report(d: &mut Dec) -> Result<AreaReport, CodecError> {
    let n = d.get_usize()?;
    if n > CellKind::ALL.len() {
        return Err(CodecError::Corrupt("area report has too many kinds"));
    }
    let mut report = AreaReport::new();
    for _ in 0..n {
        let idx = d.get_u8()? as usize;
        let kind = *CellKind::ALL
            .get(idx)
            .ok_or(CodecError::Corrupt("cell kind out of range"))?;
        report.tally(kind, d.get_u64()?);
    }
    Ok(report)
}

impl DftCosts {
    /// Feeds every cost knob into `h`. Any change to any knob changes the
    /// fingerprint of every prepared-core artifact, which is exactly the
    /// invalidation rule the preparation pipeline's cache needs.
    pub fn fingerprint_into(&self, h: &mut StableHasher) {
        h.write_str("DftCosts");
        for v in [
            self.hscan_mux_reuse_gates,
            self.hscan_mux_select0_gates,
            self.hscan_direct_or_gates,
            self.hscan_test_mux_per_bit,
            self.freeze_gates_per_register,
            self.nonhscan_select_gates,
            self.transparency_mux_per_bit,
            self.system_test_mux_per_bit,
            self.bscan_cell_per_bit,
            self.fscan_per_ff,
            self.test_controller_cells,
            self.clock_gate_per_core,
        ] {
            h.write_u64(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut e = Enc::new();
        e.put_u8(0xab);
        e.put_u16(0x1234);
        e.put_u32(0xdead_beef);
        e.put_u64(u64::MAX - 1);
        e.put_bool(true);
        e.put_str("héllo");
        e.put_usize(42);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 0xab);
        assert_eq!(d.get_u16().unwrap(), 0x1234);
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 1);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert_eq!(d.get_usize().unwrap(), 42);
        assert!(d.is_empty());
    }

    #[test]
    fn truncated_buffer_is_eof_not_panic() {
        let mut e = Enc::new();
        e.put_u64(7);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..5]);
        assert_eq!(d.get_u64(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut d = Dec::new(&[9]);
        assert!(matches!(d.get_bool(), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn area_report_round_trips() {
        let mut r = AreaReport::of(CellKind::ScanDff, 12);
        r.tally(CellKind::Or2, 3);
        let mut e = Enc::new();
        encode_area_report(&r, &mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(decode_area_report(&mut d).unwrap(), r);
        assert!(d.is_empty());
    }

    #[test]
    fn hasher_is_order_sensitive_and_stable() {
        let mut a = StableHasher::new();
        a.write_str("x");
        a.write_str("y");
        let mut b = StableHasher::new();
        b.write_str("y");
        b.write_str("x");
        assert_ne!(a.finish(), b.finish());
        // Length prefixing: ("ab","c") != ("a","bc").
        let mut c = StableHasher::new();
        c.write_str("ab");
        c.write_str("c");
        let mut d = StableHasher::new();
        d.write_str("a");
        d.write_str("bc");
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn dft_costs_fingerprint_tracks_every_knob() {
        let base = DftCosts::default();
        let fp = |c: &DftCosts| {
            let mut h = StableHasher::new();
            c.fingerprint_into(&mut h);
            h.finish()
        };
        let reference = fp(&base);
        assert_eq!(reference, fp(&base.clone()));
        for i in 0..12 {
            let mut c = base;
            match i {
                0 => c.hscan_mux_reuse_gates += 1,
                1 => c.hscan_mux_select0_gates += 1,
                2 => c.hscan_direct_or_gates += 1,
                3 => c.hscan_test_mux_per_bit += 1,
                4 => c.freeze_gates_per_register += 1,
                5 => c.nonhscan_select_gates += 1,
                6 => c.transparency_mux_per_bit += 1,
                7 => c.system_test_mux_per_bit += 1,
                8 => c.bscan_cell_per_bit += 1,
                9 => c.fscan_per_ff += 1,
                10 => c.test_controller_cells += 1,
                _ => c.clock_gate_per_core += 1,
            }
            assert_ne!(reference, fp(&c), "knob {i} not fingerprinted");
        }
    }
}
