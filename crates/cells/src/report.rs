//! Area accounting: per-kind instance counts and DFT cost constants.

use crate::library::{CellKind, CellLibrary};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// A tally of cell instances, convertible to a cell-unit area under a
/// [`CellLibrary`].
///
/// Every DFT engine in the workspace reports its overhead as an `AreaReport`
/// so that the chip-level flow can sum, compare and print them in the same
/// "(cells)" unit the paper uses.
///
/// # Examples
///
/// ```
/// use socet_cells::{AreaReport, CellKind, CellLibrary};
/// let lib = CellLibrary::generic_08um();
/// let mut hscan = AreaReport::new();
/// hscan.tally(CellKind::Or2, 1);   // load-enable OR gate
/// hscan.tally(CellKind::And2, 2);  // select gating
/// let mut freeze = AreaReport::new();
/// freeze.tally(CellKind::And2, 1);
/// let total = hscan + freeze;
/// assert_eq!(total.count(CellKind::And2), 3);
/// assert_eq!(total.cells(&lib), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AreaReport {
    counts: [u64; CellKind::ALL.len()],
}

impl AreaReport {
    /// An empty report.
    pub fn new() -> Self {
        AreaReport::default()
    }

    /// A report containing `n` instances of `kind`.
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_cells::{AreaReport, CellKind};
    /// let r = AreaReport::of(CellKind::Mux2, 4);
    /// assert_eq!(r.count(CellKind::Mux2), 4);
    /// ```
    pub fn of(kind: CellKind, n: u64) -> Self {
        let mut r = AreaReport::new();
        r.tally(kind, n);
        r
    }

    /// Adds `n` instances of `kind`.
    pub fn tally(&mut self, kind: CellKind, n: u64) {
        self.counts[Self::idx(kind)] += n;
    }

    /// Number of instances of `kind` tallied so far.
    pub fn count(&self, kind: CellKind) -> u64 {
        self.counts[Self::idx(kind)]
    }

    /// Total instance count across all kinds (not area-weighted).
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_cells::{AreaReport, CellKind};
    /// let mut r = AreaReport::new();
    /// r.tally(CellKind::Dff, 3);
    /// r.tally(CellKind::Inv, 2);
    /// assert_eq!(r.instances(), 5);
    /// ```
    pub fn instances(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Area in cell units under `lib`.
    pub fn cells(&self, lib: &CellLibrary) -> u64 {
        CellKind::ALL
            .iter()
            .enumerate()
            .map(|(i, kind)| self.counts[i] * u64::from(lib.area_of(*kind)))
            .sum()
    }

    /// Whether the report tallies nothing.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Iterates over `(kind, count)` pairs with non-zero counts.
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_cells::{AreaReport, CellKind};
    /// let r = AreaReport::of(CellKind::Latch, 2);
    /// let pairs: Vec<_> = r.iter().collect();
    /// assert_eq!(pairs, vec![(CellKind::Latch, 2)]);
    /// ```
    pub fn iter(&self) -> impl Iterator<Item = (CellKind, u64)> + '_ {
        CellKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| self.counts[*i] > 0)
            .map(|(i, kind)| (*kind, self.counts[i]))
    }

    fn idx(kind: CellKind) -> usize {
        CellKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("CellKind::ALL covers every variant")
    }
}

impl Add for AreaReport {
    type Output = AreaReport;

    fn add(mut self, rhs: AreaReport) -> AreaReport {
        self += rhs;
        self
    }
}

impl AddAssign for AreaReport {
    fn add_assign(&mut self, rhs: AreaReport) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts.iter()) {
            *a += *b;
        }
    }
}

impl Sum for AreaReport {
    fn sum<I: Iterator<Item = AreaReport>>(iter: I) -> AreaReport {
        iter.fold(AreaReport::new(), |acc, r| acc + r)
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (kind, count) in self.iter() {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{count}x{kind}")?;
            first = false;
        }
        if first {
            write!(f, "0 cells")?;
        }
        Ok(())
    }
}

/// Cost constants for DFT structures, in cells per bit or per instance.
///
/// These are the knobs the paper's "in-house synthesis tool" would have fixed
/// implicitly; the defaults are calibrated so that the worked examples (CPU
/// Versions 1–3, Fig. 6; PREPROCESSOR/DISPLAY, Fig. 8) land in the reported
/// ranges.
///
/// # Examples
///
/// ```
/// use socet_cells::DftCosts;
/// let costs = DftCosts::default();
/// assert!(costs.transparency_mux_per_bit >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DftCosts {
    /// Extra gates to reuse an existing select-1 mux path for HSCAN (per
    /// chain, not per bit): the two gates of Fig. 1(a).
    pub hscan_mux_reuse_gates: u64,
    /// Extra gates to force the select-0 path of an existing mux, Fig. 1(b).
    pub hscan_mux_select0_gates: u64,
    /// Gates for a direct register-to-register connection (OR at the load
    /// signal), Fig. 1 text.
    pub hscan_direct_or_gates: u64,
    /// Cells per bit for a test multiplexer integrated into scan flip-flops
    /// (scan DFF premium over a plain DFF).
    pub hscan_test_mux_per_bit: u64,
    /// Cells of freeze (hold) logic per frozen register, inserted to
    /// balance parallel transparency sub-paths (load-enable gating).
    pub freeze_gates_per_register: u64,
    /// Cells of select-line steering logic to reuse one non-HSCAN mux edge
    /// for transparency (per edge).
    pub nonhscan_select_gates: u64,
    /// Cells per bit of a dedicated transparency multiplexer.
    pub transparency_mux_per_bit: u64,
    /// Cells per bit of a system-level test multiplexer at chip level.
    pub system_test_mux_per_bit: u64,
    /// Cells per boundary-scan cell (per port bit) for the FSCAN-BSCAN
    /// baseline.
    pub bscan_cell_per_bit: u64,
    /// Cells of premium per flip-flop for full-scan conversion.
    pub fscan_per_ff: u64,
    /// Fixed cells for the chip-level test controller FSM.
    pub test_controller_cells: u64,
    /// Cells of clock-gating circuitry per logic core (the paper requires
    /// each core's clock to be freezable independently).
    pub clock_gate_per_core: u64,
}

impl Default for DftCosts {
    fn default() -> Self {
        DftCosts {
            hscan_mux_reuse_gates: 2,
            hscan_mux_select0_gates: 2,
            hscan_direct_or_gates: 1,
            hscan_test_mux_per_bit: 1,
            freeze_gates_per_register: 3,
            nonhscan_select_gates: 7,
            transparency_mux_per_bit: 5,
            system_test_mux_per_bit: 1,
            bscan_cell_per_bit: 3,
            fscan_per_ff: 1,
            test_controller_cells: 24,
            clock_gate_per_core: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_zero() {
        let r = AreaReport::new();
        assert!(r.is_empty());
        assert_eq!(r.instances(), 0);
        assert_eq!(r.cells(&CellLibrary::generic_08um()), 0);
        assert_eq!(r.to_string(), "0 cells");
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = AreaReport::of(CellKind::Dff, 2);
        a += AreaReport::of(CellKind::Dff, 3);
        assert_eq!(a.count(CellKind::Dff), 5);
    }

    #[test]
    fn sum_over_iterator() {
        let total: AreaReport = (0..4).map(|_| AreaReport::of(CellKind::Inv, 1)).sum();
        assert_eq!(total.count(CellKind::Inv), 4);
    }

    #[test]
    fn cells_is_area_weighted() {
        let lib = CellLibrary::generic_08um();
        let r = AreaReport::of(CellKind::ScanDff, 10);
        assert_eq!(
            r.cells(&lib),
            10 * u64::from(lib.area_of(CellKind::ScanDff))
        );
    }

    #[test]
    fn display_lists_nonzero_kinds() {
        let mut r = AreaReport::of(CellKind::Mux2, 2);
        r.tally(CellKind::Or2, 1);
        let s = r.to_string();
        assert!(s.contains("2xMUX2"), "{s}");
        assert!(s.contains("1xOR2"), "{s}");
    }

    #[test]
    fn default_costs_are_positive() {
        let c = DftCosts::default();
        for v in [
            c.hscan_mux_reuse_gates,
            c.hscan_direct_or_gates,
            c.freeze_gates_per_register,
            c.nonhscan_select_gates,
            c.transparency_mux_per_bit,
            c.system_test_mux_per_bit,
            c.bscan_cell_per_bit,
            c.fscan_per_ff,
            c.test_controller_cells,
        ] {
            assert!(v > 0);
        }
    }
}
