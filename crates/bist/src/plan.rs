//! Per-memory-core BIST planning: area overhead and test time, composable
//! with the SOCET chip-level plan.

use crate::lfsr::Lfsr;
use crate::misr::Misr;
use socet_cells::{AreaReport, CellKind, CellLibrary};
use socet_gate::GateNetlistBuilder;
use socet_rtl::{CoreInstanceId, Soc};
use std::fmt;

/// The BIST plan of one memory core: an address LFSR, a data MISR, a small
/// controller, and a March C− schedule.
#[derive(Debug, Clone)]
pub struct MemoryBistPlan {
    /// The memory core instance.
    pub core: CoreInstanceId,
    /// Address bits (LFSR width).
    pub addr_width: u16,
    /// Data bits (MISR width).
    pub data_width: u16,
    /// Words covered.
    pub words: usize,
    /// BIST hardware area.
    pub area: AreaReport,
}

impl MemoryBistPlan {
    /// March C− test length in cycles (one memory operation per cycle).
    pub fn test_cycles(&self) -> u64 {
        10 * self.words as u64
    }

    /// BIST overhead in cells.
    pub fn overhead_cells(&self, lib: &CellLibrary) -> u64 {
        self.area.cells(lib)
    }
}

impl fmt::Display for MemoryBistPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bist for {}: {} words, {} cycles, {}",
            self.core,
            self.words,
            self.test_cycles(),
            self.area
        )
    }
}

/// Plans distributed BIST for every memory core of `soc` (the paper's \[8\]:
/// each memory gets its own pattern generator and compactor so all
/// memories test concurrently with the logic-core episodes).
///
/// The address width is taken from the memory core's widest input port,
/// the data width from its widest output port; hardware is costed by
/// actually building the LFSR/MISR gate structures and counting cells.
///
/// # Examples
///
/// ```
/// use socet_bist::plan_memory_bist;
/// use socet_cells::CellLibrary;
/// let soc = socet_socs::barcode_system();
/// let plans = plan_memory_bist(&soc);
/// assert_eq!(plans.len(), 2); // RAM and ROM
/// let lib = CellLibrary::generic_08um();
/// for p in &plans {
///     assert!(p.overhead_cells(&lib) > 0);
///     assert!(p.test_cycles() > 0);
/// }
/// ```
pub fn plan_memory_bist(soc: &Soc) -> Vec<MemoryBistPlan> {
    let mut plans = Vec::new();
    for (i, inst) in soc.cores().iter().enumerate() {
        if !inst.is_memory() {
            continue;
        }
        let core = inst.core();
        let addr_width = core
            .input_ports()
            .iter()
            .map(|p| core.port(*p).width())
            .max()
            .unwrap_or(1)
            .min(24);
        let data_width = core
            .output_ports()
            .iter()
            .map(|p| core.port(*p).width())
            .max()
            .unwrap_or(1);
        let words = 1usize << addr_width.min(20);
        // Cost the hardware by building it.
        let mut b = GateNetlistBuilder::new("bist");
        let lfsr = Lfsr::new(addr_width, &default_taps(addr_width));
        let addr = lfsr.build_gates(&mut b);
        let data_ins: Vec<_> = (0..data_width).map(|k| b.input(&format!("d{k}"))).collect();
        let misr = Misr::new(data_width, &default_taps(data_width));
        let sig = misr.build_gates(&mut b, &data_ins);
        for (k, s) in addr.iter().chain(sig.iter()).enumerate() {
            b.output(&format!("o{k}"), *s);
        }
        let nl = b.build().expect("BIST structures are well-formed");
        let mut area = nl.area();
        // Controller FSM: a handful of cells for the March sequencer.
        area.tally(CellKind::Dff, 4);
        area.tally(CellKind::And2, 12);
        plans.push(MemoryBistPlan {
            core: core_id(i),
            addr_width,
            data_width,
            words,
            area,
        });
    }
    plans
}

/// A serviceable (not necessarily maximal) tap set for any width: the top
/// bit plus a mid bit.
fn default_taps(width: u16) -> Vec<u16> {
    if width == 1 {
        vec![0]
    } else {
        vec![width - 1, width / 2]
    }
}

fn core_id(i: usize) -> CoreInstanceId {
    // CoreInstanceIds are dense; recover through the public iterator
    // contract (index == position).
    CoreInstanceId::from_index(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barcode_memories_get_plans() {
        let soc = socet_socs::barcode_system();
        let plans = plan_memory_bist(&soc);
        assert_eq!(plans.len(), 2);
        let lib = CellLibrary::generic_08um();
        for p in &plans {
            // 12-bit address LFSR + 8-bit data MISR + controller: tens of
            // cells, thousands of cycles (4K words x 10 ops).
            assert!(p.overhead_cells(&lib) >= 20, "{p}");
            assert_eq!(p.test_cycles(), 10 * (1 << 12));
            assert!(soc.core(p.core).is_memory());
        }
    }

    #[test]
    fn logic_only_soc_needs_no_bist() {
        let soc = socet_socs::system2();
        assert!(plan_memory_bist(&soc).is_empty());
    }

    #[test]
    fn taps_are_in_range() {
        for w in 1u16..24 {
            for t in default_taps(w) {
                assert!(t < w);
            }
        }
    }
}
