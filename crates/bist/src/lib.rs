//! Memory built-in self-test (BIST) substrate.
//!
//! The paper excludes RAM/ROM cores from transparency routing because
//! "most memory cores use BIST \[8\]" (Zorian's distributed BIST control
//! scheme). This crate supplies that missing piece so a complete SOC test
//! plan can cover the memories too:
//!
//! * [`Lfsr`] — linear-feedback shift registers, as a software model and as
//!   a gate-level generator (pattern source);
//! * [`Misr`] — multiple-input signature registers (response compactor);
//! * [`MemoryModel`] / [`march_c`] — a behavioural word-addressed memory
//!   with injectable cell faults, and the March C− algorithm that detects
//!   them in `10·N` operations;
//! * [`MemoryBistPlan`] — per-memory-core BIST accounting (area overhead,
//!   test cycles) that composes with the SOCET chip-level plan: BIST runs
//!   concurrently with the logic-core episodes under the paper's
//!   distributed control scheme, so it adds area but usually no test time.
//!
//! # Examples
//!
//! ```
//! use socet_bist::{march_c, MemoryFault, MemoryModel};
//! let mut mem = MemoryModel::new(64, 8);
//! mem.inject(MemoryFault::StuckBit { addr: 13, bit: 2, value: true });
//! let log = march_c(&mut mem);
//! assert!(log.fault_detected);
//! assert_eq!(log.operations, 10 * 64);
//! ```

pub mod lfsr;
pub mod march;
pub mod misr;
pub mod plan;

#[cfg(test)]
mod proptests;

pub use lfsr::Lfsr;
pub use march::{march_c, MarchLog, MemoryFault, MemoryModel};
pub use misr::Misr;
pub use plan::{plan_memory_bist, MemoryBistPlan};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_doc_example() {
        let mut mem = MemoryModel::new(64, 8);
        mem.inject(MemoryFault::StuckBit {
            addr: 13,
            bit: 2,
            value: true,
        });
        let log = march_c(&mut mem);
        assert!(log.fault_detected);
        assert_eq!(log.operations, 640);
    }
}
