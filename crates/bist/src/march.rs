//! A behavioural memory model with injectable cell faults, and the
//! March C− test algorithm.

use std::fmt;

/// A fault injected into a [`MemoryModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryFault {
    /// Bit `bit` of word `addr` always reads `value`.
    StuckBit {
        /// The faulty word.
        addr: usize,
        /// The faulty bit within the word.
        bit: u16,
        /// The stuck value.
        value: bool,
    },
    /// Writing the aggressor word flips bit `victim_bit` of `victim_addr`
    /// (an inversion coupling fault).
    Coupling {
        /// Writes to this word trigger the fault.
        aggressor_addr: usize,
        /// The disturbed word.
        victim_addr: usize,
        /// The disturbed bit.
        victim_bit: u16,
    },
}

/// A word-addressed memory with fault injection, the device-under-test of
/// [`march_c`].
///
/// # Examples
///
/// ```
/// use socet_bist::MemoryModel;
/// let mut mem = MemoryModel::new(16, 8);
/// mem.write(3, 0xa5);
/// assert_eq!(mem.read(3), 0xa5);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryModel {
    words: Vec<u64>,
    width: u16,
    faults: Vec<MemoryFault>,
}

impl MemoryModel {
    /// A fault-free memory of `size` words, `width` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or `width` is 0 or above 64.
    pub fn new(size: usize, width: u16) -> Self {
        assert!(size > 0, "empty memory");
        assert!(width > 0 && width <= 64, "memory width {width}");
        MemoryModel {
            words: vec![0; size],
            width,
            faults: Vec::new(),
        }
    }

    /// Number of words.
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Word width in bits.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Injects a fault.
    ///
    /// # Panics
    ///
    /// Panics if the fault references an address or bit out of range.
    pub fn inject(&mut self, fault: MemoryFault) {
        match fault {
            MemoryFault::StuckBit { addr, bit, .. } => {
                assert!(addr < self.words.len(), "fault addr {addr}");
                assert!(bit < self.width, "fault bit {bit}");
            }
            MemoryFault::Coupling {
                aggressor_addr,
                victim_addr,
                victim_bit,
            } => {
                assert!(
                    aggressor_addr < self.words.len(),
                    "aggressor {aggressor_addr}"
                );
                assert!(victim_addr < self.words.len(), "victim {victim_addr}");
                assert!(victim_bit < self.width, "victim bit {victim_bit}");
                assert_ne!(aggressor_addr, victim_addr, "self-coupling");
            }
        }
        self.faults.push(fault);
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1 << self.width) - 1
        }
    }

    /// Writes `value` to `addr`, triggering coupling faults.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: u64) {
        let v = value & self.mask();
        self.words[addr] = v;
        let triggered: Vec<(usize, u16)> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                MemoryFault::Coupling {
                    aggressor_addr,
                    victim_addr,
                    victim_bit,
                } if *aggressor_addr == addr => Some((*victim_addr, *victim_bit)),
                _ => None,
            })
            .collect();
        for (victim, bit) in triggered {
            self.words[victim] ^= 1 << bit;
        }
    }

    /// Reads `addr`, applying stuck-bit faults.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&self, addr: usize) -> u64 {
        let mut v = self.words[addr];
        for f in &self.faults {
            if let MemoryFault::StuckBit {
                addr: a,
                bit,
                value,
            } = f
            {
                if *a == addr {
                    if *value {
                        v |= 1 << bit;
                    } else {
                        v &= !(1 << bit);
                    }
                }
            }
        }
        v
    }
}

impl fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory {}x{} ({} faults)",
            self.words.len(),
            self.width,
            self.faults.len()
        )
    }
}

/// The outcome of one March C− run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarchLog {
    /// Whether any read mismatched its expectation.
    pub fault_detected: bool,
    /// Total read/write operations performed (`10·N` for March C−).
    pub operations: usize,
}

/// Runs March C− over `mem`:
///
/// ```text
/// ⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)
/// ```
///
/// Detects all stuck-at, transition, address-decoder and inversion
/// coupling faults in `10·N` operations.
///
/// # Examples
///
/// ```
/// use socet_bist::{march_c, MemoryModel};
/// let mut clean = MemoryModel::new(32, 16);
/// assert!(!march_c(&mut clean).fault_detected);
/// ```
pub fn march_c(mem: &mut MemoryModel) -> MarchLog {
    let n = mem.size();
    let ones = if mem.width() == 64 {
        u64::MAX
    } else {
        (1 << mem.width()) - 1
    };
    let mut ops = 0usize;
    let mut detected = false;
    let check = |got: u64, want: u64, detected: &mut bool| {
        if got != want {
            *detected = true;
        }
    };
    // ⇕(w0)
    for a in 0..n {
        mem.write(a, 0);
        ops += 1;
    }
    // ⇑(r0, w1)
    for a in 0..n {
        check(mem.read(a), 0, &mut detected);
        mem.write(a, ones);
        ops += 2;
    }
    // ⇑(r1, w0)
    for a in 0..n {
        check(mem.read(a), ones, &mut detected);
        mem.write(a, 0);
        ops += 2;
    }
    // ⇓(r0, w1)
    for a in (0..n).rev() {
        check(mem.read(a), 0, &mut detected);
        mem.write(a, ones);
        ops += 2;
    }
    // ⇓(r1, w0)
    for a in (0..n).rev() {
        check(mem.read(a), ones, &mut detected);
        mem.write(a, 0);
        ops += 2;
    }
    // ⇕(r0)
    for a in 0..n {
        check(mem.read(a), 0, &mut detected);
        ops += 1;
    }
    MarchLog {
        fault_detected: detected,
        operations: ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_memory_passes() {
        let mut mem = MemoryModel::new(128, 8);
        let log = march_c(&mut mem);
        assert!(!log.fault_detected);
        assert_eq!(log.operations, 1280);
    }

    #[test]
    fn every_stuck_bit_is_detected() {
        for addr in [0usize, 7, 63] {
            for bit in [0u16, 3, 7] {
                for value in [false, true] {
                    let mut mem = MemoryModel::new(64, 8);
                    mem.inject(MemoryFault::StuckBit { addr, bit, value });
                    assert!(
                        march_c(&mut mem).fault_detected,
                        "stuck {addr}/{bit}={value} missed"
                    );
                }
            }
        }
    }

    #[test]
    fn coupling_faults_are_detected() {
        for (agg, vic) in [(0usize, 5usize), (5, 0), (31, 30), (30, 31)] {
            let mut mem = MemoryModel::new(32, 8);
            mem.inject(MemoryFault::Coupling {
                aggressor_addr: agg,
                victim_addr: vic,
                victim_bit: 4,
            });
            assert!(
                march_c(&mut mem).fault_detected,
                "coupling {agg}->{vic} missed"
            );
        }
    }

    #[test]
    fn reads_and_writes_roundtrip() {
        let mut mem = MemoryModel::new(8, 12);
        for a in 0..8 {
            mem.write(a, (a as u64) * 0x111);
        }
        for a in 0..8 {
            assert_eq!(mem.read(a), ((a as u64) * 0x111) & 0xfff);
        }
    }

    #[test]
    #[should_panic(expected = "self-coupling")]
    fn self_coupling_rejected() {
        let mut mem = MemoryModel::new(8, 8);
        mem.inject(MemoryFault::Coupling {
            aggressor_addr: 3,
            victim_addr: 3,
            victim_bit: 0,
        });
    }
}
