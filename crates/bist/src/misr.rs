//! Multiple-input signature registers: the BIST response compactor.

use socet_gate::{GateKind, GateNetlistBuilder, SignalId};
use std::fmt;

/// A MISR over `width` bits: each clock XORs a parallel input word into a
/// feedback-shifted state, compacting an arbitrarily long response stream
/// into one signature word.
///
/// # Examples
///
/// ```
/// use socet_bist::Misr;
/// let mut good = Misr::new(8, &[7, 5, 4, 3]);
/// let mut bad = Misr::new(8, &[7, 5, 4, 3]);
/// let stream = [0x12u64, 0x34, 0x56, 0x78];
/// for w in stream {
///     good.absorb(w);
/// }
/// for (k, w) in stream.iter().enumerate() {
///     // One flipped bit in the middle of the stream...
///     bad.absorb(if k == 2 { w ^ 0x40 } else { *w });
/// }
/// // ...yields a different signature.
/// assert_ne!(good.signature(), bad.signature());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    width: u16,
    taps: Vec<u16>,
    state: u64,
}

impl Misr {
    /// Creates a zero-initialized MISR.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or above 64, or a tap is out of range.
    pub fn new(width: u16, taps: &[u16]) -> Self {
        assert!(width > 0 && width <= 64, "MISR width {width}");
        for &t in taps {
            assert!(t < width, "tap {t} out of range for width {width}");
        }
        Misr {
            width,
            taps: taps.to_vec(),
            state: 0,
        }
    }

    /// The register width in bits.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Absorbs one response word and returns the new state.
    pub fn absorb(&mut self, word: u64) -> u64 {
        let fb = self
            .taps
            .iter()
            .fold(0u64, |acc, &t| acc ^ (self.state >> t))
            & 1;
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1 << self.width) - 1
        };
        self.state = (((self.state << 1) | fb) ^ word) & mask;
        self.state
    }

    /// The accumulated signature.
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// Resets the signature to zero.
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Builds the gate-level equivalent into `b`, with `inputs` as the
    /// parallel response word. Returns the Q signals, bit 0 first.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the MISR width.
    pub fn build_gates(&self, b: &mut GateNetlistBuilder, inputs: &[SignalId]) -> Vec<SignalId> {
        assert_eq!(inputs.len(), self.width as usize, "input word width");
        let qs: Vec<SignalId> = (0..self.width).map(|_| b.dff_deferred()).collect();
        let tap_sigs: Vec<SignalId> = self.taps.iter().map(|&t| qs[t as usize]).collect();
        let fb = if tap_sigs.is_empty() {
            qs[self.width as usize - 1]
        } else {
            b.tree(GateKind::Xor2, &tap_sigs)
        };
        let d0 = b.gate2(GateKind::Xor2, fb, inputs[0]);
        b.set_dff_input(qs[0], d0);
        for k in 1..self.width as usize {
            let d = b.gate2(GateKind::Xor2, qs[k - 1], inputs[k]);
            b.set_dff_input(qs[k], d);
        }
        qs
    }
}

impl fmt::Display for Misr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "misr-{} taps {:?} sig {:#x}",
            self.width, self.taps, self.state
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_identical_signatures() {
        let stream: Vec<u64> = (0..100).map(|k| (k * 37 + 11) & 0xff).collect();
        let mut a = Misr::new(8, &[7, 5, 4, 3]);
        let mut b = Misr::new(8, &[7, 5, 4, 3]);
        for w in &stream {
            a.absorb(*w);
            b.absorb(*w);
        }
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn single_bit_errors_always_change_the_signature() {
        // Single errors are never masked by a MISR (aliasing needs >= 2).
        let stream: Vec<u64> = (0..40).map(|k| (k * 73 + 5) & 0xff).collect();
        let mut good = Misr::new(8, &[7, 5, 4, 3]);
        for w in &stream {
            good.absorb(*w);
        }
        for pos in 0..stream.len() {
            for bit in 0..8 {
                let mut bad = Misr::new(8, &[7, 5, 4, 3]);
                for (k, w) in stream.iter().enumerate() {
                    bad.absorb(if k == pos { w ^ (1 << bit) } else { *w });
                }
                assert_ne!(
                    good.signature(),
                    bad.signature(),
                    "error at word {pos} bit {bit} aliased"
                );
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut m = Misr::new(8, &[7, 5]);
        m.absorb(0xab);
        m.reset();
        assert_eq!(m.signature(), 0);
    }

    #[test]
    fn gate_level_matches_software_model() {
        use socet_gate::{CombSim, GateNetlistBuilder};
        let model = Misr::new(4, &[3, 2]);
        let mut b = GateNetlistBuilder::new("misr4");
        let ins: Vec<_> = (0..4).map(|k| b.input(&format!("d{k}"))).collect();
        let qs = model.build_gates(&mut b, &ins);
        for (k, q) in qs.iter().enumerate() {
            b.output(&format!("q{k}"), *q);
        }
        let nl = b.build().unwrap();
        let comb = CombSim::new(&nl);
        // Check the transition function for a sample of (state, word).
        for state in 0u64..16 {
            for word in [0u64, 0b1010, 0b0110, 0b1111] {
                let mut m = Misr::new(4, &[3, 2]);
                m.state = state;
                let expected = m.absorb(word);
                let pi: Vec<bool> = (0..4).map(|k| word >> k & 1 != 0).collect();
                let ff: Vec<bool> = (0..4).map(|k| state >> k & 1 != 0).collect();
                let (_, next) = comb.run_with_state(&pi, &ff);
                let got: u64 = next
                    .iter()
                    .enumerate()
                    .map(|(k, &b)| if b { 1 << k } else { 0 })
                    .sum();
                assert_eq!(got, expected, "state {state:#x} word {word:#x}");
            }
        }
    }
}
