//! Property-based tests over the BIST primitives.

#![cfg(test)]

use crate::lfsr::Lfsr;
use crate::march::{march_c, MemoryFault, MemoryModel};
use crate::misr::Misr;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The LFSR never reaches the all-zero lock-up state and stays within
    /// its width mask.
    #[test]
    fn lfsr_stays_nonzero_and_masked(
        width in 2u16..24,
        seed in 1u64..u64::MAX,
        steps in 1usize..200,
    ) {
        let mut l = Lfsr::new(width, &[width - 1, width / 2]);
        l.seed(seed);
        let mask = (1u64 << width) - 1;
        for _ in 0..steps {
            let s = l.step();
            prop_assert!(s != 0);
            prop_assert_eq!(s & !mask, 0);
        }
    }

    /// Absorbing the same stream always yields the same signature, and the
    /// signature depends on stream order.
    #[test]
    fn misr_signature_is_order_sensitive(
        stream in prop::collection::vec(0u64..256, 2..40),
    ) {
        let run = |s: &[u64]| {
            let mut m = Misr::new(8, &[7, 5, 4, 3]);
            for w in s {
                m.absorb(*w);
            }
            m.signature()
        };
        prop_assert_eq!(run(&stream), run(&stream));
        // Swapping two *different* adjacent words changes the signature
        // (single transposition of distinct words is never aliased by this
        // small stream length).
        if stream.len() >= 2 && stream[0] != stream[1] {
            let mut swapped = stream.clone();
            swapped.swap(0, 1);
            prop_assert_ne!(run(&stream), run(&swapped));
        }
    }

    /// March C- detects every single stuck bit anywhere in the memory.
    #[test]
    fn march_detects_any_stuck_bit(
        size in 2usize..128,
        addr_frac in 0.0f64..1.0,
        bit in 0u16..8,
        value in any::<bool>(),
    ) {
        let addr = ((size as f64 - 1.0) * addr_frac) as usize;
        let mut mem = MemoryModel::new(size, 8);
        mem.inject(MemoryFault::StuckBit { addr, bit, value });
        prop_assert!(march_c(&mut mem).fault_detected);
    }

    /// March C- never false-alarms on a clean memory, and its operation
    /// count is exactly 10N.
    #[test]
    fn march_is_exact_on_clean_memories(size in 1usize..256, width in 1u16..32) {
        let mut mem = MemoryModel::new(size, width);
        let log = march_c(&mut mem);
        prop_assert!(!log.fault_detected);
        prop_assert_eq!(log.operations, 10 * size);
    }
}
