//! Linear-feedback shift registers: the BIST pattern source.

use socet_gate::{GateKind, GateNetlistBuilder, SignalId};
use std::fmt;

/// A Fibonacci LFSR over `width` bits with the given feedback taps
/// (bit indices whose XOR feeds the shift-in).
///
/// # Examples
///
/// ```
/// use socet_bist::Lfsr;
/// // The maximal-length 4-bit LFSR (x^4 + x^3 + 1) cycles through all
/// // 15 non-zero states.
/// let mut l = Lfsr::new(4, &[3, 2]);
/// let start = l.state();
/// let mut seen = std::collections::HashSet::new();
/// loop {
///     seen.insert(l.state());
///     l.step();
///     if l.state() == start {
///         break;
///     }
/// }
/// assert_eq!(seen.len(), 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    width: u16,
    taps: Vec<u16>,
    state: u64,
}

impl Lfsr {
    /// Creates an LFSR seeded with all-ones.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or above 64, or a tap is out of range.
    pub fn new(width: u16, taps: &[u16]) -> Self {
        assert!(width > 0 && width <= 64, "LFSR width {width}");
        for &t in taps {
            assert!(t < width, "tap {t} out of range for width {width}");
        }
        Lfsr {
            width,
            taps: taps.to_vec(),
            state: (1u64 << (width - 1)) | 1,
        }
    }

    /// Reseeds the register. A zero seed is coerced to 1 (the all-zero
    /// state is a fixed point).
    pub fn seed(&mut self, seed: u64) {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1 << self.width) - 1
        };
        self.state = (seed & mask).max(1);
    }

    /// The current state.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// The register width in bits.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Advances one clock and returns the new state.
    pub fn step(&mut self) -> u64 {
        let fb = self
            .taps
            .iter()
            .fold(0u64, |acc, &t| acc ^ (self.state >> t))
            & 1;
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1 << self.width) - 1
        };
        self.state = ((self.state << 1) | fb) & mask;
        if self.state == 0 {
            self.state = 1;
        }
        self.state
    }

    /// The next `n` states, as a pattern stream.
    pub fn stream(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Builds the gate-level equivalent into `b`: `width` flip-flops in a
    /// shift configuration with an XOR feedback network. Returns the Q
    /// signals, bit 0 first.
    ///
    /// The hardware cost is what [`plan_memory_bist`](crate::plan_memory_bist)
    /// charges: one DFF per bit plus one XOR per extra tap.
    pub fn build_gates(&self, b: &mut GateNetlistBuilder) -> Vec<SignalId> {
        let qs: Vec<SignalId> = (0..self.width).map(|_| b.dff_deferred()).collect();
        // Feedback XOR tree over the taps.
        let tap_sigs: Vec<SignalId> = self.taps.iter().map(|&t| qs[t as usize]).collect();
        let fb = if tap_sigs.is_empty() {
            qs[self.width as usize - 1]
        } else {
            b.tree(GateKind::Xor2, &tap_sigs)
        };
        b.set_dff_input(qs[0], fb);
        for k in 1..self.width as usize {
            b.set_dff_input(qs[k], qs[k - 1]);
        }
        qs
    }
}

impl fmt::Display for Lfsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lfsr-{} taps {:?} state {:#x}",
            self.width, self.taps, self.state
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_gate::{GateNetlistBuilder, SeqSim, Tri};

    #[test]
    fn maximal_length_sequences() {
        // Known maximal-length polynomials: (width, taps).
        for (w, taps) in [
            (3u16, vec![2u16, 1]),
            (4, vec![3, 2]),
            (5, vec![4, 2]),
            (7, vec![6, 5]),
        ] {
            let mut l = Lfsr::new(w, &taps);
            let start = l.state();
            let mut count = 0usize;
            loop {
                l.step();
                count += 1;
                if l.state() == start {
                    break;
                }
                assert!(count < 1 << w, "period too long for width {w}");
            }
            assert_eq!(count, (1 << w) - 1, "width {w} not maximal");
        }
    }

    #[test]
    fn zero_state_is_avoided() {
        let mut l = Lfsr::new(4, &[3, 2]);
        l.seed(0);
        assert_ne!(l.state(), 0);
        for _ in 0..100 {
            assert_ne!(l.step(), 0);
        }
    }

    #[test]
    fn stream_is_reproducible() {
        let mut a = Lfsr::new(8, &[7, 5, 4, 3]);
        let mut b = Lfsr::new(8, &[7, 5, 4, 3]);
        assert_eq!(a.stream(50), b.stream(50));
    }

    #[test]
    fn gate_level_matches_software_model() {
        let model = Lfsr::new(4, &[3, 2]);
        let mut b = GateNetlistBuilder::new("lfsr4");
        // SeqSim needs at least one input; add a dummy.
        let _clk_en = b.input("dummy");
        let qs = model.build_gates(&mut b);
        for (k, q) in qs.iter().enumerate() {
            b.output(&format!("q{k}"), *q);
        }
        let nl = b.build().unwrap();
        let mut sim = SeqSim::new(&nl);
        // Force the initial state to the model's by stepping the model's
        // state into the sim: instead, seed via direct state comparison —
        // start both from the software seed by running the gate sim from a
        // known state. SeqSim starts at X; clock once with... simplest:
        // verify the *transition function* on every state.
        for state in 1u64..16 {
            let mut m = Lfsr::new(4, &[3, 2]);
            m.seed(state);
            let expected = m.step();
            // Compute the gate-level next state combinationally.
            let sim_nl = &nl;
            let comb = socet_gate::CombSim::new(sim_nl);
            let ff: Vec<bool> = (0..4).map(|k| state >> k & 1 != 0).collect();
            let (_, next) = comb.run_with_state(&[false], &ff);
            let got: u64 = next
                .iter()
                .enumerate()
                .map(|(k, &b)| if b { 1 << k } else { 0 })
                .sum();
            assert_eq!(got, expected, "state {state:#x}");
        }
        let _ = sim.step(&[Tri::Zero], None);
    }
}
