//! Static test-set compaction: drop vectors whose faults are all covered
//! by the rest of the set.
//!
//! PODEM-generated sets carry redundancy — early random patterns detect
//! faults later deterministic vectors also catch. Reverse-order fault
//! simulation with fault dropping (the classic static compaction pass)
//! keeps only vectors that detect something no *later-kept* vector does.
//! Shorter precomputed test sets shorten every number downstream: HSCAN
//! test length, per-core episodes, global TAT.

use crate::fault::fault_list;
use crate::fsim::FaultSim;
use crate::tpg::TestSet;
use socet_gate::GateNetlist;

/// The result of compacting a test set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Vectors before compaction.
    pub before: usize,
    /// Vectors after compaction.
    pub after: usize,
}

impl CompactionStats {
    /// Fraction of vectors removed, in percent.
    pub fn reduction(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            (self.before - self.after) as f64 / self.before as f64 * 100.0
        }
    }
}

/// Compacts `tests` against `nl` in place, preserving the detected-fault
/// set exactly. Returns the before/after statistics.
///
/// The pass walks the set in reverse generation order (deterministic
/// vectors first, random fill last — later vectors tend to target harder
/// faults and cover more of the easy ones incidentally) and keeps a vector
/// only if it detects a fault nothing kept so far detects.
///
/// # Examples
///
/// ```
/// use socet_gate::{GateKind, GateNetlistBuilder};
/// use socet_atpg::{compact_tests, generate_tests, TpgConfig};
/// let mut b = GateNetlistBuilder::new("and");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.gate2(GateKind::And2, x, y);
/// b.output("z", z);
/// let nl = b.build()?;
/// let mut tests = generate_tests(&nl, &TpgConfig::default());
/// let before_cov = tests.coverage.detected;
/// let stats = compact_tests(&nl, &mut tests);
/// assert!(stats.after <= stats.before);
/// assert_eq!(tests.coverage.detected, before_cov, "coverage preserved");
/// # Ok::<(), socet_gate::GateError>(())
/// ```
pub fn compact_tests(nl: &GateNetlist, tests: &mut TestSet) -> CompactionStats {
    let faults = fault_list(nl);
    let mut sim = FaultSim::new(nl);
    let before = tests.patterns.len();

    // Which faults does the full set detect? (The preserved target.)
    let full = sim.detected(&faults, &tests.patterns);

    // Walk the set backwards in whole 64-lane blocks. Per-pattern
    // detection masks replay the greedy keep decision for every vector of
    // a block from one packed simulation, instead of burning a block on
    // each vector; a fault's single-vector verdict does not depend on
    // which other faults are already covered, so the decisions are
    // identical to the one-at-a-time pass.
    let mut keep = vec![false; before];
    let mut covered = vec![false; faults.len()];
    let mut masks = vec![0u64; faults.len()];
    let mut end = before;
    'outer: while end > 0 && covered != full {
        let start = end.saturating_sub(64);
        let block = &tests.patterns[start..end];
        sim.detection_masks(&faults, block, &covered, &mut masks);
        for k in (0..block.len()).rev() {
            let useful = masks
                .iter()
                .zip(&covered)
                .any(|(m, c)| !*c && *m >> k & 1 != 0);
            if useful {
                keep[start + k] = true;
                for (c, m) in covered.iter_mut().zip(&masks) {
                    *c |= *m >> k & 1 != 0;
                }
                if covered == full {
                    break 'outer;
                }
            }
        }
        end = start;
    }
    let mut k = 0;
    tests.patterns.retain(|_| {
        k += 1;
        keep[k - 1]
    });
    // Coverage bookkeeping is unchanged by construction; assert in debug.
    debug_assert_eq!(sim.detected(&faults, &tests.patterns), full);
    tests.stats.merge(&sim.take_metrics());
    CompactionStats {
        before,
        after: tests.patterns.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpg::{generate_tests, TpgConfig};
    use socet_gate::{GateKind, GateNetlistBuilder};

    fn adder4() -> GateNetlist {
        let mut b = GateNetlistBuilder::new("add4");
        let mut carry = b.const0();
        let mut sums = Vec::new();
        for i in 0..4 {
            let x = b.input(&format!("a{i}"));
            let y = b.input(&format!("b{i}"));
            let p = b.gate2(GateKind::Xor2, x, y);
            let s = b.gate2(GateKind::Xor2, p, carry);
            let g1 = b.gate2(GateKind::And2, x, y);
            let g2 = b.gate2(GateKind::And2, p, carry);
            carry = b.gate2(GateKind::Or2, g1, g2);
            sums.push(s);
        }
        for (i, s) in sums.iter().enumerate() {
            b.output(&format!("s{i}"), *s);
        }
        b.output("cout", carry);
        b.build().unwrap()
    }

    #[test]
    fn compaction_preserves_coverage() {
        let nl = adder4();
        let mut tests = generate_tests(&nl, &TpgConfig::default());
        let faults = fault_list(&nl);
        let mut sim = FaultSim::new(&nl);
        let before = sim.detected(&faults, &tests.patterns);
        let stats = compact_tests(&nl, &mut tests);
        let after = sim.detected(&faults, &tests.patterns);
        assert_eq!(before, after);
        assert_eq!(stats.after, tests.patterns.len());
        assert!(stats.after <= stats.before);
    }

    #[test]
    fn compaction_actually_shrinks_redundant_sets() {
        let nl = adder4();
        let mut tests = generate_tests(&nl, &TpgConfig::default());
        // Duplicate the whole set: half of it is trivially redundant.
        let dup: Vec<_> = tests.patterns.clone();
        tests.patterns.extend(dup);
        let stats = compact_tests(&nl, &mut tests);
        assert!(
            stats.after * 2 <= stats.before + 1,
            "{} -> {}",
            stats.before,
            stats.after
        );
        assert!(stats.reduction() > 40.0);
    }

    #[test]
    fn empty_set_is_a_noop() {
        let nl = adder4();
        let mut tests = generate_tests(&nl, &TpgConfig::default());
        tests.patterns.clear();
        let stats = compact_tests(&nl, &mut tests);
        assert_eq!(stats.before, 0);
        assert_eq!(stats.after, 0);
        assert_eq!(stats.reduction(), 0.0);
    }

    #[test]
    fn compaction_is_idempotent() {
        let nl = adder4();
        let mut tests = generate_tests(&nl, &TpgConfig::default());
        compact_tests(&nl, &mut tests);
        let once = tests.patterns.clone();
        compact_tests(&nl, &mut tests);
        assert_eq!(once, tests.patterns);
    }
}
