//! Binary codec for [`TestSet`] — the ATPG slice of a prepared-core
//! artifact — plus the [`TpgConfig`] fingerprint that keys it.
//!
//! Patterns dominate the artifact's size, so they are bit-packed: each
//! pattern occupies `ceil(width / 8)` bytes, LSB-first within each byte.
//! Spare bits in a pattern's last byte must be zero; a nonzero spare bit is
//! rejected as corruption rather than silently ignored, keeping encoding a
//! bijection (one value, one byte string) — the property the pipeline's
//! byte-for-byte equality tests lean on.

use crate::coverage::Coverage;
use crate::metrics::AtpgMetrics;
use crate::tpg::{TestSet, TpgConfig};
use socet_cells::{CodecError, Dec, Enc, StableHasher};

impl TpgConfig {
    /// Feeds every generation knob into `h`. The ATPG artifact is a pure
    /// function of (netlist, config), so any knob change must change the
    /// fingerprint — that is the cache-invalidation rule.
    pub fn fingerprint_into(&self, h: &mut StableHasher) {
        h.write_str("TpgConfig");
        h.write_usize(self.random_patterns);
        h.write_usize(self.max_backtracks);
        h.write_u64(self.seed);
    }
}

fn put_coverage(c: &Coverage, e: &mut Enc) {
    e.put_usize(c.total);
    e.put_usize(c.detected);
    e.put_usize(c.untestable);
    e.put_usize(c.aborted);
}

fn get_coverage(d: &mut Dec) -> Result<Coverage, CodecError> {
    Ok(Coverage {
        total: d.get_usize()?,
        detected: d.get_usize()?,
        untestable: d.get_usize()?,
        aborted: d.get_usize()?,
    })
}

fn put_metrics(m: &AtpgMetrics, e: &mut Enc) {
    for v in [
        m.blocks_simulated,
        m.cone_gate_evals,
        m.full_gate_evals_equiv,
        m.faults_skipped_unobservable,
        m.faults_dropped_random,
        m.faults_dropped_podem,
        m.fill_mask_events,
        m.parallel_shards,
    ] {
        e.put_u64(v);
    }
}

fn get_metrics(d: &mut Dec) -> Result<AtpgMetrics, CodecError> {
    Ok(AtpgMetrics {
        blocks_simulated: d.get_u64()?,
        cone_gate_evals: d.get_u64()?,
        full_gate_evals_equiv: d.get_u64()?,
        faults_skipped_unobservable: d.get_u64()?,
        faults_dropped_random: d.get_u64()?,
        faults_dropped_podem: d.get_u64()?,
        fill_mask_events: d.get_u64()?,
        parallel_shards: d.get_u64()?,
    })
}

/// Encodes `tests` into `e`.
pub fn encode_test_set(tests: &TestSet, e: &mut Enc) {
    e.put_usize(tests.patterns.len());
    let width = tests.patterns.first().map_or(0, Vec::len);
    e.put_usize(width);
    for pattern in &tests.patterns {
        debug_assert_eq!(pattern.len(), width, "ragged pattern set");
        let mut packed = vec![0u8; width.div_ceil(8)];
        for (i, &bit) in pattern.iter().enumerate() {
            if bit {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        e.put_raw(&packed);
    }
    put_coverage(&tests.coverage, e);
    put_metrics(&tests.stats, e);
}

/// Decodes a test set written by [`encode_test_set`].
pub fn decode_test_set(d: &mut Dec) -> Result<TestSet, CodecError> {
    let count = d.get_usize()?;
    let width = d.get_usize()?;
    if width > u32::MAX as usize {
        return Err(CodecError::Corrupt("pattern width out of range"));
    }
    // An empty set encodes width 0; any other width for zero patterns is a
    // second byte string for the same value, which would break the
    // one-value-one-encoding bijection the cache's equality tests rely on.
    if count == 0 && width != 0 {
        return Err(CodecError::Corrupt("width without patterns"));
    }
    let bytes_per = width.div_ceil(8);
    // Bound the pattern loop by what the buffer can actually hold: a
    // corrupted count must not spin through billions of (possibly
    // zero-byte) patterns before hitting end-of-buffer.
    if count > d.remaining().max(1 << 20) {
        return Err(CodecError::Corrupt("pattern count implausible"));
    }
    let mut patterns = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let packed = d.get_raw(bytes_per)?;
        let mut pattern = Vec::with_capacity(width);
        for i in 0..width {
            pattern.push(packed[i / 8] >> (i % 8) & 1 != 0);
        }
        if width % 8 != 0 && packed[bytes_per - 1] >> (width % 8) != 0 {
            return Err(CodecError::Corrupt("nonzero spare bits in pattern"));
        }
        patterns.push(pattern);
    }
    let coverage = get_coverage(d)?;
    let stats = get_metrics(d)?;
    Ok(TestSet {
        patterns,
        coverage,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpg::generate_tests;
    use socet_gate::GateNetlistBuilder;

    fn sample_tests() -> TestSet {
        let mut b = GateNetlistBuilder::new("mux");
        let s = b.input("s");
        let x = b.input("x");
        let y = b.input("y");
        let q = b.dff(x);
        let m = b.mux(s, q, y);
        b.output("m", m);
        let nl = b.build().unwrap();
        generate_tests(&nl, &TpgConfig::default())
    }

    fn encode(tests: &TestSet) -> Vec<u8> {
        let mut e = Enc::new();
        encode_test_set(tests, &mut e);
        e.into_bytes()
    }

    #[test]
    fn test_set_round_trips_exactly() {
        let tests = sample_tests();
        assert!(!tests.patterns.is_empty());
        let bytes = encode(&tests);
        let mut d = Dec::new(&bytes);
        let back = decode_test_set(&mut d).unwrap();
        assert!(d.is_empty());
        assert_eq!(back.patterns, tests.patterns);
        assert_eq!(back.coverage, tests.coverage);
        assert_eq!(back.stats, tests.stats);
    }

    #[test]
    fn empty_test_set_round_trips() {
        let empty = TestSet {
            patterns: Vec::new(),
            coverage: Coverage::default(),
            stats: AtpgMetrics::default(),
        };
        let bytes = encode(&empty);
        let mut d = Dec::new(&bytes);
        let back = decode_test_set(&mut d).unwrap();
        assert!(back.patterns.is_empty());
    }

    #[test]
    fn nonzero_spare_bits_are_corrupt() {
        let tests = sample_tests();
        let width = tests.patterns[0].len();
        assert!(
            !width.is_multiple_of(8),
            "sample must have spare bits to poison"
        );
        let mut bytes = encode(&tests);
        // First pattern starts right after the two u64 headers; poison its
        // last (only) byte's top bit.
        let first_pattern_end = 16 + width.div_ceil(8);
        bytes[first_pattern_end - 1] |= 0x80;
        let mut d = Dec::new(&bytes);
        assert!(decode_test_set(&mut d).is_err());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = encode(&sample_tests());
        for cut in [0, 9, bytes.len() / 2, bytes.len() - 1] {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(decode_test_set(&mut d).is_err());
        }
    }

    #[test]
    fn tpg_fingerprint_tracks_every_knob() {
        let fp = |c: &TpgConfig| {
            let mut h = StableHasher::new();
            c.fingerprint_into(&mut h);
            h.finish()
        };
        let base = TpgConfig::default();
        let reference = fp(&base);
        assert_eq!(reference, fp(&base.clone()));
        for (i, cfg) in [
            TpgConfig {
                random_patterns: base.random_patterns + 1,
                ..base
            },
            TpgConfig {
                max_backtracks: base.max_backtracks + 1,
                ..base
            },
            TpgConfig {
                seed: base.seed ^ 1,
                ..base
            },
        ]
        .iter()
        .enumerate()
        {
            assert_ne!(reference, fp(cfg), "knob {i} not fingerprinted");
        }
    }
}
