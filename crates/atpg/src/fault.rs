//! The single stuck-at fault model and fault-list construction.

use socet_gate::{GateKind, GateNetlist, SignalId};
use std::fmt;

/// A single stuck-at fault on a signal.
///
/// # Examples
///
/// ```
/// use socet_gate::{GateKind, GateNetlistBuilder};
/// use socet_atpg::fault_list;
/// let mut b = GateNetlistBuilder::new("inv");
/// let a = b.input("a");
/// let y = b.gate1(GateKind::Not, a);
/// b.output("y", y);
/// let nl = b.build()?;
/// let faults = fault_list(&nl);
/// // Two signals (a, y), two polarities each.
/// assert_eq!(faults.len(), 4);
/// # Ok::<(), socet_gate::GateError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// The signal the fault sits on.
    pub signal: SignalId,
    /// `true` for stuck-at-1, `false` for stuck-at-0.
    pub stuck_at_one: bool,
}

impl Fault {
    /// Convenience constructor for a stuck-at-0 fault.
    pub fn sa0(signal: SignalId) -> Self {
        Fault {
            signal,
            stuck_at_one: false,
        }
    }

    /// Convenience constructor for a stuck-at-1 fault.
    pub fn sa1(signal: SignalId) -> Self {
        Fault {
            signal,
            stuck_at_one: true,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} s-a-{}",
            self.signal,
            if self.stuck_at_one { 1 } else { 0 }
        )
    }
}

/// Builds the collapsed fault list of a netlist: both stuck-at polarities on
/// every signal except
///
/// * constants (their value cannot be observed as "faulty" distinctly from a
///   stuck input downstream), and
/// * buffers (equivalent to faults on their source signal).
///
/// Inverter-output faults are kept: they are equivalent to the *opposite*
/// polarity on the input, but keeping them costs little and keeps fault
/// sites aligned with gate outputs, the convention the paper's cell-level
/// counts follow.
pub fn fault_list(nl: &GateNetlist) -> Vec<Fault> {
    let mut faults = Vec::with_capacity(nl.gates().len() * 2);
    for (i, g) in nl.gates().iter().enumerate() {
        match g.kind {
            GateKind::Const0 | GateKind::Const1 | GateKind::Buf => continue,
            _ => {}
        }
        let s = signal(i);
        faults.push(Fault::sa0(s));
        faults.push(Fault::sa1(s));
    }
    faults
}

fn signal(i: usize) -> SignalId {
    // SignalIds are dense indices; round-trip through the public display
    // form is unnecessary — the netlist API accepts any id with
    // index() < gates().len().
    SignalId::from_index(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_gate::GateNetlistBuilder;

    #[test]
    fn constants_and_buffers_are_skipped() {
        let mut b = GateNetlistBuilder::new("n");
        let a = b.input("a");
        let z = b.const0();
        let m = b.mux(a, z, a);
        let buf = b.gate1(GateKind::Buf, m);
        b.output("o", buf);
        let nl = b.build().unwrap();
        let faults = fault_list(&nl);
        // Signals: a (input), const0 (skip), mux, buf (skip) -> 2 sites.
        assert_eq!(faults.len(), 4);
        assert!(faults.iter().all(|f| f.signal != z && f.signal != buf));
    }

    #[test]
    fn display_form() {
        assert_eq!(Fault::sa0(SignalId::from_index(3)).to_string(), "n3 s-a-0");
        assert_eq!(Fault::sa1(SignalId::from_index(3)).to_string(), "n3 s-a-1");
    }

    #[test]
    fn polarity_constructors() {
        let s = SignalId::from_index(7);
        assert!(!Fault::sa0(s).stuck_at_one);
        assert!(Fault::sa1(s).stuck_at_one);
    }
}
