//! Pattern-parallel combinational fault simulation on the full-scan view,
//! accelerated by fanout-cone pruning and fault-parallel threading.
//!
//! The seed's simulator re-evaluated the *entire* netlist for every live
//! fault × 64-pattern block — O(patterns × faults × gates). This engine
//! applies the two classic fault-simulation accelerations:
//!
//! * **cone pruning** (HOPE-style single-fault propagation): each fault's
//!   levelized transitive fanout is computed once at construction; per
//!   fault only the cone's gates are re-evaluated against the cached
//!   good-value baseline, and only observable points *inside* the cone are
//!   compared. A fault whose cone reaches no observable point is skipped
//!   outright.
//! * **fault partitioning** (PROOFS-style fault parallelism): the live
//!   fault list of each block is split across scoped threads; every fault's
//!   verdict is an independent pure function of the shared baseline, so
//!   results are bit-identical for any worker count.
//!
//! The seed's full-netlist path survives as [`FaultSim::detected_naive`] /
//! [`FaultSim::accumulate_naive`], the oracle the property tests pin the
//! cone engine against.

use crate::fault::Fault;
use crate::metrics::AtpgMetrics;
use socet_gate::{GateKind, GateNetlist, PackedSim, SignalId};
use socet_obs::names;

/// Minimum live faults in a block before the engine fans out over threads;
/// below this the spawn cost outweighs the work.
const MIN_PARALLEL_FAULTS: usize = 192;

/// The precomputed fanout cone of one signal: the combinational gates a
/// fault on the signal can disturb, in topological order, plus the subset
/// of signals (including the site itself) that are observable.
#[derive(Debug, Clone, Default)]
struct Cone {
    /// Strict transitive fanout, topologically sorted (excludes the site).
    gates: Vec<SignalId>,
    /// Observable signals inside the cone (site included when observable).
    observable: Vec<SignalId>,
}

/// Reusable per-worker evaluation scratch: an epoch-stamped sparse overlay
/// over the good-value baseline, so beginning a new fault costs O(1)
/// instead of clearing (or copying) a netlist-sized buffer.
#[derive(Debug, Clone)]
struct ConeScratch {
    values: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl ConeScratch {
    fn new(n: usize) -> Self {
        ConeScratch {
            values: vec![0; n],
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn set(&mut self, s: SignalId, v: u64) {
        self.values[s.index()] = v;
        self.stamp[s.index()] = self.epoch;
    }

    /// The faulty value of `s`: the overlay when stamped this epoch, the
    /// good baseline otherwise.
    #[inline]
    fn get(&self, good: &[u64], s: SignalId) -> u64 {
        if self.stamp[s.index()] == self.epoch {
            self.values[s.index()]
        } else {
            good[s.index()]
        }
    }
}

/// Combinational fault simulator: packs up to 64 test patterns per word and
/// resimulates each live fault's fanout cone against the block.
///
/// Patterns assign all combinational inputs (real PIs, then flip-flop
/// pseudo-inputs), matching [`Podem::inputs`](crate::Podem::inputs) order.
///
/// # Examples
///
/// ```
/// use socet_gate::{GateKind, GateNetlistBuilder};
/// use socet_atpg::{fault_list, FaultSim};
/// let mut b = GateNetlistBuilder::new("and");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.gate2(GateKind::And2, x, y);
/// b.output("z", z);
/// let nl = b.build()?;
/// let mut sim = FaultSim::new(&nl);
/// // The exhaustive pattern set detects every fault of an AND gate.
/// let patterns = vec![
///     vec![false, false],
///     vec![false, true],
///     vec![true, false],
///     vec![true, true],
/// ];
/// let detected = sim.detected(&fault_list(&nl), &patterns);
/// assert_eq!(detected.iter().filter(|&&d| d).count(), fault_list(&nl).len());
/// # Ok::<(), socet_gate::GateError>(())
/// ```
#[derive(Debug)]
pub struct FaultSim<'a> {
    nl: &'a GateNetlist,
    n_pi: usize,
    n_ff: usize,
    /// The reusable packed simulator for good-machine baselines.
    sim: PackedSim<'a>,
    /// Per-signal fanout cones, indexed by `SignalId::index`.
    cones: Vec<Cone>,
    /// Worker cap for fault partitioning (1 forces serial evaluation).
    workers: usize,
    comb_gates: u64,
    // Per-call scratch, reused across blocks and calls.
    pi_buf: Vec<u64>,
    ff_buf: Vec<u64>,
    good: Vec<u64>,
    scratch: ConeScratch,
    metrics: AtpgMetrics,
}

impl<'a> FaultSim<'a> {
    /// Creates a fault simulator over `nl`, precomputing every signal's
    /// fanout cone.
    pub fn new(nl: &'a GateNetlist) -> Self {
        let n = nl.gates().len();
        FaultSim {
            n_pi: nl.inputs().len(),
            n_ff: nl.flip_flop_count(),
            sim: PackedSim::new(nl),
            cones: build_cones(nl),
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            comb_gates: nl.topo_order().len() as u64,
            pi_buf: Vec::new(),
            ff_buf: Vec::new(),
            good: Vec::new(),
            scratch: ConeScratch::new(n),
            metrics: AtpgMetrics::new(),
            nl,
        }
    }

    /// Caps the number of worker threads fault partitioning may use; `0`
    /// and `1` both force serial evaluation. Detection results are
    /// bit-identical for every setting — this only trades wall time.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Width of a pattern: real inputs plus flip-flop pseudo-inputs.
    pub fn pattern_width(&self) -> usize {
        self.n_pi + self.n_ff
    }

    /// Counters accumulated since construction (or the last
    /// [`FaultSim::take_metrics`]).
    pub fn metrics(&self) -> &AtpgMetrics {
        &self.metrics
    }

    /// Returns and resets the accumulated counters.
    pub fn take_metrics(&mut self) -> AtpgMetrics {
        std::mem::take(&mut self.metrics)
    }

    /// Simulates `patterns` against `faults`; `result[i]` tells whether
    /// `faults[i]` is detected by at least one pattern.
    ///
    /// # Panics
    ///
    /// Panics if any pattern's length differs from
    /// [`FaultSim::pattern_width`].
    pub fn detected(&mut self, faults: &[Fault], patterns: &[Vec<bool>]) -> Vec<bool> {
        let mut det = vec![false; faults.len()];
        self.accumulate(faults, patterns, &mut det);
        det
    }

    /// Like [`FaultSim::detected`] but ORs into an existing detection map —
    /// the fault-dropping loop of the ATPG driver uses this.
    ///
    /// # Panics
    ///
    /// Panics on pattern width mismatch or `det.len() != faults.len()`.
    pub fn accumulate(&mut self, faults: &[Fault], patterns: &[Vec<bool>], det: &mut [bool]) {
        assert_eq!(det.len(), faults.len(), "detection map length");
        let mut masks = vec![0u64; faults.len()];
        for block in patterns.chunks(64) {
            if det.iter().all(|&d| d) {
                break;
            }
            self.masks_for_block(faults, block, det, &mut masks);
            for (d, m) in det.iter_mut().zip(&masks) {
                *d |= *m != 0;
            }
        }
    }

    /// Per-pattern detection masks for one block of ≤64 patterns:
    /// `masks[i]` has bit *k* set iff `faults[i]` is detected by
    /// `block[k]`. Faults with `skip[i]` set are not evaluated and get an
    /// all-zero mask. Compaction and the driver's keep-only-useful pass use
    /// this to replay per-pattern greedy decisions without re-simulating
    /// one pattern per 64-lane block.
    ///
    /// # Panics
    ///
    /// Panics on pattern width mismatch, a block of more than 64 patterns,
    /// or `skip`/`masks` length mismatch.
    pub fn detection_masks(
        &mut self,
        faults: &[Fault],
        block: &[Vec<bool>],
        skip: &[bool],
        masks: &mut [u64],
    ) {
        assert!(
            block.len() <= 64,
            "detection_masks block of {}",
            block.len()
        );
        self.masks_for_block(faults, block, skip, masks);
    }

    /// Evaluates one ≤64-pattern block: good baseline once, then each live
    /// fault's cone, partitioned across threads when the block is large.
    fn masks_for_block(
        &mut self,
        faults: &[Fault],
        block: &[Vec<bool>],
        skip: &[bool],
        masks: &mut [u64],
    ) {
        assert_eq!(skip.len(), faults.len(), "skip map length");
        assert_eq!(masks.len(), faults.len(), "mask buffer length");
        self.pack(block);
        self.sim
            .eval_into(&self.pi_buf, &self.ff_buf, None, &mut self.good);
        self.metrics.blocks_simulated += 1;
        let used: u64 = if block.len() == 64 {
            u64::MAX
        } else {
            (1u64 << block.len()) - 1
        };
        masks.fill(0);
        let live: Vec<u32> = (0..faults.len() as u32)
            .filter(|&fi| !skip[fi as usize])
            .collect();
        if live.is_empty() {
            return;
        }
        self.metrics.full_gate_evals_equiv += live.len() as u64 * self.comb_gates;

        let nl = self.nl;
        let cones = &self.cones;
        let good = &self.good;
        let workers = self
            .workers
            .min(live.len().div_ceil(MIN_PARALLEL_FAULTS / 2));
        if workers > 1 && live.len() >= MIN_PARALLEL_FAULTS {
            let chunk = live.len().div_ceil(workers);
            type Shard = (Vec<(u32, u64)>, AtpgMetrics, socet_obs::Recorder);
            let shards: Vec<Shard> = std::thread::scope(|s| {
                let handles: Vec<_> = live
                    .chunks(chunk)
                    .map(|part| {
                        // Forked on the parent thread so the worker's
                        // spans land on the caller's timeline (disabled
                        // — and free — when nothing is installed).
                        let mut rec = socet_obs::fork_local();
                        s.spawn(move || {
                            let mut m = AtpgMetrics::new();
                            let out: Vec<(u32, u64)> = {
                                let _sink = rec.install();
                                let _span = socet_obs::span(names::FSIM_SHARD);
                                let mut scratch = ConeScratch::new(nl.gates().len());
                                part.iter()
                                    .map(|&fi| {
                                        let mask = fault_mask(
                                            nl,
                                            cones,
                                            good,
                                            &mut scratch,
                                            faults[fi as usize],
                                            used,
                                            &mut m,
                                        );
                                        (fi, mask)
                                    })
                                    .collect()
                            };
                            (out, m, rec)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fault-sim worker panicked"))
                    .collect()
            });
            // Deterministic merge: shards are disjoint index sets, walked
            // in spawn order; shard recorders fold into the caller's sink
            // in the same order. Counters stay in `AtpgMetrics` (published
            // once per run by the driver) so the trace never double-counts.
            let count = shards.len() as u64;
            for (out, m, rec) in shards {
                for &(fi, mask) in &out {
                    masks[fi as usize] = mask;
                }
                self.metrics.merge(&m);
                socet_obs::adopt([rec]);
            }
            self.metrics.parallel_shards += count;
        } else {
            let scratch = &mut self.scratch;
            let metrics = &mut self.metrics;
            for &fi in &live {
                masks[fi as usize] =
                    fault_mask(nl, cones, good, scratch, faults[fi as usize], used, metrics);
            }
        }
    }

    /// The seed's full-netlist resimulation path, kept as the oracle the
    /// cone engine is pinned against: `result[i]` tells whether `faults[i]`
    /// is detected by at least one pattern.
    ///
    /// # Panics
    ///
    /// Panics on pattern width mismatch.
    pub fn detected_naive(&self, faults: &[Fault], patterns: &[Vec<bool>]) -> Vec<bool> {
        let mut det = vec![false; faults.len()];
        self.accumulate_naive(faults, patterns, &mut det);
        det
    }

    /// Naive-path counterpart of [`FaultSim::accumulate`]: rebuilds the
    /// packed state and re-evaluates the entire netlist for every live
    /// fault × block, exactly as the seed did.
    ///
    /// # Panics
    ///
    /// Panics on pattern width mismatch or `det.len() != faults.len()`.
    pub fn accumulate_naive(&self, faults: &[Fault], patterns: &[Vec<bool>], det: &mut [bool]) {
        assert_eq!(det.len(), faults.len(), "detection map length");
        let sim = PackedSim::new(self.nl);
        let pos = self.nl.comb_outputs();
        for block in patterns.chunks(64) {
            let (pi, ff) = self.pack_owned(block);
            let used: u64 = if block.len() == 64 {
                u64::MAX
            } else {
                (1u64 << block.len()) - 1
            };
            let good = sim.eval(&pi, &ff, None);
            for (fi, fault) in faults.iter().enumerate() {
                if det[fi] {
                    continue;
                }
                let bad = sim.eval(&pi, &ff, Some((fault.signal, fault.stuck_at_one)));
                let hit = pos
                    .iter()
                    .any(|s| (good[s.index()] ^ bad[s.index()]) & used != 0);
                if hit {
                    det[fi] = true;
                }
            }
        }
    }

    /// Packs a block of ≤64 patterns into the reusable per-input words.
    fn pack(&mut self, block: &[Vec<bool>]) {
        self.pi_buf.clear();
        self.pi_buf.resize(self.n_pi, 0);
        self.ff_buf.clear();
        self.ff_buf.resize(self.n_ff, 0);
        for (k, pat) in block.iter().enumerate() {
            assert_eq!(pat.len(), self.pattern_width(), "pattern width");
            for (i, &bit) in pat.iter().enumerate() {
                if bit {
                    if i < self.n_pi {
                        self.pi_buf[i] |= 1 << k;
                    } else {
                        self.ff_buf[i - self.n_pi] |= 1 << k;
                    }
                }
            }
        }
    }

    /// Owned-buffer packing for the naive (`&self`) oracle path.
    fn pack_owned(&self, block: &[Vec<bool>]) -> (Vec<u64>, Vec<u64>) {
        let mut pi = vec![0u64; self.n_pi];
        let mut ff = vec![0u64; self.n_ff];
        for (k, pat) in block.iter().enumerate() {
            assert_eq!(pat.len(), self.pattern_width(), "pattern width");
            for (i, &bit) in pat.iter().enumerate() {
                if bit {
                    if i < self.n_pi {
                        pi[i] |= 1 << k;
                    } else {
                        ff[i - self.n_pi] |= 1 << k;
                    }
                }
            }
        }
        (pi, ff)
    }
}

/// Evaluates one fault's cone against the good baseline and returns the
/// mask of patterns whose faulty value differs at an observable point.
fn fault_mask(
    nl: &GateNetlist,
    cones: &[Cone],
    good: &[u64],
    scratch: &mut ConeScratch,
    fault: Fault,
    used: u64,
    metrics: &mut AtpgMetrics,
) -> u64 {
    let cone = &cones[fault.signal.index()];
    if cone.observable.is_empty() {
        metrics.faults_skipped_unobservable += 1;
        return 0;
    }
    scratch.begin();
    let forced = if fault.stuck_at_one { u64::MAX } else { 0 };
    scratch.set(fault.signal, forced);
    for &g in &cone.gates {
        let gate = nl.gate(g);
        let ops = gate.operands();
        let val = match gate.kind {
            GateKind::Not => !scratch.get(good, ops[0]),
            GateKind::Buf => scratch.get(good, ops[0]),
            GateKind::And2 => scratch.get(good, ops[0]) & scratch.get(good, ops[1]),
            GateKind::Or2 => scratch.get(good, ops[0]) | scratch.get(good, ops[1]),
            GateKind::Nand2 => !(scratch.get(good, ops[0]) & scratch.get(good, ops[1])),
            GateKind::Nor2 => !(scratch.get(good, ops[0]) | scratch.get(good, ops[1])),
            GateKind::Xor2 => scratch.get(good, ops[0]) ^ scratch.get(good, ops[1]),
            GateKind::Xnor2 => !(scratch.get(good, ops[0]) ^ scratch.get(good, ops[1])),
            GateKind::Mux2 => {
                let sel = scratch.get(good, ops[0]);
                (!sel & scratch.get(good, ops[1])) | (sel & scratch.get(good, ops[2]))
            }
            _ => unreachable!("cones hold only combinational gates"),
        };
        scratch.set(g, val);
    }
    metrics.cone_gate_evals += cone.gates.len() as u64;
    let mut diff = 0u64;
    for &s in &cone.observable {
        diff |= (good[s.index()] ^ scratch.get(good, s)) & used;
        if diff == used {
            break;
        }
    }
    diff
}

/// Builds every signal's fanout cone: a BFS over the fanout lists that
/// stops at flip-flop boundaries (their D inputs are the observable
/// points; their Q outputs belong to the *next* scan frame), sorted into
/// topological order so one forward pass re-evaluates the cone.
fn build_cones(nl: &GateNetlist) -> Vec<Cone> {
    let n = nl.gates().len();
    let fanouts = nl.fanouts();
    let topo_pos = nl.topo_positions();
    let mut observable = vec![false; n];
    for s in nl.comb_outputs() {
        observable[s.index()] = true;
    }
    let mut cones = Vec::with_capacity(n);
    let mut seen = vec![u32::MAX; n];
    for site in 0..n {
        let site_id = SignalId::from_index(site);
        let marker = site as u32;
        let mut gates: Vec<SignalId> = Vec::new();
        let mut frontier: Vec<SignalId> = Vec::new();
        seen[site] = marker;
        frontier.push(site_id);
        while let Some(s) = frontier.pop() {
            for &next in &fanouts[s.index()] {
                if seen[next.index()] == marker {
                    continue;
                }
                // Dff consumers observe the fault at their D input (already
                // an observable point); their Q is a pseudo-input of the
                // next frame and never changes within one evaluation.
                if nl.gate(next).kind == GateKind::Dff {
                    continue;
                }
                seen[next.index()] = marker;
                gates.push(next);
                frontier.push(next);
            }
        }
        gates.sort_unstable_by_key(|s| topo_pos[s.index()]);
        let mut obs: Vec<SignalId> = Vec::new();
        if observable[site] {
            obs.push(site_id);
        }
        obs.extend(gates.iter().copied().filter(|s| observable[s.index()]));
        cones.push(Cone {
            gates,
            observable: obs,
        });
    }
    cones
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::fault_list;
    use socet_gate::{GateKind, GateNetlistBuilder, SignalId};

    #[test]
    fn no_patterns_detect_nothing() {
        let mut b = GateNetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.gate1(GateKind::Not, a);
        b.output("y", y);
        let nl = b.build().unwrap();
        let mut sim = FaultSim::new(&nl);
        let det = sim.detected(&fault_list(&nl), &[]);
        assert!(det.iter().all(|&d| !d));
    }

    #[test]
    fn inverter_needs_both_polarities() {
        let mut b = GateNetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.gate1(GateKind::Not, a);
        b.output("y", y);
        let nl = b.build().unwrap();
        let mut sim = FaultSim::new(&nl);
        let faults = fault_list(&nl);
        // Only the all-zero pattern: detects a s-a-1 and y s-a-0.
        let det = sim.detected(&faults, &[vec![false]]);
        let detected: Vec<Fault> = faults
            .iter()
            .zip(&det)
            .filter(|(_, &d)| d)
            .map(|(f, _)| *f)
            .collect();
        assert_eq!(detected, vec![Fault::sa1(a), Fault::sa0(y)]);
        // Adding the all-one pattern completes coverage.
        let det = sim.detected(&faults, &[vec![false], vec![true]]);
        assert!(det.iter().all(|&d| d));
    }

    #[test]
    fn accumulate_unions_detections() {
        let mut b = GateNetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.gate1(GateKind::Not, a);
        b.output("y", y);
        let nl = b.build().unwrap();
        let mut sim = FaultSim::new(&nl);
        let faults = fault_list(&nl);
        let mut det = vec![false; faults.len()];
        sim.accumulate(&faults, &[vec![false]], &mut det);
        sim.accumulate(&faults, &[vec![true]], &mut det);
        assert!(det.iter().all(|&d| d));
    }

    #[test]
    fn dff_pseudo_inputs_count_in_pattern_width() {
        let mut b = GateNetlistBuilder::new("ff");
        let d = b.input("d");
        let q = b.dff(d);
        b.output("q", q);
        let nl = b.build().unwrap();
        let mut sim = FaultSim::new(&nl);
        assert_eq!(sim.pattern_width(), 2);
        // Detect q s-a-0 by scanning in 1 (pattern bit for the FF).
        let faults = [Fault::sa0(q)];
        let det = sim.detected(&faults, &[vec![false, true]]);
        assert!(det[0]);
    }

    #[test]
    fn more_than_64_patterns_use_multiple_blocks() {
        let mut b = GateNetlistBuilder::new("buf");
        let a = b.input("a");
        let y = b.gate1(GateKind::Not, a);
        b.output("y", y);
        let nl = b.build().unwrap();
        let mut sim = FaultSim::new(&nl);
        // 70 all-zero patterns then one all-one pattern.
        let mut patterns = vec![vec![false]; 70];
        patterns.push(vec![true]);
        let det = sim.detected(&fault_list(&nl), &patterns);
        assert!(det.iter().all(|&d| d));
        let _ = SignalId::from_index(0);
    }

    /// A 4-bit ripple adder: enough reconvergent fanout to exercise cones.
    fn adder4() -> GateNetlist {
        let mut b = GateNetlistBuilder::new("add4");
        let mut carry = b.const0();
        let mut sums = Vec::new();
        for i in 0..4 {
            let x = b.input(&format!("a{i}"));
            let y = b.input(&format!("b{i}"));
            let p = b.gate2(GateKind::Xor2, x, y);
            let s = b.gate2(GateKind::Xor2, p, carry);
            let g1 = b.gate2(GateKind::And2, x, y);
            let g2 = b.gate2(GateKind::And2, p, carry);
            carry = b.gate2(GateKind::Or2, g1, g2);
            sums.push(s);
        }
        for (i, s) in sums.iter().enumerate() {
            b.output(&format!("s{i}"), *s);
        }
        b.output("cout", carry);
        b.build().unwrap()
    }

    fn lcg_patterns(width: usize, count: usize, mut seed: u64) -> Vec<Vec<bool>> {
        (0..count)
            .map(|_| {
                (0..width)
                    .map(|_| {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        seed >> 63 != 0
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn cone_engine_matches_naive_oracle() {
        let nl = adder4();
        let faults = fault_list(&nl);
        let patterns = lcg_patterns(8, 100, 0xfee1);
        let mut sim = FaultSim::new(&nl);
        let cone = sim.detected(&faults, &patterns);
        let naive = sim.detected_naive(&faults, &patterns);
        assert_eq!(cone, naive);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let nl = adder4();
        let faults = fault_list(&nl);
        let patterns = lcg_patterns(8, 70, 0xabcd);
        let serial = FaultSim::new(&nl)
            .with_workers(1)
            .detected(&faults, &patterns);
        let parallel = FaultSim::new(&nl)
            .with_workers(8)
            .detected(&faults, &patterns);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn detection_masks_match_single_pattern_runs() {
        let nl = adder4();
        let faults = fault_list(&nl);
        let block = lcg_patterns(8, 9, 0x51ac);
        let mut sim = FaultSim::new(&nl);
        let skip = vec![false; faults.len()];
        let mut masks = vec![0u64; faults.len()];
        sim.detection_masks(&faults, &block, &skip, &mut masks);
        for (k, pat) in block.iter().enumerate() {
            let single = sim.detected(&faults, std::slice::from_ref(pat));
            for (fi, &m) in masks.iter().enumerate() {
                assert_eq!(m >> k & 1 != 0, single[fi], "fault {fi} pattern {k}");
            }
        }
    }

    #[test]
    fn detection_masks_skip_is_honored() {
        let nl = adder4();
        let faults = fault_list(&nl);
        let block = lcg_patterns(8, 5, 3);
        let mut sim = FaultSim::new(&nl);
        let mut skip = vec![false; faults.len()];
        skip[0] = true;
        let mut masks = vec![0u64; faults.len()];
        sim.detection_masks(&faults, &block, &skip, &mut masks);
        assert_eq!(masks[0], 0, "skipped fault must not be evaluated");
    }

    #[test]
    fn unobservable_fault_is_skipped_and_counted() {
        // A dangling AND gate: its output drives nothing observable.
        let mut b = GateNetlistBuilder::new("dangle");
        let a = b.input("a");
        let c = b.input("c");
        let dead = b.gate2(GateKind::And2, a, c);
        let live = b.gate2(GateKind::Or2, a, c);
        b.output("o", live);
        let nl = b.build().unwrap();
        let mut sim = FaultSim::new(&nl);
        let faults = [Fault::sa0(dead), Fault::sa1(dead)];
        let det = sim.detected(&faults, &[vec![true, true], vec![false, false]]);
        assert!(det.iter().all(|&d| !d));
        assert!(sim.metrics().faults_skipped_unobservable >= 2);
        assert_eq!(sim.metrics().cone_gate_evals, 0);
    }

    #[test]
    fn metrics_report_pruning_win() {
        let nl = adder4();
        let faults = fault_list(&nl);
        let patterns = lcg_patterns(8, 64, 0x7777);
        let mut sim = FaultSim::new(&nl);
        sim.detected(&faults, &patterns);
        let m = sim.take_metrics();
        assert!(m.blocks_simulated >= 1);
        assert!(m.cone_gate_evals > 0);
        assert!(
            m.cone_gate_evals < m.full_gate_evals_equiv,
            "cones must beat full-netlist work: {m}"
        );
        // take_metrics resets.
        assert_eq!(sim.metrics().blocks_simulated, 0);
    }
}
