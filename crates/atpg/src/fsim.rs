//! Pattern-parallel combinational fault simulation on the full-scan view.

use crate::fault::Fault;
use socet_gate::{GateNetlist, PackedSim};

/// Combinational fault simulator: packs up to 64 test patterns per word and
/// resimulates each live fault against the block.
///
/// Patterns assign all combinational inputs (real PIs, then flip-flop
/// pseudo-inputs), matching [`Podem::inputs`](crate::Podem::inputs) order.
///
/// # Examples
///
/// ```
/// use socet_gate::{GateKind, GateNetlistBuilder};
/// use socet_atpg::{fault_list, FaultSim};
/// let mut b = GateNetlistBuilder::new("and");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.gate2(GateKind::And2, x, y);
/// b.output("z", z);
/// let nl = b.build()?;
/// let sim = FaultSim::new(&nl);
/// // The exhaustive pattern set detects every fault of an AND gate.
/// let patterns = vec![
///     vec![false, false],
///     vec![false, true],
///     vec![true, false],
///     vec![true, true],
/// ];
/// let detected = sim.detected(&fault_list(&nl), &patterns);
/// assert_eq!(detected.iter().filter(|&&d| d).count(), fault_list(&nl).len());
/// # Ok::<(), socet_gate::GateError>(())
/// ```
#[derive(Debug)]
pub struct FaultSim<'a> {
    nl: &'a GateNetlist,
    n_pi: usize,
    n_ff: usize,
}

impl<'a> FaultSim<'a> {
    /// Creates a fault simulator over `nl`.
    pub fn new(nl: &'a GateNetlist) -> Self {
        FaultSim {
            n_pi: nl.inputs().len(),
            n_ff: nl.flip_flop_count(),
            nl,
        }
    }

    /// Width of a pattern: real inputs plus flip-flop pseudo-inputs.
    pub fn pattern_width(&self) -> usize {
        self.n_pi + self.n_ff
    }

    /// Simulates `patterns` against `faults`; `result[i]` tells whether
    /// `faults[i]` is detected by at least one pattern.
    ///
    /// # Panics
    ///
    /// Panics if any pattern's length differs from
    /// [`FaultSim::pattern_width`].
    pub fn detected(&self, faults: &[Fault], patterns: &[Vec<bool>]) -> Vec<bool> {
        let mut det = vec![false; faults.len()];
        self.accumulate(faults, patterns, &mut det);
        det
    }

    /// Like [`FaultSim::detected`] but ORs into an existing detection map —
    /// the fault-dropping loop of the ATPG driver uses this.
    ///
    /// # Panics
    ///
    /// Panics on pattern width mismatch or `det.len() != faults.len()`.
    pub fn accumulate(&self, faults: &[Fault], patterns: &[Vec<bool>], det: &mut [bool]) {
        assert_eq!(det.len(), faults.len(), "detection map length");
        let sim = PackedSim::new(self.nl);
        let pos = self.nl.comb_outputs();
        for block in patterns.chunks(64) {
            let (pi, ff) = self.pack(block);
            let used: u64 = if block.len() == 64 {
                u64::MAX
            } else {
                (1u64 << block.len()) - 1
            };
            let good = sim.eval(&pi, &ff, None);
            for (fi, fault) in faults.iter().enumerate() {
                if det[fi] {
                    continue;
                }
                let bad = sim.eval(&pi, &ff, Some((fault.signal, fault.stuck_at_one)));
                let hit = pos
                    .iter()
                    .any(|s| (good[s.index()] ^ bad[s.index()]) & used != 0);
                if hit {
                    det[fi] = true;
                }
            }
        }
    }

    /// Packs a block of ≤64 patterns into per-input words.
    fn pack(&self, block: &[Vec<bool>]) -> (Vec<u64>, Vec<u64>) {
        let mut pi = vec![0u64; self.n_pi];
        let mut ff = vec![0u64; self.n_ff];
        for (k, pat) in block.iter().enumerate() {
            assert_eq!(pat.len(), self.pattern_width(), "pattern width");
            for (i, &bit) in pat.iter().enumerate() {
                if bit {
                    if i < self.n_pi {
                        pi[i] |= 1 << k;
                    } else {
                        ff[i - self.n_pi] |= 1 << k;
                    }
                }
            }
        }
        (pi, ff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::fault_list;
    use socet_gate::{GateKind, GateNetlistBuilder, SignalId};

    #[test]
    fn no_patterns_detect_nothing() {
        let mut b = GateNetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.gate1(GateKind::Not, a);
        b.output("y", y);
        let nl = b.build().unwrap();
        let sim = FaultSim::new(&nl);
        let det = sim.detected(&fault_list(&nl), &[]);
        assert!(det.iter().all(|&d| !d));
    }

    #[test]
    fn inverter_needs_both_polarities() {
        let mut b = GateNetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.gate1(GateKind::Not, a);
        b.output("y", y);
        let nl = b.build().unwrap();
        let sim = FaultSim::new(&nl);
        let faults = fault_list(&nl);
        // Only the all-zero pattern: detects a s-a-1 and y s-a-0.
        let det = sim.detected(&faults, &[vec![false]]);
        let detected: Vec<Fault> = faults
            .iter()
            .zip(&det)
            .filter(|(_, &d)| d)
            .map(|(f, _)| *f)
            .collect();
        assert_eq!(detected, vec![Fault::sa1(a), Fault::sa0(y)]);
        // Adding the all-one pattern completes coverage.
        let det = sim.detected(&faults, &[vec![false], vec![true]]);
        assert!(det.iter().all(|&d| d));
    }

    #[test]
    fn accumulate_unions_detections() {
        let mut b = GateNetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.gate1(GateKind::Not, a);
        b.output("y", y);
        let nl = b.build().unwrap();
        let sim = FaultSim::new(&nl);
        let faults = fault_list(&nl);
        let mut det = vec![false; faults.len()];
        sim.accumulate(&faults, &[vec![false]], &mut det);
        sim.accumulate(&faults, &[vec![true]], &mut det);
        assert!(det.iter().all(|&d| d));
    }

    #[test]
    fn dff_pseudo_inputs_count_in_pattern_width() {
        let mut b = GateNetlistBuilder::new("ff");
        let d = b.input("d");
        let q = b.dff(d);
        b.output("q", q);
        let nl = b.build().unwrap();
        let sim = FaultSim::new(&nl);
        assert_eq!(sim.pattern_width(), 2);
        // Detect q s-a-0 by scanning in 1 (pattern bit for the FF).
        let faults = [Fault::sa0(q)];
        let det = sim.detected(&faults, &[vec![false, true]]);
        assert!(det[0]);
    }

    #[test]
    fn more_than_64_patterns_use_multiple_blocks() {
        let mut b = GateNetlistBuilder::new("buf");
        let a = b.input("a");
        let y = b.gate1(GateKind::Not, a);
        b.output("y", y);
        let nl = b.build().unwrap();
        let sim = FaultSim::new(&nl);
        // 70 all-zero patterns then one all-one pattern.
        let mut patterns = vec![vec![false]; 70];
        patterns.push(vec![true]);
        let det = sim.detected(&fault_list(&nl), &patterns);
        assert!(det.iter().all(|&d| d));
        let _ = SignalId::from_index(0);
    }
}
