//! Observability for the fault-simulation engine and the ATPG driver.
//!
//! The cone-pruned fault simulator's wins are invisible from its results —
//! detection maps are bit-identical to the naive path by construction — so
//! every engine counts its work here: how many cone gates were actually
//! re-evaluated versus the full-netlist equivalent the seed's simulator
//! would have paid, how many faults were skipped outright because their
//! cone reaches no observable point, and how the ATPG driver's phases
//! dropped faults. `soctool atpg --stats` and `table3_testability` fold
//! these counters into `socet-core`'s `Metrics` for display.

use socet_obs::{Counter, Recorder};
use std::fmt;

/// Counters accumulated by [`FaultSim`](crate::FaultSim),
/// [`SeqFaultSim`](crate::SeqFaultSim) and the
/// [`generate_tests`](crate::generate_tests) /
/// [`compact_tests`](crate::compact_tests) drivers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtpgMetrics {
    /// 64-pattern blocks simulated (one good-machine evaluation each).
    pub blocks_simulated: u64,
    /// Gates re-evaluated inside fault cones.
    pub cone_gate_evals: u64,
    /// Gates the seed's full-netlist resimulation would have evaluated for
    /// the same fault×block work (`live faults × comb gates`); the ratio
    /// against [`AtpgMetrics::cone_gate_evals`] is the pruning win.
    pub full_gate_evals_equiv: u64,
    /// Fault evaluations skipped because the fault's cone reaches no
    /// observable point (no primary output, no flip-flop D input).
    pub faults_skipped_unobservable: u64,
    /// Faults first detected by the random-pattern phase of
    /// [`generate_tests`](crate::generate_tests).
    pub faults_dropped_random: u64,
    /// Faults first detected during the PODEM top-off (the targeted fault
    /// plus everything its random-filled vector drops).
    pub faults_dropped_podem: u64,
    /// Times a PODEM-proven test failed to detect its target fault under
    /// resimulation (the seed silently counted these as detected; now they
    /// trip a `debug_assert!` and are reported honestly).
    pub fill_mask_events: u64,
    /// Worker threads spawned by parallel fault partitioning.
    pub parallel_shards: u64,
}

impl AtpgMetrics {
    /// A zeroed instance.
    pub fn new() -> Self {
        AtpgMetrics::default()
    }

    /// Folds `other` into `self` — used to aggregate per-worker and
    /// per-core counters.
    pub fn merge(&mut self, other: &AtpgMetrics) {
        self.blocks_simulated += other.blocks_simulated;
        self.cone_gate_evals += other.cone_gate_evals;
        self.full_gate_evals_equiv += other.full_gate_evals_equiv;
        self.faults_skipped_unobservable += other.faults_skipped_unobservable;
        self.faults_dropped_random += other.faults_dropped_random;
        self.faults_dropped_podem += other.faults_dropped_podem;
        self.fill_mask_events += other.fill_mask_events;
        self.parallel_shards += other.parallel_shards;
    }

    /// The view of one recorder's ATPG counters — the derivation the
    /// unified observability layer replaces ad-hoc merging with.
    pub fn from_recorder(rec: &Recorder) -> Self {
        AtpgMetrics {
            blocks_simulated: rec.counter(Counter::BlocksSimulated),
            cone_gate_evals: rec.counter(Counter::ConeGateEvals),
            full_gate_evals_equiv: rec.counter(Counter::FullGateEvalsEquiv),
            faults_skipped_unobservable: rec.counter(Counter::FaultsSkippedUnobservable),
            faults_dropped_random: rec.counter(Counter::FaultsDroppedRandom),
            faults_dropped_podem: rec.counter(Counter::FaultsDroppedPodem),
            fill_mask_events: rec.counter(Counter::FillMaskEvents),
            parallel_shards: rec.counter(Counter::ParallelShards),
        }
    }

    /// Charges these counters into `rec` (the inverse of
    /// [`AtpgMetrics::from_recorder`]).
    pub fn record_into(&self, rec: &mut Recorder) {
        rec.record(Counter::BlocksSimulated, self.blocks_simulated);
        rec.record(Counter::ConeGateEvals, self.cone_gate_evals);
        rec.record(Counter::FullGateEvalsEquiv, self.full_gate_evals_equiv);
        rec.record(
            Counter::FaultsSkippedUnobservable,
            self.faults_skipped_unobservable,
        );
        rec.record(Counter::FaultsDroppedRandom, self.faults_dropped_random);
        rec.record(Counter::FaultsDroppedPodem, self.faults_dropped_podem);
        rec.record(Counter::FillMaskEvents, self.fill_mask_events);
        rec.record(Counter::ParallelShards, self.parallel_shards);
    }

    /// Charges these counters into the thread's installed
    /// [`socet_obs`] recorder, if any.
    pub fn publish(&self) {
        socet_obs::add(Counter::BlocksSimulated, self.blocks_simulated);
        socet_obs::add(Counter::ConeGateEvals, self.cone_gate_evals);
        socet_obs::add(Counter::FullGateEvalsEquiv, self.full_gate_evals_equiv);
        socet_obs::add(
            Counter::FaultsSkippedUnobservable,
            self.faults_skipped_unobservable,
        );
        socet_obs::add(Counter::FaultsDroppedRandom, self.faults_dropped_random);
        socet_obs::add(Counter::FaultsDroppedPodem, self.faults_dropped_podem);
        socet_obs::add(Counter::FillMaskEvents, self.fill_mask_events);
        socet_obs::add(Counter::ParallelShards, self.parallel_shards);
    }

    /// Fraction of the full-netlist work the cone engine actually did, in
    /// percent (100 means no pruning happened).
    pub fn cone_eval_share(&self) -> f64 {
        if self.full_gate_evals_equiv == 0 {
            100.0
        } else {
            self.cone_gate_evals as f64 / self.full_gate_evals_equiv as f64 * 100.0
        }
    }
}

impl fmt::Display for AtpgMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "atpg engine stats:")?;
        writeln!(f, "  pattern blocks         : {}", self.blocks_simulated)?;
        writeln!(
            f,
            "  cone gate evals        : {} ({:.1}% of the {} full-netlist equivalent)",
            self.cone_gate_evals,
            self.cone_eval_share(),
            self.full_gate_evals_equiv
        )?;
        writeln!(
            f,
            "  unobservable skips     : {}",
            self.faults_skipped_unobservable
        )?;
        writeln!(
            f,
            "  faults dropped         : {} random phase, {} podem phase",
            self.faults_dropped_random, self.faults_dropped_podem
        )?;
        writeln!(f, "  fill-mask events       : {}", self.fill_mask_events)?;
        write!(f, "  parallel shards        : {}", self.parallel_shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_counter() {
        let mut a = AtpgMetrics {
            blocks_simulated: 1,
            cone_gate_evals: 2,
            full_gate_evals_equiv: 3,
            faults_skipped_unobservable: 4,
            faults_dropped_random: 5,
            faults_dropped_podem: 6,
            fill_mask_events: 7,
            parallel_shards: 8,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.blocks_simulated, 2);
        assert_eq!(a.cone_gate_evals, 4);
        assert_eq!(a.full_gate_evals_equiv, 6);
        assert_eq!(a.faults_skipped_unobservable, 8);
        assert_eq!(a.faults_dropped_random, 10);
        assert_eq!(a.faults_dropped_podem, 12);
        assert_eq!(a.fill_mask_events, 14);
        assert_eq!(a.parallel_shards, 16);
    }

    #[test]
    fn recorder_round_trip_preserves_every_counter() {
        let m = AtpgMetrics {
            blocks_simulated: 1,
            cone_gate_evals: 2,
            full_gate_evals_equiv: 3,
            faults_skipped_unobservable: 4,
            faults_dropped_random: 5,
            faults_dropped_podem: 6,
            fill_mask_events: 7,
            parallel_shards: 8,
        };
        let mut rec = Recorder::new();
        m.record_into(&mut rec);
        assert_eq!(AtpgMetrics::from_recorder(&rec), m);
        // publish() reaches the installed thread-local sink.
        let mut tls = Recorder::new();
        {
            let _g = tls.install();
            m.publish();
        }
        assert_eq!(AtpgMetrics::from_recorder(&tls), m);
    }

    #[test]
    fn cone_share_handles_zero_work() {
        assert_eq!(AtpgMetrics::new().cone_eval_share(), 100.0);
        let m = AtpgMetrics {
            cone_gate_evals: 25,
            full_gate_evals_equiv: 100,
            ..AtpgMetrics::new()
        };
        assert!((m.cone_eval_share() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn display_names_every_counter() {
        let s = AtpgMetrics::new().to_string();
        for needle in [
            "pattern blocks",
            "cone gate evals",
            "unobservable",
            "faults dropped",
            "fill-mask",
            "parallel shards",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
