//! Test-generation substrate: stuck-at faults, PODEM combinational ATPG,
//! and fault simulation (combinational and sequential).
//!
//! The paper's flow assumes each HSCAN-equipped core "can be treated as a
//! full-scan circuit and tested using combinational ATPG tools", and its
//! Table 3 reports fault coverage (FC) and test efficiency (TEff) from "a
//! commercial combinational ATPG tool" plus an in-house sequential tool for
//! the un-DFT'd originals. This crate rebuilds that tooling:
//!
//! * [`Fault`] / [`fault_list`] — single stuck-at faults over a
//!   [`GateNetlist`](socet_gate::GateNetlist), with buffer/constant
//!   collapsing;
//! * [`Podem`] — the classic PODEM algorithm on the full-scan
//!   (combinational) view, two-plane (good/faulty) three-valued
//!   implication, D-frontier objectives, X-path pruning and a backtrack
//!   bound;
//! * [`FaultSim`] — pattern-parallel combinational fault simulation with
//!   fanout-cone pruning and fault-parallel threading, instrumented by
//!   [`AtpgMetrics`];
//! * [`SeqFaultSim`] — fault-parallel (64 faults per word) three-valued
//!   sequential fault simulation, used for the "Orig." rows of Table 3;
//! * [`generate_tests`] — the ATPG driver: random-pattern phase, PODEM
//!   top-off, fault dropping; produces a [`TestSet`] with
//!   [`Coverage`] metrics.
//!
//! # Examples
//!
//! ```
//! use socet_gate::{GateKind, GateNetlistBuilder};
//! use socet_atpg::{generate_tests, TpgConfig};
//!
//! let mut b = GateNetlistBuilder::new("and");
//! let x = b.input("x");
//! let y = b.input("y");
//! let z = b.gate2(GateKind::And2, x, y);
//! b.output("z", z);
//! let nl = b.build()?;
//! let tests = generate_tests(&nl, &TpgConfig::default());
//! assert_eq!(tests.coverage.fault_coverage(), 100.0);
//! # Ok::<(), socet_gate::GateError>(())
//! ```

pub mod codec;
pub mod compact;
pub mod coverage;
pub mod fault;
pub mod fsim;
pub mod metrics;
pub mod podem;
pub mod seqfsim;
pub mod tpg;

pub use codec::{decode_test_set, encode_test_set};
pub use compact::{compact_tests, CompactionStats};
pub use coverage::Coverage;
pub use fault::{fault_list, Fault};
pub use fsim::FaultSim;
pub use metrics::AtpgMetrics;
pub use podem::{Podem, PodemOutcome};
pub use seqfsim::SeqFaultSim;
pub use tpg::{generate_tests, TestSet, TpgConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use socet_gate::{GateKind, GateNetlistBuilder};

    #[test]
    fn crate_doc_example() {
        let mut b = GateNetlistBuilder::new("and");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.gate2(GateKind::And2, x, y);
        b.output("z", z);
        let nl = b.build().unwrap();
        let tests = generate_tests(&nl, &TpgConfig::default());
        assert_eq!(tests.coverage.fault_coverage(), 100.0);
    }
}
