//! Fault-parallel three-valued sequential fault simulation.
//!
//! The paper's "Orig." and "HSCAN-only" rows of Table 3 fault-simulate the
//! *sequential* chip (no scan access) against test sequences. Doing that
//! fault-serially is quadratic and slow, so this simulator packs up to 64
//! faulty machines into each `u64` word: lane *k* of every signal carries
//! the value seen by fault *k* of the current block. Values are three-valued
//! (flip-flops power up unknown), encoded as a pair of definite-1 /
//! definite-0 bit masks per signal.
//!
//! Fault blocks are mutually independent — each shares only the read-only
//! netlist and good-machine reference — so [`SeqFaultSim::run_from`]
//! additionally partitions them across scoped threads; results are
//! bit-identical for any worker count.

use crate::fault::Fault;
use socet_gate::{GateKind, GateNetlist, SeqSim, Tri};

/// Fault-parallel sequential fault simulator.
///
/// # Examples
///
/// ```
/// use socet_gate::{GateNetlistBuilder, Tri};
/// use socet_atpg::{Fault, SeqFaultSim};
/// let mut b = GateNetlistBuilder::new("dff");
/// let d = b.input("d");
/// let q = b.dff(d);
/// b.output("q", q);
/// let nl = b.build()?;
/// let sim = SeqFaultSim::new(&nl);
/// // Clock in 1 then observe: q stuck-at-0 is detected.
/// let vectors = vec![vec![Tri::One], vec![Tri::Zero]];
/// let det = sim.run(&[Fault::sa0(q)], &vectors);
/// assert_eq!(det, vec![true]);
/// # Ok::<(), socet_gate::GateError>(())
/// ```
#[derive(Debug)]
pub struct SeqFaultSim<'a> {
    nl: &'a GateNetlist,
    /// Worker cap for block partitioning (1 forces serial evaluation).
    workers: usize,
}

/// Packed three-valued word: definite-1 and definite-0 lane masks.
#[derive(Debug, Clone, Copy, Default)]
struct P3 {
    d1: u64,
    d0: u64,
}

impl P3 {
    const X: P3 = P3 { d1: 0, d0: 0 };

    fn splat(t: Tri) -> P3 {
        match t {
            Tri::One => P3 {
                d1: u64::MAX,
                d0: 0,
            },
            Tri::Zero => P3 {
                d1: 0,
                d0: u64::MAX,
            },
            Tri::X => P3::X,
        }
    }

    fn not(self) -> P3 {
        P3 {
            d1: self.d0,
            d0: self.d1,
        }
    }

    fn and(self, o: P3) -> P3 {
        P3 {
            d1: self.d1 & o.d1,
            d0: self.d0 | o.d0,
        }
    }

    fn or(self, o: P3) -> P3 {
        P3 {
            d1: self.d1 | o.d1,
            d0: self.d0 & o.d0,
        }
    }

    fn xor(self, o: P3) -> P3 {
        P3 {
            d1: (self.d1 & o.d0) | (self.d0 & o.d1),
            d0: (self.d1 & o.d1) | (self.d0 & o.d0),
        }
    }

    fn mux(s: P3, a0: P3, a1: P3) -> P3 {
        let sx = !(s.d0 | s.d1);
        P3 {
            d1: (s.d0 & a0.d1) | (s.d1 & a1.d1) | (sx & a0.d1 & a1.d1),
            d0: (s.d0 & a0.d0) | (s.d1 & a1.d0) | (sx & a0.d0 & a1.d0),
        }
    }

    /// Applies stuck-at injection masks.
    fn inject(self, m1: u64, m0: u64) -> P3 {
        P3 {
            d1: (self.d1 & !m0) | m1,
            d0: (self.d0 & !m1) | m0,
        }
    }
}

impl<'a> SeqFaultSim<'a> {
    /// Creates a simulator over `nl`.
    pub fn new(nl: &'a GateNetlist) -> Self {
        SeqFaultSim {
            nl,
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }

    /// Caps the number of worker threads block partitioning may use; `0`
    /// and `1` both force serial evaluation. Results are bit-identical for
    /// every setting.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Simulates `vectors` (applied cycle by cycle from X-initialized state)
    /// against every fault; `result[i]` reports whether `faults[i]` produced
    /// a definite, wrong value at a primary output in some cycle.
    ///
    /// # Panics
    ///
    /// Panics if a vector's length differs from the netlist's input count.
    pub fn run(&self, faults: &[Fault], vectors: &[Vec<Tri>]) -> Vec<bool> {
        self.run_from(faults, vectors, Tri::X)
    }

    /// Like [`SeqFaultSim::run`] but with every flip-flop initialized to
    /// `init` — pass [`Tri::Zero`] to model a chip that starts from reset.
    pub fn run_from(&self, faults: &[Fault], vectors: &[Vec<Tri>], init: Tri) -> Vec<bool> {
        // Reference (good-machine) outputs per cycle.
        let mut good_sim = match init {
            Tri::Zero => SeqSim::new_reset(self.nl),
            _ => SeqSim::new(self.nl),
        };
        let good_outputs: Vec<Vec<Tri>> = vectors.iter().map(|v| good_sim.step(v, None)).collect();

        let mut detected = vec![false; faults.len()];
        let mut blocks: Vec<(&[Fault], &mut [bool])> =
            faults.chunks(64).zip(detected.chunks_mut(64)).collect();
        let workers = self.workers.min(blocks.len());
        if workers > 1 {
            // Fault-block partitioning: contiguous runs of independent
            // 64-fault blocks per worker, each writing its own disjoint
            // slice of the detection map, so the merge is the identity.
            let per = blocks.len().div_ceil(workers);
            let good_outputs = &good_outputs;
            std::thread::scope(|s| {
                for part in blocks.chunks_mut(per) {
                    s.spawn(move || {
                        for (block, det) in part.iter_mut() {
                            let d = self.run_block(block, vectors, good_outputs, init);
                            det.copy_from_slice(&d);
                        }
                    });
                }
            });
        } else {
            for (block, det) in blocks.iter_mut() {
                let d = self.run_block(block, vectors, &good_outputs, init);
                det.copy_from_slice(&d);
            }
        }
        detected
    }

    fn run_block(
        &self,
        block: &[Fault],
        vectors: &[Vec<Tri>],
        good_outputs: &[Vec<Tri>],
        init: Tri,
    ) -> Vec<bool> {
        let n = self.nl.gates().len();
        // Injection masks per signal.
        let mut m1 = vec![0u64; n];
        let mut m0 = vec![0u64; n];
        for (k, f) in block.iter().enumerate() {
            if f.stuck_at_one {
                m1[f.signal.index()] |= 1 << k;
            } else {
                m0[f.signal.index()] |= 1 << k;
            }
        }
        let ffs = self.nl.flip_flops();
        let mut state: Vec<P3> = vec![P3::splat(init); ffs.len()];
        let mut detected_lanes = 0u64;
        let used: u64 = if block.len() == 64 {
            u64::MAX
        } else {
            (1u64 << block.len()) - 1
        };

        for (cycle, vector) in vectors.iter().enumerate() {
            assert_eq!(vector.len(), self.nl.inputs().len(), "vector width");
            let mut v = vec![P3::X; n];
            for ((_, s), t) in self.nl.inputs().iter().zip(vector) {
                v[s.index()] = P3::splat(*t).inject(m1[s.index()], m0[s.index()]);
            }
            for (q, st) in ffs.iter().zip(&state) {
                v[q.index()] = st.inject(m1[q.index()], m0[q.index()]);
            }
            for (i, g) in self.nl.gates().iter().enumerate() {
                match g.kind {
                    GateKind::Const0 => v[i] = P3::splat(Tri::Zero).inject(m1[i], m0[i]),
                    GateKind::Const1 => v[i] = P3::splat(Tri::One).inject(m1[i], m0[i]),
                    _ => {}
                }
            }
            for s in self.nl.topo_order() {
                let g = self.nl.gate(*s);
                let ops = g.operands();
                let val = match g.kind {
                    GateKind::Not => v[ops[0].index()].not(),
                    GateKind::Buf => v[ops[0].index()],
                    GateKind::And2 => v[ops[0].index()].and(v[ops[1].index()]),
                    GateKind::Or2 => v[ops[0].index()].or(v[ops[1].index()]),
                    GateKind::Nand2 => v[ops[0].index()].and(v[ops[1].index()]).not(),
                    GateKind::Nor2 => v[ops[0].index()].or(v[ops[1].index()]).not(),
                    GateKind::Xor2 => v[ops[0].index()].xor(v[ops[1].index()]),
                    GateKind::Xnor2 => v[ops[0].index()].xor(v[ops[1].index()]).not(),
                    GateKind::Mux2 => {
                        P3::mux(v[ops[0].index()], v[ops[1].index()], v[ops[2].index()])
                    }
                    _ => unreachable!("topo order holds only combinational gates"),
                };
                v[s.index()] = val.inject(m1[s.index()], m0[s.index()]);
            }
            // Detection at primary outputs.
            for ((_, s), good) in self.nl.outputs().iter().zip(&good_outputs[cycle]) {
                match good {
                    Tri::One => detected_lanes |= v[s.index()].d0 & used,
                    Tri::Zero => detected_lanes |= v[s.index()].d1 & used,
                    Tri::X => {}
                }
            }
            // Clock.
            for (i, q) in ffs.iter().enumerate() {
                let d = self.nl.gate(*q).operands()[0];
                state[i] = v[d.index()].inject(m1[q.index()], m0[q.index()]);
            }
        }
        (0..block.len())
            .map(|k| detected_lanes >> k & 1 != 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::fault_list;
    use socet_gate::GateNetlistBuilder;

    fn dff_chain(len: usize) -> GateNetlist {
        let mut b = GateNetlistBuilder::new("chain");
        let d = b.input("d");
        let mut s = d;
        for _ in 0..len {
            s = b.dff(s);
        }
        b.output("q", s);
        b.build().unwrap()
    }

    #[test]
    fn undetectable_without_enough_cycles() {
        let nl = dff_chain(3);
        let sim = SeqFaultSim::new(&nl);
        let faults = fault_list(&nl);
        // Two cycles cannot flush a 3-deep chain: the output is still X,
        // nothing definite to compare.
        let vectors = vec![vec![Tri::One]; 2];
        let det = sim.run(&faults, &vectors);
        assert!(det.iter().all(|&d| !d));
    }

    #[test]
    fn chain_faults_detected_after_flush() {
        let nl = dff_chain(3);
        let sim = SeqFaultSim::new(&nl);
        let faults = fault_list(&nl);
        // Drive 1s for 4 cycles (flush + observe), then 0s for 5: both
        // polarities become observable.
        let mut vectors = vec![vec![Tri::One]; 5];
        vectors.extend(vec![vec![Tri::Zero]; 6]);
        let det = sim.run(&faults, &vectors);
        assert!(
            det.iter().all(|&d| d),
            "undetected: {:?}",
            faults
                .iter()
                .zip(&det)
                .filter(|(_, &d)| !d)
                .map(|(f, _)| *f)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn agrees_with_scalar_seq_sim() {
        // Cross-check one fault against SeqSim's scalar fault injection.
        let nl = dff_chain(2);
        let faults = fault_list(&nl);
        let vectors: Vec<Vec<Tri>> = [Tri::One, Tri::Zero, Tri::One, Tri::One, Tri::Zero]
            .iter()
            .map(|t| vec![*t])
            .collect();
        let packed = SeqFaultSim::new(&nl).run(&faults, &vectors);
        for (fi, fault) in faults.iter().enumerate() {
            let mut good = SeqSim::new(&nl);
            let mut bad = SeqSim::new(&nl);
            let mut scalar_detected = false;
            for v in &vectors {
                let g = good.step(v, None);
                let f = bad.step(v, Some((fault.signal, fault.stuck_at_one)));
                for (gv, fv) in g.iter().zip(&f) {
                    if let (Some(a), Some(b)) = (gv.to_bool(), fv.to_bool()) {
                        if a != b {
                            scalar_detected = true;
                        }
                    }
                }
            }
            assert_eq!(packed[fi], scalar_detected, "{fault}");
        }
    }

    #[test]
    fn more_than_64_faults_use_blocks() {
        // A wide netlist with >64 fault sites.
        let mut b = GateNetlistBuilder::new("wide");
        let mut outs = Vec::new();
        for i in 0..40 {
            let x = b.input(&format!("x{i}"));
            let q = b.dff(x);
            outs.push(q);
        }
        for (i, q) in outs.iter().enumerate() {
            b.output(&format!("q{i}"), *q);
        }
        let nl = b.build().unwrap();
        let faults = fault_list(&nl);
        assert!(faults.len() > 64);
        let sim = SeqFaultSim::new(&nl);
        let vectors = vec![vec![Tri::One; 40], vec![Tri::Zero; 40], vec![Tri::Zero; 40]];
        let det = sim.run(&faults, &vectors);
        assert!(det.iter().all(|&d| d));
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let mut b = GateNetlistBuilder::new("wide");
        let mut outs = Vec::new();
        for i in 0..40 {
            let x = b.input(&format!("x{i}"));
            let q = b.dff(x);
            outs.push(q);
        }
        for (i, q) in outs.iter().enumerate() {
            b.output(&format!("q{i}"), *q);
        }
        let nl = b.build().unwrap();
        let faults = fault_list(&nl);
        let vectors = vec![vec![Tri::One; 40], vec![Tri::X; 40], vec![Tri::Zero; 40]];
        let serial = SeqFaultSim::new(&nl).with_workers(1).run(&faults, &vectors);
        let parallel = SeqFaultSim::new(&nl).with_workers(6).run(&faults, &vectors);
        assert_eq!(serial, parallel);
    }
}
