//! The ATPG driver: random-pattern phase, PODEM top-off, fault dropping.

use crate::coverage::Coverage;
use crate::fault::fault_list;
use crate::fsim::FaultSim;
use crate::metrics::AtpgMetrics;
use crate::podem::{Podem, PodemOutcome};
use socet_gate::{GateNetlist, Tri};
use socet_obs::names;

/// Configuration of a [`generate_tests`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpgConfig {
    /// Random patterns to try before deterministic generation.
    pub random_patterns: usize,
    /// PODEM backtrack budget per fault.
    pub max_backtracks: usize,
    /// Seed for the deterministic pattern filler.
    pub seed: u64,
}

impl Default for TpgConfig {
    fn default() -> Self {
        TpgConfig {
            random_patterns: 32,
            max_backtracks: 512,
            seed: 0x5eed_50ce7,
        }
    }
}

/// A generated test set for the full-scan (combinational) view of a
/// netlist: each pattern assigns the real inputs followed by the flip-flop
/// pseudo-inputs.
#[derive(Debug, Clone)]
pub struct TestSet {
    /// The patterns, in generation order.
    pub patterns: Vec<Vec<bool>>,
    /// The fault accounting of the run.
    pub coverage: Coverage,
    /// Engine counters of the run (cone pruning, fault dropping, …).
    pub stats: AtpgMetrics,
}

impl TestSet {
    /// Number of test patterns (the paper's "full-scan vectors").
    pub fn vector_count(&self) -> usize {
        self.patterns.len()
    }
}

/// Runs combinational ATPG for every collapsed stuck-at fault of `nl`.
///
/// The driver mirrors a production flow:
///
/// 1. fault-simulate `random_patterns` deterministic-random patterns with
///    fault dropping (cheap coverage of the easy faults);
/// 2. run PODEM on each remaining fault; every new test is random-filled
///    and fault-simulated against all live faults so one vector usually
///    drops many;
/// 3. classify leftovers as untestable (PODEM exhausted) or aborted
///    (backtrack limit).
///
/// # Examples
///
/// ```
/// use socet_gate::{GateKind, GateNetlistBuilder};
/// use socet_atpg::{generate_tests, TpgConfig};
/// let mut b = GateNetlistBuilder::new("mux");
/// let s = b.input("s");
/// let x = b.input("x");
/// let y = b.input("y");
/// let m = b.mux(s, x, y);
/// b.output("m", m);
/// let nl = b.build()?;
/// let tests = generate_tests(&nl, &TpgConfig::default());
/// assert_eq!(tests.coverage.test_efficiency(), 100.0);
/// assert!(tests.vector_count() >= 2);
/// # Ok::<(), socet_gate::GateError>(())
/// ```
pub fn generate_tests(nl: &GateNetlist, config: &TpgConfig) -> TestSet {
    let _run = socet_obs::span(names::ATPG);
    let faults = fault_list(nl);
    let mut sim = FaultSim::new(nl);
    let width = sim.pattern_width();
    let mut rng = XorShift64::new(config.seed);
    let mut detected = vec![false; faults.len()];
    let mut patterns: Vec<Vec<bool>> = Vec::new();
    let mut fill_mask_events = 0u64;

    // Phase 1: random patterns (kept only if they detect something new).
    {
        let _phase = socet_obs::span(names::ATPG_RANDOM);
        let mut batch: Vec<Vec<bool>> = Vec::new();
        for _ in 0..config.random_patterns {
            batch.push((0..width).map(|_| rng.bit()).collect());
        }
        if !batch.is_empty() {
            let before = count(&detected);
            sim.accumulate(&faults, &batch, &mut detected);
            if count(&detected) > before {
                // Keep only the useful patterns. Per-pattern detection masks
                // replay the greedy pattern-by-pattern decision over whole
                // 64-lane blocks instead of simulating one pattern per block.
                let mut redetected = vec![false; faults.len()];
                let mut masks = vec![0u64; faults.len()];
                for block in batch.chunks(64) {
                    sim.detection_masks(&faults, block, &redetected, &mut masks);
                    for (k, pat) in block.iter().enumerate() {
                        let mut useful = false;
                        for (fi, m) in masks.iter().enumerate() {
                            if !redetected[fi] && m >> k & 1 != 0 {
                                redetected[fi] = true;
                                useful = true;
                            }
                        }
                        if useful {
                            patterns.push(pat.clone());
                        }
                    }
                }
                detected = redetected;
            }
        }
    }
    let dropped_random = count(&detected);

    // Phase 2: PODEM top-off with fault dropping.
    let phase = socet_obs::span(names::ATPG_PODEM);
    let mut podem = Podem::new(nl, config.max_backtracks);
    let mut untestable = 0usize;
    let mut aborted = 0usize;
    for fi in 0..faults.len() {
        if detected[fi] {
            continue;
        }
        match podem.run(faults[fi]) {
            PodemOutcome::Test(vector) => {
                let filled: Vec<bool> = vector
                    .iter()
                    .map(|t| match t {
                        Tri::One => true,
                        Tri::Zero => false,
                        Tri::X => rng.bit(),
                    })
                    .collect();
                sim.accumulate(&faults, std::slice::from_ref(&filled), &mut detected);
                patterns.push(filled);
                // PODEM's three-valued implication proved a D at an output
                // with the X inputs unassigned, so no fill can mask it; a
                // miss here means PODEM and the fault simulator disagree.
                // Coverage is counted from the simulator's verdict only.
                debug_assert!(
                    detected[fi],
                    "random fill masked PODEM's test for fault {:?}",
                    faults[fi]
                );
                if !detected[fi] {
                    fill_mask_events += 1;
                }
            }
            PodemOutcome::Untestable => untestable += 1,
            PodemOutcome::Aborted => aborted += 1,
        }
    }
    drop(phase);

    let coverage = Coverage {
        total: faults.len(),
        detected: count(&detected),
        untestable,
        aborted,
    };
    let mut stats = sim.take_metrics();
    stats.faults_dropped_random = dropped_random as u64;
    stats.faults_dropped_podem = (coverage.detected - dropped_random) as u64;
    stats.fill_mask_events = fill_mask_events;
    // One publication per run keeps the installed recorder's counters in
    // lock-step with `stats` (shard workers above carry spans only).
    stats.publish();
    TestSet {
        patterns,
        coverage,
        stats,
    }
}

/// Deterministic random vectors for sequential fault simulation (the
/// "Orig." experiments): `cycles` vectors over `inputs` input bits.
///
/// # Examples
///
/// ```
/// use socet_atpg::tpg::random_sequence;
/// let seq = random_sequence(3, 10, 42);
/// assert_eq!(seq.len(), 10);
/// assert_eq!(seq[0].len(), 3);
/// ```
pub fn random_sequence(inputs: usize, cycles: usize, seed: u64) -> Vec<Vec<Tri>> {
    let mut rng = XorShift64::new(seed);
    (0..cycles)
        .map(|_| (0..inputs).map(|_| Tri::from_bool(rng.bit())).collect())
        .collect()
}

fn count(det: &[bool]) -> usize {
    det.iter().filter(|&&d| d).count()
}

/// Small deterministic xorshift64 generator — no external dependency, and
/// runs are reproducible by construction.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        // Scramble through the splitmix64 finalizer so every seed —
        // including 0, which the raw xorshift recurrence cannot accept —
        // starts a distinct stream. (The old `seed.max(1)` clamp made
        // seeds 0 and 1 identical.)
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    fn bit(&mut self) -> bool {
        self.next() & 1 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::fault_list;
    use socet_gate::{GateKind, GateNetlistBuilder};

    fn adder4() -> GateNetlist {
        let mut b = GateNetlistBuilder::new("add4");
        let mut carry = b.const0();
        let mut sums = Vec::new();
        for i in 0..4 {
            let x = b.input(&format!("a{i}"));
            let y = b.input(&format!("b{i}"));
            let p = b.gate2(GateKind::Xor2, x, y);
            let s = b.gate2(GateKind::Xor2, p, carry);
            let g1 = b.gate2(GateKind::And2, x, y);
            let g2 = b.gate2(GateKind::And2, p, carry);
            carry = b.gate2(GateKind::Or2, g1, g2);
            sums.push(s);
        }
        for (i, s) in sums.iter().enumerate() {
            b.output(&format!("s{i}"), *s);
        }
        b.output("cout", carry);
        b.build().unwrap()
    }

    #[test]
    fn adder_reaches_full_efficiency() {
        let nl = adder4();
        let tests = generate_tests(&nl, &TpgConfig::default());
        assert_eq!(
            tests.coverage.test_efficiency(),
            100.0,
            "{}",
            tests.coverage
        );
        assert_eq!(tests.coverage.aborted, 0);
        // Every pattern assigns all 8 inputs.
        assert!(tests.patterns.iter().all(|p| p.len() == 8));
    }

    #[test]
    fn generated_patterns_actually_detect_reported_faults() {
        let nl = adder4();
        let tests = generate_tests(&nl, &TpgConfig::default());
        let faults = fault_list(&nl);
        let mut sim = FaultSim::new(&nl);
        let det = sim.detected(&faults, &tests.patterns);
        assert_eq!(count(&det), tests.coverage.detected);
        // …and with the fill-mask fallback gone, the naive oracle agrees.
        let naive = sim.detected_naive(&faults, &tests.patterns);
        assert_eq!(count(&naive), tests.coverage.detected);
        assert_eq!(tests.stats.fill_mask_events, 0);
    }

    #[test]
    fn zero_random_patterns_still_works() {
        let nl = adder4();
        let cfg = TpgConfig {
            random_patterns: 0,
            ..TpgConfig::default()
        };
        let tests = generate_tests(&nl, &cfg);
        assert_eq!(tests.coverage.test_efficiency(), 100.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let nl = adder4();
        let a = generate_tests(&nl, &TpgConfig::default());
        let b = generate_tests(&nl, &TpgConfig::default());
        assert_eq!(a.patterns, b.patterns);
    }

    #[test]
    fn random_sequence_is_reproducible() {
        assert_eq!(random_sequence(4, 6, 9), random_sequence(4, 6, 9));
        assert_ne!(random_sequence(4, 6, 9), random_sequence(4, 6, 10));
    }

    #[test]
    fn seed_zero_and_one_produce_distinct_streams() {
        // Regression: `seed.max(1)` used to alias seed 0 onto seed 1.
        assert_ne!(random_sequence(4, 16, 0), random_sequence(4, 16, 1));
        let nl = adder4();
        let zero = generate_tests(
            &nl,
            &TpgConfig {
                seed: 0,
                ..TpgConfig::default()
            },
        );
        let one = generate_tests(
            &nl,
            &TpgConfig {
                seed: 1,
                ..TpgConfig::default()
            },
        );
        assert_ne!(zero.patterns, one.patterns);
    }

    #[test]
    fn driver_populates_engine_stats() {
        let nl = adder4();
        let tests = generate_tests(&nl, &TpgConfig::default());
        assert!(tests.stats.blocks_simulated > 0);
        assert!(tests.stats.cone_gate_evals > 0);
        assert_eq!(tests.stats.fill_mask_events, 0);
        assert_eq!(
            tests.stats.faults_dropped_random + tests.stats.faults_dropped_podem,
            tests.coverage.detected as u64
        );
    }

    #[test]
    fn redundant_logic_lowers_fc_not_teff() {
        // y = a OR (a AND b): AND s-a-0 is redundant.
        let mut b = GateNetlistBuilder::new("red");
        let a = b.input("a");
        let bb = b.input("b");
        let and_ab = b.gate2(GateKind::And2, a, bb);
        let y = b.gate2(GateKind::Or2, a, and_ab);
        b.output("y", y);
        let nl = b.build().unwrap();
        let tests = generate_tests(&nl, &TpgConfig::default());
        assert!(tests.coverage.untestable >= 1, "{}", tests.coverage);
        assert_eq!(tests.coverage.test_efficiency(), 100.0);
        assert!(tests.coverage.fault_coverage() < 100.0);
    }
}
