//! PODEM: path-oriented decision making, the classic complete combinational
//! ATPG algorithm, on the full-scan view of a gate netlist.
//!
//! The implementation keeps two three-valued planes per signal — the good
//! machine and the faulty machine — so the composite values 0/1/X/D/D̄ fall
//! out of plane comparison. Implication is a full forward resimulation of
//! the combinational cone (circuits at core granularity are small enough
//! that incremental implication buys nothing), decisions are made only on
//! primary inputs via objective backtrace, and an X-path check prunes
//! decisions that can no longer propagate the fault to an output.

use crate::fault::Fault;
use socet_gate::{GateKind, GateNetlist, SignalId, Tri};

/// The outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test was found; the vector assigns each combinational primary input
    /// (real PIs followed by flip-flop pseudo-inputs) 0, 1 or X.
    Test(Vec<Tri>),
    /// The fault is provably untestable (decision space exhausted).
    Untestable,
    /// The backtrack budget ran out before a verdict.
    Aborted,
}

/// PODEM test generator for one netlist.
///
/// # Examples
///
/// ```
/// use socet_gate::{GateKind, GateNetlistBuilder};
/// use socet_atpg::{Fault, Podem, PodemOutcome};
/// let mut b = GateNetlistBuilder::new("and");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.gate2(GateKind::And2, x, y);
/// b.output("z", z);
/// let nl = b.build()?;
/// let mut podem = Podem::new(&nl, 100);
/// // z stuck-at-0 needs x=1, y=1.
/// match podem.run(Fault::sa0(z)) {
///     PodemOutcome::Test(v) => assert_eq!(v.len(), 2),
///     other => panic!("expected a test, got {other:?}"),
/// }
/// # Ok::<(), socet_gate::GateError>(())
/// ```
#[derive(Debug)]
pub struct Podem<'a> {
    nl: &'a GateNetlist,
    pis: Vec<SignalId>,
    pos: Vec<SignalId>,
    /// Position of each signal in `pis`, or `usize::MAX`.
    pi_pos: Vec<usize>,
    max_backtracks: usize,
    good: Vec<Tri>,
    faulty: Vec<Tri>,
}

impl<'a> Podem<'a> {
    /// Creates a generator with the given backtrack budget per fault.
    pub fn new(nl: &'a GateNetlist, max_backtracks: usize) -> Self {
        let pis = nl.comb_inputs();
        let pos = nl.comb_outputs();
        let mut pi_pos = vec![usize::MAX; nl.gates().len()];
        for (i, s) in pis.iter().enumerate() {
            pi_pos[s.index()] = i;
        }
        Podem {
            nl,
            pis,
            pos,
            pi_pos,
            max_backtracks,
            good: Vec::new(),
            faulty: Vec::new(),
        }
    }

    /// The combinational primary inputs, in the order test vectors use.
    pub fn inputs(&self) -> &[SignalId] {
        &self.pis
    }

    /// Runs PODEM for `fault`.
    pub fn run(&mut self, fault: Fault) -> PodemOutcome {
        let n_pi = self.pis.len();
        let mut assignment: Vec<Tri> = vec![Tri::X; n_pi];
        // Decision stack: (pi index, second value tried?).
        let mut stack: Vec<(usize, bool)> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            self.imply(&assignment, fault);
            if self.detected() {
                return PodemOutcome::Test(assignment);
            }
            let objective = self.objective(fault);
            let feasible = objective.is_some() && self.x_path_exists(fault);
            if let (Some(obj), true) = (objective, feasible) {
                if let Some((pi, val)) = self.backtrace(obj) {
                    assignment[pi] = Tri::from_bool(val);
                    stack.push((pi, false));
                    continue;
                }
            }
            // Dead end: backtrack.
            loop {
                match stack.pop() {
                    None => return PodemOutcome::Untestable,
                    Some((pi, true)) => {
                        assignment[pi] = Tri::X;
                        // keep popping
                    }
                    Some((pi, false)) => {
                        backtracks += 1;
                        if backtracks > self.max_backtracks {
                            return PodemOutcome::Aborted;
                        }
                        let flipped = match assignment[pi] {
                            Tri::Zero => Tri::One,
                            Tri::One => Tri::Zero,
                            Tri::X => Tri::One,
                        };
                        assignment[pi] = flipped;
                        stack.push((pi, true));
                        break;
                    }
                }
            }
        }
    }

    /// Forward-simulates both planes under the PI assignment.
    fn imply(&mut self, assignment: &[Tri], fault: Fault) {
        let n = self.nl.gates().len();
        self.good.clear();
        self.good.resize(n, Tri::X);
        self.faulty.clear();
        self.faulty.resize(n, Tri::X);
        for (i, s) in self.pis.iter().enumerate() {
            self.good[s.index()] = assignment[i];
            self.faulty[s.index()] = assignment[i];
        }
        for (i, g) in self.nl.gates().iter().enumerate() {
            match g.kind {
                GateKind::Const0 => {
                    self.good[i] = Tri::Zero;
                    self.faulty[i] = Tri::Zero;
                }
                GateKind::Const1 => {
                    self.good[i] = Tri::One;
                    self.faulty[i] = Tri::One;
                }
                _ => {}
            }
        }
        // Inject at fault site if it is a PI/FF/const.
        let site = fault.signal.index();
        let site_kind = self.nl.gate(fault.signal).kind;
        if matches!(
            site_kind,
            GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
        ) {
            self.faulty[site] = Tri::from_bool(fault.stuck_at_one);
        }
        let order: &[SignalId] = self.nl.topo_order();
        for s in order {
            let g = self.nl.gate(*s);
            let gv = eval_gate(g.kind, g.operands(), &self.good);
            let fv = eval_gate(g.kind, g.operands(), &self.faulty);
            self.good[s.index()] = gv;
            self.faulty[s.index()] = fv;
            if s.index() == site {
                self.faulty[site] = Tri::from_bool(fault.stuck_at_one);
            }
        }
    }

    /// Whether a fault effect (definite, differing planes) reaches a PO.
    fn detected(&self) -> bool {
        self.pos.iter().any(|s| self.effect_at(*s))
    }

    fn effect_at(&self, s: SignalId) -> bool {
        matches!(
            (self.good[s.index()], self.faulty[s.index()]),
            (Tri::Zero, Tri::One) | (Tri::One, Tri::Zero)
        )
    }

    fn is_x(&self, s: SignalId) -> bool {
        self.good[s.index()] == Tri::X || self.faulty[s.index()] == Tri::X
    }

    /// Next objective `(signal, value)`:
    ///
    /// 1. activate the fault if the site is still X;
    /// 2. otherwise pick an X input of a D-frontier gate and demand the
    ///    gate's non-controlling value there.
    ///
    /// Returns `None` when the fault is de-activated (conflict) or no
    /// D-frontier remains.
    fn objective(&self, fault: Fault) -> Option<(SignalId, bool)> {
        let site = fault.signal;
        if self.is_x(site) {
            return Some((site, !fault.stuck_at_one));
        }
        if !self.effect_at(site) {
            // Site settled at the stuck value: fault not activated.
            return None;
        }
        // D-frontier: gate with X output and >=1 input carrying the effect.
        for s in self.nl.topo_order() {
            let g = self.nl.gate(*s);
            if !self.is_x(*s) {
                continue;
            }
            let has_effect_input = g.operands().iter().any(|op| self.effect_at(*op));
            if !has_effect_input {
                continue;
            }
            // Choose an X input and its non-controlling value.
            match g.kind {
                GateKind::And2 | GateKind::Nand2 => {
                    for op in g.operands() {
                        if self.is_x(*op) && !self.effect_at(*op) {
                            return Some((*op, true));
                        }
                    }
                }
                GateKind::Or2 | GateKind::Nor2 => {
                    for op in g.operands() {
                        if self.is_x(*op) && !self.effect_at(*op) {
                            return Some((*op, false));
                        }
                    }
                }
                GateKind::Xor2 | GateKind::Xnor2 => {
                    for op in g.operands() {
                        if self.is_x(*op) && !self.effect_at(*op) {
                            return Some((*op, false));
                        }
                    }
                }
                GateKind::Mux2 => {
                    let ops = g.operands();
                    let (sel, a0, a1) = (ops[0], ops[1], ops[2]);
                    if self.is_x(sel) && !self.effect_at(sel) {
                        // Point the select at a data leg carrying the effect.
                        let want = self.effect_at(a1);
                        return Some((sel, want));
                    }
                    // Select definite: the off-path is the unselected leg,
                    // nothing to set; the selected leg carries the effect or
                    // it wouldn't be in the frontier. An X selected data leg
                    // cannot carry an effect, so nothing to demand here.
                    let _ = (a0, a1);
                }
                GateKind::Not | GateKind::Buf => {
                    // Single-input: effect propagates unconditionally; the
                    // output being X with a D input can only happen
                    // transiently, nothing to set.
                }
                _ => {}
            }
        }
        None
    }

    /// Whether some X-valued path connects the fault effect to a PO.
    fn x_path_exists(&self, fault: Fault) -> bool {
        // Seeds: signals carrying the effect, or the still-X fault site.
        let n = self.nl.gates().len();
        let mut reach = vec![false; n];
        let mut frontier: Vec<usize> = Vec::new();
        for (i, slot) in reach.iter_mut().enumerate().take(n) {
            let s = SignalId::from_index(i);
            if self.effect_at(s) || (i == fault.signal.index() && self.is_x(s)) {
                *slot = true;
                frontier.push(i);
            }
        }
        if frontier.is_empty() {
            return false;
        }
        let fanouts = self.nl.fanouts();
        while let Some(i) = frontier.pop() {
            for f in &fanouts[i] {
                let fi = f.index();
                if reach[fi] {
                    continue;
                }
                // Propagation possible through gates whose output is still X
                // or already carries the effect.
                if self.is_x(*f) || self.effect_at(*f) {
                    reach[fi] = true;
                    frontier.push(fi);
                }
            }
        }
        self.pos.iter().any(|s| reach[s.index()])
    }

    /// Walks an objective back to an unassigned PI, tracking inversions.
    fn backtrace(&self, (mut sig, mut val): (SignalId, bool)) -> Option<(usize, bool)> {
        loop {
            let pi = self.pi_pos[sig.index()];
            if pi != usize::MAX {
                if self.good[sig.index()] != Tri::X {
                    return None; // already assigned; objective unreachable
                }
                return Some((pi, val));
            }
            let g = self.nl.gate(sig);
            match g.kind {
                GateKind::Const0 | GateKind::Const1 => return None,
                GateKind::Not => {
                    sig = g.operands()[0];
                    val = !val;
                }
                GateKind::Buf => {
                    sig = g.operands()[0];
                }
                GateKind::And2
                | GateKind::Nand2
                | GateKind::Or2
                | GateKind::Nor2
                | GateKind::Xor2
                | GateKind::Xnor2 => {
                    let invert =
                        matches!(g.kind, GateKind::Nand2 | GateKind::Nor2 | GateKind::Xnor2);
                    let inner = if invert { !val } else { val };
                    let ops = g.operands();
                    // Pick the first X input.
                    let pick = ops.iter().find(|op| self.is_x(**op))?;
                    match g.kind {
                        GateKind::And2 | GateKind::Nand2 => {
                            // To get 1 all inputs must be 1; to get 0 one
                            // input 0 suffices.
                            val = inner;
                        }
                        GateKind::Or2 | GateKind::Nor2 => {
                            val = inner;
                        }
                        GateKind::Xor2 | GateKind::Xnor2 => {
                            let other = ops.iter().find(|o| *o != pick).copied();
                            let other_val = other
                                .and_then(|o| self.good[o.index()].to_bool())
                                .unwrap_or(false);
                            val = inner ^ other_val;
                        }
                        _ => unreachable!(),
                    }
                    sig = *pick;
                }
                GateKind::Mux2 => {
                    let ops = g.operands();
                    let (sel, a0, a1) = (ops[0], ops[1], ops[2]);
                    match self.good[sel.index()].to_bool() {
                        Some(false) => sig = a0,
                        Some(true) => sig = a1,
                        None => {
                            // Decide the select first; prefer the 0 leg.
                            sig = sel;
                            val = false;
                        }
                    }
                }
                GateKind::Input | GateKind::Dff => {
                    unreachable!("PIs handled above")
                }
            }
        }
    }
}

fn eval_gate(kind: GateKind, ops: &[SignalId], v: &[Tri]) -> Tri {
    let g = |i: usize| v[ops[i].index()];
    match kind {
        GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1 => {
            // Not evaluated here; values pre-seeded.
            Tri::X
        }
        GateKind::Not => not3(g(0)),
        GateKind::Buf => g(0),
        GateKind::And2 => and3(g(0), g(1)),
        GateKind::Or2 => or3(g(0), g(1)),
        GateKind::Nand2 => not3(and3(g(0), g(1))),
        GateKind::Nor2 => not3(or3(g(0), g(1))),
        GateKind::Xor2 => xor3(g(0), g(1)),
        GateKind::Xnor2 => not3(xor3(g(0), g(1))),
        GateKind::Mux2 => match g(0) {
            Tri::Zero => g(1),
            Tri::One => g(2),
            Tri::X => {
                if g(1) == g(2) {
                    g(1)
                } else {
                    Tri::X
                }
            }
        },
    }
}

fn not3(a: Tri) -> Tri {
    match a {
        Tri::Zero => Tri::One,
        Tri::One => Tri::Zero,
        Tri::X => Tri::X,
    }
}

fn and3(a: Tri, b: Tri) -> Tri {
    match (a, b) {
        (Tri::Zero, _) | (_, Tri::Zero) => Tri::Zero,
        (Tri::One, Tri::One) => Tri::One,
        _ => Tri::X,
    }
}

fn or3(a: Tri, b: Tri) -> Tri {
    match (a, b) {
        (Tri::One, _) | (_, Tri::One) => Tri::One,
        (Tri::Zero, Tri::Zero) => Tri::Zero,
        _ => Tri::X,
    }
}

fn xor3(a: Tri, b: Tri) -> Tri {
    match (a, b) {
        (Tri::X, _) | (_, Tri::X) => Tri::X,
        (x, y) => Tri::from_bool(x != y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::fault_list;
    use socet_gate::{CombSim, GateNetlistBuilder};

    fn c17_like() -> GateNetlist {
        // A small NAND network in the spirit of ISCAS c17.
        let mut b = GateNetlistBuilder::new("c17");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let i3 = b.input("i3");
        let i4 = b.input("i4");
        let i5 = b.input("i5");
        let g1 = b.gate2(GateKind::Nand2, i1, i3);
        let g2 = b.gate2(GateKind::Nand2, i3, i4);
        let g3 = b.gate2(GateKind::Nand2, i2, g2);
        let g4 = b.gate2(GateKind::Nand2, g2, i5);
        let o1 = b.gate2(GateKind::Nand2, g1, g3);
        let o2 = b.gate2(GateKind::Nand2, g3, g4);
        b.output("o1", o1);
        b.output("o2", o2);
        b.build().unwrap()
    }

    /// Checks a PODEM test actually detects the fault with a reference
    /// simulation.
    fn verify_test(nl: &GateNetlist, fault: Fault, vec: &[Tri]) {
        let sim = CombSim::new(nl);
        // Fill Xs with 0 and with 1; at least the definite bits matter.
        let fill =
            |x: bool| -> Vec<bool> { vec.iter().map(|t| t.to_bool().unwrap_or(x)).collect() };
        for filler in [false, true] {
            let pattern = fill(filler);
            let (pi, ff) = pattern.split_at(nl.inputs().len());
            let good = sim.eval_signals(pi, ff);
            // Inject with the packed simulator for a faulty evaluation.
            let psim = socet_gate::PackedSim::new(nl);
            let piw: Vec<u64> = pi.iter().map(|&b| if b { 1 } else { 0 }).collect();
            let ffw: Vec<u64> = ff.iter().map(|&b| if b { 1 } else { 0 }).collect();
            let faulty = psim.eval(&piw, &ffw, Some((fault.signal, fault.stuck_at_one)));
            let detected = nl.comb_outputs().iter().any(|s| {
                let g = good[s.index()] as u64;
                let f = faulty[s.index()] & 1;
                g != f
            });
            assert!(detected, "{fault} not detected by {vec:?} (fill {filler})");
        }
    }

    #[test]
    fn and_gate_sa0_needs_both_ones() {
        let mut b = GateNetlistBuilder::new("and");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.gate2(GateKind::And2, x, y);
        b.output("z", z);
        let nl = b.build().unwrap();
        let mut podem = Podem::new(&nl, 100);
        match podem.run(Fault::sa0(z)) {
            PodemOutcome::Test(v) => {
                assert_eq!(v[0], Tri::One);
                assert_eq!(v[1], Tri::One);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn redundant_fault_proved_untestable() {
        // y = a OR (a AND b): the AND output s-a-0 is undetectable because
        // the OR output only differs when a=0, but then AND is 0 anyway.
        let mut b = GateNetlistBuilder::new("red");
        let a = b.input("a");
        let bb = b.input("b");
        let and_ab = b.gate2(GateKind::And2, a, bb);
        let y = b.gate2(GateKind::Or2, a, and_ab);
        b.output("y", y);
        let nl = b.build().unwrap();
        let mut podem = Podem::new(&nl, 1000);
        assert_eq!(podem.run(Fault::sa0(and_ab)), PodemOutcome::Untestable);
    }

    #[test]
    fn every_c17_fault_gets_a_verdict_and_tests_verify() {
        let nl = c17_like();
        let mut podem = Podem::new(&nl, 1000);
        let mut tested = 0;
        for fault in fault_list(&nl) {
            match podem.run(fault) {
                PodemOutcome::Test(v) => {
                    verify_test(&nl, fault, &v);
                    tested += 1;
                }
                PodemOutcome::Untestable => {}
                PodemOutcome::Aborted => panic!("aborted on {fault}"),
            }
        }
        assert!(tested > 0);
    }

    #[test]
    fn mux_fault_propagates_through_select() {
        let mut b = GateNetlistBuilder::new("m");
        let s = b.input("s");
        let a0 = b.input("a0");
        let a1 = b.input("a1");
        let m = b.mux(s, a0, a1);
        b.output("m", m);
        let nl = b.build().unwrap();
        let mut podem = Podem::new(&nl, 1000);
        for fault in [Fault::sa0(a1), Fault::sa1(a0), Fault::sa0(m), Fault::sa1(m)] {
            match podem.run(fault) {
                PodemOutcome::Test(v) => verify_test(&nl, fault, &v),
                other => panic!("{fault}: {other:?}"),
            }
        }
    }

    #[test]
    fn dff_pseudo_inputs_are_assignable() {
        // Fault behind a flip-flop: combinational view treats Q as a PI.
        let mut b = GateNetlistBuilder::new("ff");
        let d = b.input("d");
        let q = b.dff(d);
        let y = b.gate2(GateKind::And2, q, d);
        b.output("y", y);
        let nl = b.build().unwrap();
        let mut podem = Podem::new(&nl, 100);
        match podem.run(Fault::sa0(y)) {
            PodemOutcome::Test(v) => {
                // Both d and q must be settable to 1.
                assert_eq!(v.len(), 2);
                assert_eq!(v[0], Tri::One);
                assert_eq!(v[1], Tri::One);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn xor_chain_faults_testable() {
        let mut b = GateNetlistBuilder::new("parity");
        let ins: Vec<SignalId> = (0..4).map(|i| b.input(&format!("i{i}"))).collect();
        let x1 = b.gate2(GateKind::Xor2, ins[0], ins[1]);
        let x2 = b.gate2(GateKind::Xor2, x1, ins[2]);
        let x3 = b.gate2(GateKind::Xor2, x2, ins[3]);
        b.output("p", x3);
        let nl = b.build().unwrap();
        let mut podem = Podem::new(&nl, 1000);
        for fault in fault_list(&nl) {
            match podem.run(fault) {
                PodemOutcome::Test(v) => verify_test(&nl, fault, &v),
                other => panic!("{fault}: {other:?}"),
            }
        }
    }
}
