//! Fault-coverage and test-efficiency metrics, the FC/TEff columns of the
//! paper's Tables 1 and 3.

use std::fmt;

/// Fault accounting for one ATPG or fault-simulation run.
///
/// * *Fault coverage* `FC = detected / total`.
/// * *Test efficiency* `TEff = (detected + untestable) / total` — untestable
///   (redundant) faults cannot cause observable misbehaviour, so a campaign
///   that detects everything else is 100% efficient even below 100% FC.
///
/// # Examples
///
/// ```
/// use socet_atpg::Coverage;
/// let c = Coverage { total: 200, detected: 196, untestable: 3, aborted: 1 };
/// assert!((c.fault_coverage() - 98.0).abs() < 1e-9);
/// assert!((c.test_efficiency() - 99.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Coverage {
    /// Total faults targeted.
    pub total: usize,
    /// Faults detected by some vector.
    pub detected: usize,
    /// Faults proved untestable (redundant).
    pub untestable: usize,
    /// Faults abandoned at the backtrack limit.
    pub aborted: usize,
}

impl Coverage {
    /// Fault coverage in percent; 100 for an empty fault list.
    pub fn fault_coverage(&self) -> f64 {
        if self.total == 0 {
            return 100.0;
        }
        self.detected as f64 / self.total as f64 * 100.0
    }

    /// Test efficiency in percent; 100 for an empty fault list.
    pub fn test_efficiency(&self) -> f64 {
        if self.total == 0 {
            return 100.0;
        }
        (self.detected + self.untestable) as f64 / self.total as f64 * 100.0
    }

    /// Merges the accounting of two fault populations.
    ///
    /// Populations are counted **per physical instance**, not per core
    /// type: an SOC carrying two instances of the same core merges that
    /// core's accounting twice, doubling `total` and `detected` — each
    /// physical copy really is tested, so chip-level FC/TEff weight every
    /// instance by its own fault count. Sharing one prepared artifact
    /// across repeated instances (the preparation pipeline's memo) must
    /// therefore never change the aggregate.
    pub fn merge(&self, other: &Coverage) -> Coverage {
        Coverage {
            total: self.total + other.total,
            detected: self.detected + other.detected,
            untestable: self.untestable + other.untestable,
            aborted: self.aborted + other.aborted,
        }
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FC {:.1}% / TEff {:.1}% ({} faults: {} det, {} red, {} ab)",
            self.fault_coverage(),
            self.test_efficiency(),
            self.total,
            self.detected,
            self.untestable,
            self.aborted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_population_is_fully_covered() {
        let c = Coverage::default();
        assert_eq!(c.fault_coverage(), 100.0);
        assert_eq!(c.test_efficiency(), 100.0);
    }

    #[test]
    fn efficiency_counts_redundant_faults() {
        let c = Coverage {
            total: 10,
            detected: 8,
            untestable: 2,
            aborted: 0,
        };
        assert_eq!(c.fault_coverage(), 80.0);
        assert_eq!(c.test_efficiency(), 100.0);
    }

    #[test]
    fn merge_adds_fields() {
        let a = Coverage {
            total: 10,
            detected: 9,
            untestable: 1,
            aborted: 0,
        };
        let b = Coverage {
            total: 20,
            detected: 15,
            untestable: 0,
            aborted: 5,
        };
        let m = a.merge(&b);
        assert_eq!(m.total, 30);
        assert_eq!(m.detected, 24);
        assert_eq!(m.untestable, 1);
        assert_eq!(m.aborted, 5);
    }

    #[test]
    fn display_has_percentages() {
        let c = Coverage {
            total: 4,
            detected: 4,
            untestable: 0,
            aborted: 0,
        };
        assert!(c.to_string().contains("FC 100.0%"));
    }
}
