//! Baseline SOC test methods the paper compares SOCET against, plus the
//! chip-flattening and testability measurements behind Tables 2 and 3.
//!
//! * [`fscan_bscan`] — the FSCAN-BSCAN method: every core fully scanned,
//!   every core isolated by boundary scan. Large area, long serial shifts.
//! * [`testbus`] — the test-bus architecture: an added bus from PIs to POs
//!   with isolation multiplexers per core.
//! * [`flatten`] — merges the per-core gate netlists along the SOC nets
//!   into one chip netlist, the object the "Orig." and "HSCAN-only"
//!   experiments fault-simulate.
//! * [`testability`] — fault-coverage measurements: random sequential
//!   testing of the un-DFT'd chip, the HSCAN-only chip, and the aggregated
//!   per-core ATPG coverage that both FSCAN-BSCAN and SOCET achieve.

pub mod flatten;
pub mod fscan_bscan;
pub mod testability;
pub mod testbus;

pub use flatten::flatten_soc;
pub use fscan_bscan::{FscanBscanCore, FscanBscanReport};
pub use testability::{aggregate_core_coverage, hscan_only_coverage, orig_coverage};
pub use testbus::TestBusReport;
