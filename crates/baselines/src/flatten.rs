//! SOC flattening: merge per-core gate netlists along the chip nets into
//! one chip-level [`GateNetlist`].
//!
//! The flattened chip is the object of the paper's "Orig." and
//! "HSCAN-only" testability experiments (Table 3): its only controllable
//! points are the chip PIs and its only observable points the chip POs —
//! embedded core ports disappear into internal nets.
//!
//! Memory cores are excluded (they are BIST-tested in the paper); nets to
//! or from them dangle, and core inputs that end up driverless are tied to
//! constant 0.

use socet_gate::{
    elaborate_with, ElabOptions, GateError, GateNetlist, GateNetlistBuilder, SignalId,
};
use socet_rtl::{Soc, SocEndpoint};
use std::collections::HashMap;

/// Flattens `soc` into a single gate netlist.
///
/// Every logic core is elaborated and inlined; chip-level nets rewire each
/// driven core-input bit to its driver (a chip PI bit or another core's
/// output bit). Core input bits with no chip-level driver are tied low.
/// Internal mux-select lines created by elaboration remain chip inputs —
/// a documented optimism (see `DESIGN.md`), since the real chip would
/// drive them from control logic.
///
/// # Errors
///
/// Propagates [`GateError`] from elaboration or final netlist validation.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction, SocBuilder};
/// use socet_baselines::flatten_soc;
/// use std::sync::Arc;
/// let mut b = CoreBuilder::new("buf");
/// let i = b.port("i", Direction::In, 4)?;
/// let o = b.port("o", Direction::Out, 4)?;
/// let r = b.register("r", 4)?;
/// b.connect_port_to_reg(i, r)?;
/// b.connect_reg_to_port(r, o)?;
/// let core = Arc::new(b.build()?);
/// let mut sb = SocBuilder::new("chip");
/// let pi = sb.input_pin("pi", 4)?;
/// let po = sb.output_pin("po", 4)?;
/// let u0 = sb.instantiate("u0", core.clone())?;
/// let u1 = sb.instantiate("u1", core.clone())?;
/// sb.connect_pin_to_core(pi, u0, i)?;
/// sb.connect_cores(u0, o, u1, i)?;
/// sb.connect_core_to_pin(u1, o, po)?;
/// let soc = sb.build()?;
/// let flat = flatten_soc(&soc)?;
/// assert_eq!(flat.flip_flop_count(), 8);
/// assert_eq!(flat.inputs().len(), 4); // only the chip PI remains
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn flatten_soc(soc: &Soc) -> Result<GateNetlist, GateError> {
    let mut b = GateNetlistBuilder::new(soc.name());
    // Chip PI bits.
    let mut pin_bits: HashMap<(usize, u16), SignalId> = HashMap::new();
    for pin in soc.primary_inputs() {
        let p = soc.pin(pin);
        for bit in 0..p.width() {
            let s = b.input(&format!("{}[{bit}]", p.name()));
            pin_bits.insert((pin.index(), bit), s);
        }
    }
    // Inline every logic core.
    // per (core idx, port idx, bit) -> global signal (for inputs: the Input
    // gate to rewire; for outputs: the buffered output bit).
    let mut in_bits: HashMap<(usize, usize, u16), SignalId> = HashMap::new();
    let mut out_bits: HashMap<(usize, usize, u16), SignalId> = HashMap::new();
    // Elaboration-internal control inputs (mux selects, ALU opcodes) per
    // core, plus that core's flip-flop outputs: on the real chip these
    // controls come from the core's own FSM state, so tie each to a state
    // bit rather than leaving it chip-controllable.
    let mut internal_controls: Vec<(SignalId, SignalId)> = Vec::new();
    let mut always_on: Vec<SignalId> = Vec::new();
    for cid in soc.logic_cores() {
        let inst = soc.core(cid);
        let core = inst.core();
        let elab = elaborate_with(core, &ElabOptions { load_enables: true })?;
        let map = b.append(&elab.netlist, inst.name());
        let mut port_inputs: std::collections::HashSet<SignalId> = std::collections::HashSet::new();
        for (pi_idx, sigs) in elab.input_bits.iter().enumerate() {
            for (bit, s) in sigs.iter().enumerate() {
                in_bits.insert((cid.index(), pi_idx, bit as u16), map[s.index()]);
                port_inputs.insert(map[s.index()]);
            }
        }
        for (po_idx, sigs) in elab.output_bits.iter().enumerate() {
            for (bit, s) in sigs.iter().enumerate() {
                out_bits.insert((cid.index(), po_idx, bit as u16), map[s.index()]);
            }
        }
        let state_bits: Vec<SignalId> = elab
            .reg_bits
            .iter()
            .flatten()
            .map(|s| map[s.index()])
            .collect();
        if !state_bits.is_empty() {
            let mut rot = 0usize;
            for (name, s) in elab.netlist.inputs() {
                let global = map[s.index()];
                if port_inputs.contains(&global) {
                    continue;
                }
                // Register load-enables: half the registers free-run (their
                // enable rides an always-on strobe), half follow FSM state —
                // a rough but honest stand-in for real control behaviour.
                // Mux selects and ALU opcodes always follow state.
                let driver = if name.starts_with("en_") && rot.is_multiple_of(2) {
                    None // tie high below
                } else {
                    Some(state_bits[rot % state_bits.len()])
                };
                match driver {
                    Some(d) => internal_controls.push((global, d)),
                    None => always_on.push(global),
                }
                rot += 1;
            }
        }
    }
    // Wire the nets.
    let mut driven: HashMap<(usize, usize, u16), SignalId> = HashMap::new();
    let mut po_drivers: Vec<(String, SignalId)> = Vec::new();
    for net in soc.nets() {
        // Resolve source bits.
        let src_bits: Option<Vec<SignalId>> = match net.src {
            SocEndpoint::Pin { pin, range } => Some(
                range
                    .bits()
                    .map(|bit| pin_bits[&(pin.index(), bit)])
                    .collect(),
            ),
            SocEndpoint::CorePort { core, port, range } => {
                if soc.core(core).is_memory() {
                    None
                } else {
                    Some(
                        range
                            .bits()
                            .map(|bit| out_bits[&(core.index(), port.index(), bit)])
                            .collect(),
                    )
                }
            }
        };
        let Some(src_bits) = src_bits else { continue };
        match net.dst {
            SocEndpoint::Pin { pin, range } => {
                let name = soc.pin(pin).name().to_owned();
                for (k, bit) in range.bits().enumerate() {
                    po_drivers.push((format!("{name}[{bit}]"), src_bits[k]));
                }
            }
            SocEndpoint::CorePort { core, port, range } => {
                if soc.core(core).is_memory() {
                    continue;
                }
                for (k, bit) in range.bits().enumerate() {
                    driven.insert((core.index(), port.index(), bit), src_bits[k]);
                }
            }
        }
    }
    // Rewire driven inputs; tie the rest low when the port is a data port
    // connected to a memory core or simply unconnected.
    let zero = b.const0();
    for cid in soc.logic_cores() {
        let core = soc.core(cid).core();
        for p in core.input_ports() {
            let width = core.port(p).width();
            for bit in 0..width {
                let key = (cid.index(), p.index(), bit);
                let input_sig = in_bits[&key];
                match driven.get(&key) {
                    Some(&driver) => b.rewire_input(input_sig, driver),
                    None => b.rewire_input(input_sig, zero),
                }
            }
        }
    }
    for (input, driver) in internal_controls {
        b.rewire_input(input, driver);
    }
    if !always_on.is_empty() {
        let one = b.const1();
        for input in always_on {
            b.rewire_input(input, one);
        }
    }
    for (name, s) in po_drivers {
        b.output(&name, s);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_gate::{CombSim, SeqSim, Tri};
    use socet_rtl::{CoreBuilder, Direction, SocBuilder};
    use std::sync::Arc;

    fn buf_core(width: u16) -> Arc<socet_rtl::Core> {
        let mut b = CoreBuilder::new("buf");
        let i = b.port("i", Direction::In, width).unwrap();
        let o = b.port("o", Direction::Out, width).unwrap();
        let r = b.register("r", width).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        Arc::new(b.build().unwrap())
    }

    fn chain_soc(n: usize) -> Soc {
        let core = buf_core(4);
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 4).unwrap();
        let po = sb.output_pin("po", 4).unwrap();
        let insts: Vec<_> = (0..n)
            .map(|k| sb.instantiate(&format!("u{k}"), core.clone()).unwrap())
            .collect();
        sb.connect_pin_to_core(pi, insts[0], i).unwrap();
        for w in insts.windows(2) {
            sb.connect_cores(w[0], o, w[1], i).unwrap();
        }
        sb.connect_core_to_pin(insts[n - 1], o, po).unwrap();
        sb.build().unwrap()
    }

    #[test]
    fn flattened_chip_hides_internal_state_behind_enables() {
        let soc = chain_soc(3);
        let flat = flatten_soc(&soc).unwrap();
        assert_eq!(flat.flip_flop_count(), 12);
        // Only the chip PI remains controllable: the per-register load
        // enables are tied to internal state, not exposed as pins.
        assert_eq!(flat.inputs().len(), 4);
        assert_eq!(flat.outputs().len(), 4);
        // These single-register cores land in the free-running half of the
        // enable tie-off, so a value still crosses the three cores in three
        // clocks.
        let mut sim = SeqSim::new(&flat);
        let vec_of = |v: u8| {
            (0..4)
                .map(|k| Tri::from_bool(v >> k & 1 != 0))
                .collect::<Vec<_>>()
        };
        sim.step(&vec_of(0b1010), None);
        sim.step(&vec_of(0), None);
        sim.step(&vec_of(0), None);
        let outs = sim.step(&vec_of(0), None);
        let val: u8 = outs
            .iter()
            .enumerate()
            .map(|(k, t)| if *t == Tri::One { 1 << k } else { 0 })
            .sum();
        assert_eq!(val, 0b1010);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn memory_fed_inputs_are_tied_low() {
        let core = buf_core(4);
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 4).unwrap();
        let po = sb.output_pin("po", 4).unwrap();
        let ram = sb.instantiate_memory("ram", core.clone()).unwrap();
        let u = sb.instantiate("u", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, ram, i).unwrap();
        sb.connect_cores(ram, o, u, i).unwrap();
        sb.connect_core_to_pin(u, o, po).unwrap();
        let soc = sb.build().unwrap();
        let flat = flatten_soc(&soc).unwrap();
        // u's input comes from the (excluded) RAM: tied low; the chip PI
        // drives only the RAM, which is gone.
        let sim = CombSim::new(&flat);
        let (outs, next) = sim.run_with_state(&[true; 4], &[true; 4]);
        // Outputs reflect current state (all ones), next state is the tied
        // zeros.
        assert_eq!(outs, vec![true; 4]);
        assert_eq!(next, vec![false; 4]);
    }

    #[test]
    fn flattening_is_deterministic() {
        let soc = chain_soc(2);
        let a = flatten_soc(&soc).unwrap();
        let b = flatten_soc(&soc).unwrap();
        assert_eq!(a.gates().len(), b.gates().len());
        assert_eq!(a.inputs().len(), b.inputs().len());
    }
}
