//! The test-bus baseline (paper §1): an added bus runs from the chip PIs
//! to the POs, and multiplexers isolate each full-scanned core during test.
//!
//! Each core is accessed directly over the bus, so its test runs at scan
//! speed — but every core port bit needs an isolation mux, the bus wiring
//! itself costs area, and the interconnect between cores is never tested
//! (the paper's stated drawback; captured here in
//! [`TestBusReport::interconnect_tested`]).

use socet_cells::{AreaReport, CellKind, CellLibrary, DftCosts};
use socet_rtl::{CoreInstanceId, Soc};
use std::fmt;

/// The test-bus evaluation of one SOC.
#[derive(Debug, Clone)]
pub struct TestBusReport {
    /// Per-core `(instance, chain length, vectors)`.
    pub cores: Vec<(CoreInstanceId, u64, u64)>,
    /// Isolation-mux area.
    pub mux_area: AreaReport,
}

impl TestBusReport {
    /// Evaluates the test-bus architecture. `vectors[i]` and `depth[i]` are
    /// the full-scan vector count and HSCAN chain depth of core `i`.
    pub fn evaluate(soc: &Soc, vectors: &[u64], depths: &[u64], costs: &DftCosts) -> TestBusReport {
        let mut cores = Vec::new();
        let mut mux_area = AreaReport::new();
        for cid in soc.logic_cores() {
            let core = soc.core(cid).core();
            let bits = u64::from(core.input_bits() + core.output_bits());
            mux_area.tally(CellKind::Mux2, bits * costs.system_test_mux_per_bit);
            cores.push((cid, depths[cid.index()], vectors[cid.index()]));
        }
        TestBusReport { cores, mux_area }
    }

    /// Global test application time: each core tests at scan speed over the
    /// bus, `vectors × (depth + 1)` per core, serially.
    pub fn test_application_time(&self) -> u64 {
        self.cores
            .iter()
            .map(|(_, depth, vectors)| vectors * (depth + 1))
            .sum()
    }

    /// Chip-level overhead in cells.
    pub fn overhead_cells(&self, lib: &CellLibrary) -> u64 {
        self.mux_area.cells(lib)
    }

    /// The test bus cannot test core-to-core interconnect: always `false`,
    /// recorded so comparisons can state it explicitly.
    pub fn interconnect_tested(&self) -> bool {
        false
    }
}

impl fmt::Display for TestBusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "test-bus: {} cores, TAT {} cycles (interconnect untested)",
            self.cores.len(),
            self.test_application_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_rtl::{CoreBuilder, Direction, SocBuilder};
    use std::sync::Arc;

    fn soc_with_one_core() -> Soc {
        let mut b = CoreBuilder::new("c");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = Arc::new(b.build().unwrap());
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u = sb.instantiate("u", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u, core.find_port("i").unwrap())
            .unwrap();
        sb.connect_core_to_pin(u, core.find_port("o").unwrap(), po)
            .unwrap();
        sb.build().unwrap()
    }

    #[test]
    fn tat_runs_at_scan_speed() {
        let soc = soc_with_one_core();
        let report = TestBusReport::evaluate(&soc, &[100], &[4], &DftCosts::default());
        assert_eq!(report.test_application_time(), 100 * 5);
    }

    #[test]
    fn mux_area_covers_all_port_bits() {
        let soc = soc_with_one_core();
        let report = TestBusReport::evaluate(&soc, &[100], &[4], &DftCosts::default());
        let lib = CellLibrary::generic_08um();
        assert_eq!(report.overhead_cells(&lib), 16);
        assert!(!report.interconnect_tested());
    }
}
