//! The FSCAN-BSCAN baseline: full scan per core, boundary scan around each
//! core (paper §1 and §3).
//!
//! Every flip-flop becomes a scan flip-flop and every core port bit gets a
//! boundary-scan cell, forming one serial chain per core of length
//! `FFs + port-boundary bits`. Testing a core shifts each vector through
//! that chain: the paper's DISPLAY example costs
//! `(66 + 20) × 105 + (66 + 20) − 1 = 9 115` cycles.

use socet_cells::{AreaReport, CellKind, CellLibrary, DftCosts};
use socet_rtl::{Core, CoreInstanceId, Soc};
use std::fmt;

/// FSCAN-BSCAN accounting for one core.
#[derive(Debug, Clone)]
pub struct FscanBscanCore {
    /// The core instance.
    pub core: CoreInstanceId,
    /// Flip-flops converted to scan flip-flops.
    pub flip_flops: u32,
    /// Boundary-scan cells (input-port bits; outputs observed through the
    /// same ring are counted once on the input side, following the paper's
    /// `66 + 20` arithmetic for the DISPLAY).
    pub boundary_bits: u32,
    /// Full-scan vectors applied.
    pub vectors: u64,
}

impl FscanBscanCore {
    /// Serial chain length: scan flip-flops plus boundary cells.
    pub fn chain_length(&self) -> u64 {
        u64::from(self.flip_flops) + u64::from(self.boundary_bits)
    }

    /// Test application time of this core:
    /// `chain × vectors + chain − 1` (shift-in per vector, overlap of
    /// shift-out, final flush).
    pub fn test_time(&self) -> u64 {
        let chain = self.chain_length();
        chain * self.vectors + chain.saturating_sub(1)
    }
}

impl fmt::Display for FscanBscanCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {}: ({} FF + {} bscan) x {} vectors = {} cycles",
            self.core,
            self.flip_flops,
            self.boundary_bits,
            self.vectors,
            self.test_time()
        )
    }
}

/// The FSCAN-BSCAN evaluation of a whole SOC.
#[derive(Debug, Clone)]
pub struct FscanBscanReport {
    /// Per-core accounting.
    pub cores: Vec<FscanBscanCore>,
    /// Core-level DFT area (scan flip-flop premiums).
    pub fscan_area: AreaReport,
    /// Chip-level DFT area (boundary-scan cells).
    pub bscan_area: AreaReport,
}

impl FscanBscanReport {
    /// Evaluates FSCAN-BSCAN on `soc`. `vectors[i]` is the full-scan vector
    /// count of core instance `i` (ignored for memory cores).
    pub fn evaluate(soc: &Soc, vectors: &[u64], costs: &DftCosts) -> FscanBscanReport {
        let mut cores = Vec::new();
        let mut fscan_area = AreaReport::new();
        let mut bscan_area = AreaReport::new();
        for cid in soc.logic_cores() {
            let core: &Core = soc.core(cid).core();
            let ffs = core.flip_flop_count();
            let boundary = core.input_bits();
            fscan_area.tally(CellKind::ScanDff, u64::from(ffs) * costs.fscan_per_ff);
            // One boundary-scan cell per port bit; its area comes from the
            // cell library (3 cells under the generic .8µm table).
            let _ = costs;
            bscan_area.tally(
                CellKind::BscanCell,
                u64::from(core.input_bits() + core.output_bits()),
            );
            cores.push(FscanBscanCore {
                core: cid,
                flip_flops: ffs,
                boundary_bits: boundary,
                vectors: vectors[cid.index()],
            });
        }
        FscanBscanReport {
            cores,
            fscan_area,
            bscan_area,
        }
    }

    /// Global test application time: cores are tested serially.
    pub fn test_application_time(&self) -> u64 {
        self.cores.iter().map(FscanBscanCore::test_time).sum()
    }

    /// Core-level DFT overhead in cells.
    pub fn fscan_cells(&self, lib: &CellLibrary) -> u64 {
        // The scan premium is the scan DFF minus the plain DFF it replaces.
        let premium = u64::from(lib.area_of(CellKind::ScanDff))
            .saturating_sub(u64::from(lib.area_of(CellKind::Dff)));
        self.fscan_area.count(CellKind::ScanDff) * premium.max(1)
    }

    /// Chip-level DFT overhead in cells.
    pub fn bscan_cells(&self, lib: &CellLibrary) -> u64 {
        self.bscan_area.cells(lib)
    }

    /// Total DFT overhead in cells.
    pub fn total_cells(&self, lib: &CellLibrary) -> u64 {
        self.fscan_cells(lib) + self.bscan_cells(lib)
    }
}

impl fmt::Display for FscanBscanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fscan-bscan: {} cores, TAT {} cycles",
            self.cores.len(),
            self.test_application_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_rtl::{CoreBuilder, Direction, SocBuilder};
    use std::sync::Arc;

    /// A core shaped like the paper's DISPLAY: 66 flip-flops, 20 input
    /// bits.
    fn display_like() -> Arc<socet_rtl::Core> {
        let mut b = CoreBuilder::new("display");
        let a = b.port("a", Direction::In, 12).unwrap();
        let d = b.port("d", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 33).unwrap();
        let r2 = b.register("r2", 33).unwrap();
        b.connect_via(
            socet_rtl::RtlNode::Port(a),
            socet_rtl::BitRange::full(12),
            socet_rtl::RtlNode::Reg(r1),
            socet_rtl::BitRange::new(0, 11),
            socet_rtl::Via::Direct,
        )
        .unwrap();
        b.connect_via(
            socet_rtl::RtlNode::Port(d),
            socet_rtl::BitRange::full(8),
            socet_rtl::RtlNode::Reg(r1),
            socet_rtl::BitRange::new(12, 19),
            socet_rtl::Via::Direct,
        )
        .unwrap();
        b.connect_reg_to_reg(r1, r2).unwrap();
        b.connect_via(
            socet_rtl::RtlNode::Reg(r2),
            socet_rtl::BitRange::new(0, 7),
            socet_rtl::RtlNode::Port(o),
            socet_rtl::BitRange::full(8),
            socet_rtl::Via::Direct,
        )
        .unwrap();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn display_example_costs_9115_cycles() {
        let core = display_like();
        assert_eq!(core.flip_flop_count(), 66);
        assert_eq!(core.input_bits(), 20);
        let a = core.find_port("a").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 12).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u = sb.instantiate("u", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u, a).unwrap();
        sb.connect_core_to_pin(u, o, po).unwrap();
        let soc = sb.build().unwrap();
        let report = FscanBscanReport::evaluate(&soc, &[105], &DftCosts::default());
        // The paper's worked example: (66+20)*105 + (66+20) - 1 = 9 115.
        assert_eq!(report.cores[0].test_time(), 9_115);
        assert_eq!(report.test_application_time(), 9_115);
    }

    #[test]
    fn area_scales_with_ffs_and_ports() {
        let core = display_like();
        let a = core.find_port("a").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 12).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u = sb.instantiate("u", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u, a).unwrap();
        sb.connect_core_to_pin(u, o, po).unwrap();
        let soc = sb.build().unwrap();
        let report = FscanBscanReport::evaluate(&soc, &[105], &DftCosts::default());
        let lib = CellLibrary::generic_08um();
        // 66 scan premiums (1 cell each under the generic library).
        assert_eq!(report.fscan_cells(&lib), 66);
        // 28 port bits x BSC (3 cells each).
        assert_eq!(report.bscan_cells(&lib), 28 * 3);
        assert_eq!(report.total_cells(&lib), 66 + 84);
    }

    #[test]
    fn memory_cores_excluded() {
        let core = display_like();
        let a = core.find_port("a").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 12).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u = sb.instantiate("u", core.clone()).unwrap();
        let ram = sb.instantiate_memory("ram", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u, a).unwrap();
        sb.connect_core_to_pin(u, o, po).unwrap();
        sb.connect_cores(u, o, ram, core.find_port("d").unwrap())
            .unwrap();
        let soc = sb.build().unwrap();
        let report = FscanBscanReport::evaluate(&soc, &[105, 999], &DftCosts::default());
        assert_eq!(report.cores.len(), 1);
    }
}
