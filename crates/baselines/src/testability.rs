//! Testability measurements behind Table 3: fault coverage of the
//! un-DFT'd chip, the HSCAN-only chip, and the full per-core ATPG coverage
//! that scan-accessible methods reach.

use socet_atpg::tpg::random_sequence;
use socet_atpg::{fault_list, generate_tests, Coverage, SeqFaultSim, TestSet, TpgConfig};
use socet_gate::GateNetlist;
use socet_rtl::{Soc, SocEndpoint};

/// Fault coverage of the original (no DFT) chip under `cycles` random
/// sequential vectors: the paper's "Orig." columns, where coverage is very
/// poor because embedded state is neither controllable nor observable.
///
/// `flat` is the flattened chip netlist from
/// [`flatten_soc`](crate::flatten_soc).
pub fn orig_coverage(flat: &GateNetlist, cycles: usize, seed: u64) -> Coverage {
    let faults = fault_list(flat);
    let vectors = random_sequence(flat.inputs().len(), cycles, seed);
    // The chip starts from reset (all state 0), the usual premise of
    // functional test campaigns.
    let detected = SeqFaultSim::new(flat).run_from(&faults, &vectors, socet_gate::Tri::Zero);
    Coverage {
        total: faults.len(),
        detected: detected.iter().filter(|&&d| d).count(),
        untestable: 0,
        aborted: 0,
    }
}

/// Fault coverage when cores are HSCAN-testable but no chip-level DFT
/// exists (Table 3, "HSCAN" columns).
///
/// Modeled as the random sequential campaign of [`orig_coverage`] plus full
/// per-core ATPG credit for any core whose ports are all directly at chip
/// pins — only such cores can actually receive their precomputed scan
/// vectors. Embedded cores gain nothing, which is precisely the paper's
/// point ("the overall fault coverage of the chip may be quite poor even if
/// individual cores are testable").
pub fn hscan_only_coverage(
    soc: &Soc,
    flat: &GateNetlist,
    per_core_tests: &[Option<TestSet>],
    cycles: usize,
    seed: u64,
) -> Coverage {
    let base = orig_coverage(flat, cycles, seed);
    // Bonus: pin-accessible cores are fully testable through their scan
    // chains. Their fault populations overlap the flat chip's, so credit
    // the *additional* detected fraction conservatively: scale each
    // accessible core's detected count by its share of undetected faults.
    let mut extra = 0usize;
    for cid in soc.logic_cores() {
        if !core_fully_at_pins(soc, cid) {
            continue;
        }
        if let Some(tests) = per_core_tests.get(cid.index()).and_then(|t| t.as_ref()) {
            extra += tests.coverage.detected;
        }
    }
    let detected = (base.detected + extra).min(base.total);
    Coverage {
        total: base.total,
        detected,
        untestable: base.untestable,
        aborted: base.aborted,
    }
}

/// Whether every port of `cid` connects directly to a chip pin.
fn core_fully_at_pins(soc: &Soc, cid: socet_rtl::CoreInstanceId) -> bool {
    let core = soc.core(cid).core();
    let input_ok = core.input_ports().iter().all(|p| {
        soc.nets_into(cid, *p)
            .any(|n| matches!(n.src, SocEndpoint::Pin { .. }))
    });
    let output_ok = core.output_ports().iter().all(|p| {
        soc.nets_from(cid, *p)
            .any(|n| matches!(n.dst, SocEndpoint::Pin { .. }))
    });
    input_ok && output_ok
}

/// Aggregated per-core combinational ATPG coverage: the fault coverage any
/// method with full scan access to every core achieves (FSCAN-BSCAN and
/// SOCET both report these numbers in Table 3 — the methods differ in cost,
/// not coverage).
///
/// `netlists[i]` is the elaborated netlist of core instance `i` (`None` for
/// memory cores). Returns the merged coverage and the per-core test sets.
///
/// Cores are independent ATPG problems, so they are partitioned across
/// scoped threads; each worker writes its own disjoint slice of the result
/// and coverage is merged in core-index order, keeping the output identical
/// to the serial loop.
pub fn aggregate_core_coverage(
    netlists: &[Option<GateNetlist>],
    config: &TpgConfig,
) -> (Coverage, Vec<Option<TestSet>>) {
    let mut sets: Vec<Option<TestSet>> = Vec::new();
    sets.resize_with(netlists.len(), || None);
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(netlists.len().max(1));
    if workers > 1 {
        let per = netlists.len().div_ceil(workers);
        std::thread::scope(|s| {
            for (in_part, out_part) in netlists.chunks(per).zip(sets.chunks_mut(per)) {
                s.spawn(move || {
                    for (nl, out) in in_part.iter().zip(out_part.iter_mut()) {
                        *out = nl.as_ref().map(|nl| generate_tests(nl, config));
                    }
                });
            }
        });
    } else {
        for (nl, out) in netlists.iter().zip(sets.iter_mut()) {
            *out = nl.as_ref().map(|nl| generate_tests(nl, config));
        }
    }
    let mut total = Coverage::default();
    for tests in sets.iter().flatten() {
        total = total.merge(&tests.coverage);
    }
    (total, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::flatten_soc;
    use socet_gate::elaborate;
    use socet_rtl::{CoreBuilder, Direction, SocBuilder};
    use std::sync::Arc;

    fn logic_core(name: &str) -> Arc<socet_rtl::Core> {
        let mut b = CoreBuilder::new(name);
        let i = b.port("i", Direction::In, 4).unwrap();
        let o = b.port("o", Direction::Out, 4).unwrap();
        let r1 = b.register("r1", 4).unwrap();
        let r2 = b.register("r2", 4).unwrap();
        let fu = b.functional_unit("alu", socet_rtl::FuKind::Add, 4).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_through_fu(r1, fu, r2).unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        Arc::new(b.build().unwrap())
    }

    fn two_core_soc() -> Soc {
        let core = logic_core("c");
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 4).unwrap();
        let po = sb.output_pin("po", 4).unwrap();
        let u0 = sb.instantiate("u0", core.clone()).unwrap();
        let u1 = sb.instantiate("u1", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_cores(u0, o, u1, i).unwrap();
        sb.connect_core_to_pin(u1, o, po).unwrap();
        sb.build().unwrap()
    }

    #[test]
    fn orig_coverage_is_poor_and_deterministic() {
        let soc = two_core_soc();
        let flat = flatten_soc(&soc).unwrap();
        let a = orig_coverage(&flat, 32, 7);
        let b = orig_coverage(&flat, 32, 7);
        assert_eq!(a, b);
        assert!(a.fault_coverage() < 90.0, "{a}");
        assert!(a.total > 0);
    }

    #[test]
    fn scan_access_beats_random_sequential() {
        let soc = two_core_soc();
        let flat = flatten_soc(&soc).unwrap();
        let orig = orig_coverage(&flat, 32, 7);
        let netlists: Vec<Option<GateNetlist>> = soc
            .cores()
            .iter()
            .map(|c| Some(elaborate(c.core()).unwrap().netlist))
            .collect();
        let (full, _) = aggregate_core_coverage(&netlists, &TpgConfig::default());
        assert!(full.fault_coverage() > orig.fault_coverage());
        assert!(full.test_efficiency() > 99.0, "{full}");
    }

    #[test]
    fn hscan_only_between_orig_and_full() {
        let soc = two_core_soc();
        let flat = flatten_soc(&soc).unwrap();
        let netlists: Vec<Option<GateNetlist>> = soc
            .cores()
            .iter()
            .map(|c| Some(elaborate(c.core()).unwrap().netlist))
            .collect();
        let (_, sets) = aggregate_core_coverage(&netlists, &TpgConfig::default());
        let orig = orig_coverage(&flat, 32, 7);
        let hscan = hscan_only_coverage(&soc, &flat, &sets, 32, 7);
        // Neither core is fully at pins in the chain, so HSCAN-only equals
        // the random campaign here.
        assert_eq!(hscan.detected, orig.detected);
        assert_eq!(hscan.total, orig.total);
    }

    #[test]
    fn pin_accessible_core_gets_atpg_credit() {
        // Single core, fully at pins.
        let core = logic_core("c");
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 4).unwrap();
        let po = sb.output_pin("po", 4).unwrap();
        let u = sb.instantiate("u", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u, i).unwrap();
        sb.connect_core_to_pin(u, o, po).unwrap();
        let soc = sb.build().unwrap();
        let flat = flatten_soc(&soc).unwrap();
        let netlists = vec![Some(elaborate(&core).unwrap().netlist)];
        let (_, sets) = aggregate_core_coverage(&netlists, &TpgConfig::default());
        let orig = orig_coverage(&flat, 16, 3);
        let hscan = hscan_only_coverage(&soc, &flat, &sets, 16, 3);
        assert!(hscan.detected > orig.detected);
    }
}
