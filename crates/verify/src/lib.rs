//! # socet-verify — the differential gate-level replay oracle
//!
//! Every other crate in this workspace *plans*: it claims that a routed
//! [`DesignPoint`](socet_core::DesignPoint) transports test vectors
//! through transparency paths with a given timing. This crate *proves*
//! those claims on an actual netlist. It assembles the DFT-inserted chip
//! as a gate-level transparency shell ([`shell`]), expands every
//! scheduled episode into a cycle-accurate drive program, simulates it,
//! and asserts three invariants ([`replay`]):
//!
//! - **(a)** every justified vector is bit-exact at the CUT's input ports
//!   at the scheduled arrival cycle;
//! - **(b)** every response is bit-exact at the claimed chip outputs at
//!   the claimed capture cycle;
//! - **(c)** episodes packed concurrently never disturb each other's
//!   transit values (reservation disjointness, replayed jointly).
//!
//! A randomized harness ([`harness`]) drives the oracle over seeded
//! synthetic SOCs and greedily shrinks failures to minimal
//! counterexamples.

mod harness;
mod replay;
mod shell;

pub use harness::{run_synthetic_cases, verify_soc, verify_spec, CaseOutcome, SyntheticReport};
pub use replay::{
    verify_design_point, EpisodeSummary, ParallelSummary, Skew, VerifyOptions, VerifyReport,
    Violation,
};
pub use shell::{InputRole, Shell};

use socet_core::ScheduleError;
use socet_gate::GateError;
use socet_transparency::SearchError;

/// Everything that can go wrong while *building* the replay (invariant
/// violations are not errors — they are findings in the
/// [`VerifyReport`]).
#[derive(Debug)]
pub enum VerifyError {
    /// The shell netlist could not be assembled.
    Netlist(GateError),
    /// A transparency-path search failed while rebuilding a core fabric.
    Search(SearchError),
    /// The harness could not schedule a candidate design point.
    Schedule(ScheduleError),
    /// The plan references structure the SOC does not have.
    Model(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Netlist(e) => write!(f, "shell netlist: {e}"),
            VerifyError::Search(e) => write!(f, "path search: {e}"),
            VerifyError::Schedule(e) => write!(f, "schedule: {e}"),
            VerifyError::Model(m) => write!(f, "model mismatch: {m}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<GateError> for VerifyError {
    fn from(e: GateError) -> Self {
        VerifyError::Netlist(e)
    }
}

impl From<SearchError> for VerifyError {
    fn from(e: SearchError) -> Self {
        VerifyError::Search(e)
    }
}

impl From<ScheduleError> for VerifyError {
    fn from(e: ScheduleError) -> Self {
        VerifyError::Schedule(e)
    }
}
