//! Randomized oracle harness: seeded synthetic SOCs, scheduled and
//! replayed end to end, with greedy shrinking of failures.
//!
//! The harness is deterministic: the i-th case of seed `s` always builds
//! the same [`SocSpec`], chooses the same design point, and produces the
//! same report bytes, independent of host or thread count (the whole
//! pipeline is single-threaded).

use crate::replay::{verify_design_point, VerifyOptions, VerifyReport};
use crate::VerifyError;
use socet_cells::DftCosts;
use socet_core::{try_schedule, CoreTestData};
use socet_hscan::insert_hscan;
use socet_socs::SocSpec;
use socet_transparency::try_synthesize_versions;
use std::fmt::Write as _;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Prepares a spec's SOC (HSCAN + version ladder per logic core), picks a
/// seeded design point, schedules it and replays it through the oracle.
///
/// The chosen version indices and the (small) combinational vector counts
/// are pure functions of `case_seed`, so a failing case is exactly
/// reproducible from `(spec, case_seed)` alone.
pub fn verify_spec(
    spec: &SocSpec,
    case_seed: u64,
    opts: &VerifyOptions,
) -> Result<VerifyReport, VerifyError> {
    let soc = spec.build();
    let costs = DftCosts::default();
    let mut data: Vec<Option<CoreTestData>> = Vec::with_capacity(soc.cores().len());
    let mut choice: Vec<usize> = Vec::with_capacity(soc.cores().len());
    for (i, inst) in soc.cores().iter().enumerate() {
        if inst.is_memory() {
            data.push(None);
            choice.push(0);
            continue;
        }
        let hscan = insert_hscan(inst.core(), &costs);
        let versions = try_synthesize_versions(inst.core(), &hscan, &costs)?;
        let n = versions.len().max(1);
        choice.push((mix(case_seed ^ (1000 + i as u64)) % n as u64) as usize);
        data.push(Some(CoreTestData {
            versions,
            hscan,
            scan_vectors: 2 + (mix(case_seed ^ (2000 + i as u64)) % 3) as usize,
        }));
    }
    let plan = try_schedule(&soc, &data, &choice, &costs)?;
    verify_design_point(&soc, &data, &plan, opts)
}

/// Prepares `soc` (HSCAN + version ladder per logic core) with a fixed
/// combinational vector count per core, schedules `choice` and replays
/// it. This is the paper-system entry point: the real ATPG vector counts
/// only scale the episode length, not the transport logic under test, so
/// tests keep `scan_vectors` small.
pub fn verify_soc(
    soc: &socet_rtl::Soc,
    scan_vectors: usize,
    choice: &[usize],
    opts: &VerifyOptions,
) -> Result<VerifyReport, VerifyError> {
    let costs = DftCosts::default();
    let mut data: Vec<Option<CoreTestData>> = Vec::with_capacity(soc.cores().len());
    for inst in soc.cores() {
        if inst.is_memory() {
            data.push(None);
            continue;
        }
        let hscan = insert_hscan(inst.core(), &costs);
        let versions = try_synthesize_versions(inst.core(), &hscan, &costs)?;
        data.push(Some(CoreTestData {
            versions,
            hscan,
            scan_vectors,
        }));
    }
    let plan = try_schedule(soc, &data, choice, &costs)?;
    verify_design_point(soc, &data, &plan, opts)
}

/// What became of one synthetic case.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// Replayed clean.
    Pass {
        /// Logic-core count of the generated SOC.
        cores: usize,
        /// Total checks executed.
        checks: u64,
    },
    /// The oracle found violations; `minimal` is the greedily shrunk spec
    /// that still fails (possibly the original).
    Fail {
        /// First violation of the *minimal* failing spec.
        first_violation: String,
        /// The shrunk counterexample.
        minimal: SocSpec,
        /// Shrink steps taken.
        shrink_steps: usize,
    },
    /// The case could not be scheduled/built — counted, not failed
    /// (random specs may legitimately admit no route).
    Skip {
        /// Why.
        reason: String,
    },
}

/// Outcome of a [`run_synthetic_cases`] sweep.
#[derive(Debug, Clone)]
pub struct SyntheticReport {
    /// Harness seed.
    pub seed: u64,
    /// Per-case outcomes, in case order.
    pub outcomes: Vec<CaseOutcome>,
}

impl SyntheticReport {
    /// True when no case failed (skips are fine).
    pub fn ok(&self) -> bool {
        !self
            .outcomes
            .iter()
            .any(|o| matches!(o, CaseOutcome::Fail { .. }))
    }

    /// Deterministic text rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let (mut pass, mut fail, mut skip) = (0usize, 0usize, 0usize);
        for (i, o) in self.outcomes.iter().enumerate() {
            match o {
                CaseOutcome::Pass { cores, checks } => {
                    pass += 1;
                    let _ = writeln!(s, "case {i}: PASS ({cores} cores, {checks} checks)");
                }
                CaseOutcome::Fail {
                    first_violation,
                    minimal,
                    shrink_steps,
                } => {
                    fail += 1;
                    let _ = writeln!(
                        s,
                        "case {i}: FAIL after {shrink_steps} shrinks -> {} cores: {}",
                        minimal.cores.len(),
                        first_violation
                    );
                }
                CaseOutcome::Skip { reason } => {
                    skip += 1;
                    let _ = writeln!(s, "case {i}: skip ({reason})");
                }
            }
        }
        let _ = writeln!(
            s,
            "synthetic sweep seed {:#x}: {pass} pass / {fail} fail / {skip} skip",
            self.seed
        );
        s
    }
}

/// Whether `(spec, case_seed)` currently fails the oracle. Errors during
/// preparation/scheduling read as "not failing" (they are skips).
fn fails(spec: &SocSpec, case_seed: u64, opts: &VerifyOptions) -> Option<String> {
    match verify_spec(spec, case_seed, opts) {
        Ok(report) if !report.ok() => Some(format!(
            "[{}] {}",
            report.violations[0].phase, report.violations[0].detail
        )),
        _ => None,
    }
}

/// Greedily shrinks a failing spec: repeatedly take the first
/// [`SocSpec::shrink_candidates`] entry that still fails, until none does.
fn shrink(spec: &SocSpec, case_seed: u64, opts: &VerifyOptions) -> (SocSpec, String, usize) {
    let mut cur = spec.clone();
    let mut detail = fails(&cur, case_seed, opts).unwrap_or_default();
    let mut steps = 0usize;
    'outer: loop {
        for cand in cur.shrink_candidates() {
            if cand.cores.is_empty() {
                continue;
            }
            if let Some(d) = fails(&cand, case_seed, opts) {
                cur = cand;
                detail = d;
                steps += 1;
                continue 'outer;
            }
        }
        return (cur, detail, steps);
    }
}

/// Runs `cases` seeded synthetic SOCs through the full
/// prepare→schedule→replay pipeline. Any failing case is shrunk to a
/// minimal counterexample before being reported.
pub fn run_synthetic_cases(seed: u64, cases: u64, opts: &VerifyOptions) -> SyntheticReport {
    let mut outcomes = Vec::with_capacity(cases as usize);
    for i in 0..cases {
        let case_seed = mix(seed.wrapping_add(i));
        let spec = SocSpec::random(case_seed);
        let outcome = match verify_spec(&spec, case_seed, opts) {
            Ok(report) if report.ok() => CaseOutcome::Pass {
                cores: spec.cores.len(),
                checks: report.episodes.iter().map(|e| e.checks).sum::<u64>()
                    + report.parallel.as_ref().map_or(0, |p| p.checks),
            },
            Ok(_) => {
                let (minimal, first_violation, shrink_steps) = shrink(&spec, case_seed, opts);
                CaseOutcome::Fail {
                    first_violation,
                    minimal,
                    shrink_steps,
                }
            }
            Err(e) => CaseOutcome::Skip {
                reason: e.to_string(),
            },
        };
        outcomes.push(outcome);
    }
    SyntheticReport { seed, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::Skew;

    fn quick() -> VerifyOptions {
        VerifyOptions {
            max_vectors: Some(3),
            ..VerifyOptions::default()
        }
    }

    #[test]
    fn system1_replays_clean() {
        let soc = socet_socs::barcode_system();
        let n = soc.cores().len();
        let report = verify_soc(&soc, 2, &vec![0; n], &quick()).expect("oracle runs");
        assert!(report.ok(), "violations:\n{}", report.render());
        assert!(report.episodes.iter().any(|e| e.checks > 0));
    }

    #[test]
    fn system2_replays_clean() {
        let soc = socet_socs::system2();
        let n = soc.cores().len();
        let report = verify_soc(&soc, 2, &vec![0; n], &quick()).expect("oracle runs");
        assert!(report.ok(), "violations:\n{}", report.render());
    }

    #[test]
    fn skewed_claim_is_caught() {
        let soc = socet_socs::barcode_system();
        let n = soc.cores().len();
        // Find an episode with a physically routed input itinerary.
        let clean = verify_soc(&soc, 2, &vec![0; n], &quick()).expect("oracle runs");
        assert!(clean.ok());
        let mut opts = quick();
        opts.skew = Some(Skew {
            episode: 0,
            route: 0,
            delta: 1,
        });
        let skewed = verify_soc(&soc, 2, &vec![0; n], &opts).expect("oracle runs");
        assert!(
            skewed.violations.iter().any(|v| v.phase == "serial"),
            "skew not caught:\n{}",
            skewed.render()
        );
    }

    #[test]
    fn synthetic_sweep_smoke() {
        let r = run_synthetic_cases(7, 3, &quick());
        assert!(r.ok(), "{}", r.render());
        assert_eq!(r.outcomes.len(), 3);
        // Determinism: same seed, byte-identical rendering.
        let r2 = run_synthetic_cases(7, 3, &quick());
        assert_eq!(r.render(), r2.render());
    }
}
