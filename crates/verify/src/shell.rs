//! The replay netlist: a gate-level model of the DFT-inserted chip as the
//! scheduler sees it — register banks, the RCG edge fabric each core's
//! selected transparency version uses, test-mode output muxes, and the
//! chip-level interconnect.
//!
//! The functional clouds inside each core are irrelevant to test-data
//! transport (transparency bypasses them by construction), so the shell
//! models exactly the machinery the schedule claims to use:
//!
//! * every register touched by a used RCG edge becomes a DFF bank whose D
//!   input is a priority mux chain over the edges writing it, gated by
//!   per-edge *activation* inputs; with every activation low the register
//!   holds — the paper's freezable core clock;
//! * every core output port is a mux chain over the edges driving it
//!   (default 0), then a final test-mode mux that substitutes the injected
//!   CUT response when the core is under test;
//! * chip nets wire pins and ports together with the same last-net-wins
//!   rule `socet_baselines::flatten` uses, so the shell and the functional
//!   flattening agree on interconnect semantics.
//!
//! Every logic-core input-port bit is exported as an `obs_*` output (the
//! oracle's window for invariant (a)) and every chip PO bit as a `po_*`
//! output (invariant (b)).

use crate::VerifyError;
use socet_core::{CoreTestData, DesignPoint};
use socet_gate::{CombSim, GateNetlist, GateNetlistBuilder, SignalId};
use socet_rtl::{ChipPinId, CoreInstanceId, PortId, RegisterId, Soc};
use socet_transparency::{level_support, Rcg, RcgNode, TransparencyPath};
use std::collections::HashMap;

/// What one primary input of the shell netlist means. The vector of roles
/// is index-aligned with [`GateNetlist::inputs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputRole {
    /// Bit `bit` of chip input pin `pin`.
    Pin {
        /// The chip pin.
        pin: ChipPinId,
        /// The bit.
        bit: u16,
    },
    /// Test-mode flag of a logic core: high substitutes the injected
    /// response on every output port.
    TestMode {
        /// The core.
        core: CoreInstanceId,
    },
    /// Bit `bit` of the response word injected at output `port` of `core`
    /// while it is under test.
    Inject {
        /// The core.
        core: CoreInstanceId,
        /// The output port.
        port: PortId,
        /// The bit.
        bit: u16,
    },
    /// Activation of RCG edge `edge` (index into the core's support RCG) of
    /// `core`: high lets the edge load its destination this cycle.
    Act {
        /// The core.
        core: CoreInstanceId,
        /// The RCG edge index.
        edge: usize,
    },
}

/// The per-core transparency fabric the shell instantiated: the support RCG
/// of the selected version (whose `EdgeId`s the version's paths index), the
/// paths themselves, and the used-edge set.
pub struct CoreFabric {
    /// The core instance.
    pub core: CoreInstanceId,
    /// The support RCG of the selected level.
    pub rcg: Rcg,
    /// The selected version's transparency paths (identical to the plan's).
    pub paths: Vec<TransparencyPath>,
    /// Deduplicated RCG edge indices used by any path, ascending.
    pub used_edges: Vec<usize>,
    /// Relaxed node times per path: cycles after the hop start at which the
    /// node's value is available (inputs at 0, registers at ≥ 1).
    pub path_times: Vec<HashMap<RcgNode, u32>>,
}

impl CoreFabric {
    /// The edges of path `path` that (transitively) feed `Out(output)` —
    /// the cone the oracle activates, leaving the path's other terminals
    /// quiet so concurrent routes are not disturbed. Ascending edge order.
    pub fn cone(&self, path: usize, output: PortId) -> Vec<usize> {
        let edges = &self.paths[path].edges;
        let mut nodes: Vec<RcgNode> = vec![RcgNode::Out(output)];
        let mut member = vec![false; edges.len()];
        let mut changed = true;
        while changed {
            changed = false;
            for (k, id) in edges.iter().enumerate() {
                if member[k] {
                    continue;
                }
                let e = self.rcg.edge(*id);
                if nodes.contains(&e.to) {
                    member[k] = true;
                    changed = true;
                    if !nodes.contains(&e.from) {
                        nodes.push(e.from);
                    }
                }
            }
        }
        edges
            .iter()
            .enumerate()
            .filter(|(k, _)| member[*k])
            .map(|(_, id)| id.index())
            .collect()
    }
}

/// The assembled replay netlist plus every index the oracle needs to drive
/// and observe it.
pub struct Shell {
    /// The gate netlist (one per SOC + version choice, shared by all
    /// episodes).
    pub netlist: GateNetlist,
    /// Roles of the netlist's primary inputs, index-aligned.
    pub input_roles: Vec<InputRole>,
    /// `(core, edge index) → input position` for activation inputs.
    pub act_index: HashMap<(CoreInstanceId, usize), usize>,
    /// `core → input position` for test-mode inputs.
    pub tm_index: HashMap<CoreInstanceId, usize>,
    /// `(core, input port, bit) → output position` of the `obs_*` outputs.
    pub obs_index: HashMap<(CoreInstanceId, PortId, u16), usize>,
    /// `(pin, bit) → output position` of the `po_*` outputs.
    pub po_index: HashMap<(ChipPinId, u16), usize>,
    /// Per logic core (indexed by `CoreInstanceId::index`), its fabric.
    pub fabrics: HashMap<usize, CoreFabric>,
    /// Registers instantiated, as `(core, register, width)`.
    pub registers: Vec<(CoreInstanceId, RegisterId, u16)>,
}

impl Shell {
    /// Builds the shell of `soc` under `plan.choice`.
    pub fn build(
        soc: &Soc,
        data: &[Option<CoreTestData>],
        plan: &DesignPoint,
    ) -> Result<Shell, VerifyError> {
        let mut b = GateNetlistBuilder::new(&format!("{}_replay_shell", soc.name()));
        let mut roles = Vec::new();
        let mut act_index = HashMap::new();
        let mut tm_index = HashMap::new();

        // 1. Chip input pins.
        let mut pin_sig: HashMap<(usize, u16), SignalId> = HashMap::new();
        for pin in soc.primary_inputs() {
            for bit in 0..soc.pin(pin).width() {
                let s = b.input(&format!("pi_{}_{}", pin.index(), bit));
                pin_sig.insert((pin.index(), bit), s);
                roles.push(InputRole::Pin { pin, bit });
            }
        }

        // 2. Per-core test-mode flags.
        let mut tm_sig: HashMap<usize, SignalId> = HashMap::new();
        for cid in soc.logic_cores() {
            let s = b.input(&format!("tm_c{}", cid.index()));
            tm_index.insert(cid, roles.len());
            roles.push(InputRole::TestMode { core: cid });
            tm_sig.insert(cid.index(), s);
        }

        // 3. Injected CUT responses, one word per output port.
        let mut inj_sig: HashMap<(usize, usize, u16), SignalId> = HashMap::new();
        for cid in soc.logic_cores() {
            let core = soc.core(cid).core();
            for port in core.output_ports() {
                for bit in 0..core.port(port).width() {
                    let s = b.input(&format!("inj_c{}_p{}_{}", cid.index(), port.index(), bit));
                    inj_sig.insert((cid.index(), port.index(), bit), s);
                    roles.push(InputRole::Inject {
                        core: cid,
                        port,
                        bit,
                    });
                }
            }
        }

        // 4. Resolve each core's selected version into its support RCG and
        //    declare one activation input per used edge.
        let mut fabrics: HashMap<usize, CoreFabric> = HashMap::new();
        let mut act_sig: HashMap<(usize, usize), SignalId> = HashMap::new();
        for cid in soc.logic_cores() {
            let td = data
                .get(cid.index())
                .and_then(|d| d.as_ref())
                .ok_or_else(|| VerifyError::Model(format!("core {cid} has no test data")))?;
            let choice = *plan.choice.get(cid.index()).unwrap_or(&0);
            let version = td.versions.get(choice).ok_or_else(|| {
                VerifyError::Model(format!("core {cid}: choice {choice} out of range"))
            })?;
            let core = soc.core(cid).core();
            let (rcg, paths) =
                level_support(core, &td.hscan, version.level()).map_err(VerifyError::Search)?;
            if paths != version.paths() {
                return Err(VerifyError::Model(format!(
                    "core {cid}: level_support paths diverge from the version ladder"
                )));
            }
            let mut used: Vec<usize> = paths
                .iter()
                .flat_map(|p| p.edges.iter().map(|e| e.index()))
                .collect();
            used.sort_unstable();
            used.dedup();
            for &e in &used {
                let s = b.input(&format!("act_c{}_e{}", cid.index(), e));
                act_index.insert((cid, e), roles.len());
                roles.push(InputRole::Act { core: cid, edge: e });
                act_sig.insert((cid.index(), e), s);
            }
            let path_times = paths.iter().map(|p| relax_times(&rcg, p)).collect();
            fabrics.insert(
                cid.index(),
                CoreFabric {
                    core: cid,
                    rcg,
                    paths,
                    used_edges: used,
                    path_times,
                },
            );
        }

        // 5. Placeholder inputs for every logic-core input-port bit; rewired
        //    to their net drivers once all core outputs exist (chip nets may
        //    connect cores in any order).
        let mut ph_sig: HashMap<(usize, usize, u16), SignalId> = HashMap::new();
        for cid in soc.logic_cores() {
            let core = soc.core(cid).core();
            for port in core.input_ports() {
                for bit in 0..core.port(port).width() {
                    let s = b.input(&format!("ph_c{}_p{}_{}", cid.index(), port.index(), bit));
                    ph_sig.insert((cid.index(), port.index(), bit), s);
                }
            }
        }

        // 6. Register banks: deferred DFFs first (D chains may read other
        //    registers of the same core), then the hold/load mux chains.
        let mut reg_q: HashMap<(usize, usize, u16), SignalId> = HashMap::new();
        let mut registers = Vec::new();
        for cid in soc.logic_cores() {
            let fab = &fabrics[&cid.index()];
            let core = soc.core(cid).core();
            let mut regs: Vec<RegisterId> = fab
                .used_edges
                .iter()
                .flat_map(|&e| {
                    let edge = &fab.rcg.edges()[e];
                    [edge.from, edge.to]
                })
                .filter_map(|n| match n {
                    RcgNode::Reg(r) => Some(r),
                    _ => None,
                })
                .collect();
            regs.sort_unstable();
            regs.dedup();
            for r in regs {
                let w = core.register(r).width();
                for bit in 0..w {
                    let q = b.dff_deferred();
                    reg_q.insert((cid.index(), r.index(), bit), q);
                }
                registers.push((cid, r, w));
            }
        }

        // A local closure cannot borrow the builder mutably twice, so edge
        // sources are resolved through the maps directly.
        type BitMap = HashMap<(usize, usize, u16), SignalId>;
        let src_of =
            |maps: (&BitMap, &BitMap), cidx: usize, node: RcgNode, bit: u16| -> Option<SignalId> {
                let (ph, regq) = maps;
                match node {
                    RcgNode::In(p) => ph.get(&(cidx, p.index(), bit)).copied(),
                    RcgNode::Reg(r) => regq.get(&(cidx, r.index(), bit)).copied(),
                    RcgNode::Out(_) => None,
                }
            };

        // 7. D chains: default hold, each used edge into the register adds a
        //    priority mux (later edge index = outer mux = wins on ties).
        for (cid, r, w) in &registers {
            let fab = &fabrics[&cid.index()];
            for bit in 0..*w {
                let q = reg_q[&(cid.index(), r.index(), bit)];
                let mut d = q;
                for &e in &fab.used_edges {
                    let edge = fab.rcg.edges()[e];
                    if edge.to != RcgNode::Reg(*r) || !edge.to_range.contains_bit(bit) {
                        continue;
                    }
                    let sbit = edge.from_range.lsb() + (bit - edge.to_range.lsb());
                    let Some(src) = src_of((&ph_sig, &reg_q), cid.index(), edge.from, sbit) else {
                        continue;
                    };
                    let act = act_sig[&(cid.index(), e)];
                    d = b.mux(act, d, src);
                }
                b.set_dff_input(q, d);
            }
        }

        // 8. Core output ports: fabric mux chain (default 0) then the
        //    test-mode injection mux. Memory-core outputs are constant 0.
        let mut core_out: HashMap<(usize, usize, u16), SignalId> = HashMap::new();
        for (ci, inst) in soc.cores().iter().enumerate() {
            let core = inst.core();
            for port in core.output_ports() {
                for bit in 0..core.port(port).width() {
                    let sig = if inst.is_memory() {
                        b.const0()
                    } else {
                        let fab = &fabrics[&ci];
                        let mut v = b.const0();
                        for &e in &fab.used_edges {
                            let edge = fab.rcg.edges()[e];
                            if edge.to != RcgNode::Out(port) || !edge.to_range.contains_bit(bit) {
                                continue;
                            }
                            let sbit = edge.from_range.lsb() + (bit - edge.to_range.lsb());
                            let Some(src) = src_of((&ph_sig, &reg_q), ci, edge.from, sbit) else {
                                continue;
                            };
                            let act = act_sig[&(ci, e)];
                            v = b.mux(act, v, src);
                        }
                        let inj = inj_sig[&(ci, port.index(), bit)];
                        b.mux(tm_sig[&ci], v, inj)
                    };
                    core_out.insert((ci, port.index(), bit), sig);
                }
            }
        }

        // 9. Chip nets: resolve core-input placeholders and PO pins with
        //    the same last-net-wins rule flatten_soc applies.
        let resolve = |b: &mut GateNetlistBuilder,
                       core_out: &HashMap<(usize, usize, u16), SignalId>,
                       pin_sig: &HashMap<(usize, u16), SignalId>,
                       src: &socet_rtl::SocEndpoint,
                       sbit: u16|
         -> Option<SignalId> {
            match *src {
                socet_rtl::SocEndpoint::Pin { pin, .. } => {
                    pin_sig.get(&(pin.index(), sbit)).copied()
                }
                socet_rtl::SocEndpoint::CorePort { core, port, .. } => {
                    core_out.get(&(core.index(), port.index(), sbit)).copied()
                }
            }
            .or_else(|| Some(b.const0()))
        };
        let mut obs_index = HashMap::new();
        let mut obs_outs: Vec<(String, SignalId)> = Vec::new();
        for cid in soc.logic_cores() {
            let core = soc.core(cid).core();
            for port in core.input_ports() {
                for bit in 0..core.port(port).width() {
                    let mut driver = b.const0();
                    for net in soc.nets() {
                        let socet_rtl::SocEndpoint::CorePort {
                            core: dc,
                            port: dp,
                            range: dr,
                        } = net.dst
                        else {
                            continue;
                        };
                        if dc != cid || dp != port || !dr.contains_bit(bit) {
                            continue;
                        }
                        let sbit = net.src.range().lsb() + (bit - dr.lsb());
                        if let Some(s) = resolve(&mut b, &core_out, &pin_sig, &net.src, sbit) {
                            driver = s;
                        }
                    }
                    let ph = ph_sig[&(cid.index(), port.index(), bit)];
                    b.rewire_input(ph, driver);
                    obs_index.insert((cid, port, bit), obs_outs.len());
                    obs_outs.push((
                        format!("obs_c{}_p{}_{}", cid.index(), port.index(), bit),
                        driver,
                    ));
                }
            }
        }
        let mut po_index = HashMap::new();
        let mut po_outs: Vec<(String, SignalId)> = Vec::new();
        for pin in soc.primary_outputs() {
            for bit in 0..soc.pin(pin).width() {
                let mut driver = b.const0();
                for net in soc.nets() {
                    let socet_rtl::SocEndpoint::Pin {
                        pin: dpin,
                        range: dr,
                    } = net.dst
                    else {
                        continue;
                    };
                    if dpin != pin || !dr.contains_bit(bit) {
                        continue;
                    }
                    let sbit = net.src.range().lsb() + (bit - dr.lsb());
                    if let Some(s) = resolve(&mut b, &core_out, &pin_sig, &net.src, sbit) {
                        driver = s;
                    }
                }
                po_index.insert((pin, bit), obs_outs.len() + po_outs.len());
                po_outs.push((format!("po_{}_{}", pin.index(), bit), driver));
            }
        }
        for (name, s) in obs_outs.into_iter().chain(po_outs) {
            b.output(&name, s);
        }

        // Memory-core input ports have no placeholders; nets into them
        // simply dangle, matching flatten_soc.
        let netlist = b.build().map_err(VerifyError::Netlist)?;
        if netlist.inputs().len() != roles.len() {
            return Err(VerifyError::Model(format!(
                "shell input accounting is off: {} inputs vs {} roles",
                netlist.inputs().len(),
                roles.len()
            )));
        }
        Ok(Shell {
            netlist,
            input_roles: roles,
            act_index,
            tm_index,
            obs_index,
            po_index,
            fabrics,
            registers,
        })
    }

    /// A fresh combinational simulator over the shell.
    pub fn sim(&self) -> CombSim<'_> {
        CombSim::new(&self.netlist)
    }
}

/// Relaxed availability times of a path's nodes: inputs at 0, every edge
/// `u → v` imposes `time(v) ≥ time(u) + latency(edge)`. The fixpoint is the
/// cycle (relative to the hop start) at which each node carries the word.
fn relax_times(rcg: &Rcg, path: &TransparencyPath) -> HashMap<RcgNode, u32> {
    let mut t: HashMap<RcgNode, u32> = HashMap::new();
    for p in &path.inputs {
        t.insert(RcgNode::In(*p), 0);
    }
    // |edges| passes suffice: each pass settles at least one edge.
    for _ in 0..path.edges.len() {
        let mut changed = false;
        for id in &path.edges {
            let e = rcg.edge(*id);
            let Some(&from) = t.get(&e.from) else {
                continue;
            };
            let cand = from + e.latency();
            let cur = t.get(&e.to).copied();
            if cur.is_none_or(|c| cand > c) {
                t.insert(e.to, cand);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    t
}
