//! Differential replay of a routed [`DesignPoint`] on the shell netlist.
//!
//! The oracle rebuilds, cycle by cycle, the physical transport every
//! episode claims: chip pins carry a fresh pseudo-random word *every*
//! cycle (so any off-by-one in the claimed timing reads a different word),
//! the core under test injects a pseudo-random response word at its
//! outputs, and each routed itinerary's RCG edges are pulsed at the exact
//! cycles the schedule reserves them for. Three invariants are asserted:
//!
//! (a) every justified vector arrives bit-exact at the CUT's input ports
//!     at the claimed arrival cycle (`obs_*` outputs);
//! (b) every response arrives bit-exact at the claimed chip output at the
//!     claimed capture cycle (`po_*` outputs);
//! (c) episodes packed concurrently by [`parallelize`] have pairwise
//!     disjoint resources and, replayed jointly, never disturb each
//!     other's transit values.
//!
//! The replay frame is departure-aligned: all of vector `v`'s routes
//! launch at slot start `v · per_vector`, and a route hop's interval
//! `[start, start+latency)` maps to absolute cycles `launch + start …`.
//! The arrival-aligned tester program of [`socet_core::tester`] is
//! cross-checked structurally (its `transit` must equal the itinerary
//! arrival and [`validate_program`] must pass).

use crate::shell::{InputRole, Shell};
use crate::VerifyError;
use socet_baselines::flatten_soc;
use socet_core::{
    parallelize, tester_program, validate_program, CoreEpisode, CoreTestData, DesignPoint,
    RouteHop, RouteItinerary,
};
use socet_rtl::{ChipPinId, CoreInstanceId, PortId, Soc, SocEndpoint};
use socet_transparency::RcgNode;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Deliberate mis-scheduling hook: shifts the *claimed* arrival cycle of
/// one input route by `delta` cycles, leaving the physical drive program
/// untouched. A correct oracle must catch any non-zero `delta`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Skew {
    /// Episode index (into `plan.episodes`).
    pub episode: usize,
    /// Input-route index within the episode.
    pub route: usize,
    /// Claimed-arrival shift in cycles.
    pub delta: i64,
}

/// Oracle configuration.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Seed of every pseudo-random drive stream; the report is a pure
    /// function of `(soc, plan, options)`.
    pub seed: u64,
    /// Cap on replayed vectors per episode (`None` = replay all).
    pub max_vectors: Option<u64>,
    /// Also verify the parallel packing (invariant c).
    pub check_parallel: bool,
    /// Mis-scheduling injection hook for oracle self-tests.
    pub skew: Option<Skew>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            seed: 0x50CE7,
            max_vectors: None,
            check_parallel: true,
            skew: None,
        }
    }
}

/// One invariant violation found during replay.
#[derive(Debug, Clone)]
pub struct Violation {
    /// `"serial"`, `"parallel"` or `"tester"`.
    pub phase: &'static str,
    /// Episode index into `plan.episodes`.
    pub episode: usize,
    /// Absolute replay cycle (0 for structural findings).
    pub cycle: u64,
    /// Human-readable description.
    pub detail: String,
}

/// Per-episode replay accounting.
#[derive(Debug, Clone)]
pub struct EpisodeSummary {
    /// Core-under-test instance name.
    pub core: String,
    /// Scheduled vector count.
    pub vectors_total: u64,
    /// Vectors actually replayed (capped by
    /// [`VerifyOptions::max_vectors`]).
    pub vectors_replayed: u64,
    /// Routed input itineraries.
    pub input_routes: usize,
    /// Routed output itineraries.
    pub output_routes: usize,
    /// Ports served by system-level test muxes (no physical transport to
    /// replay).
    pub system_mux_routes: usize,
    /// Bit-exact checks performed.
    pub checks: u64,
    /// Individual bits compared.
    pub bits_checked: u64,
    /// Bits the chip-level wiring does not transport (width-mismatched or
    /// overridden nets) — excluded from checking, reported honestly.
    pub bits_untracked: u64,
    /// Route instances whose held data was overwritten by another route of
    /// the *same* episode between reservation windows (the freeze-model
    /// gap, see DESIGN.md §8); their checks are skipped.
    pub hold_gaps: u64,
}

/// Parallel-phase accounting.
#[derive(Debug, Clone)]
pub struct ParallelSummary {
    /// Episode windows packed.
    pub windows: usize,
    /// Parallel makespan in cycles.
    pub makespan: u64,
    /// Serial TAT for comparison.
    pub serial_tat: u64,
    /// Checks performed during the joint replay.
    pub checks: u64,
}

/// The oracle's verdict: deterministic in `(soc, plan, options)` — same
/// seed, byte-identical [`VerifyReport::render`].
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// SOC name.
    pub soc: String,
    /// The verified version choice.
    pub choice: Vec<usize>,
    /// Shell netlist size.
    pub shell_gates: usize,
    /// Shell flip-flop count.
    pub shell_ffs: usize,
    /// Functional flattening (structural cross-check) size.
    pub flat_gates: usize,
    /// Functional flattening flip-flop count.
    pub flat_ffs: usize,
    /// Per-episode accounting, in plan order.
    pub episodes: Vec<EpisodeSummary>,
    /// Parallel-phase accounting when enabled.
    pub parallel: Option<ParallelSummary>,
    /// Every violation found, in detection order.
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// Whether the plan replayed clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the deterministic text report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "replay oracle: {} @ choice {:?}", self.soc, self.choice);
        let _ = writeln!(
            s,
            "  shell {} gates / {} ffs; functional flattening {} gates / {} ffs",
            self.shell_gates, self.shell_ffs, self.flat_gates, self.flat_ffs
        );
        for (i, ep) in self.episodes.iter().enumerate() {
            let _ = writeln!(
                s,
                "  episode {i} ({}): {}/{} vectors, {} in + {} out routes ({} system-mux), \
                 {} checks, {} bits ({} untracked), {} hold-gaps",
                ep.core,
                ep.vectors_replayed,
                ep.vectors_total,
                ep.input_routes,
                ep.output_routes,
                ep.system_mux_routes,
                ep.checks,
                ep.bits_checked,
                ep.bits_untracked,
                ep.hold_gaps
            );
        }
        if let Some(p) = &self.parallel {
            let _ = writeln!(
                s,
                "  parallel: {} windows, makespan {} (serial {}), {} checks",
                p.windows, p.makespan, p.serial_tat, p.checks
            );
        }
        for v in self.violations.iter().take(20) {
            let _ = writeln!(
                s,
                "  VIOLATION [{}] episode {} cycle {}: {}",
                v.phase, v.episode, v.cycle, v.detail
            );
        }
        if self.violations.len() > 20 {
            let _ = writeln!(s, "  ... {} more violations", self.violations.len() - 20);
        }
        let _ = writeln!(s, "  verdict: {}", if self.ok() { "PASS" } else { "FAIL" });
        s
    }
}

// ---------------------------------------------------------------------------
// Pseudo-random drive streams.

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn noise_bit(seed: u64, tag: u64, key: u64, cycle: u64, bit: u16) -> bool {
    mix(seed ^ mix(tag ^ mix(key ^ mix(cycle ^ u64::from(bit))))) & 1 == 1
}

fn pin_noise(seed: u64, pin: usize, cycle: u64, bit: u16) -> bool {
    noise_bit(seed, 1, pin as u64, cycle, bit)
}

fn inj_noise(seed: u64, core: usize, port: usize, cycle: u64, bit: u16) -> bool {
    noise_bit(seed, 2, ((core as u64) << 32) | port as u64, cycle, bit)
}

// ---------------------------------------------------------------------------
// Provenance entries and route templates.

/// Where a transported destination bit comes from: the source-stream bit
/// and the launch-relative cycle of its first register latch (`None` =
/// purely combinational all the way, sampled at the arrival cycle).
type Entry = (u16, Option<u64>);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Input,
    Output,
}

enum SrcStream {
    Pin(usize),
    Inj(usize, usize),
}

impl SrcStream {
    fn bit(&self, seed: u64, cycle: u64, bit: u16) -> bool {
        match *self {
            SrcStream::Pin(p) => pin_noise(seed, p, cycle, bit),
            SrcStream::Inj(c, p) => inj_noise(seed, c, p, cycle, bit),
        }
    }
}

/// Everything about one route that is vector-independent; instantiated per
/// vector by shifting relative cycles by the launch cycle.
struct RouteTemplate {
    dir: Dir,
    route_idx: usize,
    arrival: u64,
    claimed: u64,
    src: SrcStream,
    /// Destination bit → (source bit, first-latch rel cycle).
    map: Vec<Option<Entry>>,
    /// Destination bit → shell output index.
    out_idx: Vec<Option<usize>>,
    /// Single-cycle activation pulses: (rel cycle, shell input index).
    acts: Vec<(u64, usize)>,
    /// Register loads: (core idx, reg idx, rel cycle, edge idx).
    loads: Vec<(usize, usize, u64, usize)>,
    /// Output-port opens: (core idx, port idx, rel cycle, lo, hi, edge).
    opens: Vec<(usize, usize, u64, u16, u16, usize)>,
}

struct Check {
    cycle: u64,
    episode: usize,
    owner: u64,
    dir: Dir,
    route_idx: usize,
    vector: u64,
    bits: Vec<(usize, bool)>,
}

/// One replay run's drive program: activation toggle events, checks, and
/// the conflict-detection journals.
type OpenRec = (usize, usize, u64, u16, u16, usize, u64, usize);

#[derive(Default)]
struct Program {
    /// (cycle, input idx, +1/-1).
    events: Vec<(u64, usize, i32)>,
    checks: Vec<Check>,
    /// (core, reg, cycle, edge, owner, episode).
    loads: Vec<(usize, usize, u64, usize, u64, usize)>,
    /// (core, reg, start, end, owner, episode) — value held over
    /// `(start, end)` exclusive of both ends.
    holds: Vec<(usize, usize, u64, u64, u64, usize)>,
    /// (core, port, cycle, lo, hi, edge, owner, episode).
    opens: Vec<OpenRec>,
    next_owner: u64,
    horizon: u64,
}

impl Program {
    fn pulse(&mut self, cycle: u64, input: usize) {
        self.events.push((cycle, input, 1));
        self.events.push((cycle + 1, input, -1));
        self.horizon = self.horizon.max(cycle + 1);
    }

    fn window(&mut self, from: u64, to: u64, input: usize) {
        self.events.push((from, input, 1));
        self.events.push((to, input, -1));
        self.horizon = self.horizon.max(to);
    }
}

struct EpisodeStats {
    checks: u64,
    bits_checked: u64,
    bits_untracked: u64,
}

// ---------------------------------------------------------------------------
// Template construction.

fn endpoint_matches(
    src: &SocEndpoint,
    want_pin: Option<ChipPinId>,
    want_core: Option<(CoreInstanceId, PortId)>,
) -> bool {
    match (src, want_pin, want_core) {
        (SocEndpoint::Pin { pin, .. }, Some(w), _) => *pin == w,
        (SocEndpoint::CorePort { core, port, .. }, _, Some((wc, wp))) => *core == wc && *port == wp,
        _ => false,
    }
}

/// Maps provenance entries across the chip nets into `(dst_core, dst_port)`
/// (or a PO pin when `dst_pin` is given), honouring the shell's
/// last-net-wins driver rule: a later net covering the same destination
/// bits overrides — with `None` when it comes from a different source.
fn net_image(
    soc: &Soc,
    src_pin: Option<ChipPinId>,
    src_core: Option<(CoreInstanceId, PortId)>,
    dst_pin: Option<ChipPinId>,
    dst_core: Option<(CoreInstanceId, PortId)>,
    width: u16,
    map: &[Option<Entry>],
) -> Vec<Option<Entry>> {
    let mut out: Vec<Option<Entry>> = vec![None; usize::from(width)];
    for net in soc.nets() {
        let (dr, matches_dst) = match (&net.dst, dst_pin, dst_core) {
            (SocEndpoint::Pin { pin, range }, Some(w), _) => (*range, *pin == w),
            (SocEndpoint::CorePort { core, port, range }, _, Some((wc, wp))) => {
                (*range, *core == wc && *port == wp)
            }
            _ => continue,
        };
        if !matches_dst {
            continue;
        }
        let from_ours = endpoint_matches(&net.src, src_pin, src_core);
        let sr = net.src.range();
        for bit in dr.bits() {
            if usize::from(bit) >= out.len() {
                continue;
            }
            let sbit = sr.lsb() + (bit - dr.lsb());
            out[usize::from(bit)] = if from_ours {
                map.get(usize::from(sbit)).copied().flatten()
            } else {
                None
            };
        }
    }
    out
}

/// Builds the vector-independent template of one route.
fn route_template(
    shell: &Shell,
    soc: &Soc,
    ep: &CoreEpisode,
    dir: Dir,
    route_idx: usize,
    it: &RouteItinerary,
    claimed: u64,
) -> Result<RouteTemplate, VerifyError> {
    let pin = it
        .pin
        .ok_or_else(|| VerifyError::Model("route_template on a system-mux route".into()))?;
    let arrival = u64::from(it.arrival);
    // Sample cycles: the first-latch moment of every register-bearing hop
    // plus the final consumption at the arrival cycle.
    let mut samples: Vec<u64> = it
        .hops
        .iter()
        .filter(|h| h.latency >= 1)
        .map(|h| u64::from(h.start))
        .collect();
    samples.push(arrival);
    samples.sort_unstable();
    samples.dedup();

    let mut acts = Vec::new();
    let mut loads = Vec::new();
    let mut opens = Vec::new();

    // Initial provenance: identity over the source word.
    let (mut map, src): (Vec<Option<Entry>>, SrcStream) = match dir {
        Dir::Input => {
            let w = soc.pin(pin).width();
            (
                (0..w).map(|b| Some((b, None))).collect(),
                SrcStream::Pin(pin.index()),
            )
        }
        Dir::Output => {
            let w = soc.core(ep.core).core().port(it.port).width();
            (
                (0..w).map(|b| Some((b, None))).collect(),
                SrcStream::Inj(ep.core.index(), it.port.index()),
            )
        }
    };

    // Walk the itinerary: net hop, transparency hop, net hop, ...
    let mut cur_pin: Option<ChipPinId> = match dir {
        Dir::Input => Some(pin),
        Dir::Output => None,
    };
    let mut cur_core: Option<(CoreInstanceId, PortId)> = match dir {
        Dir::Input => None,
        Dir::Output => Some((ep.core, it.port)),
    };
    for hop in &it.hops {
        let in_width = soc.core(hop.core).core().port(hop.input).width();
        map = net_image(
            soc,
            cur_pin,
            cur_core,
            None,
            Some((hop.core, hop.input)),
            in_width,
            &map,
        );
        map = hop_image(
            shell, soc, hop, &samples, &map, &mut acts, &mut loads, &mut opens,
        )?;
        cur_pin = None;
        cur_core = Some((hop.core, hop.output));
    }
    let (map, out_idx) = match dir {
        Dir::Input => {
            let w = soc.core(ep.core).core().port(it.port).width();
            let map = net_image(
                soc,
                cur_pin,
                cur_core,
                None,
                Some((ep.core, it.port)),
                w,
                &map,
            );
            let idx = (0..w)
                .map(|b| shell.obs_index.get(&(ep.core, it.port, b)).copied())
                .collect();
            (map, idx)
        }
        Dir::Output => {
            let w = soc.pin(pin).width();
            let map = net_image(soc, None, cur_core, Some(pin), None, w, &map);
            let idx = (0..w)
                .map(|b| shell.po_index.get(&(pin, b)).copied())
                .collect();
            (map, idx)
        }
    };
    Ok(RouteTemplate {
        dir,
        route_idx,
        arrival,
        claimed,
        src,
        map,
        out_idx,
        acts,
        loads,
        opens,
    })
}

/// Applies one transparency hop to the provenance map and records its
/// activation schedule (register loads as single-cycle pulses, output-port
/// opens at every sample cycle the data might be read through).
#[allow(clippy::too_many_arguments)]
fn hop_image(
    shell: &Shell,
    soc: &Soc,
    hop: &RouteHop,
    samples: &[u64],
    incoming: &[Option<Entry>],
    acts: &mut Vec<(u64, usize)>,
    loads: &mut Vec<(usize, usize, u64, usize)>,
    opens: &mut Vec<(usize, usize, u64, u16, u16, usize)>,
) -> Result<Vec<Option<Entry>>, VerifyError> {
    let ci = hop.core.index();
    let fab = shell
        .fabrics
        .get(&ci)
        .ok_or_else(|| VerifyError::Model(format!("no fabric for transit core {}", hop.core)))?;
    if hop.path >= fab.paths.len() {
        return Err(VerifyError::Model(format!(
            "hop path {} out of range for core {}",
            hop.path, hop.core
        )));
    }
    let core = soc.core(hop.core).core();
    let times = &fab.path_times[hop.path];
    let cone = fab.cone(hop.path, hop.output);
    let start = u64::from(hop.start);

    let width_of = |n: RcgNode| -> u16 {
        match n {
            RcgNode::In(p) | RcgNode::Out(p) => core.port(p).width(),
            RcgNode::Reg(r) => core.register(r).width(),
        }
    };
    let mut maps: HashMap<RcgNode, Vec<Option<Entry>>> = HashMap::new();
    maps.insert(RcgNode::In(hop.input), incoming.to_vec());

    // Register-writing cone edges in (latch cycle, edge index) order.
    let mut reg_edges: Vec<(u64, usize)> = Vec::new();
    let mut out_edges: Vec<usize> = Vec::new();
    for &e in &cone {
        let edge = fab.rcg.edges()[e];
        let Some(&tf) = times.get(&edge.from) else {
            continue; // unreachable-from-inputs side branch: untracked
        };
        match edge.to {
            RcgNode::Reg(_) => reg_edges.push((start + u64::from(tf), e)),
            RcgNode::Out(p) if p == hop.output => out_edges.push(e),
            _ => {}
        }
    }
    reg_edges.sort_unstable();

    for (rel, e) in &reg_edges {
        let edge = fab.rcg.edges()[*e];
        let RcgNode::Reg(r) = edge.to else { continue };
        let from_map = maps
            .get(&edge.from)
            .cloned()
            .unwrap_or_else(|| vec![None; usize::from(width_of(edge.from))]);
        let to_map = maps
            .entry(edge.to)
            .or_insert_with(|| vec![None; usize::from(width_of(edge.to))]);
        for bit in edge.to_range.bits() {
            if usize::from(bit) >= to_map.len() {
                continue;
            }
            let sbit = edge.from_range.lsb() + (bit - edge.to_range.lsb());
            let mut v = from_map.get(usize::from(sbit)).copied().flatten();
            if let Some(en) = &mut v {
                en.1 = Some(en.1.unwrap_or(*rel));
            }
            to_map[usize::from(bit)] = v;
        }
        let input_idx = shell.act_index[&(hop.core, *e)];
        acts.push((*rel, input_idx));
        loads.push((ci, r.index(), *rel, *e));
    }

    // Output map in edge-index order: with several edges simultaneously
    // open, the outermost (highest-index) mux leg wins — mirror that.
    let out_w = usize::from(core.port(hop.output).width());
    let mut out: Vec<Option<Entry>> = vec![None; out_w];
    for &e in &out_edges {
        let edge = fab.rcg.edges()[e];
        let tf = u64::from(*times.get(&edge.from).unwrap_or(&0));
        let from_map = maps
            .get(&edge.from)
            .cloned()
            .unwrap_or_else(|| vec![None; usize::from(width_of(edge.from))]);
        for bit in edge.to_range.bits() {
            if usize::from(bit) >= out.len() {
                continue;
            }
            let sbit = edge.from_range.lsb() + (bit - edge.to_range.lsb());
            out[usize::from(bit)] = from_map.get(usize::from(sbit)).copied().flatten();
        }
        // Open the edge at every sample cycle at which its source is ready.
        let input_idx = shell.act_index[&(hop.core, e)];
        for &s in samples {
            if s >= start + tf {
                acts.push((s, input_idx));
                opens.push((
                    ci,
                    hop.output.index(),
                    s,
                    edge.to_range.lsb(),
                    edge.to_range.msb(),
                    e,
                ));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Per-episode program assembly.

#[allow(clippy::too_many_arguments)]
fn add_episode(
    prog: &mut Program,
    shell: &Shell,
    soc: &Soc,
    plan_idx: usize,
    ep: &CoreEpisode,
    offset: u64,
    opts: &VerifyOptions,
    stats: &mut EpisodeStats,
) -> Result<(), VerifyError> {
    let per = u64::from(ep.per_vector_cycles);
    let vectors = opts
        .max_vectors
        .map_or(ep.hscan_vectors, |m| ep.hscan_vectors.min(m));
    // CUT in test mode for its whole window.
    let tm = shell.tm_index[&ep.core];
    prog.window(offset, offset + ep.test_time().max(1), tm);

    let mut templates: Vec<RouteTemplate> = Vec::new();
    for (idx, it) in ep.input_routes.iter().enumerate() {
        if it.is_system_mux() {
            continue;
        }
        let mut claimed = u64::from(it.arrival);
        if let Some(sk) = opts.skew {
            if sk.episode == plan_idx && sk.route == idx {
                claimed = claimed.saturating_add_signed(sk.delta);
            }
        }
        templates.push(route_template(
            shell,
            soc,
            ep,
            Dir::Input,
            idx,
            it,
            claimed,
        )?);
    }
    for (idx, it) in ep.output_routes.iter().enumerate() {
        if it.is_system_mux() {
            continue;
        }
        templates.push(route_template(
            shell,
            soc,
            ep,
            Dir::Output,
            idx,
            it,
            u64::from(it.arrival),
        )?);
    }

    for v in 0..vectors {
        let launch = offset + v * per;
        for t in &templates {
            let owner = prog.next_owner;
            prog.next_owner += 1;
            for &(rel, input) in &t.acts {
                prog.pulse(launch + rel, input);
            }
            for &(c, r, rel, e) in &t.loads {
                prog.loads.push((c, r, launch + rel, e, owner, plan_idx));
            }
            // Held from its first load until the route's last sample.
            let mut first_load: HashMap<(usize, usize), u64> = HashMap::new();
            for &(c, r, rel, _) in &t.loads {
                let e = first_load.entry((c, r)).or_insert(u64::MAX);
                *e = (*e).min(launch + rel);
            }
            for ((c, r), s) in first_load {
                prog.holds
                    .push((c, r, s, launch + t.arrival, owner, plan_idx));
            }
            for &(c, p, rel, lo, hi, e) in &t.opens {
                prog.opens
                    .push((c, p, launch + rel, lo, hi, e, owner, plan_idx));
            }
            let mut bits = Vec::new();
            for (bit, entry) in t.map.iter().enumerate() {
                match (entry, t.out_idx[bit]) {
                    (Some((sbit, fl)), Some(out)) => {
                        let cycle = launch + fl.unwrap_or(t.arrival);
                        bits.push((out, t.src.bit(opts.seed, cycle, *sbit)));
                    }
                    _ => stats.bits_untracked += 1,
                }
            }
            stats.bits_checked += bits.len() as u64;
            stats.checks += 1;
            let check_cycle = launch + t.claimed;
            prog.horizon = prog.horizon.max(check_cycle + 1);
            prog.checks.push(Check {
                cycle: check_cycle,
                episode: plan_idx,
                owner,
                dir: t.dir,
                route_idx: t.route_idx,
                vector: v,
                bits,
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Conflict analysis and simulation.

/// Owners whose transported data another route overwrote before its
/// consumption. Returns `(owner → clobbering episode)` pairs.
type LoadsByReg = HashMap<(usize, usize), Vec<(u64, usize, u64, usize)>>;
type LoadsByCycle = HashMap<(usize, usize, u64), Vec<(usize, u64, usize)>>;
type OpensByKey = HashMap<(usize, usize, u64), Vec<(u16, u16, usize, u64, usize)>>;

fn clobbered_owners(prog: &Program) -> HashMap<u64, (usize, usize, u64)> {
    let mut out: HashMap<u64, (usize, usize, u64)> = HashMap::new();
    // Register holds vs foreign loads.
    let mut loads_by_reg: LoadsByReg = HashMap::new();
    for &(c, r, cycle, e, owner, ep) in &prog.loads {
        loads_by_reg
            .entry((c, r))
            .or_default()
            .push((cycle, e, owner, ep));
    }
    for v in loads_by_reg.values_mut() {
        v.sort_unstable();
    }
    for &(c, r, start, end, owner, _ep) in &prog.holds {
        let Some(ls) = loads_by_reg.get(&(c, r)) else {
            continue;
        };
        for &(cycle, _e, lowner, lep) in ls {
            if cycle <= start {
                continue;
            }
            if cycle >= end {
                break;
            }
            if lowner != owner {
                out.entry(owner).or_insert((lep, c, cycle));
            }
        }
    }
    // Simultaneous loads of the same register through different edges: the
    // higher-index mux leg wins, the lower one is shadowed.
    let mut same_cycle: LoadsByCycle = HashMap::new();
    for &(c, r, cycle, e, owner, ep) in &prog.loads {
        same_cycle
            .entry((c, r, cycle))
            .or_default()
            .push((e, owner, ep));
    }
    for ((c, _r, cycle), group) in &same_cycle {
        if group.len() < 2 {
            continue;
        }
        let max_edge = group.iter().map(|(e, ..)| *e).max().unwrap_or(0);
        for &(e, owner, _) in group {
            if e < max_edge {
                let winner = group.iter().find(|(ge, ..)| *ge == max_edge).unwrap();
                out.entry(owner).or_insert((winner.2, *c, *cycle));
            }
        }
    }
    // Output-port opens: different edges, same port, same cycle, bit
    // overlap — the lower-index edge's reader is shadowed.
    let mut opens_by_key: OpensByKey = HashMap::new();
    for &(c, p, cycle, lo, hi, e, owner, ep) in &prog.opens {
        opens_by_key
            .entry((c, p, cycle))
            .or_default()
            .push((lo, hi, e, owner, ep));
    }
    for ((c, _p, cycle), group) in &opens_by_key {
        if group.len() < 2 {
            continue;
        }
        for (i, &(lo1, hi1, e1, o1, _)) in group.iter().enumerate() {
            for &(lo2, hi2, e2, o2, ep2) in group.iter().skip(i + 1) {
                if o1 == o2 || e1 == e2 || lo1 > hi2 || lo2 > hi1 {
                    continue;
                }
                let shadowed = if e1 < e2 { (o1, ep2) } else { (o2, ep2) };
                out.entry(shadowed.0).or_insert((shadowed.1, *c, *cycle));
            }
        }
    }
    out
}

fn owner_episode(prog: &Program, owner: u64) -> Option<usize> {
    prog.checks
        .iter()
        .find(|c| c.owner == owner)
        .map(|c| c.episode)
}

/// Runs the program on the shell, returning violations and the number of
/// checks executed (clobbered owners are skipped and counted per episode).
fn run_program(
    shell: &Shell,
    soc: &Soc,
    prog: &mut Program,
    opts: &VerifyOptions,
    phase: &'static str,
    hold_gaps: &mut [u64],
    violations: &mut Vec<Violation>,
) -> u64 {
    let clobbered = clobbered_owners(prog);
    // A clobber across episodes is a reservation conflict (invariant c);
    // within an episode it is the freeze-model gap — skip those checks.
    let mut skip: HashSet<u64> = HashSet::new();
    let mut reported: HashSet<(usize, usize)> = HashSet::new();
    let mut pairs: Vec<(u64, (usize, usize, u64))> = clobbered.into_iter().collect();
    pairs.sort_unstable();
    for (owner, (by_ep, core, cycle)) in pairs {
        let Some(own_ep) = owner_episode(prog, owner) else {
            continue;
        };
        skip.insert(owner);
        if own_ep != by_ep {
            if reported.insert((own_ep.min(by_ep), own_ep.max(by_ep))) {
                violations.push(Violation {
                    phase,
                    episode: own_ep,
                    cycle,
                    detail: format!(
                        "reservation conflict: episode {by_ep} overwrote transit data of \
                         episode {own_ep} in core {} (invariant c)",
                        soc.core(CoreInstanceId::from_index(core)).name()
                    ),
                });
            }
        } else {
            hold_gaps[own_ep] += 1;
        }
    }

    prog.events.sort_unstable();
    prog.checks.sort_by_key(|c| c.cycle);

    let sim = shell.sim();
    let mut counts: Vec<i32> = vec![0; shell.input_roles.len()];
    let mut inputs: Vec<bool> = vec![false; shell.input_roles.len()];
    let mut state: Vec<bool> = vec![false; shell.netlist.flip_flop_count()];
    let mut ev = 0usize;
    let mut ck = 0usize;
    let mut executed = 0u64;
    for t in 0..prog.horizon {
        while ev < prog.events.len() && prog.events[ev].0 == t {
            let (_, idx, d) = prog.events[ev];
            counts[idx] += d;
            ev += 1;
        }
        for (i, role) in shell.input_roles.iter().enumerate() {
            inputs[i] = match role {
                InputRole::Pin { pin, bit } => pin_noise(opts.seed, pin.index(), t, *bit),
                InputRole::Inject { core, port, bit } => {
                    inj_noise(opts.seed, core.index(), port.index(), t, *bit)
                }
                InputRole::TestMode { .. } | InputRole::Act { .. } => counts[i] > 0,
            };
        }
        let (outs, next) = sim.run_with_state(&inputs, &state);
        while ck < prog.checks.len() && prog.checks[ck].cycle == t {
            let c = &prog.checks[ck];
            ck += 1;
            if skip.contains(&c.owner) {
                continue;
            }
            executed += 1;
            let bad: Vec<usize> = c
                .bits
                .iter()
                .enumerate()
                .filter(|(_, (out, want))| outs[*out] != *want)
                .map(|(i, _)| i)
                .collect();
            if !bad.is_empty() {
                if std::env::var_os("SOCET_VERIFY_DEBUG").is_some() {
                    eprintln!(
                        "DEBUG failing check: owner {} ep {} dir {:?} route {} vec {} cycle {t}",
                        c.owner, c.episode, c.dir, c.route_idx, c.vector
                    );
                    for &(cc, r, cy, e, o, ep2) in prog.loads.iter() {
                        if cy.abs_diff(t) <= 6 {
                            eprintln!(
                                "  load core {cc} reg {r} cycle {cy} edge {e} owner {o} ep {ep2}"
                            );
                        }
                    }
                    for &(cc, p, cy, lo, hi, e, o, ep2) in prog.opens.iter() {
                        if cy.abs_diff(t) <= 6 {
                            eprintln!("  open core {cc} port {p} cycle {cy} bits {lo}..{hi} edge {e} owner {o} ep {ep2}");
                        }
                    }
                    for &(cy, idx, d) in prog.events.iter() {
                        if cy.abs_diff(t) <= 2 {
                            eprintln!(
                                "  event cycle {cy} input {idx} ({:?}) delta {d}",
                                shell.input_roles[idx]
                            );
                        }
                    }
                }
                let what = match c.dir {
                    Dir::Input => "justified vector missed CUT input (invariant a)",
                    Dir::Output => "response missed chip output (invariant b)",
                };
                violations.push(Violation {
                    phase,
                    episode: c.episode,
                    cycle: t,
                    detail: format!(
                        "{what}: route {} vector {}: {}/{} bits differ",
                        c.route_idx,
                        c.vector,
                        bad.len(),
                        c.bits.len()
                    ),
                });
            }
        }
        state = next;
    }
    executed
}

// ---------------------------------------------------------------------------
// Entry point.

/// Replays every episode of `plan` on the gate-level shell of `soc` and
/// checks the three invariants. See the module docs.
pub fn verify_design_point(
    soc: &Soc,
    data: &[Option<CoreTestData>],
    plan: &DesignPoint,
    opts: &VerifyOptions,
) -> Result<VerifyReport, VerifyError> {
    let shell = Shell::build(soc, data, plan)?;
    let flat = flatten_soc(soc).map_err(VerifyError::Netlist)?;
    let mut violations = Vec::new();
    let mut summaries = Vec::new();
    let mut hold_gaps = vec![0u64; plan.episodes.len()];

    // Structural cross-checks against the tester-program expansion.
    for (i, ep) in plan.episodes.iter().enumerate() {
        let program = tester_program(soc, ep);
        if let Some(msg) = validate_program(ep, &program) {
            violations.push(Violation {
                phase: "tester",
                episode: i,
                cycle: 0,
                detail: format!("tester program invalid: {msg}"),
            });
        }
        let arrivals: HashMap<PortId, u32> = ep.input_arrivals.iter().copied().collect();
        for d in program.drives.iter().take(arrivals.len()) {
            if arrivals.get(&d.target_input) != Some(&d.transit) {
                violations.push(Violation {
                    phase: "tester",
                    episode: i,
                    cycle: d.cycle,
                    detail: format!(
                        "drive transit {} disagrees with itinerary arrival for {}",
                        d.transit, d.target_input
                    ),
                });
            }
        }
        if ep.input_routes.len() != ep.input_arrivals.len()
            || ep.output_routes.len() != ep.output_arrivals.len()
        {
            violations.push(Violation {
                phase: "tester",
                episode: i,
                cycle: 0,
                detail: "itinerary list out of step with arrival list".into(),
            });
        }
        for (r, (p, a)) in ep.input_routes.iter().zip(&ep.input_arrivals) {
            if r.port != *p || r.arrival != *a {
                violations.push(Violation {
                    phase: "tester",
                    episode: i,
                    cycle: 0,
                    detail: format!("input itinerary for {p} disagrees with arrival {a}"),
                });
            }
        }
    }

    // Serial phase: every episode replayed in isolation.
    for (i, ep) in plan.episodes.iter().enumerate() {
        let mut stats = EpisodeStats {
            checks: 0,
            bits_checked: 0,
            bits_untracked: 0,
        };
        let mut prog = Program::default();
        add_episode(&mut prog, &shell, soc, i, ep, 0, opts, &mut stats)?;
        run_program(
            &shell,
            soc,
            &mut prog,
            opts,
            "serial",
            &mut hold_gaps,
            &mut violations,
        );
        let sys_mux = ep
            .input_routes
            .iter()
            .chain(&ep.output_routes)
            .filter(|r| r.is_system_mux())
            .count();
        summaries.push(EpisodeSummary {
            core: soc.core(ep.core).name().to_owned(),
            vectors_total: ep.hscan_vectors,
            vectors_replayed: opts
                .max_vectors
                .map_or(ep.hscan_vectors, |m| ep.hscan_vectors.min(m)),
            input_routes: ep.input_routes.len(),
            output_routes: ep.output_routes.len(),
            system_mux_routes: sys_mux,
            checks: stats.checks,
            bits_checked: stats.bits_checked,
            bits_untracked: stats.bits_untracked,
            hold_gaps: 0, // filled below from the shared counter
        });
    }

    // Parallel phase: the packed windows replayed jointly (invariant c).
    let parallel = if opts.check_parallel && !plan.episodes.is_empty() {
        let par = parallelize(soc, plan);
        // Explicit pairwise resource disjointness of overlapping windows.
        type WindowResources = (u64, u64, HashSet<(u8, usize)>);
        let resources: Vec<WindowResources> = par
            .windows
            .iter()
            .map(|(core, s, e)| {
                let ep = plan
                    .episodes
                    .iter()
                    .find(|ep| ep.core == *core)
                    .expect("window core has an episode");
                let mut set: HashSet<(u8, usize)> = HashSet::new();
                set.insert((0, ep.core.index()));
                for c in &ep.transit_cores {
                    set.insert((0, c.index()));
                }
                for p in &ep.pins {
                    set.insert((1, p.index()));
                }
                (*s, *e, set)
            })
            .collect();
        for (i, (s1, e1, r1)) in resources.iter().enumerate() {
            for (s2, e2, r2) in resources.iter().skip(i + 1) {
                if s1 < e2 && s2 < e1 && r1.intersection(r2).next().is_some() {
                    violations.push(Violation {
                        phase: "parallel",
                        episode: i,
                        cycle: *s1.max(s2),
                        detail: "overlapping windows share a resource (invariant c)".into(),
                    });
                }
            }
        }
        let mut prog = Program::default();
        let mut stats = EpisodeStats {
            checks: 0,
            bits_checked: 0,
            bits_untracked: 0,
        };
        for (core, start, _end) in &par.windows {
            let (i, ep) = plan
                .episodes
                .iter()
                .enumerate()
                .find(|(_, ep)| ep.core == *core)
                .expect("window core has an episode");
            add_episode(&mut prog, &shell, soc, i, ep, *start, opts, &mut stats)?;
        }
        let checks = run_program(
            &shell,
            soc,
            &mut prog,
            opts,
            "parallel",
            &mut hold_gaps,
            &mut violations,
        );
        Some(ParallelSummary {
            windows: par.windows.len(),
            makespan: par.makespan,
            serial_tat: par.serial_tat,
            checks,
        })
    } else {
        None
    };

    for (i, s) in summaries.iter_mut().enumerate() {
        s.hold_gaps = hold_gaps[i];
    }
    Ok(VerifyReport {
        soc: soc.name().to_owned(),
        choice: plan.choice.clone(),
        shell_gates: shell.netlist.gates().len(),
        shell_ffs: shell.netlist.flip_flop_count(),
        flat_gates: flat.gates().len(),
        flat_ffs: flat.flip_flop_count(),
        episodes: summaries,
        parallel,
        violations,
    })
}
