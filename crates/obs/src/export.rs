//! Trace exporters: a machine-readable JSON trace and a collapsed-stack
//! ("folded") profile for flamegraph tooling.
//!
//! Both formats are hand-rolled — this crate takes no dependencies — and
//! only ever emit integers, `null`, and span names drawn from
//! [`crate::names`] (plain ASCII identifiers), so no string escaping is
//! required beyond what [`escape`] provides defensively.
//!
//! # JSON schema (version 1)
//!
//! ```json
//! {
//!   "version": 1,
//!   "dropped_spans": 0,
//!   "counters": { "instances": 9, "unique_cores": 6 },
//!   "spans": [
//!     { "id": 0, "name": "prepare", "parent": null,
//!       "start_ns": 0, "dur_ns": 123456 }
//!   ]
//! }
//! ```
//!
//! `counters` lists only non-zero counters. `spans` is in recording order;
//! `parent` indexes into the same array. Times are integer nanoseconds from
//! the recorder epoch.
//!
//! # Folded format
//!
//! One line per distinct stack, `root;child;leaf <self-ns>`, where self
//! time is the span's duration minus its retained children's — exactly what
//! `flamegraph.pl` / `inferno-flamegraph` consume. Nanosecond units keep
//! sub-millisecond pipelines from collapsing to empty output.

use crate::{Counter, Recorder};

/// Escapes a string for a JSON string literal. Span and counter names are
/// static ASCII identifiers, so this is defensive rather than load-bearing.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn to_json(rec: &Recorder) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"dropped_spans\": {},\n", rec.dropped_spans()));

    out.push_str("  \"counters\": {");
    let mut first = true;
    for c in Counter::ALL {
        let v = rec.counter(c);
        if v == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {}", escape(c.name()), v));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"spans\": [");
    for (i, s) in rec.spans().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let parent = match s.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "\n    {{ \"id\": {}, \"name\": \"{}\", \"parent\": {}, \"start_ns\": {}, \"dur_ns\": {} }}",
            i,
            escape(s.name),
            parent,
            s.start.as_nanos(),
            s.dur.as_nanos()
        ));
    }
    if !rec.spans().is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

pub(crate) fn to_folded(rec: &Recorder) -> String {
    let spans = rec.spans();
    // Self time = duration minus the duration of retained children.
    let mut self_ns: Vec<i128> = spans.iter().map(|s| s.dur.as_nanos() as i128).collect();
    for s in spans {
        if let Some(p) = s.parent {
            self_ns[p as usize] -= s.dur.as_nanos() as i128;
        }
    }
    // Identical stacks merge; BTreeMap keeps the output deterministic.
    let mut stacks: std::collections::BTreeMap<String, u128> = std::collections::BTreeMap::new();
    for (i, _) in spans.iter().enumerate() {
        let self_time = self_ns[i].max(0) as u128;
        if self_time == 0 {
            continue;
        }
        let mut frames = Vec::new();
        let mut cur = Some(i as u32);
        while let Some(id) = cur {
            let s = &spans[id as usize];
            frames.push(s.name);
            cur = s.parent;
        }
        frames.reverse();
        *stacks.entry(frames.join(";")).or_insert(0) += self_time;
    }
    let mut out = String::new();
    for (stack, ns) in stacks {
        out.push_str(&format!("{stack} {ns}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{Counter, Recorder};

    fn sample() -> Recorder {
        let mut rec = Recorder::new();
        rec.record(Counter::Instances, 4);
        let root = rec.begin("prepare");
        let core = rec.begin("prepare_core");
        let h = rec.begin("hscan");
        std::thread::sleep(std::time::Duration::from_millis(1));
        rec.end(h);
        rec.end(core);
        rec.end(root);
        rec
    }

    #[test]
    fn json_has_schema_fields_and_nonzero_counters_only() {
        let rec = sample();
        let json = rec.to_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"instances\": 4"));
        assert!(!json.contains("\"disk_hits\""), "zero counters omitted");
        assert!(json.contains("\"name\": \"prepare\""));
        assert!(json.contains("\"parent\": null"));
        assert!(
            json.contains("\"parent\": 1"),
            "hscan nests under prepare_core"
        );
    }

    #[test]
    fn json_of_empty_recorder_is_well_formed() {
        let rec = Recorder::new();
        let json = rec.to_json();
        assert!(json.contains("\"counters\": {},"));
        assert!(json.contains("\"spans\": []"));
    }

    #[test]
    fn folded_emits_full_stacks_with_positive_self_time() {
        let rec = sample();
        let folded = rec.to_folded();
        assert!(
            folded.contains("prepare;prepare_core;hscan "),
            "leaf stack present: {folded:?}"
        );
        for line in folded.lines() {
            let (stack, ns) = line.rsplit_once(' ').expect("stack SP value");
            assert!(!stack.is_empty());
            assert!(ns.parse::<u128>().expect("integer ns") > 0);
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(super::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::escape("\u{1}"), "\\u0001");
    }
}
