//! Zero-dependency structured observability for the SOCET flow.
//!
//! Instrumentation across the workspace used to live in three disconnected
//! surfaces — `socet_core::Metrics`, `PrepareMetrics`, `AtpgMetrics`, each
//! with its own merge and print conventions, plus bare `Instant::now()`
//! pairs sprinkled through the flow layer. This crate replaces all of them
//! with **one** recording substrate the old structs are derived *from*:
//!
//! * hierarchical **spans** — name, wall time, parent — recorded into a
//!   bounded buffer ([`SpanRec`]); per-name totals stay exact even when the
//!   buffer overflows, so aggregate views never lose time;
//! * typed **counters** ([`Counter`]) accumulated in a fixed array, each
//!   with an explicit cross-worker [`MergePolicy`];
//! * an explicit per-worker [`Recorder`] handle that composes with the
//!   `std::thread::scope` fan-outs in the preparation pipeline, the fault
//!   simulator and the design-space sweep: workers [`Recorder::fork`] from
//!   the parent and the parent folds them back with
//!   [`Recorder::merge_child`] **in index order**, so counter totals are
//!   deterministic for any worker count;
//! * a thread-local sink ([`Recorder::install`]) so deep call sites —
//!   gate elaboration, HSCAN insertion, version synthesis, the ATPG
//!   driver — record through the free functions [`span`] and [`add`]
//!   without threading a recorder parameter through every signature;
//! * two exporters: a machine-readable JSON trace ([`Recorder::to_json`])
//!   and a collapsed-stack profile ([`Recorder::to_folded`]) consumable by
//!   standard flamegraph tooling.
//!
//! The disabled path is one branch: a [`Recorder::disabled`] handle is an
//! `Option::None` inside, and the free functions are a thread-local load
//! plus a branch when no recorder is installed. No time is read, nothing
//! allocates.
//!
//! # Examples
//!
//! ```
//! use socet_obs::{names, Counter, Recorder};
//!
//! let mut rec = Recorder::new();
//! let root = rec.begin(names::PREPARE);
//! {
//!     let _guard = rec.install(); // free functions now reach this recorder
//!     let _span = socet_obs::span(names::HSCAN);
//!     socet_obs::add(Counter::ScanCellsInserted, 42);
//! }
//! rec.end(root);
//! assert_eq!(rec.counter(Counter::ScanCellsInserted), 42);
//! assert_eq!(rec.span_count(names::HSCAN), 1);
//! assert!(rec.to_json().contains("\"prepare\""));
//! ```

use std::cell::RefCell;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

pub mod export;

/// Canonical span names. Spans are matched by name in the aggregate views
/// (`span_total`), so every producer and consumer goes through these
/// constants.
pub mod names {
    /// One whole preparation-pipeline run (`prepare_soc_with`).
    pub const PREPARE: &str = "prepare";
    /// One unique core's trip through the core-level flow.
    pub const PREPARE_CORE: &str = "prepare_core";
    /// HSCAN scan-chain insertion (`socet-hscan`).
    pub const HSCAN: &str = "hscan";
    /// Transparency version synthesis (`socet-transparency`).
    pub const VERSIONS: &str = "versions";
    /// Gate-level elaboration (`socet-gate`).
    pub const ELABORATE: &str = "elaborate";
    /// The combinational ATPG driver (`socet-atpg::generate_tests`).
    pub const ATPG: &str = "atpg";
    /// Random-pattern phase of the ATPG driver.
    pub const ATPG_RANDOM: &str = "atpg_random";
    /// PODEM top-off phase of the ATPG driver.
    pub const ATPG_PODEM: &str = "atpg_podem";
    /// One fault-partition shard of the parallel fault simulator.
    pub const FSIM_SHARD: &str = "fsim_shard";
    /// Artifact-store read (including decode).
    pub const STORE_LOAD: &str = "store_load";
    /// Artifact-store write (including encode).
    pub const STORE_WRITE: &str = "store_write";
    /// One evaluation of the chip-level engine (build + route + assemble).
    pub const EVALUATE: &str = "evaluate";
    /// CCG build/patch stage of the evaluation engine.
    pub const BUILD: &str = "build";
    /// Routing stage of the evaluation engine.
    pub const ROUTE: &str = "route";
    /// Plan-assembly stage of the evaluation engine.
    pub const ASSEMBLE: &str = "assemble";
    /// One exhaustive design-space sweep (`Explorer::sweep`).
    pub const SWEEP: &str = "sweep";
    /// One §5.2 iterative-improvement run (`Explorer::optimize`).
    pub const OPTIMIZE: &str = "optimize";
}

/// How a counter folds across workers in [`Recorder::merge_child`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Totals add — the common case (work done is work done).
    Add,
    /// The widest value wins — e.g. the worker fan-out of a run.
    Max,
}

macro_rules! counters {
    ($($(#[$meta:meta])* $variant:ident => $name:literal, $policy:ident;)+) => {
        /// Every typed counter any SOCET crate records.
        ///
        /// One enum for the whole workspace keeps the recorder
        /// allocation-free (a fixed array) and the exporters exhaustive;
        /// the legacy metrics structs (`Metrics`, `PrepareMetrics`,
        /// `AtpgMetrics`) are views over these slots.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[non_exhaustive]
        pub enum Counter {
            $($(#[$meta])* $variant,)+
        }

        /// Number of defined counters (the recorder's array width).
        pub const COUNTER_COUNT: usize = [$(Counter::$variant),+].len();

        impl Counter {
            /// Every counter, in declaration order.
            pub const ALL: [Counter; COUNTER_COUNT] = [$(Counter::$variant),+];

            /// The stable snake_case name used by the exporters.
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$variant => $name,)+
                }
            }

            /// How this counter folds across merged recorders.
            pub fn policy(self) -> MergePolicy {
                match self {
                    $(Counter::$variant => MergePolicy::$policy,)+
                }
            }

            fn idx(self) -> usize {
                self as usize
            }
        }
    };
}

counters! {
    // Chip-level evaluation engine (socet-core).
    /// Design points evaluated (successful `Scheduler::evaluate` calls).
    Evaluations => "evaluations", Add;
    /// CCGs built from scratch.
    CcgFullBuilds => "ccg_full_builds", Add;
    /// Incremental per-core patches applied instead of full rebuilds.
    CcgIncrementalPatches => "ccg_incremental_patches", Add;
    /// Edges written while building or patching CCGs.
    CcgEdgesRebuilt => "ccg_edges_rebuilt", Add;
    /// Routing requests issued (one per core port per evaluation).
    RouteAttempts => "route_attempts", Add;
    /// Core episodes served from the route cache.
    RouteCacheHits => "route_cache_hits", Add;
    /// Edge relaxations performed inside Dijkstra.
    DijkstraRelaxations => "dijkstra_relaxations", Add;
    /// Ports no route could reach, resolved with a system-level test mux.
    SystemMuxFallbacks => "system_mux_fallbacks", Add;

    // Test generation (socet-atpg).
    /// 64-pattern blocks simulated (one good-machine evaluation each).
    BlocksSimulated => "blocks_simulated", Add;
    /// Gates re-evaluated inside fault cones.
    ConeGateEvals => "cone_gate_evals", Add;
    /// Full-netlist gate evaluations the naive path would have paid.
    FullGateEvalsEquiv => "full_gate_evals_equiv", Add;
    /// Faults skipped because their cone reaches no observable point.
    FaultsSkippedUnobservable => "faults_skipped_unobservable", Add;
    /// Faults first detected by the random-pattern phase.
    FaultsDroppedRandom => "faults_dropped_random", Add;
    /// Faults first detected during the PODEM top-off.
    FaultsDroppedPodem => "faults_dropped_podem", Add;
    /// PODEM-proven tests that failed resimulation (honest accounting).
    FillMaskEvents => "fill_mask_events", Add;
    /// Worker threads spawned by parallel fault partitioning.
    ParallelShards => "parallel_shards", Add;

    // Core-preparation pipeline (socet::flow).
    /// Core instances in the SOC (memory cores excluded).
    Instances => "instances", Add;
    /// Distinct logic cores prepared (the memo collapses repeats).
    UniqueCores => "unique_cores", Add;
    /// Instances served by the in-process memo instead of a fresh run.
    MemoHits => "memo_hits", Add;
    /// Unique cores loaded from the on-disk artifact store.
    DiskHits => "disk_hits", Add;
    /// Unique cores looked up on disk and not found (or found corrupt).
    DiskMisses => "disk_misses", Add;
    /// Artifacts written to the on-disk store.
    DiskWrites => "disk_writes", Add;
    /// Worker threads used for the unique-core fan-out (widest wins).
    Workers => "workers", Max;

    // Per-crate work counters.
    /// Gates produced by gate-level elaboration (socet-gate).
    GatesElaborated => "gates_elaborated", Add;
    /// Scan cells stitched into HSCAN chains (socet-hscan).
    ScanCellsInserted => "scan_cells_inserted", Add;
    /// Transparency versions synthesized (socet-transparency).
    VersionsSynthesized => "versions_synthesized", Add;
}

/// One recorded span: a named interval with its parent in the span tree.
///
/// `start` is the offset from the owning recorder's epoch (its creation
/// instant, shared by every fork), so spans merged from parallel workers
/// stay on one timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// The span's name (one of [`names`]).
    pub name: &'static str,
    /// Offset from the recorder epoch.
    pub start: Duration,
    /// Wall time between `begin` and `end`.
    pub dur: Duration,
    /// Index of the enclosing span in the recorder's span list.
    pub parent: Option<u32>,
}

/// Default bound on retained span events. Aggregate per-name totals stay
/// exact beyond it; only the per-event trace is truncated (and counted in
/// [`Recorder::dropped_spans`]).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

#[derive(Debug)]
struct Open {
    name: &'static str,
    start: Duration,
    id: Option<u32>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    counters: [u64; COUNTER_COUNT],
    /// Per-name exact aggregates: (name, total duration, completed count).
    agg: Vec<(&'static str, Duration, u64)>,
    spans: Vec<SpanRec>,
    stack: Vec<Open>,
    cap: usize,
    dropped: u64,
}

impl Inner {
    fn new(epoch: Instant, cap: usize) -> Box<Inner> {
        Box::new(Inner {
            epoch,
            counters: [0; COUNTER_COUNT],
            agg: Vec::new(),
            spans: Vec::new(),
            stack: Vec::new(),
            cap,
            dropped: 0,
        })
    }

    fn record(&mut self, c: Counter, v: u64) {
        let slot = &mut self.counters[c.idx()];
        match c.policy() {
            MergePolicy::Add => *slot += v,
            MergePolicy::Max => *slot = (*slot).max(v),
        }
    }

    fn begin(&mut self, name: &'static str) -> SpanToken {
        let depth = self.stack.len();
        let start = self.epoch.elapsed();
        let id = if self.spans.len() < self.cap {
            let parent = self.current_parent();
            self.spans.push(SpanRec {
                name,
                start,
                dur: Duration::ZERO,
                parent,
            });
            Some((self.spans.len() - 1) as u32)
        } else {
            self.dropped += 1;
            None
        };
        self.stack.push(Open { name, start, id });
        SpanToken { depth }
    }

    /// Nearest enclosing open span that survived the ring bound.
    fn current_parent(&self) -> Option<u32> {
        self.stack.iter().rev().find_map(|o| o.id)
    }

    /// Closes every span opened at or above `token`'s depth (RAII guards
    /// normally close exactly one; missed ends are healed here).
    fn end(&mut self, token: SpanToken) {
        let now = self.epoch.elapsed();
        while self.stack.len() > token.depth {
            let open = self.stack.pop().expect("stack len checked");
            let dur = now.saturating_sub(open.start);
            if let Some(id) = open.id {
                self.spans[id as usize].dur = dur;
            }
            self.bump_agg(open.name, dur);
        }
    }

    fn end_all(&mut self) {
        self.end(SpanToken { depth: 0 });
    }

    fn bump_agg(&mut self, name: &'static str, dur: Duration) {
        match self.agg.iter_mut().find(|(n, _, _)| *n == name) {
            Some((_, total, count)) => {
                *total += dur;
                *count += 1;
            }
            None => self.agg.push((name, dur, 1)),
        }
    }

    fn merge_child(&mut self, child: &mut Inner) {
        child.end_all();
        for c in Counter::ALL {
            match c.policy() {
                MergePolicy::Add => self.counters[c.idx()] += child.counters[c.idx()],
                MergePolicy::Max => {
                    self.counters[c.idx()] = self.counters[c.idx()].max(child.counters[c.idx()])
                }
            }
        }
        for &(name, total, count) in &child.agg {
            match self.agg.iter_mut().find(|(n, _, _)| *n == name) {
                Some((_, t, c)) => {
                    *t += total;
                    *c += count;
                }
                None => self.agg.push((name, total, count)),
            }
        }
        // Spans keep child order; roots are adopted by whatever span is
        // open here. Offsets are rebased onto this recorder's epoch (forks
        // share the epoch, so the delta is zero for the worker case).
        let delta = child.epoch.saturating_duration_since(self.epoch);
        let adopt_parent = self.current_parent();
        let mut map: Vec<Option<u32>> = Vec::with_capacity(child.spans.len());
        for span in child.spans.drain(..) {
            if self.spans.len() >= self.cap {
                self.dropped += 1;
                map.push(None);
                continue;
            }
            let parent = match span.parent {
                Some(p) => map[p as usize].or(adopt_parent),
                None => adopt_parent,
            };
            self.spans.push(SpanRec {
                start: span.start + delta,
                parent,
                ..span
            });
            map.push(Some((self.spans.len() - 1) as u32));
        }
        self.dropped += child.dropped;
    }
}

/// Handle returned by [`Recorder::begin`]; closing it (with
/// [`Recorder::end`]) also closes any span left open underneath it.
#[derive(Debug)]
#[must_use = "an unclosed span records no duration"]
pub struct SpanToken {
    depth: usize,
}

/// A structured-event recorder: typed counters plus a bounded span tree.
///
/// `Recorder::default()` is the disabled handle — every operation is a
/// single branch and records nothing. Workers [`fork`](Recorder::fork)
/// their own recorder and the parent folds them back with
/// [`merge_child`](Recorder::merge_child) in index order, which keeps
/// counter totals deterministic for any worker count.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Option<Box<Inner>>,
}

impl Recorder {
    /// An enabled recorder with the default span capacity.
    pub fn new() -> Self {
        Recorder::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled recorder retaining at most `cap` span events (counters
    /// and per-name aggregates are never truncated).
    pub fn with_capacity(cap: usize) -> Self {
        Recorder {
            inner: Some(Inner::new(Instant::now(), cap)),
        }
    }

    /// The no-op handle: every operation is one branch.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// An empty recorder sharing this one's epoch, capacity and
    /// enabledness — the per-worker handle for `std::thread::scope`
    /// fan-outs. Merge it back with [`Recorder::merge_child`].
    pub fn fork(&self) -> Recorder {
        Recorder {
            inner: self.inner.as_ref().map(|i| Inner::new(i.epoch, i.cap)),
        }
    }

    /// Records `v` into `c` under the counter's [`MergePolicy`].
    pub fn record(&mut self, c: Counter, v: u64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.record(c, v);
        }
    }

    /// Current value of `c` (0 when disabled).
    pub fn counter(&self, c: Counter) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.counters[c.idx()])
    }

    /// Opens a span. Close it with [`Recorder::end`].
    pub fn begin(&mut self, name: &'static str) -> SpanToken {
        match self.inner.as_mut() {
            Some(inner) => inner.begin(name),
            None => SpanToken { depth: usize::MAX },
        }
    }

    /// Closes the span opened by `token` (and anything still open below
    /// it).
    pub fn end(&mut self, token: SpanToken) {
        if token.depth == usize::MAX {
            return;
        }
        if let Some(inner) = self.inner.as_mut() {
            inner.end(token);
        }
    }

    /// Folds a worker recorder into this one: counters merge under their
    /// policies, per-name aggregates add, and the child's span tree is
    /// appended with its roots adopted by this recorder's currently open
    /// span. Call in worker-index order to keep traces deterministic.
    pub fn merge_child(&mut self, mut child: Recorder) {
        if let (Some(inner), Some(child_inner)) = (self.inner.as_mut(), child.inner.as_mut()) {
            inner.merge_child(child_inner);
        }
    }

    /// The retained span events, in recording order.
    pub fn spans(&self) -> &[SpanRec] {
        self.inner.as_ref().map_or(&[], |i| &i.spans)
    }

    /// Exact total wall time across every completed span named `name`
    /// (unaffected by the span-event bound).
    pub fn span_total(&self, name: &str) -> Duration {
        self.inner.as_ref().map_or(Duration::ZERO, |i| {
            i.agg
                .iter()
                .find(|(n, _, _)| *n == name)
                .map_or(Duration::ZERO, |(_, total, _)| *total)
        })
    }

    /// Exact number of completed spans named `name`.
    pub fn span_count(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.agg
                .iter()
                .find(|(n, _, _)| *n == name)
                .map_or(0, |(_, _, count)| *count)
        })
    }

    /// Span events discarded by the retention bound.
    pub fn dropped_spans(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped)
    }

    /// Installs this recorder as the thread's sink for the free functions
    /// [`span`], [`add`] and [`fork_local`]; the returned guard restores
    /// the previous sink (and this recorder's buffers) on drop.
    pub fn install(&mut self) -> Installed<'_> {
        let prev = SINK.replace(self.inner.take());
        Installed { rec: self, prev }
    }

    /// The machine-readable JSON trace (see [`export`] for the schema).
    pub fn to_json(&self) -> String {
        export::to_json(self)
    }

    /// The collapsed-stack profile (`a;b;c <self-nanoseconds>` per line),
    /// consumable by standard flamegraph tooling.
    pub fn to_folded(&self) -> String {
        export::to_folded(self)
    }
}

/// A cloneable, thread-safe recorder handle — the shape option structs
/// (e.g. `PrepareOptions::recorder`) carry so a caller can hand one
/// recorder to a pipeline and read the trace back afterwards.
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder(Arc<Mutex<Recorder>>);

impl SharedRecorder {
    /// A shared handle around an enabled recorder.
    pub fn new() -> Self {
        SharedRecorder(Arc::new(Mutex::new(Recorder::new())))
    }

    /// Locks the underlying recorder.
    pub fn lock(&self) -> MutexGuard<'_, Recorder> {
        self.0.lock().expect("recorder lock poisoned")
    }

    /// Takes the recorder out, leaving a disabled one behind.
    pub fn take(&self) -> Recorder {
        std::mem::take(&mut *self.lock())
    }
}

impl fmt::Display for SharedRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rec = self.lock();
        write!(
            f,
            "recorder: {} spans, {} dropped",
            rec.spans().len(),
            rec.dropped_spans()
        )
    }
}

thread_local! {
    static SINK: RefCell<Option<Box<Inner>>> = const { RefCell::new(None) };
}

/// Guard of [`Recorder::install`]: moves the recorder's buffers back out
/// of the thread-local sink on drop.
#[derive(Debug)]
pub struct Installed<'a> {
    rec: &'a mut Recorder,
    prev: Option<Box<Inner>>,
}

impl Drop for Installed<'_> {
    fn drop(&mut self) {
        self.rec.inner = SINK.replace(self.prev.take());
    }
}

/// Whether a recorder is installed on this thread.
pub fn active() -> bool {
    SINK.with_borrow(|s| s.is_some())
}

/// Records `v` into `c` on the thread's installed recorder, if any.
#[inline]
pub fn add(c: Counter, v: u64) {
    SINK.with_borrow_mut(|s| {
        if let Some(inner) = s.as_mut() {
            inner.record(c, v);
        }
    });
}

/// Opens a span on the thread's installed recorder; the returned guard
/// closes it on drop. A no-op (no time read) when nothing is installed.
pub fn span(name: &'static str) -> Span {
    Span {
        token: SINK.with_borrow_mut(|s| s.as_mut().map(|inner| inner.begin(name))),
    }
}

/// RAII guard of [`span`].
#[derive(Debug)]
pub struct Span {
    token: Option<SpanToken>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            SINK.with_borrow_mut(|s| {
                if let Some(inner) = s.as_mut() {
                    inner.end(token);
                }
            });
        }
    }
}

/// A fork of the thread's installed recorder (disabled when none is) —
/// the worker handle to move into a scoped thread. Fold the workers back
/// with [`adopt`] in spawn order.
pub fn fork_local() -> Recorder {
    SINK.with_borrow(|s| match s.as_ref() {
        Some(inner) => Recorder {
            inner: Some(Inner::new(inner.epoch, inner.cap)),
        },
        None => Recorder::disabled(),
    })
}

/// Merges worker recorders into the thread's installed sink, in the order
/// given (pass them in worker-index order for deterministic traces).
pub fn adopt(children: impl IntoIterator<Item = Recorder>) {
    SINK.with_borrow_mut(|s| {
        for mut child in children {
            if let (Some(inner), Some(child_inner)) = (s.as_mut(), child.inner.as_mut()) {
                inner.merge_child(child_inner);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_policies_sane() {
        for (i, a) in Counter::ALL.iter().enumerate() {
            for b in &Counter::ALL[i + 1..] {
                assert_ne!(a.name(), b.name(), "{a:?} vs {b:?}");
            }
        }
        assert_eq!(Counter::Workers.policy(), MergePolicy::Max);
        assert_eq!(Counter::Evaluations.policy(), MergePolicy::Add);
        assert_eq!(Counter::ALL.len(), COUNTER_COUNT);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let mut rec = Recorder::new();
        let root = rec.begin("a");
        let inner = rec.begin("b");
        rec.end(inner);
        let inner2 = rec.begin("b");
        rec.end(inner2);
        rec.end(root);
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        assert_eq!(rec.span_count("b"), 2);
        assert!(rec.span_total("a") >= rec.span_total("b"));
    }

    #[test]
    fn end_heals_missed_closes() {
        let mut rec = Recorder::new();
        let root = rec.begin("a");
        let _leaked = rec.begin("b"); // never explicitly ended
        rec.end(root);
        assert_eq!(rec.span_count("a"), 1);
        assert_eq!(rec.span_count("b"), 1, "root end closes the leak");
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut rec = Recorder::disabled();
        let t = rec.begin("a");
        rec.record(Counter::Evaluations, 5);
        rec.end(t);
        assert!(!rec.is_enabled());
        assert_eq!(rec.counter(Counter::Evaluations), 0);
        assert!(rec.spans().is_empty());
        // Fork of a disabled recorder stays disabled.
        assert!(!rec.fork().is_enabled());
    }

    #[test]
    fn merge_child_applies_policies_and_adopts_roots() {
        let mut parent = Recorder::new();
        parent.record(Counter::Workers, 2);
        parent.record(Counter::MemoHits, 1);
        let root = parent.begin("run");
        let mut child = parent.fork();
        child.record(Counter::Workers, 8);
        child.record(Counter::MemoHits, 3);
        let t = child.begin("stage");
        child.end(t);
        parent.merge_child(child);
        parent.end(root);
        assert_eq!(parent.counter(Counter::Workers), 8, "max policy");
        assert_eq!(parent.counter(Counter::MemoHits), 4, "add policy");
        let spans = parent.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].name, "stage");
        assert_eq!(spans[1].parent, Some(0), "child root adopted under run");
    }

    #[test]
    fn merge_closes_childs_open_spans() {
        let mut parent = Recorder::new();
        let mut child = parent.fork();
        let _open = child.begin("stage");
        parent.merge_child(child);
        assert_eq!(parent.span_count("stage"), 1);
    }

    #[test]
    fn ring_bound_drops_events_but_keeps_aggregates() {
        let mut rec = Recorder::with_capacity(2);
        for _ in 0..5 {
            let t = rec.begin("s");
            rec.end(t);
        }
        assert_eq!(rec.spans().len(), 2);
        assert_eq!(rec.dropped_spans(), 3);
        assert_eq!(rec.span_count("s"), 5, "aggregate stays exact");
    }

    #[test]
    fn thread_local_sink_routes_free_functions() {
        assert!(!active());
        span("ignored"); // no sink: a pure no-op
        add(Counter::DiskHits, 1);
        let mut rec = Recorder::new();
        {
            let _g = rec.install();
            assert!(active());
            let _s = span("outer");
            add(Counter::DiskHits, 2);
        }
        assert!(!active());
        assert_eq!(rec.counter(Counter::DiskHits), 2);
        assert_eq!(rec.span_count("outer"), 1);
    }

    #[test]
    fn install_restores_previous_sink() {
        let mut outer = Recorder::new();
        {
            let _g1 = outer.install();
            add(Counter::DiskHits, 1);
            let mut inner = Recorder::new();
            {
                let _g2 = inner.install();
                add(Counter::DiskHits, 10);
            }
            add(Counter::DiskHits, 1);
            assert_eq!(inner.counter(Counter::DiskHits), 10);
        }
        assert_eq!(outer.counter(Counter::DiskHits), 2);
    }

    #[test]
    fn fork_local_and_adopt_compose_with_threads() {
        let mut rec = Recorder::new();
        let root = rec.begin("run");
        {
            let _g = rec.install();
            let children: Vec<Recorder> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|i| {
                        let mut worker = fork_local();
                        s.spawn(move || {
                            {
                                let _wg = worker.install();
                                let _s = span("shard");
                                add(Counter::ConeGateEvals, i + 1);
                            }
                            worker
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker"))
                    .collect()
            });
            adopt(children);
        }
        rec.end(root);
        assert_eq!(rec.counter(Counter::ConeGateEvals), 1 + 2 + 3 + 4);
        assert_eq!(rec.span_count("shard"), 4);
        // Every shard is a child of the run span.
        for s in rec.spans().iter().filter(|s| s.name == "shard") {
            assert_eq!(s.parent, Some(0));
        }
    }

    #[test]
    fn shared_recorder_take_leaves_disabled() {
        let shared = SharedRecorder::new();
        shared.lock().record(Counter::Instances, 3);
        let rec = shared.take();
        assert_eq!(rec.counter(Counter::Instances), 3);
        assert!(!shared.lock().is_enabled());
        assert!(shared.to_string().contains("0 spans"));
    }
}
