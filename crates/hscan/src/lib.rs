//! HSCAN: high-level scan-chain construction over existing RTL paths.
//!
//! HSCAN (Bhattacharya & Dey, VTS'96) is the paper's core-level DFT
//! technique: instead of replacing every flip-flop with a scan flip-flop, it
//! connects registers into *parallel scan chains* by reusing the mux and
//! direct paths that already exist between them (Fig. 1 of the paper),
//! adding a test multiplexer only where no path exists. Because the result
//! is a full-scan structure, combinational ATPG suffices — and because the
//! chains are register-wide, a test vector is shifted in `depth` clock
//! cycles rather than one cycle per flip-flop.
//!
//! [`insert_hscan`] builds the chains for a [`Core`](socet_rtl::Core) and reports:
//!
//! * the chain structure ([`ScanChain`], [`ChainLink`]) and which existing
//!   connections were claimed for scan — the transparency engine reuses
//!   exactly these as its preferred edges;
//! * the *sequential depth* (longest chain, in registers), which converts a
//!   combinational vector count into HSCAN test length:
//!   `vectors × (depth + 1)` — the paper's 105 full-scan vectors at depth 4
//!   become 525 HSCAN vectors;
//! * the HSCAN area overhead as an [`AreaReport`](socet_cells::AreaReport).
//!
//! # Examples
//!
//! ```
//! use socet_rtl::{CoreBuilder, Direction};
//! use socet_hscan::insert_hscan;
//! use socet_cells::DftCosts;
//!
//! let mut b = CoreBuilder::new("pipe");
//! let i = b.port("i", Direction::In, 8)?;
//! let o = b.port("o", Direction::Out, 8)?;
//! let r1 = b.register("r1", 8)?;
//! let r2 = b.register("r2", 8)?;
//! b.connect_port_to_reg(i, r1)?;
//! b.connect_reg_to_reg(r1, r2)?;
//! b.connect_reg_to_port(r2, o)?;
//! let core = b.build()?;
//! let hscan = insert_hscan(&core, &DftCosts::default());
//! assert_eq!(hscan.chains().len(), 1);
//! assert_eq!(hscan.sequential_depth(), 2);
//! assert_eq!(hscan.test_length(105), 105 * 3);
//! # Ok::<(), socet_rtl::RtlError>(())
//! ```

pub mod chain;
pub mod codec;

pub use chain::{insert_hscan, ChainLink, ChainVia, HscanResult, ScanChain};
pub use codec::{decode_hscan, encode_hscan};

#[cfg(test)]
mod tests {
    use super::*;
    use socet_cells::DftCosts;
    use socet_rtl::{CoreBuilder, Direction};

    #[test]
    fn crate_doc_example() {
        let mut b = CoreBuilder::new("pipe");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_reg_to_reg(r1, r2).unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        let core = b.build().unwrap();
        let hscan = insert_hscan(&core, &DftCosts::default());
        assert_eq!(hscan.sequential_depth(), 2);
    }
}
