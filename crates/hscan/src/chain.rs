//! Greedy HSCAN chain construction and cost accounting.

use socet_cells::{AreaReport, CellKind, DftCosts};
use socet_rtl::{ConnectionId, Core, Direction, PortId, RegisterId, RtlNode, Via};
use std::collections::HashSet;
use std::fmt;

/// How one hop of a scan chain is realized, deciding its HSCAN cost
/// (Fig. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainVia {
    /// Reuses the select-1 leg of an existing multiplexer path: two extra
    /// gates (Fig. 1(a)).
    ExistingMux {
        /// The reused connection.
        connection: ConnectionId,
        /// The mux leg the connection occupies.
        leg: u8,
    },
    /// Reuses an existing direct connection: one OR gate at the destination
    /// register's load signal.
    ExistingDirect {
        /// The reused connection.
        connection: ConnectionId,
    },
    /// No existing path: a test multiplexer integrated into the destination
    /// register's flip-flops (scan flip-flops).
    TestMux,
}

impl ChainVia {
    /// The existing connection reused by this hop, if any.
    pub fn connection(&self) -> Option<ConnectionId> {
        match self {
            ChainVia::ExistingMux { connection, .. } => Some(*connection),
            ChainVia::ExistingDirect { connection } => Some(*connection),
            ChainVia::TestMux => None,
        }
    }
}

/// One link of a scan chain: how test data enters `reg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainLink {
    /// The register this link loads.
    pub reg: RegisterId,
    /// How the scan data reaches it.
    pub via: ChainVia,
}

/// An ordered scan chain from a core input (or a fork off another chain)
/// to a core output.
///
/// HSCAN chains may *branch*: when a register already on a chain has an
/// existing path to an unchained register, a new chain can fork there
/// (Fig. 4(a) of the paper, where `IR` feeds both the accumulator chain and
/// the `MAR page` chain). A forked chain scans in through its parent's
/// prefix, so its registers sit deeper than the fork point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChain {
    /// The input port feeding the chain head (through the parent prefix
    /// when forked).
    pub scan_in: PortId,
    /// For a forked chain, the already-chained register whose existing path
    /// feeds this chain's head.
    pub fork_parent: Option<RegisterId>,
    /// How the head register is fed.
    pub head_via: ChainVia,
    /// The registers of the chain, head first.
    pub links: Vec<ChainLink>,
    /// The output port observing the chain tail.
    pub scan_out: PortId,
    /// How the tail register reaches `scan_out`.
    pub tail_via: ChainVia,
}

impl ScanChain {
    /// Chain length in registers, not counting any parent prefix.
    pub fn depth(&self) -> usize {
        self.links.len()
    }
}

impl fmt::Display for ScanChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ->", self.scan_in)?;
        for link in &self.links {
            write!(f, " {} ->", link.reg)?;
        }
        write!(f, " {}", self.scan_out)
    }
}

/// The result of HSCAN insertion on one core.
#[derive(Debug, Clone)]
pub struct HscanResult {
    pub(crate) chains: Vec<ScanChain>,
    pub(crate) area: AreaReport,
    pub(crate) scan_connections: HashSet<ConnectionId>,
    pub(crate) max_depth: usize,
}

impl HscanResult {
    /// The scan chains, in construction order.
    pub fn chains(&self) -> &[ScanChain] {
        &self.chains
    }

    /// The HSCAN area overhead (configuration gates and scan muxes only).
    pub fn area(&self) -> &AreaReport {
        &self.area
    }

    /// Overhead in cells under `lib`.
    pub fn overhead_cells(&self, lib: &socet_cells::CellLibrary) -> u64 {
        self.area.cells(lib)
    }

    /// Sequential depth: the longest root-to-leaf register path over all
    /// chains (fork prefixes included). Shifting one test vector in (or a
    /// response out) takes this many cycles.
    pub fn sequential_depth(&self) -> usize {
        self.max_depth
    }

    /// Existing connections claimed as scan paths. The transparency engine
    /// prefers exactly these edges ("at first, we only use the HSCAN edges
    /// during this search", §4).
    pub fn scan_connections(&self) -> &HashSet<ConnectionId> {
        &self.scan_connections
    }

    /// HSCAN test length in vectors-on-the-chip for `vectors` combinational
    /// patterns: each pattern costs `depth` shift cycles plus one apply
    /// cycle, and shift-out overlaps the next shift-in.
    ///
    /// Matches the paper's example: 105 full-scan vectors at depth 4 →
    /// 525 HSCAN vectors.
    pub fn test_length(&self, vectors: usize) -> usize {
        vectors * (self.sequential_depth() + 1)
    }
}

impl fmt::Display for HscanResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hscan: {} chains, depth {}, overhead {}",
            self.chains.len(),
            self.sequential_depth(),
            self.area
        )
    }
}

/// Builds HSCAN chains for `core`.
///
/// The construction is greedy, mirroring the flavour of the original HSCAN
/// heuristic:
///
/// 1. start a chain at an unchained register directly loadable from an input
///    port (reusing that connection), preferring registers that are *only*
///    reachable from inputs (chain heads);
/// 2. extend the chain through existing lossless register-to-register
///    connections to unchained registers, preferring direct paths (1 OR
///    gate) over mux paths (2 gates);
/// 3. when stuck, terminate at an output port via an existing connection if
///    one exists, else a test mux; remaining registers start new chains
///    (fed by test muxes from the least-loaded input).
///
/// The paper's running example holds by construction: every register ends up
/// in exactly one chain, so the core becomes a full-scan circuit testable
/// with combinational ATPG.
pub fn insert_hscan(core: &Core, costs: &DftCosts) -> HscanResult {
    let _span = socet_obs::span(socet_obs::names::HSCAN);
    let mut unchained: HashSet<RegisterId> = core.register_ids().collect();
    let mut chains: Vec<ScanChain> = Vec::new();
    let mut area = AreaReport::new();
    let mut scan_connections = HashSet::new();
    let inputs = core.input_ports();
    let outputs = core.output_ports();
    // Scan depth of each chained register (1 = loaded directly from an
    // input) and the input its chain scans in from.
    let mut reg_depth: std::collections::HashMap<RegisterId, usize> =
        std::collections::HashMap::new();
    let mut reg_scan_in: std::collections::HashMap<RegisterId, PortId> =
        std::collections::HashMap::new();

    let charge = |area: &mut AreaReport, via: &ChainVia, width: u16| match via {
        ChainVia::ExistingMux { .. } => area.tally(CellKind::And2, costs.hscan_mux_reuse_gates),
        ChainVia::ExistingDirect { .. } => area.tally(CellKind::Or2, costs.hscan_direct_or_gates),
        ChainVia::TestMux => area.tally(
            CellKind::Mux2,
            costs.hscan_test_mux_per_bit * u64::from(width),
        ),
    };

    // Deterministic iteration: registers in declaration order.
    while !unchained.is_empty() {
        // 1. Chain head, in preference order:
        //    (a) a register fed by an input port through an existing
        //        lossless connection;
        //    (b) a register fed by an already-chained register — a *fork*
        //        off that chain (Fig. 4(a));
        //    (c) any register, fed by a test mux from the first input.
        let mut head: Option<(RegisterId, PortId, ChainVia, Option<RegisterId>, usize)> = None;
        'outer: for reg in core.register_ids() {
            if !unchained.contains(&reg) {
                continue;
            }
            for (ci, c) in core.connections().iter().enumerate() {
                if c.dst.node == RtlNode::Reg(reg) && c.via.is_lossless() {
                    if let RtlNode::Port(p) = c.src.node {
                        if core.port(p).direction() == Direction::In {
                            let via = via_of(c.via, ci);
                            head = Some((reg, p, via, None, 1));
                            break 'outer;
                        }
                    }
                }
            }
        }
        if head.is_none() {
            'fork: for reg in core.register_ids() {
                if !unchained.contains(&reg) {
                    continue;
                }
                for (ci, c) in core.connections().iter().enumerate() {
                    if c.dst.node == RtlNode::Reg(reg) && c.via.is_lossless() {
                        if let RtlNode::Reg(parent) = c.src.node {
                            if let Some(&pd) = reg_depth.get(&parent) {
                                let via = via_of(c.via, ci);
                                let scan_in = reg_scan_in[&parent];
                                head = Some((reg, scan_in, via, Some(parent), pd + 1));
                                break 'fork;
                            }
                        }
                    }
                }
            }
        }
        let (head_reg, scan_in, head_via, fork_parent, head_depth) = match head {
            Some(h) => h,
            None => {
                // Nothing reachable: feed the first unchained register by a
                // test mux from the first input.
                let reg = core
                    .register_ids()
                    .find(|r| unchained.contains(r))
                    .expect("unchained is non-empty");
                let p = *inputs.first().expect("core has at least one input");
                (reg, p, ChainVia::TestMux, None, 1)
            }
        };
        unchained.remove(&head_reg);
        reg_depth.insert(head_reg, head_depth);
        reg_scan_in.insert(head_reg, scan_in);
        match (fork_parent, &head_via) {
            (Some(parent), _) => claim_all(
                &mut scan_connections,
                core,
                RtlNode::Reg(parent),
                RtlNode::Reg(head_reg),
            ),
            (None, ChainVia::TestMux) => {}
            (None, _) => {
                // A head register loads its full width from its input-port
                // slices; all of them are scan-in paths.
                for (ci, c) in core.connections().iter().enumerate() {
                    if c.dst.node == RtlNode::Reg(head_reg) && c.via.is_lossless() {
                        if let RtlNode::Port(p) = c.src.node {
                            if core.port(p).direction() == Direction::In {
                                scan_connections.insert(ConnectionId::from_index(ci));
                            }
                        }
                    }
                }
            }
        }
        charge(&mut area, &head_via, core.register(head_reg).width());
        if let Some(ci) = head_via.connection() {
            scan_connections.insert(ci);
        }
        let mut links = vec![ChainLink {
            reg: head_reg,
            via: head_via,
        }];

        // 2. Extend through existing paths.
        let mut current = head_reg;
        let mut depth = head_depth;
        loop {
            let mut next: Option<(RegisterId, ChainVia)> = None;
            // Prefer direct connections (1 gate) over mux paths (2 gates).
            for want_direct in [true, false] {
                for (ci, c) in core.connections().iter().enumerate() {
                    if c.src.node != RtlNode::Reg(current) || !c.via.is_lossless() {
                        continue;
                    }
                    let RtlNode::Reg(dst) = c.dst.node else {
                        continue;
                    };
                    if !unchained.contains(&dst) {
                        continue;
                    }
                    let is_direct = matches!(c.via, Via::Direct);
                    if is_direct == want_direct {
                        next = Some((dst, via_of(c.via, ci)));
                        break;
                    }
                }
                if next.is_some() {
                    break;
                }
            }
            match next {
                Some((reg, via)) => {
                    unchained.remove(&reg);
                    depth += 1;
                    reg_depth.insert(reg, depth);
                    reg_scan_in.insert(reg, scan_in);
                    charge(&mut area, &via, core.register(reg).width());
                    claim_all(
                        &mut scan_connections,
                        core,
                        RtlNode::Reg(current),
                        RtlNode::Reg(reg),
                    );
                    if let Some(ci) = via.connection() {
                        scan_connections.insert(ci);
                    }
                    links.push(ChainLink { reg, via });
                    current = reg;
                }
                None => break,
            }
        }

        // 3. Terminate at an output port.
        let mut tail: Option<(PortId, ChainVia)> = None;
        for (ci, c) in core.connections().iter().enumerate() {
            if c.src.node != RtlNode::Reg(current) || !c.via.is_lossless() {
                continue;
            }
            if let RtlNode::Port(p) = c.dst.node {
                if core.port(p).direction() == Direction::Out {
                    tail = Some((p, via_of(c.via, ci)));
                    break;
                }
            }
        }
        let (scan_out, tail_via) = match tail {
            Some(t) => t,
            None => {
                let p = *outputs.first().expect("core has at least one output");
                (p, ChainVia::TestMux)
            }
        };
        // Existing paths to outputs are free (the port already observes the
        // register); only a test mux at the output costs cells.
        if tail_via == ChainVia::TestMux {
            charge(&mut area, &tail_via, core.port(scan_out).width());
        } else if let Some(ci) = tail_via.connection() {
            scan_connections.insert(ci);
        }
        chains.push(ScanChain {
            scan_in,
            fork_parent,
            head_via,
            links,
            scan_out,
            tail_via,
        });
    }

    let max_depth = reg_depth.values().copied().max().unwrap_or(0);
    socet_obs::add(
        socet_obs::Counter::ScanCellsInserted,
        chains.iter().map(|c| c.links.len() as u64).sum(),
    );
    HscanResult {
        chains,
        area,
        scan_connections,
        max_depth,
    }
}

/// Claims every lossless connection `src -> dst`: a register is loaded
/// through *all* its slice connections from the source, so the whole
/// parallel path belongs to the scan structure.
fn claim_all(
    scan_connections: &mut HashSet<ConnectionId>,
    core: &Core,
    src: RtlNode,
    dst: RtlNode,
) {
    for (ci, c) in core.connections().iter().enumerate() {
        if c.src.node == src && c.dst.node == dst && c.via.is_lossless() {
            scan_connections.insert(ConnectionId::from_index(ci));
        }
    }
}

fn via_of(via: Via, ci: usize) -> ChainVia {
    let connection = connection_id(ci);
    match via {
        Via::MuxPath { leg } => ChainVia::ExistingMux { connection, leg },
        _ => ChainVia::ExistingDirect { connection },
    }
}

fn connection_id(i: usize) -> ConnectionId {
    ConnectionId::from_index(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_cells::CellLibrary;
    use socet_rtl::CoreBuilder;

    fn pipeline(n: usize) -> Core {
        let mut b = CoreBuilder::new("pipe");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let regs: Vec<RegisterId> = (0..n)
            .map(|k| b.register(&format!("r{k}"), 8).unwrap())
            .collect();
        b.connect_port_to_reg(i, regs[0]).unwrap();
        for w in regs.windows(2) {
            b.connect_reg_to_reg(w[0], w[1]).unwrap();
        }
        b.connect_reg_to_port(regs[n - 1], o).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pipeline_forms_single_chain() {
        let core = pipeline(4);
        let h = insert_hscan(&core, &DftCosts::default());
        assert_eq!(h.chains().len(), 1);
        assert_eq!(h.sequential_depth(), 4);
        // Head + 3 hops, all existing direct: 4 OR gates, no muxes.
        let lib = CellLibrary::generic_08um();
        assert_eq!(h.overhead_cells(&lib), 4);
        assert_eq!(h.scan_connections().len(), 5); // 4 loads + tail observe
    }

    #[test]
    fn isolated_register_gets_test_mux() {
        let mut b = CoreBuilder::new("iso");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        let island = b.register("island", 8).unwrap();
        let fu = b.functional_unit("f", socet_rtl::FuKind::Logic, 8).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        // island only talks to the FU: no lossless paths.
        b.connect_reg_to_fu(island, fu).unwrap();
        b.connect_fu_to_reg(fu, island).unwrap();
        let core = b.build().unwrap();
        let h = insert_hscan(&core, &DftCosts::default());
        assert_eq!(h.chains().len(), 2);
        let island_chain = h
            .chains()
            .iter()
            .find(|c| c.links[0].reg == island)
            .unwrap();
        assert_eq!(island_chain.head_via, ChainVia::TestMux);
        assert_eq!(island_chain.tail_via, ChainVia::TestMux);
    }

    #[test]
    fn mux_paths_cost_two_gates() {
        let mut b = CoreBuilder::new("m");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_mux(RtlNode::Reg(r1), RtlNode::Reg(r2), 0)
            .unwrap();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(r2), 1)
            .unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        let core = b.build().unwrap();
        let h = insert_hscan(&core, &DftCosts::default());
        let lib = CellLibrary::generic_08um();
        // head (direct, 1 OR) + hop r1->r2 (mux, 2 gates) = 3 cells.
        assert_eq!(h.overhead_cells(&lib), 3);
        assert_eq!(h.sequential_depth(), 2);
    }

    #[test]
    fn every_register_lands_in_exactly_one_chain() {
        let core = pipeline(7);
        let h = insert_hscan(&core, &DftCosts::default());
        let mut seen = HashSet::new();
        for chain in h.chains() {
            for link in &chain.links {
                assert!(seen.insert(link.reg), "{} chained twice", link.reg);
            }
        }
        assert_eq!(seen.len(), core.registers().len());
    }

    #[test]
    fn forked_chains_record_their_parent_and_depth() {
        // r_main is input-fed; r_side hangs off r_main only.
        let mut b = CoreBuilder::new("fork");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let o2 = b.port("o2", Direction::Out, 8).unwrap();
        let r_main = b.register("r_main", 8).unwrap();
        let r_next = b.register("r_next", 8).unwrap();
        let r_side = b.register("r_side", 8).unwrap();
        b.connect_port_to_reg(i, r_main).unwrap();
        b.connect_reg_to_reg(r_main, r_next).unwrap();
        b.connect_mux(RtlNode::Reg(r_main), RtlNode::Reg(r_side), 0)
            .unwrap();
        b.connect_reg_to_port(r_next, o).unwrap();
        b.connect_reg_to_port(r_side, o2).unwrap();
        let core = b.build().unwrap();
        let h = insert_hscan(&core, &DftCosts::default());
        let fork = h
            .chains()
            .iter()
            .find(|c| c.fork_parent.is_some())
            .expect("side register forks off the main chain");
        assert_eq!(fork.fork_parent, Some(r_main));
        assert_eq!(fork.links[0].reg, r_side);
        // Depth: r_main(1) -> r_side(2): overall depth stays 2.
        assert_eq!(h.sequential_depth(), 2);
    }

    #[test]
    fn test_length_matches_paper_formula() {
        let core = pipeline(4);
        let h = insert_hscan(&core, &DftCosts::default());
        assert_eq!(h.test_length(105), 525);
    }

    #[test]
    fn display_forms() {
        let core = pipeline(2);
        let h = insert_hscan(&core, &DftCosts::default());
        let s = h.chains()[0].to_string();
        assert!(s.contains("->"), "{s}");
        assert!(h.to_string().contains("depth 2"));
    }
}
