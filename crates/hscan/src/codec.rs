//! Binary codec for [`HscanResult`] — the scan-structure slice of a
//! prepared-core artifact.
//!
//! The only subtlety is `scan_connections`: it lives in a `HashSet`, whose
//! iteration order is nondeterministic, so it is encoded *sorted by index*.
//! That keeps the encoded bytes a pure function of the value — the property
//! the pipeline's byte-for-byte determinism tests rely on.

use crate::chain::{ChainLink, ChainVia, HscanResult, ScanChain};
use socet_cells::{decode_area_report, encode_area_report, CodecError, Dec, Enc};
use socet_rtl::{ConnectionId, PortId, RegisterId};
use std::collections::HashSet;

fn put_via(via: &ChainVia, e: &mut Enc) {
    match via {
        ChainVia::ExistingMux { connection, leg } => {
            e.put_u8(0);
            e.put_u32(connection.index() as u32);
            e.put_u8(*leg);
        }
        ChainVia::ExistingDirect { connection } => {
            e.put_u8(1);
            e.put_u32(connection.index() as u32);
        }
        ChainVia::TestMux => e.put_u8(2),
    }
}

fn get_via(d: &mut Dec) -> Result<ChainVia, CodecError> {
    Ok(match d.get_u8()? {
        0 => ChainVia::ExistingMux {
            connection: ConnectionId::from_index(d.get_u32()? as usize),
            leg: d.get_u8()?,
        },
        1 => ChainVia::ExistingDirect {
            connection: ConnectionId::from_index(d.get_u32()? as usize),
        },
        2 => ChainVia::TestMux,
        _ => return Err(CodecError::Corrupt("chain via tag out of range")),
    })
}

fn put_chain(chain: &ScanChain, e: &mut Enc) {
    e.put_u32(chain.scan_in.index() as u32);
    match chain.fork_parent {
        Some(r) => {
            e.put_bool(true);
            e.put_u32(r.index() as u32);
        }
        None => e.put_bool(false),
    }
    put_via(&chain.head_via, e);
    e.put_usize(chain.links.len());
    for link in &chain.links {
        e.put_u32(link.reg.index() as u32);
        put_via(&link.via, e);
    }
    e.put_u32(chain.scan_out.index() as u32);
    put_via(&chain.tail_via, e);
}

fn get_chain(d: &mut Dec) -> Result<ScanChain, CodecError> {
    let scan_in = PortId::from_index(d.get_u32()? as usize);
    let fork_parent = if d.get_bool()? {
        Some(RegisterId::from_index(d.get_u32()? as usize))
    } else {
        None
    };
    let head_via = get_via(d)?;
    let link_count = d.get_usize()?;
    let mut links = Vec::with_capacity(link_count.min(1 << 20));
    for _ in 0..link_count {
        let reg = RegisterId::from_index(d.get_u32()? as usize);
        links.push(ChainLink {
            reg,
            via: get_via(d)?,
        });
    }
    let scan_out = PortId::from_index(d.get_u32()? as usize);
    let tail_via = get_via(d)?;
    Ok(ScanChain {
        scan_in,
        fork_parent,
        head_via,
        links,
        scan_out,
        tail_via,
    })
}

/// Encodes `hscan` into `e`.
pub fn encode_hscan(hscan: &HscanResult, e: &mut Enc) {
    e.put_usize(hscan.chains.len());
    for chain in &hscan.chains {
        put_chain(chain, e);
    }
    encode_area_report(&hscan.area, e);
    let mut claimed: Vec<usize> = hscan.scan_connections.iter().map(|c| c.index()).collect();
    claimed.sort_unstable();
    e.put_usize(claimed.len());
    for i in claimed {
        e.put_u32(i as u32);
    }
    e.put_usize(hscan.max_depth);
}

/// Decodes a result written by [`encode_hscan`].
pub fn decode_hscan(d: &mut Dec) -> Result<HscanResult, CodecError> {
    let chain_count = d.get_usize()?;
    let mut chains = Vec::with_capacity(chain_count.min(1 << 16));
    for _ in 0..chain_count {
        chains.push(get_chain(d)?);
    }
    let area = decode_area_report(d)?;
    let claimed_count = d.get_usize()?;
    let mut scan_connections = HashSet::with_capacity(claimed_count.min(1 << 20));
    for _ in 0..claimed_count {
        scan_connections.insert(ConnectionId::from_index(d.get_u32()? as usize));
    }
    let max_depth = d.get_usize()?;
    Ok(HscanResult {
        chains,
        area,
        scan_connections,
        max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::insert_hscan;
    use socet_cells::DftCosts;
    use socet_rtl::{Core, CoreBuilder, Direction, RegisterId, RtlNode};

    fn forked_core() -> Core {
        let mut b = CoreBuilder::new("fork");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let o2 = b.port("o2", Direction::Out, 8).unwrap();
        let r_main = b.register("r_main", 8).unwrap();
        let r_next = b.register("r_next", 8).unwrap();
        let r_side = b.register("r_side", 8).unwrap();
        b.connect_port_to_reg(i, r_main).unwrap();
        b.connect_reg_to_reg(r_main, r_next).unwrap();
        b.connect_mux(RtlNode::Reg(r_main), RtlNode::Reg(r_side), 0)
            .unwrap();
        b.connect_reg_to_port(r_next, o).unwrap();
        b.connect_reg_to_port(r_side, o2).unwrap();
        b.build().unwrap()
    }

    fn encode(h: &HscanResult) -> Vec<u8> {
        let mut e = Enc::new();
        encode_hscan(h, &mut e);
        e.into_bytes()
    }

    #[test]
    fn hscan_round_trips_exactly() {
        let h = insert_hscan(&forked_core(), &DftCosts::default());
        let bytes = encode(&h);
        let mut d = Dec::new(&bytes);
        let back = decode_hscan(&mut d).unwrap();
        assert!(d.is_empty());
        assert_eq!(back.chains, h.chains);
        assert_eq!(back.area, h.area);
        assert_eq!(back.scan_connections, h.scan_connections);
        assert_eq!(back.max_depth, h.max_depth);
        // The round trip exercises every ChainVia variant.
        let fork = back.chains.iter().find(|c| c.fork_parent.is_some());
        assert_eq!(fork.unwrap().fork_parent, Some(RegisterId::from_index(0)));
    }

    #[test]
    fn encoding_is_deterministic_despite_hashset() {
        // Re-running HSCAN builds the HashSet afresh (different insertion
        // and iteration order is possible); the sorted encoding must not
        // care.
        let a = encode(&insert_hscan(&forked_core(), &DftCosts::default()));
        let b = encode(&insert_hscan(&forked_core(), &DftCosts::default()));
        assert_eq!(a, b);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = encode(&insert_hscan(&forked_core(), &DftCosts::default()));
        for cut in [0, 1, bytes.len() / 3, bytes.len() - 1] {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(decode_hscan(&mut d).is_err());
        }
    }
}
