//! Shared plumbing for the table/figure regeneration binaries and the
//! Criterion benches.
//!
//! Every evaluation artifact of the paper has a binary here (see
//! `DESIGN.md`'s experiment index); each prints the measured values next
//! to the paper's, so `EXPERIMENTS.md` can be refreshed by rerunning:
//!
//! ```text
//! cargo run --release -p socet-bench --bin fig6_cpu_versions
//! cargo run --release -p socet-bench --bin fig8_core_versions
//! cargo run --release -p socet-bench --bin fig10_design_space
//! cargo run --release -p socet-bench --bin table1_design_points
//! cargo run --release -p socet-bench --bin table2_area_overheads
//! cargo run --release -p socet-bench --bin table3_testability
//! cargo run --release -p socet-bench --bin worked_example_display
//! ```

use socet_atpg::{generate_tests, TestSet, TpgConfig};
use socet_cells::{CellLibrary, DftCosts};
use socet_core::CoreTestData;
use socet_gate::{elaborate, GateNetlist};
use socet_hscan::insert_hscan;
use socet_rtl::{Core, Soc};
use socet_transparency::synthesize_versions;

/// Everything the experiments need for one system.
pub struct PreparedSystem {
    /// The SOC.
    pub soc: Soc,
    /// Chip-level planning inputs per core instance.
    pub data: Vec<Option<CoreTestData>>,
    /// Elaborated netlists per logic core.
    pub netlists: Vec<Option<GateNetlist>>,
    /// Generated test sets per logic core.
    pub tests: Vec<Option<TestSet>>,
}

impl PreparedSystem {
    /// Runs the core-level flow on `soc` with the default ATPG budget.
    pub fn prepare(soc: Soc) -> PreparedSystem {
        let costs = DftCosts::default();
        let tpg = TpgConfig::default();
        let mut data = Vec::new();
        let mut netlists = Vec::new();
        let mut tests = Vec::new();
        for inst in soc.cores() {
            if inst.is_memory() {
                data.push(None);
                netlists.push(None);
                tests.push(None);
                continue;
            }
            let core = inst.core();
            let hscan = insert_hscan(core, &costs);
            let versions = synthesize_versions(core, &hscan, &costs);
            let elab = elaborate(core).expect("example cores elaborate");
            let t = generate_tests(&elab.netlist, &tpg);
            data.push(Some(CoreTestData {
                versions,
                hscan,
                scan_vectors: t.vector_count(),
            }));
            netlists.push(Some(elab.netlist));
            tests.push(Some(t));
        }
        PreparedSystem {
            soc,
            data,
            netlists,
            tests,
        }
    }

    /// Full-scan vector count per core instance.
    pub fn vectors(&self) -> Vec<u64> {
        self.tests
            .iter()
            .map(|t| t.as_ref().map(|t| t.vector_count() as u64).unwrap_or(0))
            .collect()
    }

    /// HSCAN chain depth per core instance.
    pub fn depths(&self) -> Vec<u64> {
        self.data
            .iter()
            .map(|d| {
                d.as_ref()
                    .map(|d| d.hscan.sequential_depth() as u64)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Pre-DFT chip area (logic cores, elaborated) in cells.
    pub fn original_area_cells(&self, lib: &CellLibrary) -> u64 {
        self.netlists
            .iter()
            .flatten()
            .map(|nl| nl.area().cells(lib))
            .sum()
    }

    /// Total HSCAN overhead in cells.
    pub fn hscan_cells(&self, lib: &CellLibrary) -> u64 {
        self.data
            .iter()
            .flatten()
            .map(|d| d.hscan.overhead_cells(lib))
            .sum()
    }

    /// Merged per-core ATPG coverage.
    pub fn aggregate_coverage(&self) -> socet_atpg::Coverage {
        self.tests
            .iter()
            .flatten()
            .fold(socet_atpg::Coverage::default(), |acc, t| {
                acc.merge(&t.coverage)
            })
    }

    /// Merged per-core ATPG-engine counters (cone pruning, fault dropping).
    pub fn atpg_stats(&self) -> socet_atpg::AtpgMetrics {
        let mut m = socet_atpg::AtpgMetrics::new();
        for t in self.tests.iter().flatten() {
            m.merge(&t.stats);
        }
        m
    }
}

/// Prints a `measured vs paper` row with a ratio, used by every table
/// binary so the output format is uniform.
pub fn compare_row(label: &str, measured: f64, paper: f64, unit: &str) {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    println!("  {label:<34} measured {measured:>10.1} {unit:<7} paper {paper:>10.1} {unit:<7} (x{ratio:.2})");
}

/// The version latency/overhead ladder of one core, as printed by the
/// figure binaries.
pub fn print_ladder(core: &Core, pairs: &[(&str, &str)]) {
    let costs = DftCosts::default();
    let lib = CellLibrary::generic_08um();
    let hscan = insert_hscan(core, &costs);
    let versions = synthesize_versions(core, &hscan, &costs);
    print!("  {:<10}", "");
    for (i, o) in pairs {
        print!(" {:>14}", format!("{i}->{o}"));
    }
    println!(" {:>10}", "ovhd");
    for v in &versions {
        print!("  {:<10}", v.name());
        for (i, o) in pairs {
            let ip = core.find_port(i).expect("port exists");
            let op = core.find_port(o).expect("port exists");
            match v.pair_latency(ip, op) {
                Some(l) => print!(" {l:>14}"),
                None => print!(" {:>14}", "-"),
            }
        }
        println!(" {:>10}", v.overhead_cells(&lib));
    }
}
