//! FIG6 — regenerates Fig. 6 of the paper: the CPU core's transparency
//! latency vs overhead trade-off (Versions 1–3).
//!
//! Paper values:
//!
//! | CPU       | D→A(7-0) | D→A(11-8) | D→A(11-0) | Overhead (cells) |
//! |-----------|----------|-----------|-----------|------------------|
//! | Version 1 | 6        | 2         | 8         | 3                |
//! | Version 2 | 1        | 2         | 3         | 10               |
//! | Version 3 | 1        | 1         | 2         | 30               |
//!
//! `D→A(11-0)` is the serialized total — both Address transfers share the
//! `Data` input, so they run back to back.

use socet_bench::compare_row;
use socet_cells::{CellLibrary, DftCosts};
use socet_hscan::insert_hscan;
use socet_socs::cpu_core;
use socet_transparency::synthesize_versions;

fn main() {
    let core = cpu_core();
    let costs = DftCosts::default();
    let lib = CellLibrary::generic_08um();
    let hscan = insert_hscan(&core, &costs);
    let versions = synthesize_versions(&core, &hscan, &costs);
    let data = core.find_port("Data").expect("port");
    let a_lo = core.find_port("AddrLo").expect("port");
    let a_hi = core.find_port("AddrHi").expect("port");

    println!("FIG6: CPU transparency latency vs overhead");
    println!(
        "  {:<10} {:>9} {:>10} {:>10} {:>8}",
        "", "D->A(7-0)", "D->A(11-8)", "D->A(11-0)", "ovhd"
    );
    let paper = [(6u32, 2u32, 8u32, 3u64), (1, 2, 3, 10), (1, 1, 2, 30)];
    let mut all_match = true;
    for (v, (p_lo, p_hi, p_tot, p_ov)) in versions.iter().zip(paper) {
        let lo = v.pair_latency(data, a_lo).expect("pair exists");
        let hi = v.pair_latency(data, a_hi).expect("pair exists");
        // Serialized total: the two transfers share the Data input.
        let tot = lo + hi;
        let ov = v.overhead_cells(&lib);
        println!("  {:<10} {lo:>9} {hi:>10} {tot:>10} {ov:>8}", v.name());
        all_match &= lo == p_lo && hi == p_hi && tot == p_tot && ov == p_ov;
    }
    println!("\ncomparison with the paper:");
    for (k, (p_lo, p_hi, p_tot, p_ov)) in paper.iter().enumerate() {
        let v = &versions[k];
        compare_row(
            &format!("V{} D->A(7-0) latency", k + 1),
            f64::from(v.pair_latency(data, a_lo).expect("pair")),
            f64::from(*p_lo),
            "cycles",
        );
        compare_row(
            &format!("V{} D->A(11-8) latency", k + 1),
            f64::from(v.pair_latency(data, a_hi).expect("pair")),
            f64::from(*p_hi),
            "cycles",
        );
        compare_row(
            &format!("V{} serialized total", k + 1),
            f64::from(
                v.pair_latency(data, a_lo).expect("pair")
                    + v.pair_latency(data, a_hi).expect("pair"),
            ),
            f64::from(*p_tot),
            "cycles",
        );
        compare_row(
            &format!("V{} overhead", k + 1),
            v.overhead_cells(&lib) as f64,
            *p_ov as f64,
            "cells",
        );
    }
    println!(
        "\nverdict: {}",
        if all_match {
            "EXACT match with Fig. 6"
        } else {
            "deviations present (see rows above)"
        }
    );
}
