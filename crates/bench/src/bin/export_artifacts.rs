//! Writes the shareable artifacts of a System 1 run into `artifacts/`:
//! Graphviz graphs (RCG per core, chip CCG), Verilog for the synthesized
//! test controller, the text netlist dump, and the full sign-off report.
//!
//! Run with: `cargo run --release -p socet-bench --bin export_artifacts`

use socet_bench::PreparedSystem;
use socet_cells::DftCosts;
use socet_core::{build_controller, render_plan, schedule, Ccg};
use socet_gate::export::to_verilog;
use socet_hscan::insert_hscan;
use socet_rtl::export::dump_soc;
use socet_socs::barcode_system;
use socet_transparency::Rcg;
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let out = Path::new("artifacts");
    fs::create_dir_all(out)?;
    let system = PreparedSystem::prepare(barcode_system());
    let costs = DftCosts::default();
    let soc = &system.soc;

    // Per-core RCGs.
    for cid in soc.logic_cores() {
        let inst = soc.core(cid);
        let core = inst.core();
        let hscan = insert_hscan(core, &costs);
        let rcg = Rcg::extract(core, &hscan);
        let path = out.join(format!("rcg_{}.dot", inst.name().to_lowercase()));
        fs::write(&path, rcg.to_dot(core))?;
        println!("wrote {}", path.display());
    }

    // Chip CCG (the Fig. 9 picture) at minimum area.
    let choice = vec![0usize; soc.cores().len()];
    let ccg = Ccg::build(soc, &system.data, &choice);
    fs::write(out.join("ccg_system1.dot"), ccg.to_dot(soc))?;
    println!("wrote {}", out.join("ccg_system1.dot").display());

    // Netlist dump and sign-off report.
    fs::write(out.join("system1.netlist.txt"), dump_soc(soc))?;
    let plan = schedule(soc, &system.data, &choice, &costs);
    fs::write(
        out.join("system1.plan.txt"),
        render_plan(soc, &system.data, &plan),
    )?;
    println!("wrote {}", out.join("system1.plan.txt").display());

    // Test controller in Verilog.
    let ctrl = build_controller(soc, &plan).expect("controller builds");
    fs::write(out.join("test_controller.v"), to_verilog(&ctrl.netlist))?;
    println!("wrote {}", out.join("test_controller.v").display());
    Ok(())
}
