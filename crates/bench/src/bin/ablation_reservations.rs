//! ABLATION — what the paper's edge reservations are worth.
//!
//! §5.1 reserves every transparency edge for the cycles it carries data, so
//! a second transfer through shared logic *waits* ("the edge (NUM, DB) can
//! only be utilized from cycle 6 onwards"). This ablation reroutes both
//! example systems with the reservation machinery disabled and shows how
//! far the resulting per-vector times underestimate reality — in the §3
//! worked example the unconstrained router would claim 7 cycles per vector
//! where the hardware needs 9.

use socet_bench::PreparedSystem;
use socet_cells::DftCosts;
use socet_core::{parallelize, schedule_with};
use socet_socs::{barcode_system, system2};

fn run(system: PreparedSystem) {
    let costs = DftCosts::default();
    let n = system.soc.cores().len();
    println!("\n{}:", system.soc.name());
    for (label, choice) in [
        ("min area", vec![0usize; n]),
        ("min latency", {
            let mut c = vec![0usize; n];
            for cid in system.soc.logic_cores() {
                c[cid.index()] = system.data[cid.index()]
                    .as_ref()
                    .map(|d| d.versions.len() - 1)
                    .unwrap_or(0);
            }
            c
        }),
    ] {
        let with = schedule_with(&system.soc, &system.data, &choice, &costs, true);
        let without = schedule_with(&system.soc, &system.data, &choice, &costs, false);
        let underestimate =
            with.test_application_time() as f64 / without.test_application_time().max(1) as f64;
        println!(
            "  {label:<12} with reservations {:>9} cycles | without {:>9} cycles | naive underestimates by x{underestimate:.2}",
            with.test_application_time(),
            without.test_application_time(),
        );
        // Bonus row: the parallel-scheduling extension on the *correct*
        // (reserved) plan.
        let par = parallelize(&system.soc, &with);
        println!(
            "  {label:<12} parallel extension: makespan {:>9} cycles (x{:.2} over serial)",
            par.makespan,
            par.speedup()
        );
    }
}

fn main() {
    println!("ABLATION: reservation-aware routing vs naive shortest paths");
    run(PreparedSystem::prepare(barcode_system()));
    run(PreparedSystem::prepare(system2()));
}
