//! TAB1 — regenerates Table 1 of the paper: design-space exploration for
//! System 1, detailing design points 1 (each core at minimum area), 18
//! (each core at minimum latency) and 17 (minimum chip test application
//! time).
//!
//! Paper values:
//!
//! | Circuit description             | A.Ov. (cells) | TApp (cycles) | FCov (%) | TEff (%) |
//! |---------------------------------|---------------|---------------|----------|----------|
//! | Each core has min. area (1)     | 156           | 17,387        | 98.4     | 99.8     |
//! | Each core has min. latency (18) | 325           | 3,818         | 98.4     | 99.8     |
//! | Min. chip TApp. (17)            | 307           | 3,806         | 98.4     | 99.8     |
//!
//! Fault coverage is the aggregated per-core ATPG coverage — SOCET delivers
//! each core's full precomputed test set, so FC does not depend on the
//! version mix; only area and TAT move.

use socet_bench::{compare_row, PreparedSystem};
use socet_cells::{CellLibrary, DftCosts};
use socet_core::Explorer;
use socet_socs::barcode_system;

fn main() {
    let prepared = PreparedSystem::prepare(barcode_system());
    let lib = CellLibrary::generic_08um();
    let explorer = Explorer::new(&prepared.soc, &prepared.data, DftCosts::default());
    let coverage = prepared.aggregate_coverage();

    let min_area = explorer.evaluate(&explorer.min_area_choice());
    let min_latency = explorer.evaluate(&explorer.min_latency_choice());
    let min_tat = explorer
        .sweep()
        .into_iter()
        .min_by_key(|p| (p.test_application_time(), p.overhead_cells(&lib)))
        .expect("sweep is non-empty");

    println!("TAB1: System 1 design points");
    println!(
        "  {:<28} {:>10} {:>10} {:>8} {:>8}",
        "circuit", "A.Ov.", "TApp.", "FCov.%", "TEff.%"
    );
    for (name, dp) in [
        ("min area (1)", &min_area),
        ("min latency (18)", &min_latency),
        ("min chip TApp (17)", &min_tat),
    ] {
        println!(
            "  {:<28} {:>10} {:>10} {:>8.1} {:>8.1}",
            name,
            dp.overhead_cells(&lib),
            dp.test_application_time(),
            coverage.fault_coverage(),
            coverage.test_efficiency()
        );
    }

    println!("\ncomparison with the paper:");
    compare_row(
        "pt1 area overhead",
        min_area.overhead_cells(&lib) as f64,
        156.0,
        "cells",
    );
    compare_row(
        "pt1 TApp",
        min_area.test_application_time() as f64,
        17_387.0,
        "cycles",
    );
    compare_row(
        "pt18 area overhead",
        min_latency.overhead_cells(&lib) as f64,
        325.0,
        "cells",
    );
    compare_row(
        "pt18 TApp",
        min_latency.test_application_time() as f64,
        3_818.0,
        "cycles",
    );
    compare_row(
        "pt17 area overhead",
        min_tat.overhead_cells(&lib) as f64,
        307.0,
        "cells",
    );
    compare_row(
        "pt17 TApp",
        min_tat.test_application_time() as f64,
        3_806.0,
        "cycles",
    );
    compare_row("fault coverage", coverage.fault_coverage(), 98.4, "%");
    compare_row("test efficiency", coverage.test_efficiency(), 99.8, "%");

    println!("\nshape checks:");
    let reduction =
        min_area.test_application_time() as f64 / min_latency.test_application_time() as f64;
    compare_row(
        "TAT reduction pt1->pt18",
        reduction,
        17_387.0 / 3_818.0,
        "x",
    );
    println!(
        "  min-TApp <= min-latency TApp: {}",
        if min_tat.test_application_time() <= min_latency.test_application_time() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
