//! FIG10 — regenerates Fig. 10 of the paper: test application time vs area
//! overhead for the design points of System 1 obtained from different core
//! version combinations.
//!
//! The paper plots 18 distinct points; design point 1 is the all-minimum-
//! area configuration, 18 the all-minimum-latency one, and 17 the true
//! minimum-TAT point (which does *not* use the minimum-latency
//! PREPROCESSOR — the paper's headline observation). The paper reports a
//! ~4.5x TAT reduction from point 1 to point 18 for a ~2x area-overhead
//! increase.

use socet_bench::{compare_row, PreparedSystem};
use socet_cells::{CellLibrary, DftCosts};
use socet_core::Explorer;
use socet_socs::barcode_system;

fn main() {
    let prepared = PreparedSystem::prepare(barcode_system());
    let lib = CellLibrary::generic_08um();
    let explorer = Explorer::new(&prepared.soc, &prepared.data, DftCosts::default());

    let mut points = explorer.sweep();
    points.sort_by_key(|p| (p.overhead_cells(&lib), p.test_application_time()));
    // Distinct (area, TAT) pairs — the paper's "18 design points" collapse
    // combinations with identical cost.
    let mut distinct: Vec<(u64, u64, Vec<usize>)> = Vec::new();
    for p in &points {
        let key = (p.overhead_cells(&lib), p.test_application_time());
        if !distinct.iter().any(|(a, t, _)| (*a, *t) == key) {
            distinct.push((key.0, key.1, p.choice.clone()));
        }
    }

    println!("FIG10: System 1 design space (area overhead vs TAT)");
    println!("  {:>4} {:>10} {:>12}  choice", "pt", "ovhd", "TAT");
    for (k, (a, t, c)) in distinct.iter().enumerate() {
        println!("  {:>4} {a:>10} {t:>12}  {c:?}", k + 1);
    }
    println!(
        "  ({} distinct points from {} combinations; paper plots 18)",
        distinct.len(),
        points.len()
    );

    let min_area = points
        .iter()
        .min_by_key(|p| (p.overhead_cells(&lib), p.test_application_time()))
        .expect("non-empty");
    let min_tat = points
        .iter()
        .min_by_key(|p| (p.test_application_time(), p.overhead_cells(&lib)))
        .expect("non-empty");
    let min_latency = explorer.evaluate(&explorer.min_latency_choice());

    println!("\nendpoints:");
    println!(
        "  point 1  (min area)   : {:>6} cells, {:>8} cycles, choice {:?}",
        min_area.overhead_cells(&lib),
        min_area.test_application_time(),
        min_area.choice
    );
    println!(
        "  point 18 (min latency): {:>6} cells, {:>8} cycles, choice {:?}",
        min_latency.overhead_cells(&lib),
        min_latency.test_application_time(),
        min_latency.choice
    );
    println!(
        "  point 17 (min TAT)    : {:>6} cells, {:>8} cycles, choice {:?}",
        min_tat.overhead_cells(&lib),
        min_tat.test_application_time(),
        min_tat.choice
    );

    // The paper's shape claims.
    let tat_reduction =
        min_area.test_application_time() as f64 / min_latency.test_application_time() as f64;
    let area_increase =
        min_latency.overhead_cells(&lib) as f64 / min_area.overhead_cells(&lib) as f64;
    println!("\nshape checks:");
    compare_row("TAT reduction (pt1 / pt18)", tat_reduction, 4.5, "x");
    compare_row("area increase (pt18 / pt1)", area_increase, 2.1, "x");
    let min_tat_cheaper = min_tat.overhead_cells(&lib) <= min_latency.overhead_cells(&lib)
        && min_tat.test_application_time() <= min_latency.test_application_time();
    println!(
        "  min-TAT point is at most as expensive as min-latency: {}",
        if min_tat_cheaper {
            "HOLDS (the paper's design-point-17 observation)"
        } else {
            "VIOLATED"
        }
    );

    println!("\n{}", explorer.metrics());
}
