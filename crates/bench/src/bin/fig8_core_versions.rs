//! FIG8 — regenerates Fig. 8 of the paper: the transparency latency-area
//! trade-offs of the PREPROCESSOR (a) and DISPLAY (b) cores.
//!
//! Paper values:
//!
//! | PREPROCESSOR | NUM→DB | NUM→A | Ovhd | DISPLAY | D→OUT | A→OUT | Ovhd |
//! |--------------|--------|-------|------|---------|-------|-------|------|
//! | Ver. 1       | 5      | 2     | 2    | Ver. 1  | 2     | 3     | 5    |
//! | Ver. 2       | 1      | 2     | 19   | Ver. 2  | 2     | 1     | 20   |
//! | Ver. 3       | 1      | 1     | 37   | Ver. 3  | 1     | 1     | 55   |
//!
//! `OUT` is "a combination of output ports": the fastest display port
//! reachable from the input.

use socet_bench::compare_row;
use socet_cells::{CellLibrary, DftCosts};
use socet_hscan::insert_hscan;
use socet_socs::{display_core, preprocessor_core};
use socet_transparency::{synthesize_versions, CoreVersion};

fn out_latency(core: &socet_rtl::Core, v: &CoreVersion, input: &str) -> u32 {
    let ip = core.find_port(input).expect("port exists");
    core.output_ports()
        .iter()
        .filter_map(|o| v.pair_latency(ip, *o))
        .min()
        .expect("input reaches some output")
}

fn main() {
    let costs = DftCosts::default();
    let lib = CellLibrary::generic_08um();

    println!("FIG8(a): PREPROCESSOR");
    let prep = preprocessor_core();
    let hscan = insert_hscan(&prep, &costs);
    let versions = synthesize_versions(&prep, &hscan, &costs);
    let num = prep.find_port("NUM").expect("port");
    let db = prep.find_port("DB").expect("port");
    let addr = prep.find_port("Address").expect("port");
    println!(
        "  {:<10} {:>8} {:>8} {:>8}",
        "", "NUM->DB", "NUM->A", "ovhd"
    );
    let paper_a = [(5u32, 2u32, 2u64), (1, 2, 19), (1, 1, 37)];
    for (v, (p_db, p_a, p_ov)) in versions.iter().zip(paper_a) {
        let l_db = v.pair_latency(num, db).expect("pair");
        let l_a = v.pair_latency(num, addr).expect("pair");
        let ov = v.overhead_cells(&lib);
        println!("  {:<10} {l_db:>8} {l_a:>8} {ov:>8}", v.name());
        compare_row(
            &format!("{} NUM->DB", v.name()),
            f64::from(l_db),
            f64::from(p_db),
            "cycles",
        );
        compare_row(
            &format!("{} NUM->A", v.name()),
            f64::from(l_a),
            f64::from(p_a),
            "cycles",
        );
        compare_row(
            &format!("{} overhead", v.name()),
            ov as f64,
            p_ov as f64,
            "cells",
        );
    }

    println!("\nFIG8(b): DISPLAY");
    let disp = display_core();
    let hscan = insert_hscan(&disp, &costs);
    let versions = synthesize_versions(&disp, &hscan, &costs);
    println!("  {:<10} {:>8} {:>8} {:>8}", "", "D->OUT", "A->OUT", "ovhd");
    let paper_b = [(2u32, 3u32, 5u64), (2, 1, 20), (1, 1, 55)];
    for (v, (p_d, p_a, p_ov)) in versions.iter().zip(paper_b) {
        let l_d = out_latency(&disp, v, "D");
        let l_a = out_latency(&disp, v, "ALo");
        let ov = v.overhead_cells(&lib);
        println!("  {:<10} {l_d:>8} {l_a:>8} {ov:>8}", v.name());
        compare_row(
            &format!("{} D->OUT", v.name()),
            f64::from(l_d),
            f64::from(p_d),
            "cycles",
        );
        compare_row(
            &format!("{} A->OUT", v.name()),
            f64::from(l_a),
            f64::from(p_a),
            "cycles",
        );
        compare_row(
            &format!("{} overhead", v.name()),
            ov as f64,
            p_ov as f64,
            "cells",
        );
    }
}
