//! ABLATION — static test-set compaction and its effect on TAT.
//!
//! The paper takes each core's precomputed test set as given. A production
//! flow would compact it first: reverse-order fault simulation drops
//! vectors whose faults the rest of the set already covers, and every
//! removed vector shortens the core's HSCAN sequence and therefore the
//! chip's test application time — at zero hardware cost.

use socet_atpg::{compact_tests, generate_tests, TpgConfig};
use socet_bench::PreparedSystem;
use socet_cells::DftCosts;
use socet_core::schedule;
use socet_gate::elaborate;
use socet_socs::{barcode_system, system2};

fn run(mut system: PreparedSystem) {
    println!("\n{}:", system.soc.name());
    let costs = DftCosts::default();
    // Baseline TAT with the raw ATPG sets.
    let choice = vec![0usize; system.soc.cores().len()];
    let before_tat = schedule(&system.soc, &system.data, &choice, &costs).test_application_time();

    // Compact each core's set and refresh the per-core vector counts.
    for cid in system.soc.logic_cores() {
        let inst = system.soc.core(cid);
        let nl = elaborate(inst.core())
            .expect("example cores elaborate")
            .netlist;
        let mut tests = generate_tests(&nl, &TpgConfig::default());
        let stats = compact_tests(&nl, &mut tests);
        println!(
            "  {:<14} {:>4} -> {:>4} vectors ({:>4.1}% smaller), coverage {}",
            inst.name(),
            stats.before,
            stats.after,
            stats.reduction(),
            tests.coverage
        );
        if let Some(td) = system.data[cid.index()].as_mut() {
            td.scan_vectors = tests.vector_count();
        }
    }
    let after_tat = schedule(&system.soc, &system.data, &choice, &costs).test_application_time();
    println!(
        "  min-area TAT: {before_tat} -> {after_tat} cycles (x{:.2})",
        before_tat as f64 / after_tat.max(1) as f64
    );
}

fn main() {
    println!("ABLATION: static test-set compaction");
    run(PreparedSystem::prepare(barcode_system()));
    run(PreparedSystem::prepare(system2()));
}
