//! §3 worked example — testing the DISPLAY of System 1 through the
//! transparency of the PREPROCESSOR and the CPU, for every CPU version,
//! against the FSCAN-BSCAN cost of the same core.
//!
//! Paper values (with the PREPROCESSOR moving `NUM → DB` in one cycle):
//!
//! * CPU Version 1: `525 × 9 + 3 = 4 728` cycles
//! * CPU Version 2: `525 × 4 + 3 = 2 103` cycles
//! * CPU Version 3: `525 × 3 + 3 = 1 578` cycles
//! * FSCAN-BSCAN:   `(66 + 20) × 105 + 85 = 9 115` cycles

use socet_baselines::FscanBscanReport;
use socet_bench::compare_row;
use socet_cells::DftCosts;
use socet_core::{schedule, CoreTestData};
use socet_hscan::insert_hscan;
use socet_socs::barcode_system;
use socet_transparency::synthesize_versions;

fn main() {
    let soc = barcode_system();
    let costs = DftCosts::default();
    // The worked example's premise: 105 combinational vectors per core.
    let data: Vec<Option<CoreTestData>> = soc
        .cores()
        .iter()
        .map(|inst| {
            if inst.is_memory() {
                return None;
            }
            let hscan = insert_hscan(inst.core(), &costs);
            let versions = synthesize_versions(inst.core(), &hscan, &costs);
            Some(CoreTestData {
                versions,
                hscan,
                scan_vectors: 105,
            })
        })
        .collect();

    let prep = soc.find_core("PREPROCESSOR").expect("core");
    let cpu = soc.find_core("CPU").expect("core");
    let disp = soc.find_core("DISPLAY").expect("core");

    println!("§3 worked example: testing the DISPLAY");
    let paper = [4_728u64, 2_103, 1_578];
    for (v, paper_cycles) in paper.iter().enumerate() {
        let mut choice = vec![0usize; soc.cores().len()];
        choice[prep.index()] = 1; // NUM -> DB in one cycle
        choice[cpu.index()] = v;
        let plan = schedule(&soc, &data, &choice, &costs);
        let ep = plan
            .episodes
            .iter()
            .find(|e| e.core == disp)
            .expect("DISPLAY episode");
        println!(
            "  CPU Version {}: {} vectors x {} cycles + {} tail = {}",
            v + 1,
            ep.hscan_vectors,
            ep.per_vector_cycles,
            ep.tail_cycles,
            ep.test_time()
        );
        compare_row(
            &format!("DISPLAY TApp, CPU V{}", v + 1),
            ep.test_time() as f64,
            *paper_cycles as f64,
            "cycles",
        );
    }

    let mut vectors = vec![0u64; soc.cores().len()];
    for c in soc.logic_cores() {
        vectors[c.index()] = 105;
    }
    let fb = FscanBscanReport::evaluate(&soc, &vectors, &costs);
    let fb_disp = fb
        .cores
        .iter()
        .find(|c| c.core == disp)
        .expect("DISPLAY accounted");
    compare_row(
        "DISPLAY TApp, FSCAN-BSCAN",
        fb_disp.test_time() as f64,
        9_115.0,
        "cycles",
    );
}
