//! TAB2 — regenerates Table 2 of the paper: area overheads of the
//! core-level DFT (FSCAN vs HSCAN), the chip-level DFT (BSCAN vs SOCET at
//! both extremes), and the totals, for Systems 1 and 2.
//!
//! Paper values (percent of original area):
//!
//! | Circuit  | FSCAN | HSCAN | BSCAN | SOCET min-area | SOCET min-TApp | FSCAN-BSCAN total | SOCET total |
//! |----------|-------|-------|-------|----------------|----------------|-------------------|-------------|
//! | System 1 | 18.8  | 10.1  | 5.2   | 2.0            | 3.8            | 24.0              | 12.1 / 13.9 |
//! | System 2 | 15.6  | 10.3  | 9.9   | 1.2            | 4.7            | 25.5              | 11.5 / 15.0 |

use socet_baselines::FscanBscanReport;
use socet_bench::{compare_row, PreparedSystem};
use socet_cells::{CellLibrary, DftCosts};
use socet_core::Explorer;
use socet_socs::{barcode_system, system2};

struct PaperRow {
    fscan: f64,
    hscan: f64,
    bscan: f64,
    socet_min_area: f64,
    socet_min_tapp: f64,
    fb_total: f64,
    socet_total_min_area: f64,
    socet_total_min_tapp: f64,
}

fn run(system: PreparedSystem, paper: &PaperRow) {
    let costs = DftCosts::default();
    let lib = CellLibrary::generic_08um();
    let orig = system.original_area_cells(&lib) as f64;
    let pct = |cells: u64| cells as f64 / orig * 100.0;

    let fb = FscanBscanReport::evaluate(&system.soc, &system.vectors(), &costs);
    let explorer = Explorer::new(&system.soc, &system.data, costs);
    let min_area = explorer.evaluate(&explorer.min_area_choice());
    let min_tat = explorer
        .sweep()
        .into_iter()
        .min_by_key(|p| (p.test_application_time(), p.overhead_cells(&lib)))
        .expect("sweep is non-empty");

    let hscan_cells = system.hscan_cells(&lib);
    println!(
        "\n{} — original area {} cells",
        system.soc.name(),
        orig as u64
    );
    compare_row(
        "core-level FSCAN ovhd %",
        pct(fb.fscan_cells(&lib)),
        paper.fscan,
        "%",
    );
    compare_row(
        "core-level HSCAN ovhd %",
        pct(hscan_cells),
        paper.hscan,
        "%",
    );
    compare_row(
        "chip-level BSCAN ovhd %",
        pct(fb.bscan_cells(&lib)),
        paper.bscan,
        "%",
    );
    compare_row(
        "chip-level SOCET (min area) %",
        pct(min_area.overhead_cells(&lib)),
        paper.socet_min_area,
        "%",
    );
    compare_row(
        "chip-level SOCET (min TApp) %",
        pct(min_tat.overhead_cells(&lib)),
        paper.socet_min_tapp,
        "%",
    );
    compare_row(
        "FSCAN-BSCAN total %",
        pct(fb.total_cells(&lib)),
        paper.fb_total,
        "%",
    );
    compare_row(
        "SOCET total (min area) %",
        pct(hscan_cells + min_area.overhead_cells(&lib)),
        paper.socet_total_min_area,
        "%",
    );
    compare_row(
        "SOCET total (min TApp) %",
        pct(hscan_cells + min_tat.overhead_cells(&lib)),
        paper.socet_total_min_tapp,
        "%",
    );
    let socet_total = hscan_cells + min_tat.overhead_cells(&lib);
    println!(
        "  SOCET total beats FSCAN-BSCAN total: {}",
        if socet_total < fb.total_cells(&lib) {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn main() {
    println!("TAB2: area overheads (percent of original chip area)");
    run(
        PreparedSystem::prepare(barcode_system()),
        &PaperRow {
            fscan: 18.8,
            hscan: 10.1,
            bscan: 5.2,
            socet_min_area: 2.0,
            socet_min_tapp: 3.8,
            fb_total: 24.0,
            socet_total_min_area: 12.1,
            socet_total_min_tapp: 13.9,
        },
    );
    run(
        PreparedSystem::prepare(system2()),
        &PaperRow {
            fscan: 15.6,
            hscan: 10.3,
            bscan: 9.9,
            socet_min_area: 1.2,
            socet_min_tapp: 4.7,
            fb_total: 25.5,
            socet_total_min_area: 11.5,
            socet_total_min_tapp: 15.0,
        },
    );
}
