//! TAB3 — regenerates Table 3 of the paper: testability of Systems 1 and 2
//! under four regimes — the original chip (no DFT), HSCAN cores without
//! chip-level DFT, FSCAN-BSCAN, and SOCET at both extremes.
//!
//! Paper values:
//!
//! | Circuit  | Orig FC | HSCAN FC | FB FC | FB TApp | SOCET FC | SOCET TApp (min area / min TApp) |
//! |----------|---------|----------|-------|---------|----------|-----------------------------------|
//! | System 1 | 10.6    | 14.6     | 98.4  | 36,152  | 98.4     | 17,387 / 3,806                    |
//! | System 2 | 11.2    | 13.8     | 98.2  | 46,394  | 98.2     | 16,435 / 3,998                    |

use socet_baselines::{flatten_soc, hscan_only_coverage, orig_coverage, FscanBscanReport};
use socet_bench::{compare_row, PreparedSystem};
use socet_cells::{CellLibrary, DftCosts};
use socet_core::Explorer;
use socet_socs::{barcode_system, system2};

struct PaperRow {
    orig_fc: f64,
    hscan_fc: f64,
    fb_fc: f64,
    fb_tapp: f64,
    socet_fc: f64,
    socet_min_area_tapp: f64,
    socet_min_tapp: f64,
}

const RANDOM_CYCLES: usize = 96;
const SEED: u64 = 0xdac1998;

fn run(system: PreparedSystem, paper: &PaperRow) {
    let costs = DftCosts::default();
    let lib = CellLibrary::generic_08um();
    let flat = flatten_soc(&system.soc).expect("example systems flatten");

    // "Orig.": random sequential vectors against the un-DFT'd chip.
    let orig = orig_coverage(&flat, RANDOM_CYCLES, SEED);
    // "HSCAN": cores are scan-testable but embedded ones are unreachable.
    let hscan = hscan_only_coverage(&system.soc, &flat, &system.tests, RANDOM_CYCLES, SEED);
    // Full scan access: the aggregated per-core ATPG coverage.
    let full = system.aggregate_coverage();

    let fb = FscanBscanReport::evaluate(&system.soc, &system.vectors(), &costs);
    let explorer = Explorer::new(&system.soc, &system.data, costs);
    let min_area = explorer.evaluate(&explorer.min_area_choice());
    let min_tat = explorer
        .sweep()
        .into_iter()
        .min_by_key(|p| (p.test_application_time(), p.overhead_cells(&lib)))
        .expect("sweep is non-empty");

    println!("\n{}:", system.soc.name());
    compare_row(
        "Orig. fault coverage",
        orig.fault_coverage(),
        paper.orig_fc,
        "%",
    );
    compare_row(
        "HSCAN-only fault coverage",
        hscan.fault_coverage(),
        paper.hscan_fc,
        "%",
    );
    compare_row(
        "FSCAN-BSCAN fault coverage",
        full.fault_coverage(),
        paper.fb_fc,
        "%",
    );
    compare_row(
        "FSCAN-BSCAN TApp",
        fb.test_application_time() as f64,
        paper.fb_tapp,
        "cycles",
    );
    compare_row(
        "SOCET fault coverage",
        full.fault_coverage(),
        paper.socet_fc,
        "%",
    );
    compare_row(
        "SOCET TApp (min area)",
        min_area.test_application_time() as f64,
        paper.socet_min_area_tapp,
        "cycles",
    );
    compare_row(
        "SOCET TApp (min TApp)",
        min_tat.test_application_time() as f64,
        paper.socet_min_tapp,
        "cycles",
    );
    println!("  shape checks:");
    println!(
        "    Orig << scan-based coverage: {}",
        if orig.fault_coverage() + 20.0 < full.fault_coverage() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "    HSCAN-only >= Orig:          {}",
        if hscan.fault_coverage() >= orig.fault_coverage() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "    SOCET TApp < FSCAN-BSCAN:    {}",
        if min_area.test_application_time() < fb.test_application_time() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    // The ATPG work behind the scan-based rows, rendered like
    // `soctool atpg --stats`.
    println!("{}", indent(&system.atpg_stats().to_string()));
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    println!(
        "TAB3: testability results ({RANDOM_CYCLES} random sequential cycles for Orig/HSCAN rows)"
    );
    run(
        PreparedSystem::prepare(barcode_system()),
        &PaperRow {
            orig_fc: 10.6,
            hscan_fc: 14.6,
            fb_fc: 98.4,
            fb_tapp: 36_152.0,
            socet_fc: 98.4,
            socet_min_area_tapp: 17_387.0,
            socet_min_tapp: 3_806.0,
        },
    );
    run(
        PreparedSystem::prepare(system2()),
        &PaperRow {
            orig_fc: 11.2,
            hscan_fc: 13.8,
            fb_fc: 98.2,
            fb_tapp: 46_394.0,
            socet_fc: 98.2,
            socet_min_area_tapp: 16_435.0,
            socet_min_tapp: 3_998.0,
        },
    );
}
