//! Criterion bench: chip-level scheduling runtime as the SOC grows — the
//! engine stays interactive far past the paper's 3-core systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use socet_cells::DftCosts;
use socet_core::{schedule, CoreTestData, Scheduler};
use socet_hscan::insert_hscan;
use socet_socs::{generate_soc, SyntheticConfig};
use socet_transparency::synthesize_versions;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for cores in [4usize, 8, 16, 32] {
        let soc = generate_soc(&SyntheticConfig {
            cores,
            width: 8,
            pipeline_depth: 4,
            seed: 7,
        });
        let costs = DftCosts::default();
        let data: Vec<Option<CoreTestData>> = soc
            .cores()
            .iter()
            .map(|inst| {
                let hscan = insert_hscan(inst.core(), &costs);
                let versions = synthesize_versions(inst.core(), &hscan, &costs);
                Some(CoreTestData {
                    versions,
                    hscan,
                    scan_vectors: 50,
                })
            })
            .collect();
        let choice = vec![0usize; soc.cores().len()];
        group.bench_with_input(BenchmarkId::new("schedule", cores), &cores, |b, _| {
            b.iter(|| schedule(&soc, &data, &choice, &costs))
        });
        // The incremental engine stepping one core's version per point —
        // the explorer's hot loop.
        let mut stepped = choice.clone();
        stepped[0] = 1;
        let mut engine = Scheduler::new(&soc, &data, &costs);
        let mut flip = false;
        group.bench_with_input(
            BenchmarkId::new("evaluate_incremental", cores),
            &cores,
            |b, _| {
                b.iter(|| {
                    flip = !flip;
                    let c = if flip { &stepped } else { &choice };
                    engine.evaluate(c).expect("valid choice")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
