//! Criterion bench: full design-space sweep and both iterative-improvement
//! objectives on System 1.

use criterion::{criterion_group, criterion_main, Criterion};
use socet_cells::DftCosts;
use socet_core::{CoreTestData, Explorer, Objective, Scheduler};
use socet_hscan::insert_hscan;
use socet_socs::barcode_system;
use socet_transparency::synthesize_versions;

fn bench_explore(c: &mut Criterion) {
    let soc = barcode_system();
    let costs = DftCosts::default();
    let data: Vec<Option<CoreTestData>> = soc
        .cores()
        .iter()
        .map(|inst| {
            if inst.is_memory() {
                return None;
            }
            let hscan = insert_hscan(inst.core(), &costs);
            let versions = synthesize_versions(inst.core(), &hscan, &costs);
            Some(CoreTestData {
                versions,
                hscan,
                scan_vectors: 105,
            })
        })
        .collect();
    let explorer = Explorer::new(&soc, &data, costs);
    let mut group = c.benchmark_group("explore");
    group.sample_size(20);
    group.bench_function("sweep/system1", |b| b.iter(|| explorer.sweep()));
    group.bench_function("objective1/system1", |b| {
        b.iter(|| {
            explorer.optimize(Objective::MinTatUnderArea {
                max_overhead_cells: u64::MAX,
            })
        })
    });
    group.bench_function("objective2/system1", |b| {
        b.iter(|| {
            explorer.optimize(Objective::MinAreaUnderTat {
                max_tat_cycles: 5_000,
            })
        })
    });
    // Incremental-vs-full ablation of the evaluation engine: one design
    // point per iteration, either through a cold engine (full CCG build,
    // fresh scratch) or a warm one stepping a single core's version.
    let choice_a = vec![0usize; soc.cores().len()];
    let mut choice_b = choice_a.clone();
    choice_b[0] = 1;
    group.bench_function("evaluate_full/system1", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let c = if flip { &choice_b } else { &choice_a };
            Scheduler::new(&soc, &data, &DftCosts::default())
                .evaluate(c)
                .expect("valid choice")
        })
    });
    group.bench_function("evaluate_incremental/system1", |b| {
        let mut engine = Scheduler::new(&soc, &data, &DftCosts::default());
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let c = if flip { &choice_b } else { &choice_a };
            engine.evaluate(c).expect("valid choice")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
