//! Criterion bench: CCG construction and reservation-aware episode routing
//! on System 1.

use criterion::{criterion_group, criterion_main, Criterion};
use socet_cells::DftCosts;
use socet_core::{schedule, Ccg, CoreTestData};
use socet_hscan::insert_hscan;
use socet_socs::barcode_system;
use socet_transparency::synthesize_versions;

fn inputs() -> (socet_rtl::Soc, Vec<Option<CoreTestData>>) {
    let soc = barcode_system();
    let costs = DftCosts::default();
    let data = soc
        .cores()
        .iter()
        .map(|inst| {
            if inst.is_memory() {
                return None;
            }
            let hscan = insert_hscan(inst.core(), &costs);
            let versions = synthesize_versions(inst.core(), &hscan, &costs);
            Some(CoreTestData {
                versions,
                hscan,
                scan_vectors: 105,
            })
        })
        .collect();
    (soc, data)
}

fn bench_scheduling(c: &mut Criterion) {
    let (soc, data) = inputs();
    let costs = DftCosts::default();
    let choice = vec![0usize; soc.cores().len()];
    let mut group = c.benchmark_group("scheduling");
    group.bench_function("ccg_build/system1", |b| {
        b.iter(|| Ccg::build(&soc, &data, &choice))
    });
    group.bench_function("schedule/system1_min_area", |b| {
        b.iter(|| schedule(&soc, &data, &choice, &costs))
    });
    let fast = vec![2usize; soc.cores().len()];
    group.bench_function("schedule/system1_min_latency", |b| {
        b.iter(|| schedule(&soc, &data, &fast, &costs))
    });
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
