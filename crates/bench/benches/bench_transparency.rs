//! Criterion bench: RCG extraction and version-ladder synthesis on the
//! paper's cores.

use criterion::{criterion_group, criterion_main, Criterion};
use socet_cells::DftCosts;
use socet_hscan::insert_hscan;
use socet_socs::{cpu_core, display_core, x25_core};
use socet_transparency::{synthesize_versions, Rcg};

fn bench_transparency(c: &mut Criterion) {
    let costs = DftCosts::default();
    let cores = [cpu_core(), display_core(), x25_core()];
    let mut group = c.benchmark_group("transparency");
    for core in &cores {
        let hscan = insert_hscan(core, &costs);
        group.bench_function(format!("rcg_extract/{}", core.name()), |b| {
            b.iter(|| Rcg::extract(core, &hscan))
        });
        group.bench_function(format!("synthesize_versions/{}", core.name()), |b| {
            b.iter(|| synthesize_versions(core, &hscan, &costs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transparency);
criterion_main!(benches);
