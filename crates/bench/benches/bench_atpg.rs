//! Criterion bench: elaboration, PODEM-based test generation and
//! fault-parallel sequential fault simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use socet_atpg::tpg::random_sequence;
use socet_atpg::{fault_list, generate_tests, SeqFaultSim, TpgConfig};
use socet_gate::elaborate;
use socet_socs::{gcd_core, preprocessor_core};

fn bench_atpg(c: &mut Criterion) {
    let mut group = c.benchmark_group("atpg");
    group.sample_size(10);
    let gcd = gcd_core();
    group.bench_function("elaborate/gcd", |b| b.iter(|| elaborate(&gcd).unwrap()));
    let nl = elaborate(&gcd).unwrap().netlist;
    let cfg = TpgConfig::default();
    group.bench_function("generate_tests/gcd", |b| {
        b.iter(|| generate_tests(&nl, &cfg))
    });

    let prep = preprocessor_core();
    let pnl = elaborate(&prep).unwrap().netlist;
    let faults = fault_list(&pnl);
    let vectors = random_sequence(pnl.inputs().len(), 32, 7);
    group.bench_function("seq_fault_sim/preprocessor_32c", |b| {
        b.iter(|| SeqFaultSim::new(&pnl).run(&faults, &vectors))
    });
    group.finish();
}

criterion_group!(benches, bench_atpg);
criterion_main!(benches);
