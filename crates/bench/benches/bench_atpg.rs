//! Criterion bench: elaboration, PODEM-based test generation and fault
//! simulation — the naive full-netlist path against the cone-pruned engine
//! (cold = constructed per run, warm = cones and buffers reused, parallel =
//! fault partitioning across all cores) on the largest netlist we have, the
//! flattened barcode chip.

use criterion::{criterion_group, criterion_main, Criterion};
use socet_atpg::tpg::random_sequence;
use socet_atpg::{fault_list, generate_tests, FaultSim, SeqFaultSim, TpgConfig};
use socet_baselines::flatten_soc;
use socet_gate::elaborate;
use socet_socs::{barcode_system, gcd_core, preprocessor_core};

/// Deterministic random scan patterns without pulling in an RNG dependency.
fn lcg_patterns(width: usize, count: usize, mut seed: u64) -> Vec<Vec<bool>> {
    (0..count)
        .map(|_| {
            (0..width)
                .map(|_| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    seed >> 63 != 0
                })
                .collect()
        })
        .collect()
}

fn bench_atpg(c: &mut Criterion) {
    let mut group = c.benchmark_group("atpg");
    group.sample_size(10);
    let gcd = gcd_core();
    group.bench_function("elaborate/gcd", |b| b.iter(|| elaborate(&gcd).unwrap()));
    let nl = elaborate(&gcd).unwrap().netlist;
    let cfg = TpgConfig::default();
    group.bench_function("generate_tests/gcd", |b| {
        b.iter(|| generate_tests(&nl, &cfg))
    });

    let prep = preprocessor_core();
    let pnl = elaborate(&prep).unwrap().netlist;
    let faults = fault_list(&pnl);
    let vectors = random_sequence(pnl.inputs().len(), 32, 7);
    group.bench_function("seq_fault_sim/preprocessor_32c", |b| {
        b.iter(|| SeqFaultSim::new(&pnl).run(&faults, &vectors))
    });

    // Combinational fault simulation on the flattened barcode chip — the
    // largest netlist in the repo. 128 patterns against the full fault
    // list; both engines drop detected faults block-to-block, so they do
    // comparable work.
    let chip = flatten_soc(&barcode_system()).expect("barcode system flattens");
    let chip_faults = fault_list(&chip);
    let mut warm = FaultSim::new(&chip).with_workers(1);
    let patterns = lcg_patterns(warm.pattern_width(), 128, 0xc41b);
    group.bench_function("comb_fault_sim/chip_naive", |b| {
        b.iter(|| FaultSim::new(&chip).detected_naive(&chip_faults, &patterns))
    });
    group.bench_function("comb_fault_sim/chip_cone_cold", |b| {
        b.iter(|| {
            FaultSim::new(&chip)
                .with_workers(1)
                .detected(&chip_faults, &patterns)
        })
    });
    group.bench_function("comb_fault_sim/chip_cone_warm", |b| {
        b.iter(|| warm.detected(&chip_faults, &patterns))
    });
    group.bench_function("comb_fault_sim/chip_cone_parallel", |b| {
        let mut sim = FaultSim::new(&chip);
        b.iter(|| sim.detected(&chip_faults, &patterns))
    });
    group.finish();
}

criterion_group!(benches, bench_atpg);
criterion_main!(benches);
