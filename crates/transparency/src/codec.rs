//! Binary codec for the core-version ladder — the transparency slice of a
//! prepared-core artifact.
//!
//! Versions are encoded in ladder order with their paths verbatim,
//! including RCG edge occupancy lists: the chip-level scheduler serializes
//! transfers that share edges, so a decoded ladder must preserve
//! [`TransparencyPath::shares_edges`] exactly.

use crate::rcg::EdgeId;
use crate::version::{CoreVersion, TransparencyPath};
use socet_cells::{decode_area_report, encode_area_report, CodecError, Dec, Enc};
use socet_rtl::PortId;

fn put_ports(ports: &[PortId], e: &mut Enc) {
    e.put_usize(ports.len());
    for p in ports {
        e.put_u32(p.index() as u32);
    }
}

fn get_ports(d: &mut Dec) -> Result<Vec<PortId>, CodecError> {
    let n = d.get_usize()?;
    let mut v = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        v.push(PortId::from_index(d.get_u32()? as usize));
    }
    Ok(v)
}

fn put_path(path: &TransparencyPath, e: &mut Enc) {
    put_ports(&path.inputs, e);
    put_ports(&path.outputs, e);
    e.put_u32(path.latency);
    e.put_usize(path.edges.len());
    for edge in &path.edges {
        e.put_u32(edge.index() as u32);
    }
}

fn get_path(d: &mut Dec) -> Result<TransparencyPath, CodecError> {
    let inputs = get_ports(d)?;
    let outputs = get_ports(d)?;
    let latency = d.get_u32()?;
    let edge_count = d.get_usize()?;
    let mut edges = Vec::with_capacity(edge_count.min(1 << 20));
    for _ in 0..edge_count {
        edges.push(EdgeId(d.get_u32()?));
    }
    Ok(TransparencyPath {
        inputs,
        outputs,
        latency,
        edges,
    })
}

/// Encodes the version ladder into `e`.
pub fn encode_versions(versions: &[CoreVersion], e: &mut Enc) {
    e.put_usize(versions.len());
    for v in versions {
        e.put_str(&v.name);
        e.put_u8(v.level);
        e.put_usize(v.paths.len());
        for p in &v.paths {
            put_path(p, e);
        }
        encode_area_report(&v.overhead, e);
    }
}

/// Decodes a ladder written by [`encode_versions`].
pub fn decode_versions(d: &mut Dec) -> Result<Vec<CoreVersion>, CodecError> {
    let count = d.get_usize()?;
    if count > 16 {
        return Err(CodecError::Corrupt("implausible version-ladder length"));
    }
    let mut versions = Vec::with_capacity(count);
    for _ in 0..count {
        let name = d.get_str()?;
        let level = d.get_u8()?;
        let path_count = d.get_usize()?;
        let mut paths = Vec::with_capacity(path_count.min(1 << 16));
        for _ in 0..path_count {
            paths.push(get_path(d)?);
        }
        let overhead = decode_area_report(d)?;
        versions.push(CoreVersion {
            name,
            level,
            paths,
            overhead,
        });
    }
    Ok(versions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::synthesize_versions;
    use socet_cells::DftCosts;
    use socet_hscan::insert_hscan;
    use socet_rtl::{Core, CoreBuilder, Direction};

    fn pipeline() -> Core {
        let mut b = CoreBuilder::new("pipe");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_reg_to_reg(r1, r2).unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        b.build().unwrap()
    }

    fn ladder() -> Vec<CoreVersion> {
        let core = pipeline();
        let costs = DftCosts::default();
        let hscan = insert_hscan(&core, &costs);
        synthesize_versions(&core, &hscan, &costs)
    }

    fn encode(versions: &[CoreVersion]) -> Vec<u8> {
        let mut e = Enc::new();
        encode_versions(versions, &mut e);
        e.into_bytes()
    }

    #[test]
    fn ladder_round_trips_exactly() {
        let versions = ladder();
        let bytes = encode(&versions);
        let mut d = Dec::new(&bytes);
        let back = decode_versions(&mut d).unwrap();
        assert!(d.is_empty());
        assert_eq!(back.len(), versions.len());
        for (a, b) in versions.iter().zip(&back) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.level(), b.level());
            assert_eq!(a.paths(), b.paths());
            assert_eq!(a.overhead(), b.overhead());
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode(&ladder()), encode(&ladder()));
    }

    #[test]
    fn truncation_and_corruption_are_errors() {
        let bytes = encode(&ladder());
        for cut in [0, 7, bytes.len() / 2, bytes.len() - 1] {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(decode_versions(&mut d).is_err());
        }
        let mut huge = bytes.clone();
        huge[0] = 0xff; // ladder length 255: implausible
        let mut d = Dec::new(&huge);
        assert!(decode_versions(&mut d).is_err());
    }
}
