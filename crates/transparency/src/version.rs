//! Core-version synthesis: the transparency latency vs area-overhead ladder
//! (paper §4, Figs. 5–8).
//!
//! Each core gets several *versions*, all sharing the same HSCAN DFT but
//! differing in how aggressively transparency latency is bought with area.
//! Versions are **cumulative** — the paper's CPU Version 2 (10 cells) keeps
//! Version 1's freeze logic (3 cells) and adds the select steering of mux
//! `M` (7 cells); Version 3 (30 cells) adds a 4-bit transparency mux
//! (20 cells) on top:
//!
//! * **Version 1** — reuse HSCAN paths wherever possible (deleted-path
//!   disjointness first, then reuse), fall back to other existing paths,
//!   add hardware only when nothing exists. Minimum area.
//! * **Version 2** — choose the *shortest* path over all existing edges,
//!   paying select-steering logic for non-HSCAN mux/bus edges.
//! * **Version 3** — additionally insert a transparency multiplexer for
//!   every *data* input/output pair whose latency is still above one cycle
//!   (control ports keep their single-bit chains, §4 last paragraph).

use crate::rcg::{EdgeId, Rcg, RcgEdgeKind, RcgNode};
use crate::search::{backward_search, forward_search, PathFound, SearchError};
use socet_cells::{AreaReport, CellKind, CellLibrary, DftCosts};
use socet_hscan::HscanResult;
use socet_rtl::{BitRange, ConnectionId, Core, PortId, SignalClass};
use std::collections::HashSet;
use std::fmt;

/// A usable transparency path of one core version: data entering at
/// `inputs` appears unchanged at `outputs` after `latency` cycles.
///
/// Several inputs / outputs mean "a combination of ports" (split nodes on
/// the way). `edges` identifies the RCG edges occupied while the transfer is
/// in flight — two paths that share an edge cannot run concurrently and are
/// serialized by the chip-level scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransparencyPath {
    /// Source input port(s).
    pub inputs: Vec<PortId>,
    /// Destination output port(s).
    pub outputs: Vec<PortId>,
    /// Transfer latency in cycles.
    pub latency: u32,
    /// RCG edges occupied by the transfer.
    pub edges: Vec<EdgeId>,
}

impl TransparencyPath {
    /// Whether two paths occupy a common RCG edge (and therefore must be
    /// used sequentially, per §3: "data through one path can be propagated
    /// only after data has been completely propagated through the other").
    pub fn shares_edges(&self, other: &TransparencyPath) -> bool {
        self.edges.iter().any(|e| other.edges.contains(e))
    }
}

/// A distinct piece of transparency hardware, deduplicated across the
/// version ladder so overheads accumulate the way the paper's do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ChargeItem {
    /// Freeze (hold) logic at one split-node branch edge: the same physical
    /// hold gate serves every search that balances through it.
    Freeze(EdgeId),
    /// Select steering to reuse a non-HSCAN mux/bus connection.
    Steered(ConnectionId),
    /// Load-enable OR gate to reuse a non-HSCAN direct connection.
    DirectLoad(ConnectionId),
    /// A dedicated transparency multiplexer of the given width.
    TransMux { anchor: PortId, width: u16 },
}

impl ChargeItem {
    fn charge(&self, costs: &DftCosts, area: &mut AreaReport) {
        match self {
            ChargeItem::Freeze { .. } => {
                area.tally(CellKind::And2, costs.freeze_gates_per_register)
            }
            ChargeItem::Steered(_) => area.tally(CellKind::And2, costs.nonhscan_select_gates),
            ChargeItem::DirectLoad(_) => area.tally(CellKind::Or2, costs.hscan_direct_or_gates),
            ChargeItem::TransMux { width, .. } => area.tally(
                CellKind::Mux2,
                costs.transparency_mux_per_bit * u64::from(*width),
            ),
        }
    }
}

/// One synthesized version of a core: its transparency paths and the area
/// they cost beyond HSCAN.
#[derive(Debug, Clone)]
pub struct CoreVersion {
    pub(crate) name: String,
    pub(crate) level: u8,
    pub(crate) paths: Vec<TransparencyPath>,
    pub(crate) overhead: AreaReport,
}

impl CoreVersion {
    /// The version's name, `"Version 1"` through `"Version 3"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ladder level (1 = min area, 3 = min latency).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The version's transparency paths.
    pub fn paths(&self) -> &[TransparencyPath] {
        &self.paths
    }

    /// The transparency area overhead (excluding the HSCAN overhead, like
    /// the paper's Fig. 6: "the area overheads are for the extra
    /// transparency logic only").
    pub fn overhead(&self) -> &AreaReport {
        &self.overhead
    }

    /// Overhead in cells under `lib`.
    pub fn overhead_cells(&self, lib: &CellLibrary) -> u64 {
        self.overhead.cells(lib)
    }

    /// The latency of moving data from `input` to `output`, if some path
    /// provides that pair. When several do, the fastest wins.
    pub fn pair_latency(&self, input: PortId, output: PortId) -> Option<u32> {
        self.paths
            .iter()
            .filter(|p| p.inputs.contains(&input) && p.outputs.contains(&output))
            .map(|p| p.latency)
            .min()
    }

    /// Every `(input, output, latency, path index)` tuple the version
    /// offers — the raw material of the chip-level core connectivity graph.
    pub fn pairs(&self) -> Vec<(PortId, PortId, u32, usize)> {
        let mut v = Vec::new();
        for (pi, p) in self.paths.iter().enumerate() {
            for &i in &p.inputs {
                for &o in &p.outputs {
                    v.push((i, o, p.latency, pi));
                }
            }
        }
        v
    }

    /// Whether every input of `core` can be propagated and every output
    /// justified — the paper's definition of a transparent core.
    pub fn is_complete(&self, core: &Core) -> bool {
        core.input_ports()
            .iter()
            .all(|i| self.paths.iter().any(|p| p.inputs.contains(i)))
            && core
                .output_ports()
                .iter()
                .all(|o| self.paths.iter().any(|p| p.outputs.contains(o)))
    }
}

impl fmt::Display for CoreVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} paths, overhead {}",
            self.name,
            self.paths.len(),
            self.overhead
        )
    }
}

/// Synthesizes the three-version ladder for `core`.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction};
/// use socet_hscan::insert_hscan;
/// use socet_cells::DftCosts;
/// use socet_transparency::synthesize_versions;
///
/// let mut b = CoreBuilder::new("pipe");
/// let i = b.port("i", Direction::In, 8)?;
/// let o = b.port("o", Direction::Out, 8)?;
/// let r1 = b.register("r1", 8)?;
/// let r2 = b.register("r2", 8)?;
/// b.connect_port_to_reg(i, r1)?;
/// b.connect_reg_to_reg(r1, r2)?;
/// b.connect_reg_to_port(r2, o)?;
/// let core = b.build()?;
/// let hscan = insert_hscan(&core, &DftCosts::default());
/// let versions = synthesize_versions(&core, &hscan, &DftCosts::default());
/// assert_eq!(versions.len(), 3);
/// // Version 1 walks the pipeline (2 cycles); Version 3 buys latency 1.
/// assert_eq!(versions[0].pair_latency(i, o), Some(2));
/// assert_eq!(versions[2].pair_latency(i, o), Some(1));
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
pub fn synthesize_versions(core: &Core, hscan: &HscanResult, costs: &DftCosts) -> Vec<CoreVersion> {
    try_synthesize_versions(core, hscan, costs).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`synthesize_versions`]: pathological cores (no inputs or
/// no outputs) come back as a [`SearchError`] instead of aborting.
pub fn try_synthesize_versions(
    core: &Core,
    hscan: &HscanResult,
    costs: &DftCosts,
) -> Result<Vec<CoreVersion>, SearchError> {
    let _span = socet_obs::span(socet_obs::names::VERSIONS);
    let mut versions = Vec::with_capacity(3);
    let mut cumulative: HashSet<ChargeItem> = HashSet::new();
    for level in 1..=3u8 {
        let (_, paths, items) = synthesize_level(core, hscan, level)?;
        cumulative.extend(items);
        let mut overhead = AreaReport::new();
        for item in &cumulative {
            item.charge(costs, &mut overhead);
        }
        versions.push(CoreVersion {
            name: format!("Version {level}"),
            level,
            paths,
            overhead,
        });
    }
    socet_obs::add(
        socet_obs::Counter::VersionsSynthesized,
        versions.len() as u64,
    );
    Ok(versions)
}

/// Solves one ladder level: propagation for every input first, then
/// justification for every output (the §4 order), collecting the hardware
/// items the solution needs. Also returns the (possibly mux-augmented) RCG
/// the solution's edge ids index into.
fn synthesize_level(
    core: &Core,
    hscan: &HscanResult,
    level: u8,
) -> Result<(Rcg, Vec<TransparencyPath>, HashSet<ChargeItem>), SearchError> {
    let mut rcg = Rcg::extract(core, hscan);
    let mut paths: Vec<TransparencyPath> = Vec::new();
    let mut used: HashSet<EdgeId> = HashSet::new();
    let mut items: HashSet<ChargeItem> = HashSet::new();

    for i in core.input_ports() {
        let found = propagate_input(core, &mut rcg, i, level, &used, &mut items)?;
        if let Some(found) = found {
            record(
                &rcg, core, &found, true, i, &mut used, &mut items, &mut paths,
            );
        }
    }
    for o in core.output_ports() {
        let found = justify_output(core, &mut rcg, o, level, &used, &mut items)?;
        if let Some(found) = found {
            record(
                &rcg, core, &found, false, o, &mut used, &mut items, &mut paths,
            );
        }
    }
    Ok((rcg, paths, items))
}

/// Re-derives one ladder level's register-connectivity graph together with
/// the paths solved on it.
///
/// The [`TransparencyPath`] edge ids stored in a [`CoreVersion`] index into
/// the *per-level* RCG that [`synthesize_versions`] built and mutated
/// (transparency muxes are inserted during the search) and then dropped.
/// Structural consumers — notably the gate-level replay oracle, which must
/// rebuild the exact register/mux fabric a version's paths travel — call
/// this to get the graph those ids resolve against. The returned paths are
/// identical to `versions[level - 1].paths` for the same inputs, because
/// the whole synthesis is deterministic.
///
/// # Errors
///
/// Same contract as [`try_synthesize_versions`].
pub fn level_support(
    core: &Core,
    hscan: &HscanResult,
    level: u8,
) -> Result<(Rcg, Vec<TransparencyPath>), SearchError> {
    let (rcg, paths, _) = synthesize_level(core, hscan, level)?;
    Ok((rcg, paths))
}

#[allow(clippy::too_many_arguments)]
fn record(
    rcg: &Rcg,
    core: &Core,
    found: &PathFound,
    forward: bool,
    anchor: PortId,
    used: &mut HashSet<EdgeId>,
    items: &mut HashSet<ChargeItem>,
    paths: &mut Vec<TransparencyPath>,
) {
    used.extend(found.edges.iter().copied());
    for e in &found.freeze_edges {
        items.insert(ChargeItem::Freeze(*e));
    }
    for e in &found.edges {
        if let RcgEdgeKind::Existing {
            connection,
            hscan: false,
            steered,
        } = rcg.edge(*e).kind
        {
            items.insert(if steered {
                ChargeItem::Steered(connection)
            } else {
                ChargeItem::DirectLoad(connection)
            });
        }
    }
    let term_ports: Vec<PortId> = found
        .terminals
        .iter()
        .filter_map(|t| match t {
            RcgNode::In(p) | RcgNode::Out(p) => Some(*p),
            RcgNode::Reg(_) => None,
        })
        .collect();
    let path = if forward {
        TransparencyPath {
            inputs: vec![anchor],
            outputs: term_ports,
            latency: found.latency,
            edges: found.edges.clone(),
        }
    } else {
        TransparencyPath {
            inputs: term_ports,
            outputs: vec![anchor],
            latency: found.latency,
            edges: found.edges.clone(),
        }
    };
    let _ = core;
    // Propagation and justification often find the same physical transfer
    // (e.g. a straight pipeline); keep one copy.
    if !paths.contains(&path) {
        paths.push(path);
    }
}

/// Searches for a justification of output `o` under the level's rules,
/// inserting a transparency mux when nothing exists (any level) or when a
/// data pair is still slower than one cycle (level 3).
fn justify_output(
    core: &Core,
    rcg: &mut Rcg,
    o: PortId,
    level: u8,
    used: &HashSet<EdgeId>,
    items: &mut HashSet<ChargeItem>,
) -> Result<Option<PathFound>, SearchError> {
    let node = RcgNode::Out(o);
    let mut best = phased_search(rcg, node, level, used, SearchKind::Backward);
    let is_data = core.port(o).class() == SignalClass::Data;
    let needs_mux = match &best {
        Some(f) => level == 3 && is_data && f.latency > 1,
        None => true,
    };
    if needs_mux {
        let from_input = pick_input_for(core, o)?;
        let reg = rcg
            .edges_into(node)
            .map(|e| rcg.edge(e).from)
            .find(|n| n.is_reg());
        let width = mux_width(core, from_input, o);
        let mux_to = reg.unwrap_or(node);
        rcg.add_transparency_mux(
            RcgNode::In(from_input),
            mux_to,
            BitRange::full(width),
            BitRange::full(width),
        );
        items.insert(ChargeItem::TransMux { anchor: o, width });
        let with_mux = phased_search(rcg, node, level, used, SearchKind::Backward);
        if let Some(f) = with_mux {
            if best.as_ref().is_none_or(|b| f.latency < b.latency) {
                best = Some(f);
            }
        }
    }
    Ok(best)
}

/// Searches for a propagation of input `i`, mirroring [`justify_output`].
fn propagate_input(
    core: &Core,
    rcg: &mut Rcg,
    i: PortId,
    level: u8,
    used: &HashSet<EdgeId>,
    items: &mut HashSet<ChargeItem>,
) -> Result<Option<PathFound>, SearchError> {
    let node = RcgNode::In(i);
    let mut best = phased_search(rcg, node, level, used, SearchKind::Forward);
    let is_data = core.port(i).class() == SignalClass::Data;
    let needs_mux = match &best {
        Some(f) => level == 3 && is_data && f.latency > 1,
        None => true,
    };
    if needs_mux {
        // "Any register reachable from the input in one cycle is connected
        // to an output with a test multiplexer", preferring unused outputs.
        let reachable_reg = rcg
            .edges_from(node)
            .map(|e| rcg.edge(e).to)
            .find(|n| n.is_reg());
        let to_output = pick_output_for(core, i)?;
        let width = mux_width(core, i, to_output);
        let mux_from = reachable_reg.unwrap_or(node);
        rcg.add_transparency_mux(
            mux_from,
            RcgNode::Out(to_output),
            BitRange::full(width),
            BitRange::full(width),
        );
        items.insert(ChargeItem::TransMux { anchor: i, width });
        let with_mux = phased_search(rcg, node, level, used, SearchKind::Forward);
        if let Some(f) = with_mux {
            if best.as_ref().is_none_or(|b| f.latency < b.latency) {
                best = Some(f);
            }
        }
    }
    Ok(best)
}

#[derive(Clone, Copy)]
enum SearchKind {
    Forward,
    Backward,
}

/// The paper's phase schedule:
///
/// * level 1: HSCAN-disjoint → HSCAN-reuse → any-disjoint → any-reuse,
///   first success wins (HSCAN reuse is free, so it beats buying logic);
/// * levels 2–3: minimum latency over all existing and synthetic edges,
///   preferring a disjoint route on ties.
fn phased_search(
    rcg: &Rcg,
    node: RcgNode,
    level: u8,
    used: &HashSet<EdgeId>,
    kind: SearchKind,
) -> Option<PathFound> {
    let empty = HashSet::new();
    let hscan_only = |e: EdgeId| rcg.edge(e).kind.is_hscan();
    let any = |_: EdgeId| true;
    let run = |allowed: &dyn Fn(EdgeId) -> bool, banned: &HashSet<EdgeId>| match kind {
        SearchKind::Forward => forward_search(rcg, node, allowed, banned),
        SearchKind::Backward => backward_search(rcg, node, allowed, banned),
    };
    if level == 1 {
        run(&hscan_only, used)
            .or_else(|| run(&hscan_only, &empty))
            .or_else(|| run(&any, used))
            .or_else(|| run(&any, &empty))
    } else {
        let disjoint = run(&any, used);
        let reuse = run(&any, &empty);
        match (disjoint, reuse) {
            (Some(d), Some(r)) => Some(if d.latency <= r.latency { d } else { r }),
            (d, r) => d.or(r),
        }
    }
}

fn pick_input_for(core: &Core, o: PortId) -> Result<PortId, SearchError> {
    let want = core.port(o).width();
    let inputs = core.input_ports();
    // Prefer a data input wide enough; then the widest data input; then
    // anything.
    inputs
        .iter()
        .copied()
        .find(|i| core.port(*i).class() == SignalClass::Data && core.port(*i).width() >= want)
        .or_else(|| {
            inputs
                .iter()
                .copied()
                .filter(|i| core.port(*i).class() == SignalClass::Data)
                .max_by_key(|i| core.port(*i).width())
        })
        .or_else(|| inputs.first().copied())
        .ok_or_else(|| SearchError::NoInputPorts {
            core: core.name().to_string(),
        })
}

fn pick_output_for(core: &Core, i: PortId) -> Result<PortId, SearchError> {
    let want = core.port(i).width();
    let outputs = core.output_ports();
    outputs
        .iter()
        .copied()
        .find(|o| core.port(*o).class() == SignalClass::Data && core.port(*o).width() >= want)
        .or_else(|| {
            outputs
                .iter()
                .copied()
                .filter(|o| core.port(*o).class() == SignalClass::Data)
                .max_by_key(|o| core.port(*o).width())
        })
        .or_else(|| outputs.first().copied())
        .ok_or_else(|| SearchError::NoOutputPorts {
            core: core.name().to_string(),
        })
}

fn mux_width(core: &Core, i: PortId, o: PortId) -> u16 {
    core.port(i).width().min(core.port(o).width())
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_cells::CellLibrary;
    use socet_hscan::insert_hscan;
    use socet_rtl::{CoreBuilder, Direction, RtlNode};

    fn ladder(core: &Core) -> Vec<CoreVersion> {
        let costs = DftCosts::default();
        let hscan = insert_hscan(core, &costs);
        synthesize_versions(core, &hscan, &costs)
    }

    /// The paper's CPU skeleton (Fig. 7): Data feeds the O-split IR; the
    /// accumulator chain walks six registers to Address(7-0); MAR page hangs
    /// off IR for Address(11-8); mux `M` offers a non-HSCAN shortcut
    /// Data → MAR_offset.
    fn cpu_like() -> Core {
        let mut b = CoreBuilder::new("cpu");
        let data = b.port("Data", Direction::In, 8).unwrap();
        let a_lo = b.port("AddrLo", Direction::Out, 8).unwrap();
        let a_hi = b.port("AddrHi", Direction::Out, 4).unwrap();
        let ir = b.register("IR", 8).unwrap();
        let acc = b.register("ACC", 8).unwrap();
        let status = b.register("STATUS", 8).unwrap();
        let tmp = b.register("TMP", 8).unwrap();
        let pc = b.register("PC", 8).unwrap();
        let mar_off = b.register("MAR_offset", 8).unwrap();
        let mar_page = b.register("MAR_page", 4).unwrap();
        b.connect_mux(RtlNode::Port(data), RtlNode::Reg(ir), 0)
            .unwrap();
        // O-split IR: low nibble to ACC low and MAR page, high nibble to
        // ACC high.
        b.connect_mux_slice(
            RtlNode::Reg(ir),
            socet_rtl::BitRange::new(0, 3),
            RtlNode::Reg(acc),
            socet_rtl::BitRange::new(0, 3),
            0,
        )
        .unwrap();
        b.connect_mux_slice(
            RtlNode::Reg(ir),
            socet_rtl::BitRange::new(4, 7),
            RtlNode::Reg(acc),
            socet_rtl::BitRange::new(4, 7),
            0,
        )
        .unwrap();
        b.connect_mux_slice(
            RtlNode::Reg(ir),
            socet_rtl::BitRange::new(0, 3),
            RtlNode::Reg(mar_page),
            socet_rtl::BitRange::full(4),
            0,
        )
        .unwrap();
        b.connect_mux(RtlNode::Reg(acc), RtlNode::Reg(status), 0)
            .unwrap();
        b.connect_mux(RtlNode::Reg(status), RtlNode::Reg(tmp), 0)
            .unwrap();
        b.connect_mux(RtlNode::Reg(tmp), RtlNode::Reg(pc), 0)
            .unwrap();
        b.connect_mux(RtlNode::Reg(pc), RtlNode::Reg(mar_off), 0)
            .unwrap();
        // Non-HSCAN shortcut: mux M.
        b.connect_mux(RtlNode::Port(data), RtlNode::Reg(mar_off), 1)
            .unwrap();
        b.connect_reg_to_port(mar_off, a_lo).unwrap();
        b.connect_reg_to_port(mar_page, a_hi).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn cpu_ladder_matches_fig6() {
        let core = cpu_like();
        let data = core.find_port("Data").unwrap();
        let a_lo = core.find_port("AddrLo").unwrap();
        let a_hi = core.find_port("AddrHi").unwrap();
        let versions = ladder(&core);
        let lib = CellLibrary::generic_08um();
        // Fig. 6 latencies: v1 = (6, 2); v2 = (1, 2); v3 = (1, 1).
        assert_eq!(versions[0].pair_latency(data, a_lo), Some(6));
        assert_eq!(versions[0].pair_latency(data, a_hi), Some(2));
        assert_eq!(versions[1].pair_latency(data, a_lo), Some(1));
        assert_eq!(versions[1].pair_latency(data, a_hi), Some(2));
        assert_eq!(versions[2].pair_latency(data, a_lo), Some(1));
        assert_eq!(versions[2].pair_latency(data, a_hi), Some(1));
        // Fig. 6 overheads: 3 / 10 / 30 cells.
        let ovh: Vec<u64> = versions.iter().map(|v| v.overhead_cells(&lib)).collect();
        assert_eq!(ovh, vec![3, 10, 30]);
    }

    #[test]
    fn three_versions_are_generated() {
        let core = cpu_like();
        let versions = ladder(&core);
        assert_eq!(versions.len(), 3);
        assert_eq!(versions[0].name(), "Version 1");
        assert_eq!(versions[2].level(), 3);
    }

    #[test]
    fn overheads_are_monotone() {
        let core = cpu_like();
        let versions = ladder(&core);
        let lib = CellLibrary::generic_08um();
        let ovh: Vec<u64> = versions.iter().map(|v| v.overhead_cells(&lib)).collect();
        assert!(ovh[0] <= ovh[1] && ovh[1] <= ovh[2], "{ovh:?}");
    }

    #[test]
    fn all_versions_are_complete() {
        let core = cpu_like();
        for v in ladder(&core) {
            assert!(v.is_complete(&core), "{} incomplete", v.name());
        }
    }

    #[test]
    fn pairs_enumerate_inputs_times_outputs() {
        let core = cpu_like();
        let versions = ladder(&core);
        for v in &versions {
            for (i, o, lat, pidx) in v.pairs() {
                assert_eq!(v.paths()[pidx].latency, lat);
                assert!(core.port(i).direction() == Direction::In);
                assert!(core.port(o).direction() == Direction::Out);
            }
        }
    }

    #[test]
    fn v1_address_paths_share_edges() {
        // The paper: both Address outputs justify through (IR, Data) in
        // Version 1, so the transfers serialize (6 + 2 = 8 cycles total).
        let core = cpu_like();
        let versions = ladder(&core);
        let v1 = &versions[0];
        let a_lo = core.find_port("AddrLo").unwrap();
        let a_hi = core.find_port("AddrHi").unwrap();
        let p_lo = v1
            .paths()
            .iter()
            .find(|p| p.outputs.contains(&a_lo) && p.latency == 6)
            .unwrap();
        let p_hi = v1
            .paths()
            .iter()
            .find(|p| p.outputs.contains(&a_hi) && p.latency == 2)
            .unwrap();
        assert!(p_lo.shares_edges(p_hi));
    }

    #[test]
    fn control_ports_keep_chains_in_v3() {
        // A 1-bit control path of latency 2 must NOT get a transparency mux
        // at level 3.
        let mut b = CoreBuilder::new("ctl");
        let d = b.port("d", Direction::In, 8).unwrap();
        let q = b.port("q", Direction::Out, 8).unwrap();
        let rst = b.control_port("rst", Direction::In).unwrap();
        let rd = b
            .port_with_class("rd", Direction::Out, 1, SignalClass::Control)
            .unwrap();
        let r = b.register("r", 8).unwrap();
        let c1 = b.register("c1", 1).unwrap();
        let c2 = b.register("c2", 1).unwrap();
        b.connect_port_to_reg(d, r).unwrap();
        b.connect_reg_to_port(r, q).unwrap();
        b.connect_port_to_reg(rst, c1).unwrap();
        b.connect_reg_to_reg(c1, c2).unwrap();
        b.connect_reg_to_port(c2, rd).unwrap();
        let core = b.build().unwrap();
        let versions = ladder(&core);
        assert_eq!(versions[2].pair_latency(rst, rd), Some(2));
        // And the data path still got its latency-1 treatment... it is
        // already 1 (d -> r -> q), so no mux anywhere: v3 overhead == v1.
        let lib = CellLibrary::generic_08um();
        assert_eq!(
            versions[0].overhead_cells(&lib),
            versions[2].overhead_cells(&lib)
        );
    }

    #[test]
    fn isolated_output_gets_transparency_mux() {
        // An output fed only by an FU: no lossless justification path at
        // all; every level must fall back to a mux.
        let mut b = CoreBuilder::new("fuout");
        let i = b.port("i", Direction::In, 4).unwrap();
        let o = b.port("o", Direction::Out, 4).unwrap();
        let good = b.port("good", Direction::Out, 4).unwrap();
        let r = b.register("r", 4).unwrap();
        let fu = b.functional_unit("f", socet_rtl::FuKind::Logic, 4).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, good).unwrap();
        b.connect_reg_to_fu(r, fu).unwrap();
        b.connect_fu_to_port(fu, o).unwrap();
        let core = b.build().unwrap();
        let versions = ladder(&core);
        let lib = CellLibrary::generic_08um();
        for v in versions {
            assert!(v.is_complete(&core), "{}", v.name());
            assert!(v.overhead_cells(&lib) >= 4 * 5, "mux cells charged");
        }
    }

    #[test]
    fn pipeline_versions_doc_example() {
        let mut b = CoreBuilder::new("pipe");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_reg_to_reg(r1, r2).unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        let core = b.build().unwrap();
        let versions = ladder(&core);
        assert_eq!(versions[0].pair_latency(i, o), Some(2));
        assert_eq!(versions[2].pair_latency(i, o), Some(1));
    }
}
