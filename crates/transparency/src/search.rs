//! Split-aware transparency path search over the RCG (paper §4).
//!
//! Forward search propagates a core input's value to output port(s); the
//! reverse search justifies an output port's value from input(s). Both walk
//! the RCG breadth-first in spirit, but branch at split nodes:
//!
//! * forward, an O-split node spreads the data over *all* of its disjoint
//!   fan-out slices, so every slice group must reach an output;
//! * backward, a C-split node gathers its bits from *all* of its disjoint
//!   fan-in slices, so every slice group must be justified.
//!
//! Parallel branches that meet again (reconvergence at an O-split on the
//! backward search, as in the CPU example of Fig. 7) merge naturally. When
//! branches have unequal latency the shorter ones are *frozen* — extra hold
//! logic at their join — and the path latency is the maximum branch.

use crate::rcg::{EdgeId, Rcg, RcgNode};
use std::collections::HashSet;
use std::fmt;

/// Why transparency search (or version synthesis built on it) cannot
/// proceed for a core. These used to be `expect` panics deep inside the
/// synthesis path; the chip-level scheduler surfaces them as part of its
/// own typed error instead of crashing the whole exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The core has no input ports, so no data can ever be justified into
    /// it and no transparency mux has a source to steal from.
    NoInputPorts {
        /// Name of the offending core.
        core: String,
    },
    /// The core has no output ports, so nothing can be propagated out.
    NoOutputPorts {
        /// Name of the offending core.
        core: String,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::NoInputPorts { core } => {
                write!(
                    f,
                    "core `{core}` has no input ports to route test data through"
                )
            }
            SearchError::NoOutputPorts { core } => {
                write!(
                    f,
                    "core `{core}` has no output ports to observe test data at"
                )
            }
        }
    }
}

impl std::error::Error for SearchError {}

/// A transparency path found by [`forward_search`] or [`backward_search`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathFound {
    /// Total transparency latency in cycles (longest branch after
    /// balancing).
    pub latency: u32,
    /// Every RCG edge the path (tree) uses, deduplicated.
    pub edges: Vec<EdgeId>,
    /// The terminal nodes: output ports (forward) or input ports
    /// (backward). More than one means "a combination of ports", as in the
    /// paper's DISPLAY table.
    pub terminals: Vec<RcgNode>,
    /// The split-node fanin/fanout edges whose branches were shorter than
    /// the longest one and therefore need freeze (hold) logic — the paper's
    /// "for each fanin which does not fall on the longest subpath we add
    /// extra logic to freeze the data there". Keying freezes by edge lets
    /// version synthesis dedupe the same physical hardware across searches.
    pub freeze_edges: Vec<EdgeId>,
}

impl PathFound {
    /// Number of distinct freeze insertions.
    pub fn freezes(&self) -> u32 {
        self.freeze_edges.len() as u32
    }
}

/// Searches forward from input `from` for a way to propagate its value to
/// output port(s), using only edges for which `allowed` is true and never
/// touching `banned` edges.
///
/// Returns `None` when no propagation path exists under those constraints.
pub fn forward_search(
    rcg: &Rcg,
    from: RcgNode,
    allowed: &dyn Fn(EdgeId) -> bool,
    banned: &HashSet<EdgeId>,
) -> Option<PathFound> {
    let mut stack = Vec::new();
    let raw = walk(rcg, from, allowed, banned, &mut stack, SearchDir::Forward)?;
    Some(finish(raw))
}

/// Searches backward from output `to` for a way to justify its value from
/// input port(s), with the same edge constraints as [`forward_search`].
pub fn backward_search(
    rcg: &Rcg,
    to: RcgNode,
    allowed: &dyn Fn(EdgeId) -> bool,
    banned: &HashSet<EdgeId>,
) -> Option<PathFound> {
    let mut stack = Vec::new();
    let raw = walk(rcg, to, allowed, banned, &mut stack, SearchDir::Backward)?;
    Some(finish(raw))
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SearchDir {
    Forward,
    Backward,
}

/// Raw search result before edge deduplication.
struct Raw {
    latency: u32,
    edges: Vec<EdgeId>,
    terminals: Vec<RcgNode>,
    freeze_edges: Vec<EdgeId>,
}

fn finish(raw: Raw) -> PathFound {
    let mut edges = raw.edges;
    edges.sort_unstable();
    edges.dedup();
    let mut terminals = raw.terminals;
    terminals.sort_unstable();
    terminals.dedup();
    let mut freeze_edges = raw.freeze_edges;
    freeze_edges.sort_unstable();
    freeze_edges.dedup();
    PathFound {
        latency: raw.latency,
        edges,
        terminals,
        freeze_edges,
    }
}

/// Recursive walk with an ancestor stack as the cycle guard. Exhaustive over
/// edge choices (RCGs are small — tens of nodes), minimizing latency.
fn walk(
    rcg: &Rcg,
    node: RcgNode,
    allowed: &dyn Fn(EdgeId) -> bool,
    banned: &HashSet<EdgeId>,
    stack: &mut Vec<RcgNode>,
    dir: SearchDir,
) -> Option<Raw> {
    // Terminal check.
    let at_terminal = match dir {
        SearchDir::Forward => node.is_output(),
        SearchDir::Backward => node.is_input(),
    };
    if at_terminal {
        return Some(Raw {
            latency: 0,
            edges: Vec::new(),
            terminals: vec![node],
            freeze_edges: Vec::new(),
        });
    }
    if stack.contains(&node) {
        return None;
    }
    stack.push(node);

    let candidate_edges: Vec<EdgeId> = match dir {
        SearchDir::Forward => rcg.edges_from(node).collect(),
        SearchDir::Backward => rcg.edges_into(node).collect(),
    };
    let usable: Vec<EdgeId> = candidate_edges
        .into_iter()
        .filter(|e| allowed(*e) && !banned.contains(e))
        .collect();

    let must_split = match dir {
        SearchDir::Forward => rcg.is_o_split(node),
        SearchDir::Backward => rcg.is_c_split(node),
    };

    let result = if must_split {
        split_walk(rcg, node, &usable, stack, dir, allowed, banned)
    } else {
        // Pick the usable edge whose continuation minimizes latency.
        let mut best: Option<Raw> = None;
        for e in usable {
            let edge = rcg.edge(e);
            let next = match dir {
                SearchDir::Forward => edge.to,
                SearchDir::Backward => edge.from,
            };
            let step = match dir {
                SearchDir::Forward => edge.latency(),
                SearchDir::Backward => u32::from(node.is_reg()),
            };
            if let Some(sub) = walk(rcg, next, allowed, banned, stack, dir) {
                let total = sub.latency + step;
                let better = best.as_ref().is_none_or(|b| total < b.latency);
                if better {
                    let mut edges = sub.edges;
                    edges.push(e);
                    best = Some(Raw {
                        latency: total,
                        edges,
                        terminals: sub.terminals,
                        freeze_edges: sub.freeze_edges,
                    });
                }
            }
        }
        best
    };

    stack.pop();
    result
}

/// All disjoint slice groups of a split node must continue. Edges whose
/// ranges overlap form one group (either serves); disjoint ranges are
/// separate mandatory branches.
///
/// Grouping is done over the node's *entire* structural fanout/fanin — a
/// slice group whose every edge is disallowed makes the whole walk fail
/// (the data cannot cross the node bit-for-bit under the current edge
/// constraints), rather than silently dropping that slice.
fn split_walk(
    rcg: &Rcg,
    node: RcgNode,
    usable: &[EdgeId],
    stack: &mut Vec<RcgNode>,
    dir: SearchDir,
    allowed: &dyn Fn(EdgeId) -> bool,
    banned: &HashSet<EdgeId>,
) -> Option<Raw> {
    if usable.is_empty() {
        return None;
    }
    // Group the FULL structural edge set by overlap on the node-side range.
    let all_edges: Vec<EdgeId> = match dir {
        SearchDir::Forward => rcg.edges_from(node).collect(),
        SearchDir::Backward => rcg.edges_into(node).collect(),
    };
    let node_range = |e: EdgeId| match dir {
        SearchDir::Forward => rcg.edge(e).from_range,
        SearchDir::Backward => rcg.edge(e).to_range,
    };
    let mut groups: Vec<Vec<EdgeId>> = Vec::new();
    for &e in &all_edges {
        let r = node_range(e);
        match groups
            .iter_mut()
            .find(|g| g.iter().any(|o| node_range(*o).overlaps(r)))
        {
            Some(g) => g.push(e),
            None => groups.push(vec![e]),
        }
    }
    // Keep only the usable edges inside each group; an emptied group is a
    // slice the data cannot cross.
    let mut filtered: Vec<Vec<EdgeId>> = Vec::new();
    for g in groups {
        let kept: Vec<EdgeId> = g
            .into_iter()
            .filter(|e| allowed(*e) && !banned.contains(e))
            .collect();
        if kept.is_empty() {
            return None;
        }
        filtered.push(kept);
    }
    let groups = filtered;
    // Each group must succeed through one of its edges; remember the edge
    // each branch leaves the split node through — it is the freeze site
    // when the branch comes up short.
    let mut branch_results: Vec<(EdgeId, Raw)> = Vec::new();
    for group in &groups {
        let mut best: Option<(EdgeId, Raw)> = None;
        for &e in group {
            let edge = rcg.edge(e);
            let next = match dir {
                SearchDir::Forward => edge.to,
                SearchDir::Backward => edge.from,
            };
            let step = match dir {
                SearchDir::Forward => edge.latency(),
                SearchDir::Backward => u32::from(node.is_reg()),
            };
            if let Some(sub) = walk(rcg, next, allowed, banned, stack, dir) {
                let total = sub.latency + step;
                let better = best.as_ref().is_none_or(|(_, b)| total < b.latency);
                if better {
                    let mut edges = sub.edges;
                    edges.push(e);
                    best = Some((
                        e,
                        Raw {
                            latency: total,
                            edges,
                            terminals: sub.terminals,
                            freeze_edges: sub.freeze_edges,
                        },
                    ));
                }
            }
        }
        branch_results.push(best?);
    }
    // Balance: latency is the longest branch; each shorter branch gets a
    // freeze at the edge it leaves the split node through.
    let max_latency = branch_results
        .iter()
        .map(|(_, r)| r.latency)
        .max()
        .unwrap_or(0);
    let mut edges = Vec::new();
    let mut terminals = Vec::new();
    let mut freeze_edges = Vec::new();
    for (branch_edge, r) in branch_results {
        if r.latency < max_latency {
            freeze_edges.push(branch_edge);
        }
        freeze_edges.extend(r.freeze_edges);
        edges.extend(r.edges);
        terminals.extend(r.terminals);
    }
    Some(Raw {
        latency: max_latency,
        edges,
        terminals,
        freeze_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_cells::DftCosts;
    use socet_hscan::insert_hscan;
    use socet_rtl::{BitRange, Core, CoreBuilder, Direction, RtlNode};

    fn rcg_of(core: &Core) -> Rcg {
        let hscan = insert_hscan(core, &DftCosts::default());
        Rcg::extract(core, &hscan)
    }

    fn allow_all(_: EdgeId) -> bool {
        true
    }

    #[test]
    fn straight_pipeline_latency_counts_registers() {
        let mut b = CoreBuilder::new("pipe");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        let r3 = b.register("r3", 8).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_reg_to_reg(r1, r2).unwrap();
        b.connect_reg_to_reg(r2, r3).unwrap();
        b.connect_reg_to_port(r3, o).unwrap();
        let core = b.build().unwrap();
        let rcg = rcg_of(&core);
        let banned = HashSet::new();
        let fwd = forward_search(&rcg, RcgNode::In(i), &allow_all, &banned).unwrap();
        assert_eq!(fwd.latency, 3);
        assert_eq!(fwd.terminals, vec![RcgNode::Out(o)]);
        assert_eq!(fwd.freezes(), 0);
        let bwd = backward_search(&rcg, RcgNode::Out(o), &allow_all, &banned).unwrap();
        assert_eq!(bwd.latency, 3);
        assert_eq!(bwd.terminals, vec![RcgNode::In(i)]);
    }

    #[test]
    fn shortest_of_two_routes_wins() {
        let mut b = CoreBuilder::new("two");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let slow1 = b.register("slow1", 8).unwrap();
        let slow2 = b.register("slow2", 8).unwrap();
        let fast = b.register("fast", 8).unwrap();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(slow1), 0)
            .unwrap();
        b.connect_reg_to_reg(slow1, slow2).unwrap();
        b.connect_mux(RtlNode::Reg(slow2), RtlNode::Reg(fast), 0)
            .unwrap();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(fast), 1)
            .unwrap();
        b.connect_reg_to_port(fast, o).unwrap();
        let core = b.build().unwrap();
        let rcg = rcg_of(&core);
        let banned = HashSet::new();
        let fwd = forward_search(&rcg, RcgNode::In(i), &allow_all, &banned).unwrap();
        assert_eq!(fwd.latency, 1, "direct i->fast->o route");
    }

    #[test]
    fn o_split_requires_all_slices_and_freezes_short_branch() {
        // i -> wide (8b); wide's low nibble goes straight to o1, the high
        // nibble takes an extra register hop to o2: unbalanced branches.
        let mut b = CoreBuilder::new("osplit");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o1 = b.port("o1", Direction::Out, 4).unwrap();
        let o2 = b.port("o2", Direction::Out, 4).unwrap();
        let wide = b.register("wide", 8).unwrap();
        let hop = b.register("hop", 4).unwrap();
        b.connect_port_to_reg(i, wide).unwrap();
        b.connect_slice(
            RtlNode::Reg(wide),
            BitRange::new(0, 3),
            RtlNode::Port(o1),
            BitRange::full(4),
        )
        .unwrap();
        b.connect_slice(
            RtlNode::Reg(wide),
            BitRange::new(4, 7),
            RtlNode::Reg(hop),
            BitRange::full(4),
        )
        .unwrap();
        b.connect_reg_to_port(hop, o2).unwrap();
        let core = b.build().unwrap();
        let rcg = rcg_of(&core);
        assert!(rcg.is_o_split(RcgNode::Reg(wide)));
        let banned = HashSet::new();
        let fwd = forward_search(&rcg, RcgNode::In(i), &allow_all, &banned).unwrap();
        // Longest branch: i ->1 wide ->1 hop ->0 o2 = 2 cycles.
        assert_eq!(fwd.latency, 2);
        // Both outputs are terminals.
        assert_eq!(fwd.terminals.len(), 2);
        // The o1 branch (1 cycle shorter) needs one freeze.
        assert_eq!(fwd.freezes(), 1);
    }

    #[test]
    fn c_split_justification_gathers_all_sources() {
        let mut b = CoreBuilder::new("csplit");
        let a = b.port("a", Direction::In, 4).unwrap();
        let c = b.port("c", Direction::In, 4).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let acc = b.register("acc", 8).unwrap();
        b.connect_slice(
            RtlNode::Port(a),
            BitRange::full(4),
            RtlNode::Reg(acc),
            BitRange::new(0, 3),
        )
        .unwrap();
        b.connect_slice(
            RtlNode::Port(c),
            BitRange::full(4),
            RtlNode::Reg(acc),
            BitRange::new(4, 7),
        )
        .unwrap();
        b.connect_reg_to_port(acc, o).unwrap();
        let core = b.build().unwrap();
        let rcg = rcg_of(&core);
        assert!(rcg.is_c_split(RcgNode::Reg(acc)));
        let banned = HashSet::new();
        let bwd = backward_search(&rcg, RcgNode::Out(o), &allow_all, &banned).unwrap();
        assert_eq!(bwd.latency, 1);
        assert_eq!(
            bwd.terminals.len(),
            2,
            "both inputs must feed the justification"
        );
    }

    #[test]
    fn banned_edges_force_detours_or_failure() {
        let mut b = CoreBuilder::new("pipe");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = b.build().unwrap();
        let rcg = rcg_of(&core);
        let banned: HashSet<EdgeId> = rcg.edges_from(RcgNode::In(i)).collect();
        assert!(forward_search(&rcg, RcgNode::In(i), &allow_all, &banned).is_none());
    }

    #[test]
    fn hscan_only_filter_excludes_unclaimed_edges() {
        // Two parallel routes; HSCAN will claim one. Restricting to HSCAN
        // edges must still find a path, and it must be the claimed one.
        let mut b = CoreBuilder::new("par");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(r1), 0)
            .unwrap();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(r2), 0)
            .unwrap();
        b.connect_mux(RtlNode::Reg(r1), RtlNode::Reg(r2), 1)
            .unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        let core = b.build().unwrap();
        let hscan = insert_hscan(&core, &DftCosts::default());
        let rcg = Rcg::extract(&core, &hscan);
        let banned = HashSet::new();
        let hscan_only = |e: EdgeId| rcg.edge(e).kind.is_hscan();
        let path = forward_search(&rcg, RcgNode::In(i), &hscan_only, &banned).unwrap();
        for e in &path.edges {
            assert!(rcg.edge(*e).kind.is_hscan());
        }
    }

    #[test]
    fn unreachable_output_fails_cleanly() {
        // An output with no fanin at all (driven by an FU): backward search
        // must return None rather than invent a path.
        let mut b = CoreBuilder::new("noin");
        let i = b.port("i", Direction::In, 4).unwrap();
        let o = b.port("o", Direction::Out, 4).unwrap();
        let good = b.port("good", Direction::Out, 4).unwrap();
        let r = b.register("r", 4).unwrap();
        let fu = b.functional_unit("f", socet_rtl::FuKind::Logic, 4).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, good).unwrap();
        b.connect_reg_to_fu(r, fu).unwrap();
        b.connect_fu_to_port(fu, o).unwrap();
        let core = b.build().unwrap();
        let rcg = rcg_of(&core);
        let banned = HashSet::new();
        assert!(backward_search(&rcg, RcgNode::Out(o), &allow_all, &banned).is_none());
        assert!(backward_search(&rcg, RcgNode::Out(good), &allow_all, &banned).is_some());
    }

    #[test]
    fn search_results_are_deterministic() {
        let mut b = CoreBuilder::new("det");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(r1), 0)
            .unwrap();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(r2), 0)
            .unwrap();
        b.connect_mux(RtlNode::Reg(r1), RtlNode::Reg(r2), 1)
            .unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        let core = b.build().unwrap();
        let rcg = rcg_of(&core);
        let banned = HashSet::new();
        let a = forward_search(&rcg, RcgNode::In(i), &allow_all, &banned).unwrap();
        let b2 = forward_search(&rcg, RcgNode::In(i), &allow_all, &banned).unwrap();
        assert_eq!(a, b2);
    }

    #[test]
    fn cyclic_rcg_terminates() {
        let mut b = CoreBuilder::new("cycle");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(r1), 0)
            .unwrap();
        b.connect_mux(RtlNode::Reg(r2), RtlNode::Reg(r1), 1)
            .unwrap();
        b.connect_mux(RtlNode::Reg(r1), RtlNode::Reg(r2), 0)
            .unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        let core = b.build().unwrap();
        let rcg = rcg_of(&core);
        let banned = HashSet::new();
        let fwd = forward_search(&rcg, RcgNode::In(i), &allow_all, &banned).unwrap();
        assert_eq!(fwd.latency, 2); // i -> r1 -> r2 -> o
    }
}
