//! Core transparency engine: register connectivity graphs, split-aware path
//! search, and core-version synthesis (paper §4).
//!
//! A core is *transparent* when every output can be justified from inputs
//! and every input propagated to outputs in a fixed number of cycles — the
//! property SOCET uses to move embedded cores' test data through their
//! neighbours. This crate derives transparency from structure alone:
//!
//! 1. [`Rcg::extract`] builds the register connectivity graph from a
//!    [`Core`](socet_rtl::Core) and its HSCAN result;
//! 2. [`forward_search`] / [`backward_search`] find propagation and
//!    justification paths, branching at C-split/O-split nodes and balancing
//!    unequal branches with freeze logic;
//! 3. [`synthesize_versions`] produces the Version 1/2/3 ladder trading
//!    transparency latency against area, exactly as Figs. 6 and 8 of the
//!    paper tabulate for the CPU, PREPROCESSOR and DISPLAY cores.
//!
//! # Examples
//!
//! ```
//! use socet_rtl::{CoreBuilder, Direction};
//! use socet_hscan::insert_hscan;
//! use socet_cells::DftCosts;
//! use socet_transparency::synthesize_versions;
//!
//! let mut b = CoreBuilder::new("c");
//! let i = b.port("i", Direction::In, 8)?;
//! let o = b.port("o", Direction::Out, 8)?;
//! let r = b.register("r", 8)?;
//! b.connect_port_to_reg(i, r)?;
//! b.connect_reg_to_port(r, o)?;
//! let core = b.build()?;
//! let hscan = insert_hscan(&core, &DftCosts::default());
//! let versions = synthesize_versions(&core, &hscan, &DftCosts::default());
//! assert!(versions.iter().all(|v| v.is_complete(&core)));
//! # Ok::<(), socet_rtl::RtlError>(())
//! ```

pub mod codec;
pub mod rcg;
pub mod search;
pub mod version;

pub use codec::{decode_versions, encode_versions};
pub use rcg::{EdgeId, Rcg, RcgEdge, RcgEdgeKind, RcgNode};
pub use search::{backward_search, forward_search, PathFound, SearchError};
pub use version::{
    level_support, synthesize_versions, try_synthesize_versions, CoreVersion, TransparencyPath,
};

#[cfg(test)]
mod tests {
    use super::*;
    use socet_cells::DftCosts;
    use socet_hscan::insert_hscan;
    use socet_rtl::{CoreBuilder, Direction};

    #[test]
    fn crate_doc_example() {
        let mut b = CoreBuilder::new("c");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = b.build().unwrap();
        let hscan = insert_hscan(&core, &DftCosts::default());
        let versions = synthesize_versions(&core, &hscan, &DftCosts::default());
        assert!(versions.iter().all(|v| v.is_complete(&core)));
    }
}
