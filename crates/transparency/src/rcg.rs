//! The register connectivity graph (RCG) of §4 of the paper.
//!
//! Nodes are the core's input ports, output ports and registers. An edge is
//! present where a direct or multiplexer (or bus) path exists — i.e. for
//! every lossless RTL connection — plus the synthetic scan-mux paths HSCAN
//! added, plus any transparency multiplexers inserted during version
//! synthesis. Registers (and ports) whose connected bit-slices are disjoint
//! are marked C-split (fan-in side) or O-split (fan-out side).

use socet_hscan::{ChainVia, HscanResult};
use socet_rtl::{BitRange, ConnectionId, Core, Direction, PortId, RegisterId, RtlNode, Via};
use std::collections::HashSet;
use std::fmt;

/// A node of the RCG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RcgNode {
    /// A core input port.
    In(PortId),
    /// A core output port.
    Out(PortId),
    /// A register.
    Reg(RegisterId),
}

impl RcgNode {
    /// Whether the node is a register (costs one cycle to enter).
    pub fn is_reg(self) -> bool {
        matches!(self, RcgNode::Reg(_))
    }

    /// Whether the node is an input port.
    pub fn is_input(self) -> bool {
        matches!(self, RcgNode::In(_))
    }

    /// Whether the node is an output port.
    pub fn is_output(self) -> bool {
        matches!(self, RcgNode::Out(_))
    }
}

impl fmt::Display for RcgNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcgNode::In(p) => write!(f, "in:{p}"),
            RcgNode::Out(p) => write!(f, "out:{p}"),
            RcgNode::Reg(r) => write!(f, "reg:{r}"),
        }
    }
}

/// Identifier of an RCG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// The edge's index in the RCG's edge table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What realizes an RCG edge, deciding its transparency cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RcgEdgeKind {
    /// An existing RTL connection.
    Existing {
        /// The RTL connection behind the edge.
        connection: ConnectionId,
        /// Whether HSCAN claimed this connection as a scan path (free to
        /// reuse for transparency).
        hscan: bool,
        /// Whether the path goes through a multiplexer or bus (steering
        /// logic needed when used outside HSCAN mode).
        steered: bool,
    },
    /// A scan path HSCAN synthesized with a test multiplexer (already paid
    /// for; counts as an HSCAN edge).
    ScanMux,
    /// A transparency multiplexer added during version synthesis.
    TransparencyMux,
}

impl RcgEdgeKind {
    /// Whether the edge belongs to the HSCAN path set — the preferred edges
    /// of the first search phase.
    pub fn is_hscan(self) -> bool {
        match self {
            RcgEdgeKind::Existing { hscan, .. } => hscan,
            RcgEdgeKind::ScanMux => true,
            RcgEdgeKind::TransparencyMux => false,
        }
    }
}

/// One RCG edge: a lossless data path `from → to` over the given bit
/// ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RcgEdge {
    /// Source node.
    pub from: RcgNode,
    /// Destination node.
    pub to: RcgNode,
    /// Bits of the source carried.
    pub from_range: BitRange,
    /// Bits of the destination written.
    pub to_range: BitRange,
    /// The edge's realization.
    pub kind: RcgEdgeKind,
}

impl RcgEdge {
    /// Cycles consumed crossing this edge: one when the destination is a
    /// register (it loads on a clock edge), zero into an output port
    /// (combinational).
    pub fn latency(&self) -> u32 {
        u32::from(self.to.is_reg())
    }
}

impl fmt::Display for RcgEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} -> {}{}",
            self.from, self.from_range, self.to, self.to_range
        )
    }
}

/// The register connectivity graph of one core.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction};
/// use socet_hscan::insert_hscan;
/// use socet_cells::DftCosts;
/// use socet_transparency::Rcg;
///
/// let mut b = CoreBuilder::new("pipe");
/// let i = b.port("i", Direction::In, 8)?;
/// let o = b.port("o", Direction::Out, 8)?;
/// let r = b.register("r", 8)?;
/// b.connect_port_to_reg(i, r)?;
/// b.connect_reg_to_port(r, o)?;
/// let core = b.build()?;
/// let hscan = insert_hscan(&core, &DftCosts::default());
/// let rcg = Rcg::extract(&core, &hscan);
/// assert_eq!(rcg.edges().len(), 2);
/// assert!(rcg.edges().iter().all(|e| e.kind.is_hscan()));
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Rcg {
    edges: Vec<RcgEdge>,
    c_split: HashSet<RcgNode>,
    o_split: HashSet<RcgNode>,
    inputs: Vec<PortId>,
    outputs: Vec<PortId>,
}

impl Rcg {
    /// Extracts the RCG of `core`, marking the connections `hscan` claimed.
    pub fn extract(core: &Core, hscan: &HscanResult) -> Rcg {
        let mut edges = Vec::new();
        for (ci, c) in core.connections().iter().enumerate() {
            if c.src.node.is_fu() || c.dst.node.is_fu() || !c.via.is_lossless() {
                continue;
            }
            let from = rtl_to_rcg(core, c.src.node);
            let to = rtl_to_rcg(core, c.dst.node);
            // Only data-bearing directions belong to the RCG.
            let (Some(from), Some(to)) = (from, to) else {
                continue;
            };
            let id = ConnectionId::from_index(ci);
            // An unsteered register-to-output wire needs no configuration at
            // all — the register's value already sits on the port — so it
            // counts as a free (HSCAN-class) transparency edge even when no
            // scan chain ends there.
            let free_observation = matches!(c.via, Via::Direct) && to.is_output();
            edges.push(RcgEdge {
                from,
                to,
                from_range: c.src.range,
                to_range: c.dst.range,
                kind: RcgEdgeKind::Existing {
                    connection: id,
                    hscan: hscan.scan_connections().contains(&id) || free_observation,
                    steered: !matches!(c.via, Via::Direct),
                },
            });
        }
        // Synthetic scan-mux paths from HSCAN (test-mux heads/tails).
        for chain in hscan.chains() {
            if chain.head_via == ChainVia::TestMux {
                let reg = chain.links[0].reg;
                let w = core
                    .port(chain.scan_in)
                    .width()
                    .min(core.register(reg).width());
                edges.push(RcgEdge {
                    from: RcgNode::In(chain.scan_in),
                    to: RcgNode::Reg(reg),
                    from_range: BitRange::full(w),
                    to_range: BitRange::full(w),
                    kind: RcgEdgeKind::ScanMux,
                });
            }
            if chain.tail_via == ChainVia::TestMux {
                let reg = chain.links.last().expect("chains are non-empty").reg;
                let w = core
                    .port(chain.scan_out)
                    .width()
                    .min(core.register(reg).width());
                edges.push(RcgEdge {
                    from: RcgNode::Reg(reg),
                    to: RcgNode::Out(chain.scan_out),
                    from_range: BitRange::full(w),
                    to_range: BitRange::full(w),
                    kind: RcgEdgeKind::ScanMux,
                });
            }
        }
        let mut c_split = HashSet::new();
        let mut o_split = HashSet::new();
        for r in core.register_ids() {
            if core.is_c_split(RtlNode::Reg(r)) {
                c_split.insert(RcgNode::Reg(r));
            }
            if core.is_o_split(RtlNode::Reg(r)) {
                o_split.insert(RcgNode::Reg(r));
            }
        }
        for p in core.port_ids() {
            if core.port(p).direction() == Direction::In && core.is_o_split(RtlNode::Port(p)) {
                o_split.insert(RcgNode::In(p));
            }
            if core.port(p).direction() == Direction::Out && core.is_c_split(RtlNode::Port(p)) {
                c_split.insert(RcgNode::Out(p));
            }
        }
        Rcg {
            edges,
            c_split,
            o_split,
            inputs: core.input_ports(),
            outputs: core.output_ports(),
        }
    }

    /// All edges; [`EdgeId::index`] indexes this slice.
    pub fn edges(&self) -> &[RcgEdge] {
        &self.edges
    }

    /// The edge behind an id.
    pub fn edge(&self, id: EdgeId) -> &RcgEdge {
        &self.edges[id.index()]
    }

    /// Ids of edges leaving `node`.
    pub fn edges_from(&self, node: RcgNode) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.from == node)
            .map(|(i, _)| EdgeId(i as u32))
    }

    /// Ids of edges entering `node`.
    pub fn edges_into(&self, node: RcgNode) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.to == node)
            .map(|(i, _)| EdgeId(i as u32))
    }

    /// Whether different bit-slices of `node` are fed from different
    /// sources exclusively (C-split, paper §4).
    pub fn is_c_split(&self, node: RcgNode) -> bool {
        self.c_split.contains(&node)
    }

    /// Whether `node`'s fanout is split into different bit-slices going to
    /// different destinations (O-split).
    pub fn is_o_split(&self, node: RcgNode) -> bool {
        self.o_split.contains(&node)
    }

    /// The core's input ports.
    pub fn inputs(&self) -> &[PortId] {
        &self.inputs
    }

    /// The core's output ports.
    pub fn outputs(&self) -> &[PortId] {
        &self.outputs
    }

    /// Renders the RCG as Graphviz DOT, with HSCAN edges bold, split nodes
    /// annotated, and synthetic edges dashed — handy for debugging a core's
    /// transparency structure (`dot -Tsvg`).
    ///
    /// # Examples
    ///
    /// ```
    /// # use socet_rtl::{CoreBuilder, Direction};
    /// # use socet_hscan::insert_hscan;
    /// # use socet_cells::DftCosts;
    /// # use socet_transparency::Rcg;
    /// # let mut b = CoreBuilder::new("c");
    /// # let i = b.port("i", Direction::In, 4)?;
    /// # let o = b.port("o", Direction::Out, 4)?;
    /// # let r = b.register("r", 4)?;
    /// # b.connect_port_to_reg(i, r)?;
    /// # b.connect_reg_to_port(r, o)?;
    /// # let core = b.build()?;
    /// let rcg = Rcg::extract(&core, &insert_hscan(&core, &DftCosts::default()));
    /// let dot = rcg.to_dot(&core);
    /// assert!(dot.starts_with("digraph rcg"));
    /// # Ok::<(), socet_rtl::RtlError>(())
    /// ```
    pub fn to_dot(&self, core: &Core) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph rcg {\n  rankdir=LR;\n");
        let name_of = |n: RcgNode| match n {
            RcgNode::In(p) | RcgNode::Out(p) => core.port(p).name().to_owned(),
            RcgNode::Reg(r) => core.register(r).name().to_owned(),
        };
        let mut nodes: Vec<RcgNode> = Vec::new();
        for e in &self.edges {
            for n in [e.from, e.to] {
                if !nodes.contains(&n) {
                    nodes.push(n);
                }
            }
        }
        for n in &nodes {
            let shape = match n {
                RcgNode::In(_) => "invtriangle",
                RcgNode::Out(_) => "triangle",
                RcgNode::Reg(_) => "box",
            };
            let mut label = name_of(*n);
            if self.is_c_split(*n) {
                label.push_str("\\n(C-split)");
            }
            if self.is_o_split(*n) {
                label.push_str("\\n(O-split)");
            }
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}, label=\"{label}\"];",
                name_of(*n)
            );
        }
        for e in &self.edges {
            let style = match e.kind {
                RcgEdgeKind::TransparencyMux => "dashed",
                RcgEdgeKind::ScanMux => "dotted",
                RcgEdgeKind::Existing { .. } => "solid",
            };
            let weight = if e.kind.is_hscan() {
                ", penwidth=2"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [style={style}{weight}, label=\"{}{}\"];",
                name_of(e.from),
                name_of(e.to),
                e.from_range,
                e.to_range,
            );
        }
        out.push_str("}\n");
        out
    }

    /// Adds a transparency-multiplexer edge, returning its id. Used by
    /// version synthesis (levels where latency is bought with area).
    pub fn add_transparency_mux(
        &mut self,
        from: RcgNode,
        to: RcgNode,
        from_range: BitRange,
        to_range: BitRange,
    ) -> EdgeId {
        self.edges.push(RcgEdge {
            from,
            to,
            from_range,
            to_range,
            kind: RcgEdgeKind::TransparencyMux,
        });
        EdgeId(self.edges.len() as u32 - 1)
    }
}

impl fmt::Display for Rcg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "rcg: {} edges, {} c-split, {} o-split",
            self.edges.len(),
            self.c_split.len(),
            self.o_split.len()
        )?;
        for e in &self.edges {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

fn rtl_to_rcg(core: &Core, node: RtlNode) -> Option<RcgNode> {
    match node {
        RtlNode::Reg(r) => Some(RcgNode::Reg(r)),
        RtlNode::Port(p) => match core.port(p).direction() {
            Direction::In => Some(RcgNode::In(p)),
            Direction::Out => Some(RcgNode::Out(p)),
        },
        RtlNode::Fu(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_cells::DftCosts;
    use socet_hscan::insert_hscan;
    use socet_rtl::CoreBuilder;

    fn split_core() -> Core {
        let mut b = CoreBuilder::new("split");
        let a = b.port("a", Direction::In, 4).unwrap();
        let c = b.port("c", Direction::In, 4).unwrap();
        let o1 = b.port("o1", Direction::Out, 4).unwrap();
        let o2 = b.port("o2", Direction::Out, 4).unwrap();
        let acc = b.register("acc", 8).unwrap();
        b.connect_slice(
            RtlNode::Port(a),
            BitRange::full(4),
            RtlNode::Reg(acc),
            BitRange::new(0, 3),
        )
        .unwrap();
        b.connect_slice(
            RtlNode::Port(c),
            BitRange::full(4),
            RtlNode::Reg(acc),
            BitRange::new(4, 7),
        )
        .unwrap();
        b.connect_slice(
            RtlNode::Reg(acc),
            BitRange::new(0, 3),
            RtlNode::Port(o1),
            BitRange::full(4),
        )
        .unwrap();
        b.connect_slice(
            RtlNode::Reg(acc),
            BitRange::new(4, 7),
            RtlNode::Port(o2),
            BitRange::full(4),
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn split_marks_propagate_to_rcg() {
        let core = split_core();
        let hscan = insert_hscan(&core, &DftCosts::default());
        let rcg = Rcg::extract(&core, &hscan);
        let acc = RcgNode::Reg(core.find_register("acc").unwrap());
        assert!(rcg.is_c_split(acc));
        assert!(rcg.is_o_split(acc));
        assert_eq!(rcg.edges().len(), 4);
    }

    #[test]
    fn edge_latency_zero_into_outputs() {
        let core = split_core();
        let hscan = insert_hscan(&core, &DftCosts::default());
        let rcg = Rcg::extract(&core, &hscan);
        for e in rcg.edges() {
            match e.to {
                RcgNode::Reg(_) => assert_eq!(e.latency(), 1),
                RcgNode::Out(_) => assert_eq!(e.latency(), 0),
                RcgNode::In(_) => panic!("edges never enter input ports"),
            }
        }
    }

    #[test]
    fn scan_mux_edges_appear_for_isolated_registers() {
        let mut b = CoreBuilder::new("iso");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        let island = b.register("island", 8).unwrap();
        let fu = b.functional_unit("f", socet_rtl::FuKind::Logic, 8).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        b.connect_reg_to_fu(island, fu).unwrap();
        b.connect_fu_to_reg(fu, island).unwrap();
        let core = b.build().unwrap();
        let hscan = insert_hscan(&core, &DftCosts::default());
        let rcg = Rcg::extract(&core, &hscan);
        let scan_muxes = rcg
            .edges()
            .iter()
            .filter(|e| e.kind == RcgEdgeKind::ScanMux)
            .count();
        assert_eq!(scan_muxes, 2); // into and out of the island
                                   // They count as HSCAN edges.
        assert!(rcg
            .edges()
            .iter()
            .filter(|e| e.kind == RcgEdgeKind::ScanMux)
            .all(|e| e.kind.is_hscan()));
    }

    #[test]
    fn transparency_mux_edges_are_not_hscan() {
        let core = split_core();
        let hscan = insert_hscan(&core, &DftCosts::default());
        let mut rcg = Rcg::extract(&core, &hscan);
        let a = core.find_port("a").unwrap();
        let o1 = core.find_port("o1").unwrap();
        let id = rcg.add_transparency_mux(
            RcgNode::In(a),
            RcgNode::Out(o1),
            BitRange::full(4),
            BitRange::full(4),
        );
        assert!(!rcg.edge(id).kind.is_hscan());
    }

    #[test]
    fn fu_paths_never_become_edges() {
        let mut b = CoreBuilder::new("fu");
        let i = b.port("i", Direction::In, 4).unwrap();
        let o = b.port("o", Direction::Out, 4).unwrap();
        let r1 = b.register("r1", 4).unwrap();
        let r2 = b.register("r2", 4).unwrap();
        let alu = b.functional_unit("alu", socet_rtl::FuKind::Alu, 4).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_through_fu(r1, alu, r2).unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        let core = b.build().unwrap();
        let hscan = insert_hscan(&core, &DftCosts::default());
        let rcg = Rcg::extract(&core, &hscan);
        // i->r1 and r2->o are lossless; r1->r2 through the ALU is not, but
        // HSCAN needed it for the chain, so a ScanMux edge replaces it.
        let existing = rcg
            .edges()
            .iter()
            .filter(|e| matches!(e.kind, RcgEdgeKind::Existing { .. }))
            .count();
        assert_eq!(existing, 2);
    }
}
