//! Core ports: the boundary of a core's structural model.

use std::fmt;

/// Opaque handle to a [`Port`] within one [`Core`](crate::Core).
///
/// Handles are only meaningful for the core that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub(crate) u32);

impl PortId {
    /// The handle's index within the core's port table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a handle from a dense index, the inverse of
    /// [`PortId::index`]. The caller must keep the index within the owning
    /// core's port count (used by the artifact codecs).
    pub fn from_index(i: usize) -> PortId {
        PortId(i as u32)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Direction of a core port, seen from inside the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Data flows into the core.
    In,
    /// Data flows out of the core.
    Out,
}

impl Direction {
    /// The opposite direction.
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_rtl::Direction;
    /// assert_eq!(Direction::In.flip(), Direction::Out);
    /// ```
    pub fn flip(self) -> Direction {
        match self {
            Direction::In => Direction::Out,
            Direction::Out => Direction::In,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::In => "in",
            Direction::Out => "out",
        })
    }
}

/// Whether a port carries datapath values or control signals.
///
/// The paper treats control inputs "as data inputs", bypassing random logic
/// with single-bit multiplexers when no direct path to a control register
/// exists (§4, last paragraph); the distinction lets the transparency engine
/// apply that cheaper treatment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SignalClass {
    /// Multi-bit datapath signal.
    #[default]
    Data,
    /// Control signal (reset, interrupt, handshake, ...).
    Control,
}

impl fmt::Display for SignalClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SignalClass::Data => "data",
            SignalClass::Control => "control",
        })
    }
}

/// A port of a core: name, direction, width and signal class.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction, SignalClass};
/// let mut b = CoreBuilder::new("c");
/// let id = b.control_port("reset", Direction::In)?;
/// let core = {
///     let dout = b.port("q", Direction::Out, 1)?;
///     let r = b.register("r", 1)?;
///     b.connect_port_to_reg(id, r)?;
///     b.connect_reg_to_port(r, dout)?;
///     b.build()?
/// };
/// let p = core.port(id);
/// assert_eq!(p.name(), "reset");
/// assert_eq!(p.width(), 1);
/// assert_eq!(p.class(), SignalClass::Control);
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    pub(crate) name: String,
    pub(crate) direction: Direction,
    pub(crate) width: u16,
    pub(crate) class: SignalClass,
}

impl Port {
    /// The port's name, unique within its core.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The port's direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The port's bit width.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Whether the port carries data or control.
    pub fn class(&self) -> SignalClass {
        self.class
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}:0]", self.direction, self.name, self.width - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        for d in [Direction::In, Direction::Out] {
            assert_eq!(d.flip().flip(), d);
        }
    }

    #[test]
    fn default_class_is_data() {
        assert_eq!(SignalClass::default(), SignalClass::Data);
    }

    #[test]
    fn display_forms() {
        let p = Port {
            name: "addr".into(),
            direction: Direction::Out,
            width: 12,
            class: SignalClass::Data,
        };
        assert_eq!(p.to_string(), "out addr [11:0]");
        assert_eq!(Direction::In.to_string(), "in");
        assert_eq!(SignalClass::Control.to_string(), "control");
    }
}
