//! Bit ranges, the unit of bit-slicing.
//!
//! The paper's split-node machinery (C-split / O-split registers, §4) hinges
//! on *which bits* of a register or port a connection touches. [`BitRange`]
//! is the inclusive `[lsb, msb]` span used throughout the workspace.

use std::fmt;

/// An inclusive bit span `lsb..=msb` of a port or register, in the VHDL-like
/// `(msb downto lsb)` spirit the paper uses (e.g. `Address(7 downto 0)`).
///
/// # Examples
///
/// ```
/// use socet_rtl::BitRange;
/// let low = BitRange::new(0, 7);
/// let high = BitRange::new(8, 11);
/// assert_eq!(low.width(), 8);
/// assert!(!low.overlaps(high));
/// assert!(low.overlaps(BitRange::new(7, 9)));
/// assert_eq!(high.to_string(), "(11 downto 8)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitRange {
    lsb: u16,
    msb: u16,
}

impl BitRange {
    /// Creates the range `lsb..=msb`.
    ///
    /// # Panics
    ///
    /// Panics if `lsb > msb`.
    pub fn new(lsb: u16, msb: u16) -> Self {
        assert!(lsb <= msb, "BitRange lsb {lsb} > msb {msb}");
        BitRange { lsb, msb }
    }

    /// The full range of a `width`-bit signal: `0..=width-1`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_rtl::BitRange;
    /// assert_eq!(BitRange::full(16), BitRange::new(0, 15));
    /// ```
    pub fn full(width: u16) -> Self {
        assert!(width > 0, "BitRange::full of zero width");
        BitRange::new(0, width - 1)
    }

    /// Least-significant bit index.
    pub fn lsb(self) -> u16 {
        self.lsb
    }

    /// Most-significant bit index.
    pub fn msb(self) -> u16 {
        self.msb
    }

    /// Number of bits covered.
    pub fn width(self) -> u16 {
        self.msb - self.lsb + 1
    }

    /// Whether `self` and `other` share any bit.
    pub fn overlaps(self, other: BitRange) -> bool {
        self.lsb <= other.msb && other.lsb <= self.msb
    }

    /// Whether `self` covers every bit of `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_rtl::BitRange;
    /// assert!(BitRange::new(0, 7).contains(BitRange::new(2, 5)));
    /// assert!(!BitRange::new(0, 7).contains(BitRange::new(6, 9)));
    /// ```
    pub fn contains(self, other: BitRange) -> bool {
        self.lsb <= other.lsb && other.msb <= self.msb
    }

    /// Whether `bit` lies inside the range.
    pub fn contains_bit(self, bit: u16) -> bool {
        self.lsb <= bit && bit <= self.msb
    }

    /// The intersection of two ranges, if non-empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_rtl::BitRange;
    /// let a = BitRange::new(0, 7);
    /// let b = BitRange::new(4, 11);
    /// assert_eq!(a.intersect(b), Some(BitRange::new(4, 7)));
    /// assert_eq!(a.intersect(BitRange::new(8, 11)), None);
    /// ```
    pub fn intersect(self, other: BitRange) -> Option<BitRange> {
        if self.overlaps(other) {
            Some(BitRange::new(
                self.lsb.max(other.lsb),
                self.msb.min(other.msb),
            ))
        } else {
            None
        }
    }

    /// Iterates over the bit indices of the range, LSB first.
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_rtl::BitRange;
    /// let bits: Vec<u16> = BitRange::new(2, 4).bits().collect();
    /// assert_eq!(bits, vec![2, 3, 4]);
    /// ```
    pub fn bits(self) -> impl Iterator<Item = u16> {
        self.lsb..=self.msb
    }
}

impl fmt::Display for BitRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lsb == self.msb {
            write!(f, "({})", self.lsb)
        } else {
            write!(f, "({} downto {})", self.msb, self.lsb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_of_single_bit_is_one() {
        assert_eq!(BitRange::new(3, 3).width(), 1);
    }

    #[test]
    #[should_panic(expected = "lsb 5 > msb 2")]
    fn inverted_range_panics() {
        let _ = BitRange::new(5, 2);
    }

    #[test]
    #[should_panic(expected = "zero width")]
    fn full_zero_width_panics() {
        let _ = BitRange::full(0);
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = BitRange::new(0, 3);
        let b = BitRange::new(3, 6);
        let c = BitRange::new(4, 6);
        assert!(a.overlaps(b) && b.overlaps(a));
        assert!(!a.overlaps(c) && !c.overlaps(a));
    }

    #[test]
    fn contains_is_reflexive() {
        let a = BitRange::new(2, 9);
        assert!(a.contains(a));
    }

    #[test]
    fn contains_bit_boundaries() {
        let a = BitRange::new(2, 4);
        assert!(!a.contains_bit(1));
        assert!(a.contains_bit(2));
        assert!(a.contains_bit(4));
        assert!(!a.contains_bit(5));
    }

    #[test]
    fn intersect_commutes() {
        let a = BitRange::new(0, 7);
        let b = BitRange::new(4, 11);
        assert_eq!(a.intersect(b), b.intersect(a));
    }

    #[test]
    fn intersect_of_touching_ranges() {
        let a = BitRange::new(0, 3);
        let b = BitRange::new(3, 3);
        assert_eq!(a.intersect(b), Some(BitRange::new(3, 3)));
    }

    #[test]
    fn bits_iterator_covers_range() {
        assert_eq!(BitRange::new(5, 5).bits().count(), 1);
        assert_eq!(BitRange::full(16).bits().count(), 16);
    }

    #[test]
    fn display_single_bit() {
        assert_eq!(BitRange::new(5, 5).to_string(), "(5)");
    }
}
