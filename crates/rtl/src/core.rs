//! The [`Core`] netlist and its [`CoreBuilder`].

use crate::bits::BitRange;
use crate::component::{FuKind, FunctionalUnit, FunctionalUnitId, Register, RegisterId};
use crate::connection::{Connection, ConnectionId, Endpoint, RtlNode, Via};
use crate::error::RtlError;
use crate::port::{Direction, Port, PortId, SignalClass};
use std::collections::HashSet;
use std::fmt;

/// A validated RTL netlist for one core.
///
/// A `Core` is immutable once built; construct it with [`CoreBuilder`].
/// All structural queries the SOCET tool-chain needs are methods here:
/// fan-in/fan-out per node, lossless (transparency-capable) connections,
/// and the C-split / O-split classification of §4 of the paper.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction, RtlNode};
/// let mut b = CoreBuilder::new("pipeline");
/// let din = b.port("din", Direction::In, 8)?;
/// let dout = b.port("dout", Direction::Out, 8)?;
/// let r1 = b.register("r1", 8)?;
/// let r2 = b.register("r2", 8)?;
/// b.connect_port_to_reg(din, r1)?;
/// b.connect_reg_to_reg(r1, r2)?;
/// b.connect_reg_to_port(r2, dout)?;
/// let core = b.build()?;
/// assert_eq!(core.fanout(RtlNode::Reg(r1)).count(), 1);
/// assert_eq!(core.flip_flop_count(), 16);
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Core {
    name: String,
    ports: Vec<Port>,
    registers: Vec<Register>,
    fus: Vec<FunctionalUnit>,
    connections: Vec<Connection>,
}

impl Core {
    /// The core's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All ports, indexable by [`PortId::index`].
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// All registers, indexable by [`RegisterId::index`].
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// All functional units, indexable by [`FunctionalUnitId::index`].
    pub fn functional_units(&self) -> &[FunctionalUnit] {
        &self.fus
    }

    /// All connections, indexable by [`ConnectionId::index`].
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// The port behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different core.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// The register behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different core.
    pub fn register(&self, id: RegisterId) -> &Register {
        &self.registers[id.index()]
    }

    /// The functional unit behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different core.
    pub fn functional_unit(&self, id: FunctionalUnitId) -> &FunctionalUnit {
        &self.fus[id.index()]
    }

    /// Handles of all input ports, in declaration order.
    pub fn input_ports(&self) -> Vec<PortId> {
        self.ports_with(Direction::In)
    }

    /// Handles of all output ports, in declaration order.
    pub fn output_ports(&self) -> Vec<PortId> {
        self.ports_with(Direction::Out)
    }

    fn ports_with(&self, dir: Direction) -> Vec<PortId> {
        self.ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.direction == dir)
            .map(|(i, _)| PortId(i as u32))
            .collect()
    }

    /// Handles of all ports, in declaration order.
    pub fn port_ids(&self) -> impl Iterator<Item = PortId> {
        (0..self.ports.len() as u32).map(PortId)
    }

    /// Handles of all registers, in declaration order.
    pub fn register_ids(&self) -> impl Iterator<Item = RegisterId> {
        (0..self.registers.len() as u32).map(RegisterId)
    }

    /// Handles of all functional units, in declaration order.
    pub fn functional_unit_ids(&self) -> impl Iterator<Item = FunctionalUnitId> {
        (0..self.fus.len() as u32).map(FunctionalUnitId)
    }

    /// Looks a port up by name.
    ///
    /// # Examples
    ///
    /// ```
    /// # use socet_rtl::{CoreBuilder, Direction};
    /// # let mut b = CoreBuilder::new("c");
    /// # let din = b.port("din", Direction::In, 8)?;
    /// # let dout = b.port("dout", Direction::Out, 8)?;
    /// # let r = b.register("r", 8)?;
    /// # b.connect_port_to_reg(din, r)?;
    /// # b.connect_reg_to_port(r, dout)?;
    /// # let core = b.build()?;
    /// assert_eq!(core.find_port("din"), Some(din));
    /// assert_eq!(core.find_port("nope"), None);
    /// # Ok::<(), socet_rtl::RtlError>(())
    /// ```
    pub fn find_port(&self, name: &str) -> Option<PortId> {
        self.ports
            .iter()
            .position(|p| p.name == name)
            .map(|i| PortId(i as u32))
    }

    /// Looks a register up by name.
    pub fn find_register(&self, name: &str) -> Option<RegisterId> {
        self.registers
            .iter()
            .position(|r| r.name == name)
            .map(|i| RegisterId(i as u32))
    }

    /// The width of any node.
    pub fn width_of(&self, node: RtlNode) -> u16 {
        match node {
            RtlNode::Port(p) => self.port(p).width,
            RtlNode::Reg(r) => self.register(r).width,
            RtlNode::Fu(u) => self.functional_unit(u).width,
        }
    }

    /// The human-readable name of any node.
    pub fn name_of(&self, node: RtlNode) -> &str {
        match node {
            RtlNode::Port(p) => self.port(p).name(),
            RtlNode::Reg(r) => self.register(r).name(),
            RtlNode::Fu(u) => self.functional_unit(u).name(),
        }
    }

    /// Connections whose destination is `node`.
    pub fn fanin(&self, node: RtlNode) -> impl Iterator<Item = &Connection> {
        self.connections.iter().filter(move |c| c.dst.node == node)
    }

    /// Connections whose source is `node`.
    pub fn fanout(&self, node: RtlNode) -> impl Iterator<Item = &Connection> {
        self.connections.iter().filter(move |c| c.src.node == node)
    }

    /// Connections that can carry transparency data: both endpoints are
    /// ports or registers and the realization is lossless.
    ///
    /// These are exactly the edges of the register connectivity graph (RCG)
    /// of §4.
    pub fn lossless_connections(&self) -> impl Iterator<Item = &Connection> {
        self.connections
            .iter()
            .filter(|c| !c.src.node.is_fu() && !c.dst.node.is_fu() && c.via.is_lossless())
    }

    /// Whether `node` is a *C-split* node: different bit-slices of it receive
    /// data from different sources exclusively (paper §4).
    ///
    /// Only lossless fan-in is considered, because only it can justify data.
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_rtl::{BitRange, CoreBuilder, Direction, RtlNode};
    /// let mut b = CoreBuilder::new("c");
    /// let a = b.port("a", Direction::In, 4)?;
    /// let c = b.port("c", Direction::In, 4)?;
    /// let q = b.port("q", Direction::Out, 8)?;
    /// let acc = b.register("ACC", 8)?;
    /// b.connect_slice(RtlNode::Port(a), BitRange::full(4),
    ///                 RtlNode::Reg(acc), BitRange::new(0, 3))?;
    /// b.connect_slice(RtlNode::Port(c), BitRange::full(4),
    ///                 RtlNode::Reg(acc), BitRange::new(4, 7))?;
    /// b.connect_reg_to_port(acc, q)?;
    /// let core = b.build()?;
    /// assert!(core.is_c_split(RtlNode::Reg(acc)));
    /// # Ok::<(), socet_rtl::RtlError>(())
    /// ```
    pub fn is_c_split(&self, node: RtlNode) -> bool {
        let ranges: Vec<BitRange> = self
            .fanin(node)
            .filter(|c| c.via.is_lossless() && !c.src.node.is_fu())
            .map(|c| c.dst.range)
            .collect();
        Self::is_split(&ranges, self.width_of(node))
    }

    /// Whether `node` is an *O-split* node: its fanout is split into
    /// different bit-slices going to different destinations (paper §4).
    pub fn is_o_split(&self, node: RtlNode) -> bool {
        let ranges: Vec<BitRange> = self
            .fanout(node)
            .filter(|c| c.via.is_lossless() && !c.dst.node.is_fu())
            .map(|c| c.src.range)
            .collect();
        Self::is_split(&ranges, self.width_of(node))
    }

    /// A set of ranges "splits" a node when at least two connections touch
    /// disjoint bit-slices — i.e. no single connection spans all connected
    /// bits.
    fn is_split(ranges: &[BitRange], _width: u16) -> bool {
        if ranges.len() < 2 {
            return false;
        }
        ranges
            .iter()
            .any(|a| ranges.iter().any(|b| !a.overlaps(*b)))
    }

    /// Total number of flip-flops (sum of register widths).
    pub fn flip_flop_count(&self) -> u32 {
        self.registers.iter().map(|r| u32::from(r.width)).sum()
    }

    /// Total input-port bits.
    pub fn input_bits(&self) -> u32 {
        self.ports
            .iter()
            .filter(|p| p.direction == Direction::In)
            .map(|p| u32::from(p.width))
            .sum()
    }

    /// Total output-port bits.
    pub fn output_bits(&self) -> u32 {
        self.ports
            .iter()
            .filter(|p| p.direction == Direction::Out)
            .map(|p| u32::from(p.width))
            .sum()
    }
}

impl fmt::Display for Core {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {} ({} ports, {} regs, {} fus, {} conns)",
            self.name,
            self.ports.len(),
            self.registers.len(),
            self.fus.len(),
            self.connections.len()
        )
    }
}

/// Incremental builder for a [`Core`], with validation at every step and a
/// whole-netlist check in [`CoreBuilder::build`].
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction};
/// let mut b = CoreBuilder::new("fifo");
/// let din = b.port("din", Direction::In, 16)?;
/// let dout = b.port("dout", Direction::Out, 16)?;
/// let head = b.register("head", 16)?;
/// let tail = b.register("tail", 16)?;
/// b.connect_port_to_reg(din, head)?;
/// b.connect_reg_to_reg(head, tail)?;
/// b.connect_reg_to_port(tail, dout)?;
/// let core = b.build()?;
/// assert_eq!(core.registers().len(), 2);
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoreBuilder {
    name: String,
    ports: Vec<Port>,
    registers: Vec<Register>,
    fus: Vec<FunctionalUnit>,
    connections: Vec<Connection>,
    names: HashSet<String>,
}

impl CoreBuilder {
    /// Starts building a core called `name`.
    pub fn new(name: &str) -> Self {
        CoreBuilder {
            name: name.to_owned(),
            ports: Vec::new(),
            registers: Vec::new(),
            fus: Vec::new(),
            connections: Vec::new(),
            names: HashSet::new(),
        }
    }

    fn claim_name(&mut self, name: &str) -> Result<(), RtlError> {
        if !self.names.insert(name.to_owned()) {
            return Err(RtlError::DuplicateName { name: name.into() });
        }
        Ok(())
    }

    /// Declares a data port.
    ///
    /// # Errors
    ///
    /// [`RtlError::DuplicateName`] if `name` is taken,
    /// [`RtlError::ZeroWidth`] if `width == 0`.
    pub fn port(
        &mut self,
        name: &str,
        direction: Direction,
        width: u16,
    ) -> Result<PortId, RtlError> {
        self.port_with_class(name, direction, width, SignalClass::Data)
    }

    /// Declares a single-bit control port.
    ///
    /// # Errors
    ///
    /// [`RtlError::DuplicateName`] if `name` is taken.
    pub fn control_port(&mut self, name: &str, direction: Direction) -> Result<PortId, RtlError> {
        self.port_with_class(name, direction, 1, SignalClass::Control)
    }

    /// Declares a port with an explicit [`SignalClass`].
    ///
    /// # Errors
    ///
    /// [`RtlError::DuplicateName`] if `name` is taken,
    /// [`RtlError::ZeroWidth`] if `width == 0`.
    pub fn port_with_class(
        &mut self,
        name: &str,
        direction: Direction,
        width: u16,
        class: SignalClass,
    ) -> Result<PortId, RtlError> {
        if width == 0 {
            return Err(RtlError::ZeroWidth { name: name.into() });
        }
        self.claim_name(name)?;
        self.ports.push(Port {
            name: name.to_owned(),
            direction,
            width,
            class,
        });
        Ok(PortId(self.ports.len() as u32 - 1))
    }

    /// Declares a register.
    ///
    /// # Errors
    ///
    /// [`RtlError::DuplicateName`] if `name` is taken,
    /// [`RtlError::ZeroWidth`] if `width == 0`.
    pub fn register(&mut self, name: &str, width: u16) -> Result<RegisterId, RtlError> {
        if width == 0 {
            return Err(RtlError::ZeroWidth { name: name.into() });
        }
        self.claim_name(name)?;
        self.registers.push(Register {
            name: name.to_owned(),
            width,
        });
        Ok(RegisterId(self.registers.len() as u32 - 1))
    }

    /// Declares a functional unit.
    ///
    /// # Errors
    ///
    /// [`RtlError::DuplicateName`] if `name` is taken,
    /// [`RtlError::ZeroWidth`] if `width == 0`.
    pub fn functional_unit(
        &mut self,
        name: &str,
        kind: FuKind,
        width: u16,
    ) -> Result<FunctionalUnitId, RtlError> {
        if width == 0 {
            return Err(RtlError::ZeroWidth { name: name.into() });
        }
        self.claim_name(name)?;
        self.fus.push(FunctionalUnit {
            name: name.to_owned(),
            kind,
            width,
        });
        Ok(FunctionalUnitId(self.fus.len() as u32 - 1))
    }

    /// The general connection primitive: connects `src[src_range]` to
    /// `dst[dst_range]` with an explicit realization.
    ///
    /// # Errors
    ///
    /// [`RtlError::ForeignHandle`], [`RtlError::RangeOutOfBounds`],
    /// [`RtlError::WidthMismatch`] or [`RtlError::DirectionViolation`] when
    /// the endpoints are inconsistent.
    pub fn connect_via(
        &mut self,
        src: RtlNode,
        src_range: BitRange,
        dst: RtlNode,
        dst_range: BitRange,
        via: Via,
    ) -> Result<ConnectionId, RtlError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        let conn = Connection {
            src: Endpoint::new(src, src_range),
            dst: Endpoint::new(dst, dst_range),
            via,
        };
        let sw = self.node_width(src);
        let dw = self.node_width(dst);
        if src_range.msb() >= sw {
            return Err(RtlError::RangeOutOfBounds {
                endpoint: conn.src.to_string(),
                width: sw,
            });
        }
        if dst_range.msb() >= dw {
            return Err(RtlError::RangeOutOfBounds {
                endpoint: conn.dst.to_string(),
                width: dw,
            });
        }
        if src_range.width() != dst_range.width() {
            return Err(RtlError::WidthMismatch {
                connection: conn.to_string(),
            });
        }
        if let RtlNode::Port(p) = src {
            if self.ports[p.index()].direction == Direction::Out {
                return Err(RtlError::DirectionViolation {
                    connection: conn.to_string(),
                });
            }
        }
        if let RtlNode::Port(p) = dst {
            if self.ports[p.index()].direction == Direction::In {
                return Err(RtlError::DirectionViolation {
                    connection: conn.to_string(),
                });
            }
        }
        self.connections.push(conn);
        Ok(ConnectionId(self.connections.len() as u32 - 1))
    }

    /// Full-width sliced connection with explicit `via`.
    ///
    /// # Errors
    ///
    /// Same as [`CoreBuilder::connect_via`].
    pub fn connect_slice(
        &mut self,
        src: RtlNode,
        src_range: BitRange,
        dst: RtlNode,
        dst_range: BitRange,
    ) -> Result<ConnectionId, RtlError> {
        self.connect_via(src, src_range, dst, dst_range, Via::Direct)
    }

    /// Direct full-width connection from an input port to a register.
    ///
    /// # Errors
    ///
    /// Same as [`CoreBuilder::connect_via`].
    pub fn connect_port_to_reg(
        &mut self,
        p: PortId,
        r: RegisterId,
    ) -> Result<ConnectionId, RtlError> {
        let (pw, rw) = (self.ports[p.index()].width, self.registers[r.index()].width);
        self.connect_via(
            RtlNode::Port(p),
            BitRange::full(pw),
            RtlNode::Reg(r),
            BitRange::full(rw),
            Via::Direct,
        )
    }

    /// Direct full-width connection from a register to an output port.
    ///
    /// # Errors
    ///
    /// Same as [`CoreBuilder::connect_via`].
    pub fn connect_reg_to_port(
        &mut self,
        r: RegisterId,
        p: PortId,
    ) -> Result<ConnectionId, RtlError> {
        let (rw, pw) = (self.registers[r.index()].width, self.ports[p.index()].width);
        self.connect_via(
            RtlNode::Reg(r),
            BitRange::full(rw),
            RtlNode::Port(p),
            BitRange::full(pw),
            Via::Direct,
        )
    }

    /// Direct full-width register-to-register connection.
    ///
    /// # Errors
    ///
    /// Same as [`CoreBuilder::connect_via`].
    pub fn connect_reg_to_reg(
        &mut self,
        a: RegisterId,
        b: RegisterId,
    ) -> Result<ConnectionId, RtlError> {
        let (aw, bw) = (
            self.registers[a.index()].width,
            self.registers[b.index()].width,
        );
        self.connect_via(
            RtlNode::Reg(a),
            BitRange::full(aw),
            RtlNode::Reg(b),
            BitRange::full(bw),
            Via::Direct,
        )
    }

    /// Full-width connection realized as leg `leg` of the mux tree at `dst`.
    ///
    /// # Errors
    ///
    /// Same as [`CoreBuilder::connect_via`].
    pub fn connect_mux(
        &mut self,
        src: RtlNode,
        dst: RtlNode,
        leg: u8,
    ) -> Result<ConnectionId, RtlError> {
        let sw = self.node_width(src);
        let dw = self.node_width(dst);
        self.connect_via(
            src,
            BitRange::full(sw),
            dst,
            BitRange::full(dw),
            Via::MuxPath { leg },
        )
    }

    /// Sliced connection realized as leg `leg` of the mux tree at `dst`.
    ///
    /// # Errors
    ///
    /// Same as [`CoreBuilder::connect_via`].
    pub fn connect_mux_slice(
        &mut self,
        src: RtlNode,
        src_range: BitRange,
        dst: RtlNode,
        dst_range: BitRange,
        leg: u8,
    ) -> Result<ConnectionId, RtlError> {
        self.connect_via(src, src_range, dst, dst_range, Via::MuxPath { leg })
    }

    /// Full-width connection from a register into a functional-unit input.
    ///
    /// # Errors
    ///
    /// Same as [`CoreBuilder::connect_via`].
    pub fn connect_reg_to_fu(
        &mut self,
        r: RegisterId,
        u: FunctionalUnitId,
    ) -> Result<ConnectionId, RtlError> {
        let (rw, uw) = (self.registers[r.index()].width, self.fus[u.index()].width);
        self.connect_via(
            RtlNode::Reg(r),
            BitRange::full(rw.min(uw)),
            RtlNode::Fu(u),
            BitRange::full(rw.min(uw)),
            Via::Direct,
        )
    }

    /// Full-width connection from a functional-unit output into a register.
    ///
    /// # Errors
    ///
    /// Same as [`CoreBuilder::connect_via`].
    pub fn connect_fu_to_reg(
        &mut self,
        u: FunctionalUnitId,
        r: RegisterId,
    ) -> Result<ConnectionId, RtlError> {
        let (uw, rw) = (self.fus[u.index()].width, self.registers[r.index()].width);
        self.connect_via(
            RtlNode::Fu(u),
            BitRange::full(uw.min(rw)),
            RtlNode::Reg(r),
            BitRange::full(uw.min(rw)),
            Via::Direct,
        )
    }

    /// Full-width connection from an input port into a functional unit.
    ///
    /// # Errors
    ///
    /// Same as [`CoreBuilder::connect_via`].
    pub fn connect_port_to_fu(
        &mut self,
        p: PortId,
        u: FunctionalUnitId,
    ) -> Result<ConnectionId, RtlError> {
        let (pw, uw) = (self.ports[p.index()].width, self.fus[u.index()].width);
        self.connect_via(
            RtlNode::Port(p),
            BitRange::full(pw.min(uw)),
            RtlNode::Fu(u),
            BitRange::full(pw.min(uw)),
            Via::Direct,
        )
    }

    /// Full-width connection from a functional unit to an output port.
    ///
    /// # Errors
    ///
    /// Same as [`CoreBuilder::connect_via`].
    pub fn connect_fu_to_port(
        &mut self,
        u: FunctionalUnitId,
        p: PortId,
    ) -> Result<ConnectionId, RtlError> {
        let (uw, pw) = (self.fus[u.index()].width, self.ports[p.index()].width);
        self.connect_via(
            RtlNode::Fu(u),
            BitRange::full(uw.min(pw)),
            RtlNode::Port(p),
            BitRange::full(uw.min(pw)),
            Via::Direct,
        )
    }

    /// Lossy register-to-register shortcut through `fu` (paper-style "the
    /// value passes through the ALU"): creates a single connection marked
    /// [`Via::ThroughFu`].
    ///
    /// # Errors
    ///
    /// Same as [`CoreBuilder::connect_via`].
    pub fn connect_through_fu(
        &mut self,
        a: RegisterId,
        fu: FunctionalUnitId,
        b: RegisterId,
    ) -> Result<ConnectionId, RtlError> {
        let (aw, bw) = (
            self.registers[a.index()].width,
            self.registers[b.index()].width,
        );
        let w = aw.min(bw);
        self.connect_via(
            RtlNode::Reg(a),
            BitRange::full(w),
            RtlNode::Reg(b),
            BitRange::full(w),
            Via::ThroughFu(fu),
        )
    }

    fn node_width(&self, node: RtlNode) -> u16 {
        match node {
            RtlNode::Port(p) => self.ports[p.index()].width,
            RtlNode::Reg(r) => self.registers[r.index()].width,
            RtlNode::Fu(u) => self.fus[u.index()].width,
        }
    }

    fn check_node(&self, node: RtlNode) -> Result<(), RtlError> {
        let ok = match node {
            RtlNode::Port(p) => p.index() < self.ports.len(),
            RtlNode::Reg(r) => r.index() < self.registers.len(),
            RtlNode::Fu(u) => u.index() < self.fus.len(),
        };
        if ok {
            Ok(())
        } else {
            Err(RtlError::ForeignHandle {
                handle: format!("{node}"),
            })
        }
    }

    /// Validates the whole netlist and freezes it into a [`Core`].
    ///
    /// # Errors
    ///
    /// * [`RtlError::DriverConflict`] — two non-mux, non-bus connections
    ///   drive overlapping bits of the same sink;
    /// * [`RtlError::Dangling`] — a port, register or functional unit has no
    ///   connection at all.
    pub fn build(self) -> Result<Core, RtlError> {
        // Driver-conflict check per sink node. Functional-unit sinks are
        // exempt: their fan-in connections are distinct operands, not
        // competing drivers of the same bits.
        for (i, a) in self.connections.iter().enumerate() {
            for b in self.connections.iter().skip(i + 1) {
                if a.dst.node != b.dst.node
                    || a.dst.node.is_fu()
                    || !a.dst.range.overlaps(b.dst.range)
                {
                    continue;
                }
                let compatible = match (a.via, b.via) {
                    (Via::MuxPath { leg: la }, Via::MuxPath { leg: lb }) => la != lb,
                    (Via::Bus, Via::Bus) => true,
                    // A mux tree can also absorb FU results as extra legs.
                    (Via::MuxPath { .. }, Via::ThroughFu(_)) => true,
                    (Via::ThroughFu(_), Via::MuxPath { .. }) => true,
                    (Via::ThroughFu(x), Via::ThroughFu(y)) => x != y,
                    _ => false,
                };
                if !compatible {
                    return Err(RtlError::DriverConflict {
                        sink: format!("{} (driven by {} and {})", a.dst, a.src, b.src),
                    });
                }
            }
        }
        // Dangling checks.
        for (i, p) in self.ports.iter().enumerate() {
            let node = RtlNode::Port(PortId(i as u32));
            let touched = self
                .connections
                .iter()
                .any(|c| c.src.node == node || c.dst.node == node);
            if !touched {
                return Err(RtlError::Dangling {
                    item: format!("port `{}`", p.name),
                });
            }
        }
        for (i, r) in self.registers.iter().enumerate() {
            let node = RtlNode::Reg(RegisterId(i as u32));
            let touched = self
                .connections
                .iter()
                .any(|c| c.src.node == node || c.dst.node == node);
            if !touched {
                return Err(RtlError::Dangling {
                    item: format!("register `{}`", r.name),
                });
            }
        }
        for (i, u) in self.fus.iter().enumerate() {
            let node = RtlNode::Fu(FunctionalUnitId(i as u32));
            let used = self.connections.iter().any(|c| {
                c.src.node == node
                    || c.dst.node == node
                    || c.via == Via::ThroughFu(FunctionalUnitId(i as u32))
            });
            if !used {
                return Err(RtlError::Dangling {
                    item: format!("functional unit `{}`", u.name),
                });
            }
        }
        Ok(Core {
            name: self.name,
            ports: self.ports,
            registers: self.registers,
            fus: self.fus,
            connections: self.connections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_port_builder() -> (CoreBuilder, PortId, PortId, RegisterId) {
        let mut b = CoreBuilder::new("t");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        (b, i, o, r)
    }

    #[test]
    fn duplicate_name_rejected_across_namespaces() {
        let mut b = CoreBuilder::new("t");
        b.port("x", Direction::In, 4).unwrap();
        assert!(matches!(
            b.register("x", 4),
            Err(RtlError::DuplicateName { .. })
        ));
    }

    #[test]
    fn zero_width_rejected() {
        let mut b = CoreBuilder::new("t");
        assert!(matches!(
            b.port("p", Direction::In, 0),
            Err(RtlError::ZeroWidth { .. })
        ));
        assert!(matches!(
            b.register("r", 0),
            Err(RtlError::ZeroWidth { .. })
        ));
    }

    #[test]
    fn width_mismatch_rejected() {
        let (mut b, i, _o, r) = two_port_builder();
        let err = b.connect_via(
            RtlNode::Port(i),
            BitRange::new(0, 3),
            RtlNode::Reg(r),
            BitRange::new(0, 7),
            Via::Direct,
        );
        assert!(matches!(err, Err(RtlError::WidthMismatch { .. })));
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut b, i, _o, r) = two_port_builder();
        let err = b.connect_via(
            RtlNode::Port(i),
            BitRange::new(0, 8),
            RtlNode::Reg(r),
            BitRange::new(0, 8),
            Via::Direct,
        );
        assert!(matches!(err, Err(RtlError::RangeOutOfBounds { .. })));
    }

    #[test]
    fn direction_violation_rejected() {
        let (mut b, i, o, r) = two_port_builder();
        // Driving an input port.
        assert!(matches!(
            b.connect_via(
                RtlNode::Reg(r),
                BitRange::full(8),
                RtlNode::Port(i),
                BitRange::full(8),
                Via::Direct,
            ),
            Err(RtlError::DirectionViolation { .. })
        ));
        // Sourcing from an output port.
        assert!(matches!(
            b.connect_via(
                RtlNode::Port(o),
                BitRange::full(8),
                RtlNode::Reg(r),
                BitRange::full(8),
                Via::Direct,
            ),
            Err(RtlError::DirectionViolation { .. })
        ));
    }

    #[test]
    fn driver_conflict_detected() {
        let mut b = CoreBuilder::new("t");
        let i = b.port("i", Direction::In, 8).unwrap();
        let j = b.port("j", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_port_to_reg(j, r).unwrap(); // second Direct driver: conflict
        b.connect_reg_to_port(r, o).unwrap();
        assert!(matches!(b.build(), Err(RtlError::DriverConflict { .. })));
    }

    #[test]
    fn mux_legs_do_not_conflict() {
        let mut b = CoreBuilder::new("t");
        let i = b.port("i", Direction::In, 8).unwrap();
        let j = b.port("j", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(r), 0).unwrap();
        b.connect_mux(RtlNode::Port(j), RtlNode::Reg(r), 1).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = b.build().unwrap();
        assert_eq!(core.fanin(RtlNode::Reg(r)).count(), 2);
    }

    #[test]
    fn same_mux_leg_conflicts() {
        let mut b = CoreBuilder::new("t");
        let i = b.port("i", Direction::In, 8).unwrap();
        let j = b.port("j", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(r), 0).unwrap();
        b.connect_mux(RtlNode::Port(j), RtlNode::Reg(r), 0).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        assert!(matches!(b.build(), Err(RtlError::DriverConflict { .. })));
    }

    #[test]
    fn dangling_register_rejected() {
        let mut b = CoreBuilder::new("t");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.register("lonely", 8).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        assert!(matches!(b.build(), Err(RtlError::Dangling { .. })));
    }

    #[test]
    fn c_split_and_o_split_detection() {
        let mut b = CoreBuilder::new("t");
        let a = b.port("a", Direction::In, 4).unwrap();
        let c = b.port("c", Direction::In, 4).unwrap();
        let o1 = b.port("o1", Direction::Out, 4).unwrap();
        let o2 = b.port("o2", Direction::Out, 4).unwrap();
        let acc = b.register("acc", 8).unwrap();
        b.connect_slice(
            RtlNode::Port(a),
            BitRange::full(4),
            RtlNode::Reg(acc),
            BitRange::new(0, 3),
        )
        .unwrap();
        b.connect_slice(
            RtlNode::Port(c),
            BitRange::full(4),
            RtlNode::Reg(acc),
            BitRange::new(4, 7),
        )
        .unwrap();
        b.connect_slice(
            RtlNode::Reg(acc),
            BitRange::new(0, 3),
            RtlNode::Port(o1),
            BitRange::full(4),
        )
        .unwrap();
        b.connect_slice(
            RtlNode::Reg(acc),
            BitRange::new(4, 7),
            RtlNode::Port(o2),
            BitRange::full(4),
        )
        .unwrap();
        let core = b.build().unwrap();
        assert!(core.is_c_split(RtlNode::Reg(acc)));
        assert!(core.is_o_split(RtlNode::Reg(acc)));
    }

    #[test]
    fn full_width_fanout_is_not_o_split() {
        let mut b = CoreBuilder::new("t");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o1 = b.port("o1", Direction::Out, 8).unwrap();
        let o2 = b.port("o2", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o1).unwrap();
        b.connect_reg_to_port(r, o2).unwrap();
        let core = b.build().unwrap();
        // Two full-width fanout edges overlap entirely: not a split.
        assert!(!core.is_o_split(RtlNode::Reg(r)));
    }

    #[test]
    fn lossless_connections_exclude_fu_paths() {
        let mut b = CoreBuilder::new("t");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        let fu = b.functional_unit("alu", FuKind::Alu, 8).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_through_fu(r1, fu, r2).unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        let core = b.build().unwrap();
        assert_eq!(core.lossless_connections().count(), 2);
        assert_eq!(core.connections().len(), 3);
    }

    #[test]
    fn find_by_name() {
        let (mut b, i, o, r) = two_port_builder();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = b.build().unwrap();
        assert_eq!(core.find_register("r"), Some(r));
        assert_eq!(core.find_register("zz"), None);
        assert_eq!(core.find_port("i"), Some(i));
    }

    #[test]
    fn stats_counters() {
        let (mut b, i, o, r) = two_port_builder();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = b.build().unwrap();
        assert_eq!(core.flip_flop_count(), 8);
        assert_eq!(core.input_bits(), 8);
        assert_eq!(core.output_bits(), 8);
        assert_eq!(core.to_string(), "core t (2 ports, 1 regs, 0 fus, 2 conns)");
    }
}
