//! Structural content hashing of a [`Core`].
//!
//! The preparation pipeline keys its per-core artifact memo and on-disk
//! cache on a [`Fingerprint`] of the *inputs* of the core-level flow: the
//! full RTL structure plus the DFT cost knobs and ATPG configuration the
//! caller supplies. Two `Core` values hash equal iff they would drive the
//! deterministic flow (HSCAN, version synthesis, elaboration, test
//! generation) to identical outputs — every name, width, direction, signal
//! class, bit slice and connection realization participates, in declaration
//! order. Name participation is deliberate: elaboration derives gate-level
//! signal names from RTL names, so two structurally isomorphic cores with
//! different names produce different (if same-sized) netlists.

use crate::bits::BitRange;
use crate::component::FuKind;
use crate::connection::{Endpoint, RtlNode, Via};
use crate::core::Core;
use crate::port::{Direction, SignalClass};
use socet_cells::{Fingerprint, StableHasher};

fn hash_range(r: BitRange, h: &mut StableHasher) {
    h.write_u16(r.lsb());
    h.write_u16(r.msb());
}

fn hash_node(n: RtlNode, h: &mut StableHasher) {
    match n {
        RtlNode::Port(p) => {
            h.write_u8(0);
            h.write_usize(p.index());
        }
        RtlNode::Reg(r) => {
            h.write_u8(1);
            h.write_usize(r.index());
        }
        RtlNode::Fu(u) => {
            h.write_u8(2);
            h.write_usize(u.index());
        }
    }
}

fn hash_endpoint(e: &Endpoint, h: &mut StableHasher) {
    hash_node(e.node, h);
    hash_range(e.range, h);
}

fn hash_via(v: Via, h: &mut StableHasher) {
    match v {
        Via::Direct => h.write_u8(0),
        Via::MuxPath { leg } => {
            h.write_u8(1);
            h.write_u8(leg);
        }
        Via::Bus => h.write_u8(2),
        Via::ThroughFu(u) => {
            h.write_u8(3);
            h.write_usize(u.index());
        }
    }
}

fn hash_fu_kind(k: FuKind, h: &mut StableHasher) {
    match k {
        FuKind::Add => h.write_u8(0),
        FuKind::Sub => h.write_u8(1),
        FuKind::Inc => h.write_u8(2),
        FuKind::Cmp => h.write_u8(3),
        FuKind::Logic => h.write_u8(4),
        FuKind::Shift => h.write_u8(5),
        FuKind::Alu => h.write_u8(6),
        FuKind::Random { gates } => {
            h.write_u8(7);
            h.write_u32(gates);
        }
    }
}

impl Core {
    /// Feeds the core's entire structure into `h`.
    ///
    /// Cores compare equal under [`PartialEq`] iff they feed identical byte
    /// streams, so the fingerprint is a faithful (collision-guarded by the
    /// caller) stand-in for structural equality.
    pub fn fingerprint_into(&self, h: &mut StableHasher) {
        h.write_str("Core");
        h.write_str(self.name());
        h.write_usize(self.ports().len());
        for p in self.ports() {
            h.write_str(p.name());
            h.write_u8(match p.direction() {
                Direction::In => 0,
                Direction::Out => 1,
            });
            h.write_u16(p.width());
            h.write_u8(match p.class() {
                SignalClass::Data => 0,
                SignalClass::Control => 1,
            });
        }
        h.write_usize(self.registers().len());
        for r in self.registers() {
            h.write_str(r.name());
            h.write_u16(r.width());
        }
        h.write_usize(self.functional_units().len());
        for u in self.functional_units() {
            h.write_str(u.name());
            hash_fu_kind(u.kind(), h);
            h.write_u16(u.width());
        }
        h.write_usize(self.connections().len());
        for c in self.connections() {
            hash_endpoint(&c.src, h);
            hash_endpoint(&c.dst, h);
            hash_via(c.via, h);
        }
    }

    /// The core's structural fingerprint on a fresh hasher.
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_rtl::{CoreBuilder, Direction};
    /// let build = |name: &str, width: u16| {
    ///     let mut b = CoreBuilder::new(name);
    ///     let i = b.port("i", Direction::In, width)?;
    ///     let o = b.port("o", Direction::Out, width)?;
    ///     let r = b.register("r", width)?;
    ///     b.connect_port_to_reg(i, r)?;
    ///     b.connect_reg_to_port(r, o)?;
    ///     b.build()
    /// };
    /// let a = build("buf", 8)?;
    /// assert_eq!(a.fingerprint(), build("buf", 8)?.fingerprint());
    /// assert_ne!(a.fingerprint(), build("buf", 9)?.fingerprint());
    /// assert_ne!(a.fingerprint(), build("fub", 8)?.fingerprint());
    /// # Ok::<(), socet_rtl::RtlError>(())
    /// ```
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = StableHasher::new();
        self.fingerprint_into(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::core::CoreBuilder;
    use crate::port::Direction;
    use crate::{BitRange, FuKind, RtlNode, Via};

    #[test]
    fn identical_builds_share_a_fingerprint() {
        let build = || {
            let mut b = CoreBuilder::new("c");
            let i = b.port("i", Direction::In, 8).unwrap();
            let o = b.port("o", Direction::Out, 8).unwrap();
            let r = b.register("r", 8).unwrap();
            let fu = b.functional_unit("alu", FuKind::Alu, 8).unwrap();
            b.connect_mux(RtlNode::Port(i), RtlNode::Reg(r), 0).unwrap();
            b.connect_reg_to_fu(r, fu).unwrap();
            b.connect_mux(RtlNode::Fu(fu), RtlNode::Reg(r), 1).unwrap();
            b.connect_reg_to_port(r, o).unwrap();
            b.build().unwrap()
        };
        assert_eq!(build().fingerprint(), build().fingerprint());
    }

    #[test]
    fn every_structural_detail_participates() {
        // Baseline core.
        let base = || {
            let mut b = CoreBuilder::new("c");
            let i = b.port("i", Direction::In, 8).unwrap();
            let o = b.port("o", Direction::Out, 8).unwrap();
            let r = b.register("r", 8).unwrap();
            (b, i, o, r)
        };
        let plain = {
            let (mut b, i, o, r) = base();
            b.connect_port_to_reg(i, r).unwrap();
            b.connect_reg_to_port(r, o).unwrap();
            b.build().unwrap()
        };
        // Same shape but the input feeds through a mux leg instead.
        let muxed = {
            let (mut b, i, o, r) = base();
            b.connect_mux(RtlNode::Port(i), RtlNode::Reg(r), 0).unwrap();
            b.connect_reg_to_port(r, o).unwrap();
            b.build().unwrap()
        };
        assert_ne!(plain.fingerprint(), muxed.fingerprint());
        // Same shape but only the low nibble is wired.
        let sliced = {
            let (mut b, i, o, r) = base();
            b.connect_slice(
                RtlNode::Port(i),
                BitRange::new(0, 3),
                RtlNode::Reg(r),
                BitRange::new(0, 3),
            )
            .unwrap();
            b.connect_via(
                RtlNode::Port(i),
                BitRange::new(4, 7),
                RtlNode::Reg(r),
                BitRange::new(4, 7),
                Via::Bus,
            )
            .unwrap();
            b.connect_reg_to_port(r, o).unwrap();
            b.build().unwrap()
        };
        assert_ne!(plain.fingerprint(), sliced.fingerprint());
    }

    #[test]
    fn register_rename_changes_the_fingerprint() {
        let build = |reg: &str| {
            let mut b = CoreBuilder::new("c");
            let i = b.port("i", Direction::In, 8).unwrap();
            let o = b.port("o", Direction::Out, 8).unwrap();
            let r = b.register(reg, 8).unwrap();
            b.connect_port_to_reg(i, r).unwrap();
            b.connect_reg_to_port(r, o).unwrap();
            b.build().unwrap()
        };
        // Elaboration derives signal names from register names, so the
        // flow's outputs differ and the fingerprints must too.
        assert_ne!(build("acc").fingerprint(), build("mar").fingerprint());
    }
}
