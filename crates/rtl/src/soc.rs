//! System-on-chip netlist: core instances plus chip-level interconnect.

use crate::bits::BitRange;
use crate::core::Core;
use crate::error::RtlError;
use crate::port::{Direction, PortId};
use std::fmt;
use std::sync::Arc;

/// Opaque handle to a chip pin within one [`Soc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChipPinId(pub(crate) u32);

impl ChipPinId {
    /// The handle's index within the SOC's pin table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChipPinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pin{}", self.0)
    }
}

/// A chip-level pin (primary input or output of the SOC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipPin {
    pub(crate) name: String,
    pub(crate) direction: Direction,
    pub(crate) width: u16,
}

impl ChipPin {
    /// The pin's name, unique within the SOC.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// [`Direction::In`] for a primary input, [`Direction::Out`] for a
    /// primary output.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The pin's bit width.
    pub fn width(&self) -> u16 {
        self.width
    }
}

impl fmt::Display for ChipPin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}:0]", self.direction, self.name, self.width - 1)
    }
}

/// Opaque handle to a core instance within one [`Soc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreInstanceId(pub(crate) u32);

impl CoreInstanceId {
    /// The handle's index within the SOC's core table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a handle from a dense index, the inverse of
    /// [`CoreInstanceId::index`]. The caller must keep the index within the
    /// owning SOC's core count.
    pub fn from_index(i: usize) -> CoreInstanceId {
        CoreInstanceId(i as u32)
    }
}

impl fmt::Display for CoreInstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// An instantiated core inside an SOC.
///
/// Memory cores (RAM/ROM) are flagged: the paper excludes them from
/// transparency routing because "most memory cores use BIST".
#[derive(Debug, Clone)]
pub struct CoreInstance {
    pub(crate) name: String,
    pub(crate) core: Arc<Core>,
    pub(crate) is_memory: bool,
}

impl CoreInstance {
    /// The instance name, unique within the SOC.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The core netlist this instance instantiates.
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Whether this is a memory core (tested by BIST, not by SOCET routing).
    pub fn is_memory(&self) -> bool {
        self.is_memory
    }
}

impl fmt::Display for CoreInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} : {}{}",
            self.name,
            self.core.name(),
            if self.is_memory { " (memory)" } else { "" }
        )
    }
}

/// One end of a chip-level net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocEndpoint {
    /// A chip pin slice.
    Pin {
        /// The pin.
        pin: ChipPinId,
        /// The bits of the pin the net touches.
        range: BitRange,
    },
    /// A core-port slice.
    CorePort {
        /// The core instance.
        core: CoreInstanceId,
        /// The port on that core.
        port: PortId,
        /// The bits of the port the net touches.
        range: BitRange,
    },
}

impl SocEndpoint {
    /// The bit range the endpoint touches.
    pub fn range(&self) -> BitRange {
        match self {
            SocEndpoint::Pin { range, .. } => *range,
            SocEndpoint::CorePort { range, .. } => *range,
        }
    }
}

impl fmt::Display for SocEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocEndpoint::Pin { pin, range } => write!(f, "{pin}{range}"),
            SocEndpoint::CorePort { core, port, range } => {
                write!(f, "{core}.{port}{range}")
            }
        }
    }
}

/// A directed chip-level net: chip PI → core input, core output → core
/// input, or core output → chip PO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocNet {
    /// Where the data comes from (chip PI or core output).
    pub src: SocEndpoint,
    /// Where the data goes (core input or chip PO).
    pub dst: SocEndpoint,
}

impl fmt::Display for SocNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

/// A validated system-on-chip: pins, core instances and interconnect.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction, SocBuilder};
/// # use std::sync::Arc;
/// let mut cb = CoreBuilder::new("buf");
/// let i = cb.port("i", Direction::In, 8)?;
/// let o = cb.port("o", Direction::Out, 8)?;
/// let r = cb.register("r", 8)?;
/// cb.connect_port_to_reg(i, r)?;
/// cb.connect_reg_to_port(r, o)?;
/// let buf = Arc::new(cb.build()?);
///
/// let mut sb = SocBuilder::new("chip");
/// let pi = sb.input_pin("pi", 8)?;
/// let po = sb.output_pin("po", 8)?;
/// let u0 = sb.instantiate("u0", buf.clone())?;
/// sb.connect_pin_to_core(pi, u0, i)?;
/// sb.connect_core_to_pin(u0, o, po)?;
/// let soc = sb.build()?;
/// assert_eq!(soc.cores().len(), 1);
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Soc {
    name: String,
    pins: Vec<ChipPin>,
    cores: Vec<CoreInstance>,
    nets: Vec<SocNet>,
}

impl Soc {
    /// The SOC's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All chip pins, indexable by [`ChipPinId::index`].
    pub fn pins(&self) -> &[ChipPin] {
        &self.pins
    }

    /// All core instances, indexable by [`CoreInstanceId::index`].
    pub fn cores(&self) -> &[CoreInstance] {
        &self.cores
    }

    /// All chip-level nets.
    pub fn nets(&self) -> &[SocNet] {
        &self.nets
    }

    /// The pin behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different SOC.
    pub fn pin(&self, id: ChipPinId) -> &ChipPin {
        &self.pins[id.index()]
    }

    /// The core instance behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different SOC.
    pub fn core(&self, id: CoreInstanceId) -> &CoreInstance {
        &self.cores[id.index()]
    }

    /// Handles of all primary-input pins.
    pub fn primary_inputs(&self) -> Vec<ChipPinId> {
        self.pins_with(Direction::In)
    }

    /// Handles of all primary-output pins.
    pub fn primary_outputs(&self) -> Vec<ChipPinId> {
        self.pins_with(Direction::Out)
    }

    fn pins_with(&self, dir: Direction) -> Vec<ChipPinId> {
        self.pins
            .iter()
            .enumerate()
            .filter(|(_, p)| p.direction == dir)
            .map(|(i, _)| ChipPinId(i as u32))
            .collect()
    }

    /// Handles of all non-memory ("logic") cores — the ones SOCET routes
    /// test data through.
    pub fn logic_cores(&self) -> Vec<CoreInstanceId> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_memory)
            .map(|(i, _)| CoreInstanceId(i as u32))
            .collect()
    }

    /// Looks a core instance up by name.
    pub fn find_core(&self, name: &str) -> Option<CoreInstanceId> {
        self.cores
            .iter()
            .position(|c| c.name == name)
            .map(|i| CoreInstanceId(i as u32))
    }

    /// Looks a pin up by name.
    pub fn find_pin(&self, name: &str) -> Option<ChipPinId> {
        self.pins
            .iter()
            .position(|p| p.name == name)
            .map(|i| ChipPinId(i as u32))
    }

    /// Nets whose destination is the given core input port.
    pub fn nets_into(&self, core: CoreInstanceId, port: PortId) -> impl Iterator<Item = &SocNet> {
        self.nets.iter().filter(move |n| {
            matches!(n.dst, SocEndpoint::CorePort { core: c, port: p, .. } if c == core && p == port)
        })
    }

    /// Nets whose source is the given core output port.
    pub fn nets_from(&self, core: CoreInstanceId, port: PortId) -> impl Iterator<Item = &SocNet> {
        self.nets.iter().filter(move |n| {
            matches!(n.src, SocEndpoint::CorePort { core: c, port: p, .. } if c == core && p == port)
        })
    }

    /// Sum of all instantiated cores' flip-flops.
    pub fn flip_flop_count(&self) -> u32 {
        self.cores.iter().map(|c| c.core.flip_flop_count()).sum()
    }
}

impl fmt::Display for Soc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "soc {} ({} pins, {} cores, {} nets)",
            self.name,
            self.pins.len(),
            self.cores.len(),
            self.nets.len()
        )
    }
}

/// Incremental builder for a [`Soc`].
#[derive(Debug, Clone)]
pub struct SocBuilder {
    name: String,
    pins: Vec<ChipPin>,
    cores: Vec<CoreInstance>,
    nets: Vec<SocNet>,
}

impl SocBuilder {
    /// Starts building an SOC called `name`.
    pub fn new(name: &str) -> Self {
        SocBuilder {
            name: name.to_owned(),
            pins: Vec::new(),
            cores: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// Declares a primary-input pin.
    ///
    /// # Errors
    ///
    /// [`RtlError::DuplicateName`] or [`RtlError::ZeroWidth`].
    pub fn input_pin(&mut self, name: &str, width: u16) -> Result<ChipPinId, RtlError> {
        self.pin(name, Direction::In, width)
    }

    /// Declares a primary-output pin.
    ///
    /// # Errors
    ///
    /// [`RtlError::DuplicateName`] or [`RtlError::ZeroWidth`].
    pub fn output_pin(&mut self, name: &str, width: u16) -> Result<ChipPinId, RtlError> {
        self.pin(name, Direction::Out, width)
    }

    fn pin(&mut self, name: &str, direction: Direction, width: u16) -> Result<ChipPinId, RtlError> {
        if width == 0 {
            return Err(RtlError::ZeroWidth { name: name.into() });
        }
        if self.pins.iter().any(|p| p.name == name) {
            return Err(RtlError::DuplicateName { name: name.into() });
        }
        self.pins.push(ChipPin {
            name: name.to_owned(),
            direction,
            width,
        });
        Ok(ChipPinId(self.pins.len() as u32 - 1))
    }

    /// Instantiates a logic core.
    ///
    /// # Errors
    ///
    /// [`RtlError::DuplicateName`] if `name` is taken.
    pub fn instantiate(&mut self, name: &str, core: Arc<Core>) -> Result<CoreInstanceId, RtlError> {
        self.instantiate_with(name, core, false)
    }

    /// Instantiates a memory core (excluded from SOCET routing; BIST-tested).
    ///
    /// # Errors
    ///
    /// [`RtlError::DuplicateName`] if `name` is taken.
    pub fn instantiate_memory(
        &mut self,
        name: &str,
        core: Arc<Core>,
    ) -> Result<CoreInstanceId, RtlError> {
        self.instantiate_with(name, core, true)
    }

    fn instantiate_with(
        &mut self,
        name: &str,
        core: Arc<Core>,
        is_memory: bool,
    ) -> Result<CoreInstanceId, RtlError> {
        if self.cores.iter().any(|c| c.name == name) {
            return Err(RtlError::DuplicateName { name: name.into() });
        }
        self.cores.push(CoreInstance {
            name: name.to_owned(),
            core,
            is_memory,
        });
        Ok(CoreInstanceId(self.cores.len() as u32 - 1))
    }

    /// Connects a full chip PI to a full core input port.
    ///
    /// # Errors
    ///
    /// [`RtlError::BadSocNet`] on direction or width inconsistency.
    pub fn connect_pin_to_core(
        &mut self,
        pin: ChipPinId,
        core: CoreInstanceId,
        port: PortId,
    ) -> Result<(), RtlError> {
        let pw = self.pin_width(pin)?;
        let cw = self.port_width(core, port)?;
        self.connect(
            SocEndpoint::Pin {
                pin,
                range: BitRange::full(pw),
            },
            SocEndpoint::CorePort {
                core,
                port,
                range: BitRange::full(cw),
            },
        )
    }

    /// Connects a full core output port to a full chip PO.
    ///
    /// # Errors
    ///
    /// [`RtlError::BadSocNet`] on direction or width inconsistency.
    pub fn connect_core_to_pin(
        &mut self,
        core: CoreInstanceId,
        port: PortId,
        pin: ChipPinId,
    ) -> Result<(), RtlError> {
        let cw = self.port_width(core, port)?;
        let pw = self.pin_width(pin)?;
        self.connect(
            SocEndpoint::CorePort {
                core,
                port,
                range: BitRange::full(cw),
            },
            SocEndpoint::Pin {
                pin,
                range: BitRange::full(pw),
            },
        )
    }

    /// Connects a full core output port to a full core input port.
    ///
    /// # Errors
    ///
    /// [`RtlError::BadSocNet`] on direction or width inconsistency.
    pub fn connect_cores(
        &mut self,
        src_core: CoreInstanceId,
        src_port: PortId,
        dst_core: CoreInstanceId,
        dst_port: PortId,
    ) -> Result<(), RtlError> {
        let sw = self.port_width(src_core, src_port)?;
        let dw = self.port_width(dst_core, dst_port)?;
        self.connect(
            SocEndpoint::CorePort {
                core: src_core,
                port: src_port,
                range: BitRange::full(sw),
            },
            SocEndpoint::CorePort {
                core: dst_core,
                port: dst_port,
                range: BitRange::full(dw),
            },
        )
    }

    /// The general net primitive, with explicit slices.
    ///
    /// # Errors
    ///
    /// [`RtlError::BadSocNet`] on any inconsistency: unknown handles, width
    /// mismatch, out-of-bounds ranges, or wrong directions (sources must be
    /// chip PIs or core outputs, destinations chip POs or core inputs).
    pub fn connect(&mut self, src: SocEndpoint, dst: SocEndpoint) -> Result<(), RtlError> {
        self.check_endpoint(&src, true)?;
        self.check_endpoint(&dst, false)?;
        if src.range().width() != dst.range().width() {
            return Err(RtlError::BadSocNet {
                detail: format!("width mismatch in {src} -> {dst}"),
            });
        }
        self.nets.push(SocNet { src, dst });
        Ok(())
    }

    fn pin_width(&self, pin: ChipPinId) -> Result<u16, RtlError> {
        self.pins
            .get(pin.index())
            .map(|p| p.width)
            .ok_or_else(|| RtlError::BadSocNet {
                detail: format!("unknown pin {pin}"),
            })
    }

    fn port_width(&self, core: CoreInstanceId, port: PortId) -> Result<u16, RtlError> {
        let inst = self
            .cores
            .get(core.index())
            .ok_or_else(|| RtlError::BadSocNet {
                detail: format!("unknown core {core}"),
            })?;
        inst.core
            .ports()
            .get(port.index())
            .map(|p| p.width())
            .ok_or_else(|| RtlError::BadSocNet {
                detail: format!("unknown port {port} on {core}"),
            })
    }

    fn check_endpoint(&self, ep: &SocEndpoint, is_source: bool) -> Result<(), RtlError> {
        match *ep {
            SocEndpoint::Pin { pin, range } => {
                let w = self.pin_width(pin)?;
                if range.msb() >= w {
                    return Err(RtlError::BadSocNet {
                        detail: format!("range {range} exceeds pin {pin} width {w}"),
                    });
                }
                let dir = self.pins[pin.index()].direction;
                let ok = if is_source {
                    dir == Direction::In
                } else {
                    dir == Direction::Out
                };
                if !ok {
                    return Err(RtlError::BadSocNet {
                        detail: format!(
                            "pin {pin} used as {} but is an {dir} pin",
                            if is_source { "source" } else { "sink" }
                        ),
                    });
                }
            }
            SocEndpoint::CorePort { core, port, range } => {
                let w = self.port_width(core, port)?;
                if range.msb() >= w {
                    return Err(RtlError::BadSocNet {
                        detail: format!("range {range} exceeds port width {w}"),
                    });
                }
                let dir = self.cores[core.index()].core.ports()[port.index()].direction();
                let ok = if is_source {
                    dir == Direction::Out
                } else {
                    dir == Direction::In
                };
                if !ok {
                    return Err(RtlError::BadSocNet {
                        detail: format!(
                            "core port used as {} but is an {dir} port",
                            if is_source { "source" } else { "sink" }
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Validates and freezes the SOC.
    ///
    /// # Errors
    ///
    /// [`RtlError::Dangling`] if a core instance has no net touching it.
    pub fn build(self) -> Result<Soc, RtlError> {
        for (i, inst) in self.cores.iter().enumerate() {
            let id = CoreInstanceId(i as u32);
            let touched = self.nets.iter().any(|n| {
                matches!(n.src, SocEndpoint::CorePort { core, .. } if core == id)
                    || matches!(n.dst, SocEndpoint::CorePort { core, .. } if core == id)
            });
            if !touched {
                return Err(RtlError::Dangling {
                    item: format!("core instance `{}`", inst.name),
                });
            }
        }
        Ok(Soc {
            name: self.name,
            pins: self.pins,
            cores: self.cores,
            nets: self.nets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreBuilder;

    fn buf_core() -> Arc<Core> {
        let mut cb = CoreBuilder::new("buf");
        let i = cb.port("i", Direction::In, 8).unwrap();
        let o = cb.port("o", Direction::Out, 8).unwrap();
        let r = cb.register("r", 8).unwrap();
        cb.connect_port_to_reg(i, r).unwrap();
        cb.connect_reg_to_port(r, o).unwrap();
        Arc::new(cb.build().unwrap())
    }

    fn port_of(core: &Core, name: &str) -> PortId {
        core.find_port(name).unwrap()
    }

    #[test]
    fn two_core_chain() {
        let buf = buf_core();
        let (i, o) = (port_of(&buf, "i"), port_of(&buf, "o"));
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", buf.clone()).unwrap();
        let u1 = sb.instantiate("u1", buf.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_cores(u0, o, u1, i).unwrap();
        sb.connect_core_to_pin(u1, o, po).unwrap();
        let soc = sb.build().unwrap();
        assert_eq!(soc.nets().len(), 3);
        assert_eq!(soc.nets_into(u1, i).count(), 1);
        assert_eq!(soc.nets_from(u0, o).count(), 1);
        assert_eq!(soc.flip_flop_count(), 16);
        assert_eq!(soc.find_core("u1"), Some(u1));
        assert_eq!(soc.find_pin("pi"), Some(pi));
    }

    #[test]
    fn memory_cores_are_excluded_from_logic_list() {
        let buf = buf_core();
        let (i, o) = (port_of(&buf, "i"), port_of(&buf, "o"));
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", buf.clone()).unwrap();
        let ram = sb.instantiate_memory("ram", buf.clone()).unwrap();
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_core_to_pin(u0, o, po).unwrap();
        sb.connect_cores(u0, o, ram, i).unwrap();
        let soc = sb.build().unwrap();
        assert_eq!(soc.logic_cores(), vec![u0]);
        assert!(soc.core(ram).is_memory());
    }

    #[test]
    fn direction_errors_detected() {
        let buf = buf_core();
        let (i, o) = (port_of(&buf, "i"), port_of(&buf, "o"));
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u0 = sb.instantiate("u0", buf.clone()).unwrap();
        // PO used as a source.
        assert!(sb.connect_pin_to_core(po, u0, i).is_err());
        // Core input used as a source.
        assert!(sb.connect_core_to_pin(u0, i, po).is_err());
        // Valid wiring still works afterwards.
        sb.connect_pin_to_core(pi, u0, i).unwrap();
        sb.connect_core_to_pin(u0, o, po).unwrap();
        assert!(sb.build().is_ok());
    }

    #[test]
    fn width_mismatch_detected() {
        let buf = buf_core();
        let i = port_of(&buf, "i");
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("narrow", 4).unwrap();
        let u0 = sb.instantiate("u0", buf.clone()).unwrap();
        assert!(matches!(
            sb.connect_pin_to_core(pi, u0, i),
            Err(RtlError::BadSocNet { .. })
        ));
    }

    #[test]
    fn dangling_core_rejected() {
        let buf = buf_core();
        let mut sb = SocBuilder::new("chip");
        sb.input_pin("pi", 8).unwrap();
        sb.instantiate("u0", buf).unwrap();
        assert!(matches!(sb.build(), Err(RtlError::Dangling { .. })));
    }

    #[test]
    fn duplicate_names_rejected() {
        let buf = buf_core();
        let mut sb = SocBuilder::new("chip");
        sb.input_pin("x", 8).unwrap();
        assert!(sb.input_pin("x", 8).is_err());
        sb.instantiate("u0", buf.clone()).unwrap();
        assert!(sb.instantiate("u0", buf).is_err());
    }
}
