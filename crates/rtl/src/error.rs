//! Error type for RTL construction and validation.

use std::error::Error;
use std::fmt;

/// Errors raised while building or validating an RTL [`Core`](crate::Core)
/// or [`Soc`](crate::Soc).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// A name was reused inside the same namespace of one core or SOC.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A width of zero was requested for a port, register or unit.
    ZeroWidth {
        /// The name of the zero-width item.
        name: String,
    },
    /// A bit range falls outside the width of the node it addresses.
    RangeOutOfBounds {
        /// Description of the offending endpoint.
        endpoint: String,
        /// Width of the node being addressed.
        width: u16,
    },
    /// The source and destination ranges of a connection have different
    /// widths.
    WidthMismatch {
        /// Description of the offending connection.
        connection: String,
    },
    /// A connection drives into an input port or out of an output port.
    DirectionViolation {
        /// Description of the offending connection.
        connection: String,
    },
    /// Two connections drive overlapping bits of the same sink without being
    /// distinct mux legs or bus segments.
    DriverConflict {
        /// Description of the sink with conflicting drivers.
        sink: String,
    },
    /// A port, register or functional unit has no connection at all.
    Dangling {
        /// Description of the dangling item.
        item: String,
    },
    /// A handle was used with a core that did not issue it.
    ForeignHandle {
        /// Description of the misused handle.
        handle: String,
    },
    /// SOC-level: a net references a pin or core port inconsistently.
    BadSocNet {
        /// Explanation of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            RtlError::ZeroWidth { name } => write!(f, "`{name}` has zero width"),
            RtlError::RangeOutOfBounds { endpoint, width } => {
                write!(f, "range of {endpoint} exceeds node width {width}")
            }
            RtlError::WidthMismatch { connection } => {
                write!(f, "source/destination widths differ in {connection}")
            }
            RtlError::DirectionViolation { connection } => {
                write!(f, "connection violates port direction: {connection}")
            }
            RtlError::DriverConflict { sink } => {
                write!(f, "conflicting drivers on {sink}")
            }
            RtlError::Dangling { item } => write!(f, "{item} has no connections"),
            RtlError::ForeignHandle { handle } => {
                write!(f, "handle {handle} does not belong to this core")
            }
            RtlError::BadSocNet { detail } => write!(f, "invalid SOC net: {detail}"),
        }
    }
}

impl Error for RtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = RtlError::DuplicateName { name: "IR".into() };
        assert_eq!(e.to_string(), "duplicate name `IR`");
        let e = RtlError::WidthMismatch {
            connection: "a -> b".into(),
        };
        assert!(e.to_string().contains("a -> b"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RtlError>();
    }
}
