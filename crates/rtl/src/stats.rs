//! Structural statistics of a core, used for reporting and quick area
//! estimation before full gate-level elaboration.

use crate::component::FuKind;
use crate::connection::Via;
use crate::core::Core;
use std::fmt;

/// Summary statistics of a [`Core`]'s structure.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, CoreStats, Direction};
/// let mut b = CoreBuilder::new("c");
/// let i = b.port("i", Direction::In, 8)?;
/// let o = b.port("o", Direction::Out, 8)?;
/// let r = b.register("r", 8)?;
/// b.connect_port_to_reg(i, r)?;
/// b.connect_reg_to_port(r, o)?;
/// let stats = CoreStats::of(&b.build()?);
/// assert_eq!(stats.flip_flops, 8);
/// assert_eq!(stats.registers, 1);
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreStats {
    /// Number of registers.
    pub registers: u32,
    /// Total flip-flops (sum of register widths).
    pub flip_flops: u32,
    /// Number of input ports.
    pub input_ports: u32,
    /// Number of output ports.
    pub output_ports: u32,
    /// Total input bits.
    pub input_bits: u32,
    /// Total output bits.
    pub output_bits: u32,
    /// Number of functional units.
    pub functional_units: u32,
    /// Number of connections.
    pub connections: u32,
    /// Mux-path connections (legs of input mux trees).
    pub mux_legs: u32,
    /// Estimated original area in cells (pre-DFT), from the structural
    /// decomposition rules of `socet-gate`.
    pub estimated_area_cells: u64,
}

impl CoreStats {
    /// Computes the statistics of `core`.
    pub fn of(core: &Core) -> Self {
        let mux_legs = core
            .connections()
            .iter()
            .filter(|c| matches!(c.via, Via::MuxPath { .. }))
            .count() as u32;
        CoreStats {
            registers: core.registers().len() as u32,
            flip_flops: core.flip_flop_count(),
            input_ports: core.input_ports().len() as u32,
            output_ports: core.output_ports().len() as u32,
            input_bits: core.input_bits(),
            output_bits: core.output_bits(),
            functional_units: core.functional_units().len() as u32,
            connections: core.connections().len() as u32,
            mux_legs,
            estimated_area_cells: estimate_area_cells(core),
        }
    }
}

impl fmt::Display for CoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} regs / {} FFs / {} FUs / {} conns / ~{} cells",
            self.registers,
            self.flip_flops,
            self.functional_units,
            self.connections,
            self.estimated_area_cells
        )
    }
}

/// Estimates the pre-DFT cell area of a core using the same decomposition
/// rules `socet-gate` applies during elaboration:
///
/// * a register bit → 1 DFF cell;
/// * each mux leg beyond the first at a sink → 1 MUX2 cell per bit;
/// * each bus leg → 1 tri-state buffer per bit;
/// * a functional unit → kind-dependent gates per bit (see
///   [`fu_cells_per_bit`]), plus the control decode share for `Random`.
pub fn estimate_area_cells(core: &Core) -> u64 {
    let mut cells: u64 = 0;
    for r in core.registers() {
        cells += u64::from(r.width());
    }
    // Mux trees: per sink, (#lossless mux legs on overlapping bits - 1) * width.
    for c in core.connections() {
        match c.via {
            Via::MuxPath { .. } => {
                // Each leg contributes one 2:1 mux level per bit on average
                // in a balanced tree; charging one MUX2 per leg per bit is
                // the standard n-input mux decomposition (n-1 MUX2 per bit,
                // the first "leg" being the wire itself is not charged —
                // approximated by charging legs with index > 0).
                if let Via::MuxPath { leg } = c.via {
                    if leg > 0 {
                        cells += u64::from(c.dst.range.width());
                    }
                }
            }
            Via::Bus => cells += u64::from(c.dst.range.width()),
            _ => {}
        }
    }
    for fu in core.functional_units() {
        cells += u64::from(fu_cells_per_bit(fu.kind())) * u64::from(fu.width());
        if let FuKind::Random { gates } = fu.kind() {
            cells += u64::from(gates);
        }
    }
    cells
}

/// Cells per datapath bit charged for each functional-unit kind.
///
/// `Random` blocks are charged via their explicit gate count instead.
pub fn fu_cells_per_bit(kind: FuKind) -> u32 {
    match kind {
        FuKind::Add | FuKind::Sub => 2,
        FuKind::Inc => 1,
        FuKind::Cmp => 2,
        FuKind::Logic => 1,
        FuKind::Shift => 2,
        FuKind::Alu => 5,
        FuKind::Random { .. } => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::RtlNode;
    use crate::core::CoreBuilder;
    use crate::port::Direction;

    #[test]
    fn estimate_counts_registers_and_muxes() {
        let mut b = CoreBuilder::new("c");
        let i = b.port("i", Direction::In, 8).unwrap();
        let j = b.port("j", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(r), 0).unwrap();
        b.connect_mux(RtlNode::Port(j), RtlNode::Reg(r), 1).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = b.build().unwrap();
        // 8 DFFs + 8 MUX2 (leg 1 only).
        assert_eq!(estimate_area_cells(&core), 16);
    }

    #[test]
    fn estimate_counts_fus() {
        let mut b = CoreBuilder::new("c");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r1 = b.register("r1", 8).unwrap();
        let r2 = b.register("r2", 8).unwrap();
        let alu = b.functional_unit("alu", FuKind::Alu, 8).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_through_fu(r1, alu, r2).unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        let core = b.build().unwrap();
        // 16 DFFs + 8*5 ALU cells.
        assert_eq!(estimate_area_cells(&core), 56);
    }

    #[test]
    fn random_blocks_charge_explicit_gates() {
        assert_eq!(fu_cells_per_bit(FuKind::Random { gates: 99 }), 0);
        let mut b = CoreBuilder::new("c");
        let i = b.port("i", Direction::In, 1).unwrap();
        let o = b.port("o", Direction::Out, 1).unwrap();
        let r = b.register("r", 1).unwrap();
        let blob = b
            .functional_unit("ctl", FuKind::Random { gates: 40 }, 1)
            .unwrap();
        b.connect_port_to_fu(i, blob).unwrap();
        b.connect_fu_to_reg(blob, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = b.build().unwrap();
        assert_eq!(estimate_area_cells(&core), 41);
    }

    #[test]
    fn stats_display_mentions_cells() {
        let mut b = CoreBuilder::new("c");
        let i = b.port("i", Direction::In, 2).unwrap();
        let o = b.port("o", Direction::Out, 2).unwrap();
        let r = b.register("r", 2).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let s = CoreStats::of(&b.build().unwrap());
        assert!(s.to_string().contains("cells"));
        assert_eq!(s.mux_legs, 0);
    }
}
