//! Connections: the directed, bit-sliced wiring of a core.

use crate::bits::BitRange;
use crate::component::{FunctionalUnitId, RegisterId};
use crate::port::PortId;
use std::fmt;

/// Opaque handle to a [`Connection`] within one [`Core`](crate::Core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnectionId(pub(crate) u32);

impl ConnectionId {
    /// The handle's index within the core's connection table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a handle from a dense index, the inverse of
    /// [`ConnectionId::index`]. The caller must keep the index within the
    /// owning core's connection count.
    pub fn from_index(i: usize) -> ConnectionId {
        ConnectionId(i as u32)
    }
}

impl fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A structural node of a core: a port, a register or a functional unit.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction, RtlNode};
/// let mut b = CoreBuilder::new("c");
/// let din = b.port("d", Direction::In, 4)?;
/// let n = RtlNode::Port(din);
/// assert!(matches!(n, RtlNode::Port(_)));
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RtlNode {
    /// A core port.
    Port(PortId),
    /// A register.
    Reg(RegisterId),
    /// A functional unit.
    Fu(FunctionalUnitId),
}

impl RtlNode {
    /// Whether the node is a register.
    pub fn is_reg(self) -> bool {
        matches!(self, RtlNode::Reg(_))
    }

    /// Whether the node is a port.
    pub fn is_port(self) -> bool {
        matches!(self, RtlNode::Port(_))
    }

    /// Whether the node is a functional unit.
    pub fn is_fu(self) -> bool {
        matches!(self, RtlNode::Fu(_))
    }
}

impl fmt::Display for RtlNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlNode::Port(p) => write!(f, "{p}"),
            RtlNode::Reg(r) => write!(f, "{r}"),
            RtlNode::Fu(u) => write!(f, "{u}"),
        }
    }
}

/// One end of a connection: a node plus the bit range touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// The node the connection attaches to.
    pub node: RtlNode,
    /// The bits of the node the connection touches.
    pub range: BitRange,
}

impl Endpoint {
    /// Creates an endpoint from a node and range.
    pub fn new(node: RtlNode, range: BitRange) -> Self {
        Endpoint { node, range }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.node, self.range)
    }
}

/// How a connection is physically realized.
///
/// The realization decides whether the path can carry transparency data and
/// what HSCAN configuration logic costs (Fig. 1 of the paper):
///
/// * [`Via::Direct`] — plain wires; HSCAN needs one OR gate at the load
///   signal; transparent.
/// * [`Via::MuxPath`] — one leg of a multiplexer at the sink; HSCAN needs two
///   gates to steer the select; transparent.
/// * [`Via::Bus`] — a tri-state bus segment; steering logic like a mux path;
///   transparent.
/// * [`Via::ThroughFu`] — the value passes through a functional unit and is
///   transformed; *not* usable for transparency, and HSCAN must add a test
///   mux to scan through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Via {
    /// A plain wired connection.
    Direct,
    /// Leg `leg` (0-based) of the multiplexer tree feeding the sink.
    MuxPath {
        /// Which leg of the sink's mux tree carries this connection.
        leg: u8,
    },
    /// A tri-state bus segment.
    Bus,
    /// Through the given functional unit (lossy).
    ThroughFu(FunctionalUnitId),
}

impl Via {
    /// Whether data crossing this connection is preserved bit-for-bit, i.e.
    /// whether the connection may carry a transparency path.
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_rtl::Via;
    /// assert!(Via::Direct.is_lossless());
    /// assert!(Via::MuxPath { leg: 1 }.is_lossless());
    /// ```
    pub fn is_lossless(self) -> bool {
        !matches!(self, Via::ThroughFu(_))
    }
}

impl fmt::Display for Via {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Via::Direct => f.write_str("direct"),
            Via::MuxPath { leg } => write!(f, "mux[leg {leg}]"),
            Via::Bus => f.write_str("bus"),
            Via::ThroughFu(fu) => write!(f, "through {fu}"),
        }
    }
}

/// A directed, bit-sliced connection between two nodes of a core.
///
/// `src.range.width() == dst.range.width()` always holds for a validated
/// core.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction, Via};
/// let mut b = CoreBuilder::new("c");
/// let din = b.port("d", Direction::In, 8)?;
/// let dout = b.port("q", Direction::Out, 8)?;
/// let r = b.register("r", 8)?;
/// b.connect_port_to_reg(din, r)?;
/// b.connect_reg_to_port(r, dout)?;
/// let core = b.build()?;
/// let conn = &core.connections()[0];
/// assert_eq!(conn.via, Via::Direct);
/// assert_eq!(conn.src.range.width(), conn.dst.range.width());
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// Where the data comes from.
    pub src: Endpoint,
    /// Where the data goes.
    pub dst: Endpoint,
    /// How the connection is realized.
    pub via: Via,
}

impl fmt::Display for Connection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} via {}", self.src, self.dst, self.via)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kind_predicates() {
        let p = RtlNode::Port(PortId(0));
        let r = RtlNode::Reg(RegisterId(0));
        let u = RtlNode::Fu(FunctionalUnitId(0));
        assert!(p.is_port() && !p.is_reg() && !p.is_fu());
        assert!(r.is_reg() && !r.is_port() && !r.is_fu());
        assert!(u.is_fu() && !u.is_port() && !u.is_reg());
    }

    #[test]
    fn via_losslessness() {
        assert!(Via::Direct.is_lossless());
        assert!(Via::Bus.is_lossless());
        assert!(Via::MuxPath { leg: 0 }.is_lossless());
        assert!(!Via::ThroughFu(FunctionalUnitId(1)).is_lossless());
    }

    #[test]
    fn displays() {
        let e = Endpoint::new(RtlNode::Reg(RegisterId(2)), BitRange::new(0, 7));
        assert_eq!(e.to_string(), "r2(7 downto 0)");
        assert_eq!(Via::MuxPath { leg: 1 }.to_string(), "mux[leg 1]");
        assert_eq!(
            Via::ThroughFu(FunctionalUnitId(4)).to_string(),
            "through fu4"
        );
        let c = Connection {
            src: e,
            dst: Endpoint::new(RtlNode::Port(PortId(1)), BitRange::new(0, 7)),
            via: Via::Direct,
        };
        assert_eq!(c.to_string(), "r2(7 downto 0) -> p1(7 downto 0) via direct");
    }
}
