//! Register-transfer-level netlist substrate for the SOCET workspace.
//!
//! The SOCET methodology (DAC'98) consumes only *structural* information
//! about a core: its ports, registers, multiplexers, functional units and
//! the connections between them, including bit-slices. This crate provides
//! that representation:
//!
//! * [`Core`] — an RTL netlist for one core, built through [`CoreBuilder`]
//!   with full structural validation;
//! * [`Soc`] — a system-on-chip: core instances plus the chip-level nets
//!   wiring core ports to each other and to chip pins, built through
//!   [`SocBuilder`];
//! * supporting vocabulary: [`BitRange`], [`Port`], [`Register`],
//!   [`FunctionalUnit`], [`Connection`] and friends.
//!
//! Downstream crates derive everything from this model: `socet-hscan` builds
//! scan chains over the register-to-register paths, `socet-transparency`
//! extracts the register connectivity graph, `socet-gate` elaborates the
//! netlist into cells for ATPG and area accounting.
//!
//! # Examples
//!
//! ```
//! use socet_rtl::{CoreBuilder, Direction};
//!
//! let mut b = CoreBuilder::new("toy");
//! let din = b.port("din", Direction::In, 8)?;
//! let dout = b.port("dout", Direction::Out, 8)?;
//! let r = b.register("r", 8)?;
//! b.connect_port_to_reg(din, r)?;
//! b.connect_reg_to_port(r, dout)?;
//! let core = b.build()?;
//! assert_eq!(core.registers().len(), 1);
//! # Ok::<(), socet_rtl::RtlError>(())
//! ```

pub mod bits;
pub mod component;
pub mod connection;
pub mod core;
pub mod error;
pub mod export;
pub mod fingerprint;
pub mod port;
pub mod soc;
pub mod stats;

pub use bits::BitRange;
pub use component::{FuKind, FunctionalUnit, FunctionalUnitId, Register, RegisterId};
pub use connection::{Connection, ConnectionId, Endpoint, RtlNode, Via};
pub use core::{Core, CoreBuilder};
pub use error::RtlError;
pub use port::{Direction, Port, PortId, SignalClass};
pub use soc::{
    ChipPin, ChipPinId, CoreInstance, CoreInstanceId, Soc, SocBuilder, SocEndpoint, SocNet,
};
pub use stats::CoreStats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_doc_example_compiles() {
        let mut b = CoreBuilder::new("toy");
        let din = b.port("din", Direction::In, 8).unwrap();
        let dout = b.port("dout", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_port_to_reg(din, r).unwrap();
        b.connect_reg_to_port(r, dout).unwrap();
        let core = b.build().unwrap();
        assert_eq!(core.name(), "toy");
    }
}
