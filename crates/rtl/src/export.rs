//! Human-readable netlist dumps: a stable text rendering of cores and
//! SOCs, for debugging, diffing and documentation.

use crate::core::Core;
use crate::port::Direction;
use crate::soc::{Soc, SocEndpoint};
use std::fmt::Write as _;

/// Renders `core` as an indented text netlist.
///
/// The format is stable across runs (declaration order) so dumps can be
/// diffed.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction, export::dump_core};
/// let mut b = CoreBuilder::new("buf");
/// let i = b.port("i", Direction::In, 8)?;
/// let o = b.port("o", Direction::Out, 8)?;
/// let r = b.register("r", 8)?;
/// b.connect_port_to_reg(i, r)?;
/// b.connect_reg_to_port(r, o)?;
/// let text = dump_core(&b.build()?);
/// assert!(text.contains("core buf"));
/// assert!(text.contains("in  i"));
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
pub fn dump_core(core: &Core) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "core {} {{", core.name());
    for p in core.ports() {
        let dir = match p.direction() {
            Direction::In => "in ",
            Direction::Out => "out",
        };
        let _ = writeln!(
            out,
            "  {dir} {:<16} [{:>2} bits, {}]",
            p.name(),
            p.width(),
            p.class()
        );
    }
    for r in core.registers() {
        let _ = writeln!(out, "  reg {:<16} [{:>2} bits]", r.name(), r.width());
    }
    for fu in core.functional_units() {
        let _ = writeln!(
            out,
            "  fu  {:<16} [{:>2} bits, {}]",
            fu.name(),
            fu.width(),
            fu.kind()
        );
    }
    for c in core.connections() {
        let _ = writeln!(
            out,
            "  {}{} -> {}{} via {}",
            core.name_of(c.src.node),
            c.src.range,
            core.name_of(c.dst.node),
            c.dst.range,
            c.via
        );
    }
    out.push_str("}\n");
    out
}

/// Renders `soc` as an indented text netlist, including every instantiated
/// core's dump.
///
/// # Examples
///
/// ```
/// let text = socet_rtl::export::dump_soc(&socet_socs_free_example());
/// # fn socet_socs_free_example() -> socet_rtl::Soc {
/// #     use socet_rtl::{CoreBuilder, Direction, SocBuilder};
/// #     use std::sync::Arc;
/// #     let mut b = CoreBuilder::new("buf");
/// #     let i = b.port("i", Direction::In, 4).unwrap();
/// #     let o = b.port("o", Direction::Out, 4).unwrap();
/// #     let r = b.register("r", 4).unwrap();
/// #     b.connect_port_to_reg(i, r).unwrap();
/// #     b.connect_reg_to_port(r, o).unwrap();
/// #     let core = Arc::new(b.build().unwrap());
/// #     let mut sb = SocBuilder::new("chip");
/// #     let pi = sb.input_pin("pi", 4).unwrap();
/// #     let po = sb.output_pin("po", 4).unwrap();
/// #     let u = sb.instantiate("u", core).unwrap();
/// #     sb.connect_pin_to_core(pi, u, i).unwrap();
/// #     sb.connect_core_to_pin(u, o, po).unwrap();
/// #     sb.build().unwrap()
/// # }
/// assert!(text.contains("soc chip"));
/// ```
pub fn dump_soc(soc: &Soc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "soc {} {{", soc.name());
    for p in soc.pins() {
        let dir = match p.direction() {
            Direction::In => "in ",
            Direction::Out => "out",
        };
        let _ = writeln!(out, "  pin {dir} {:<16} [{:>2} bits]", p.name(), p.width());
    }
    for inst in soc.cores() {
        let _ = writeln!(
            out,
            "  core {:<16} : {}{}",
            inst.name(),
            inst.core().name(),
            if inst.is_memory() { " (memory)" } else { "" }
        );
    }
    let ep_name = |ep: &SocEndpoint| match *ep {
        SocEndpoint::Pin { pin, range } => format!("{}{range}", soc.pin(pin).name()),
        SocEndpoint::CorePort { core, port, range } => format!(
            "{}.{}{range}",
            soc.core(core).name(),
            soc.core(core).core().port(port).name()
        ),
    };
    for net in soc.nets() {
        let _ = writeln!(out, "  net {} -> {}", ep_name(&net.src), ep_name(&net.dst));
    }
    out.push_str("}\n");
    for inst in soc.cores() {
        out.push('\n');
        out.push_str(&dump_core(inst.core()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreBuilder;
    use crate::soc::SocBuilder;
    use std::sync::Arc;

    fn buf() -> Core {
        let mut b = CoreBuilder::new("buf");
        let i = b.port("i", Direction::In, 8).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_port_to_reg(i, r).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn core_dump_lists_everything() {
        let text = dump_core(&buf());
        assert!(text.contains("core buf {"));
        assert!(text.contains("in  i"));
        assert!(text.contains("out o"));
        assert!(text.contains("reg r"));
        assert!(text.contains("-> r(7 downto 0) via direct"));
    }

    #[test]
    fn dump_is_deterministic() {
        assert_eq!(dump_core(&buf()), dump_core(&buf()));
    }

    #[test]
    fn soc_dump_includes_cores_and_nets() {
        let core = Arc::new(buf());
        let i = core.find_port("i").unwrap();
        let o = core.find_port("o").unwrap();
        let mut sb = SocBuilder::new("chip");
        let pi = sb.input_pin("pi", 8).unwrap();
        let po = sb.output_pin("po", 8).unwrap();
        let u = sb.instantiate("u", core.clone()).unwrap();
        sb.connect_pin_to_core(pi, u, i).unwrap();
        sb.connect_core_to_pin(u, o, po).unwrap();
        let soc = sb.build().unwrap();
        let text = dump_soc(&soc);
        assert!(text.contains("soc chip {"));
        assert!(text.contains("core u"));
        assert!(text.contains("net pi(7 downto 0) -> u.i(7 downto 0)"));
        assert!(text.contains("core buf {"));
    }
}
