//! Sequential and combinational components inside a core: registers and
//! functional units.
//!
//! Multiplexers are not first-class components: a register or port sink with
//! several incoming [`Connection`](crate::Connection)s implies a multiplexer
//! tree at its input, and each connection records which mux leg (or direct
//! wire, or bus) realizes it — exactly the structural facts HSCAN and the
//! transparency engine need.

use std::fmt;

/// Opaque handle to a [`Register`] within one [`Core`](crate::Core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(pub(crate) u32);

impl RegisterId {
    /// The handle's index within the core's register table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a handle from a dense index, the inverse of
    /// [`RegisterId::index`]. The caller must keep the index within the
    /// owning core's register count (used by the artifact codecs).
    pub fn from_index(i: usize) -> RegisterId {
        RegisterId(i as u32)
    }
}

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A register (bank of flip-flops) inside a core.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction};
/// let mut b = CoreBuilder::new("c");
/// let din = b.port("d", Direction::In, 16)?;
/// let dout = b.port("q", Direction::Out, 16)?;
/// let id = b.register("IR", 16)?;
/// b.connect_port_to_reg(din, id)?;
/// b.connect_reg_to_port(id, dout)?;
/// let core = b.build()?;
/// assert_eq!(core.register(id).name(), "IR");
/// assert_eq!(core.register(id).width(), 16);
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    pub(crate) name: String,
    pub(crate) width: u16,
}

impl Register {
    /// The register's name, unique within its core.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The register's bit width (number of flip-flops).
    pub fn width(&self) -> u16 {
        self.width
    }
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reg {} [{}:0]", self.name, self.width - 1)
    }
}

/// Opaque handle to a [`FunctionalUnit`] within one [`Core`](crate::Core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FunctionalUnitId(pub(crate) u32);

impl FunctionalUnitId {
    /// The handle's index within the core's functional-unit table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FunctionalUnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fu{}", self.0)
    }
}

/// The operation a functional unit performs.
///
/// The kind determines both the gate-level elaboration (`socet-gate`) and the
/// area charged for the unit. Paths *through* a functional unit are lossy and
/// never become transparency edges — only [`Via::Direct`](crate::Via),
/// mux and bus connections do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Ripple-carry adder.
    Add,
    /// Ripple-borrow subtracter.
    Sub,
    /// Incrementer (e.g. a program counter's +1).
    Inc,
    /// Magnitude comparator.
    Cmp,
    /// Bitwise AND/OR/XOR unit.
    Logic,
    /// Barrel or serial shifter.
    Shift,
    /// General ALU (add/sub/logic under opcode control).
    Alu,
    /// Uninterpreted random logic block of a given complexity.
    Random {
        /// Approximate 2-input-gate count of the block.
        gates: u32,
    },
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuKind::Add => f.write_str("add"),
            FuKind::Sub => f.write_str("sub"),
            FuKind::Inc => f.write_str("inc"),
            FuKind::Cmp => f.write_str("cmp"),
            FuKind::Logic => f.write_str("logic"),
            FuKind::Shift => f.write_str("shift"),
            FuKind::Alu => f.write_str("alu"),
            FuKind::Random { gates } => write!(f, "random({gates})"),
        }
    }
}

/// A combinational functional unit (ALU, adder, comparator, random logic).
///
/// Functional units matter to the reproduction in two ways: they contribute
/// the bulk of a core's original area (Table 2, "Orig. Area"), and they are
/// the logic that transparency paths must *avoid or bypass* because data
/// through them loses information.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction, FuKind, RtlNode};
/// let mut b = CoreBuilder::new("c");
/// let din = b.port("d", Direction::In, 8)?;
/// let dout = b.port("q", Direction::Out, 8)?;
/// let a = b.register("A", 8)?;
/// let fu = b.functional_unit("alu", FuKind::Alu, 8)?;
/// // The accumulator picks between the external input and the ALU result
/// // through a mux tree, so both drivers are legs.
/// b.connect_mux(RtlNode::Port(din), RtlNode::Reg(a), 0)?;
/// b.connect_reg_to_fu(a, fu)?;
/// b.connect_mux(RtlNode::Fu(fu), RtlNode::Reg(a), 1)?;
/// b.connect_reg_to_port(a, dout)?;
/// let core = b.build()?;
/// assert_eq!(core.functional_unit(fu).kind(), FuKind::Alu);
/// # Ok::<(), socet_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalUnit {
    pub(crate) name: String,
    pub(crate) kind: FuKind,
    pub(crate) width: u16,
}

impl FunctionalUnit {
    /// The unit's name, unique within its core.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operation the unit performs.
    pub fn kind(&self) -> FuKind {
        self.kind
    }

    /// The unit's datapath width.
    pub fn width(&self) -> u16 {
        self.width
    }
}

impl fmt::Display for FunctionalUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fu {} : {} [{}:0]", self.name, self.kind, self.width - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_display() {
        let r = Register {
            name: "MAR".into(),
            width: 12,
        };
        assert_eq!(r.to_string(), "reg MAR [11:0]");
    }

    #[test]
    fn fu_kind_display() {
        assert_eq!(FuKind::Alu.to_string(), "alu");
        assert_eq!(FuKind::Random { gates: 40 }.to_string(), "random(40)");
    }

    #[test]
    fn fu_display() {
        let fu = FunctionalUnit {
            name: "alu0".into(),
            kind: FuKind::Add,
            width: 8,
        };
        assert_eq!(fu.to_string(), "fu alu0 : add [7:0]");
    }

    #[test]
    fn id_displays_are_distinct() {
        assert_eq!(RegisterId(3).to_string(), "r3");
        assert_eq!(FunctionalUnitId(3).to_string(), "fu3");
    }
}
