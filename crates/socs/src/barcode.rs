//! System 1: the barcode-scanning embedded SOC of Fig. 2 of the paper.
//!
//! Five cores: the CPU of Fig. 3 (Navabi's VHDL CPU), the barcode
//! PREPROCESSOR, the seven-segment DISPLAY driver, and BIST-tested RAM and
//! ROM memory cores. The RTL models are reconstructions calibrated to the
//! paper's reported characteristics:
//!
//! * CPU RCG shaped like Fig. 7 — `Data` feeds the O-split `IR`; the
//!   accumulator walk reaches `Address(7 downto 0)` in six cycles; `MAR
//!   page` hangs off `IR` for `Address(11 downto 8)` in two; mux `M`
//!   offers the non-HSCAN one-cycle shortcut of Version 2 (Fig. 5 adds the
//!   Version-3 transparency mux). Control chains `Reset → Read` and
//!   `Interrupt → Write` take two cycles each (§3).
//! * PREPROCESSOR with `NUM → DB` in five cycles (one with the Version-2
//!   shortcut) and `NUM → Address` in two, plus the `Reset → Eoc` control
//!   chain of §5.2's worked ΔTAT computation. Its `Address` output feeds
//!   only the RAM, so chip-level observation needs a system-level test mux
//!   — exactly the mux shown in Fig. 9.
//! * DISPLAY with 66 flip-flops and 20 internal input bits (the
//!   FSCAN-BSCAN example costs `(66+20)×105+(66+20)−1 = 9115` cycles), an
//!   HSCAN depth of 4 (105 combinational vectors → 525 HSCAN vectors), and
//!   the Fig. 8(b) latency ladder `D→OUT: 2/2/1`, `A→OUT: 3/1/1`.

use socet_rtl::{BitRange, Core, CoreBuilder, Direction, RtlNode, Soc, SocBuilder};
use std::sync::Arc;

/// Builds the CPU core of Fig. 3 / Fig. 7.
///
/// Ports: `Data\[8\]` in, `Reset`/`Interrupt` control in; `AddrLo\[8\]`
/// (`Address(7 downto 0)`), `AddrHi\[4\]` (`Address(11 downto 8)`) out,
/// `Read`/`Write` control out.
pub fn cpu_core() -> Core {
    let mut b = CoreBuilder::new("CPU");
    let data = b.port("Data", Direction::In, 8).expect("fresh name");
    let reset = b.control_port("Reset", Direction::In).expect("fresh name");
    let intr = b
        .control_port("Interrupt", Direction::In)
        .expect("fresh name");
    let a_lo = b.port("AddrLo", Direction::Out, 8).expect("fresh name");
    let a_hi = b.port("AddrHi", Direction::Out, 4).expect("fresh name");
    let read = b
        .port_with_class("Read", Direction::Out, 1, socet_rtl::SignalClass::Control)
        .expect("fresh name");
    let write = b
        .port_with_class("Write", Direction::Out, 1, socet_rtl::SignalClass::Control)
        .expect("fresh name");

    let ir = b.register("IR", 8).expect("fresh name");
    let acc = b.register("ACC", 8).expect("fresh name");
    let status = b.register("STATUS", 8).expect("fresh name");
    let tmp = b.register("TMP", 8).expect("fresh name");
    let pc = b.register("PC", 8).expect("fresh name");
    let mar_off = b.register("MAR_offset", 8).expect("fresh name");
    let mar_page = b.register("MAR_page", 4).expect("fresh name");

    let ok = |r: Result<socet_rtl::ConnectionId, socet_rtl::RtlError>| {
        r.expect("CPU wiring is statically consistent");
    };
    // Data -> IR; IR is O-split (Fig. 7): low nibble to ACC low and MAR
    // page, high nibble to ACC high.
    ok(b.connect_mux(RtlNode::Port(data), RtlNode::Reg(ir), 0));
    ok(b.connect_mux_slice(
        RtlNode::Reg(ir),
        BitRange::new(0, 3),
        RtlNode::Reg(acc),
        BitRange::new(0, 3),
        0,
    ));
    ok(b.connect_mux_slice(
        RtlNode::Reg(ir),
        BitRange::new(4, 7),
        RtlNode::Reg(acc),
        BitRange::new(4, 7),
        0,
    ));
    ok(b.connect_mux_slice(
        RtlNode::Reg(ir),
        BitRange::new(0, 3),
        RtlNode::Reg(mar_page),
        BitRange::full(4),
        0,
    ));
    // The accumulator walk: ACC -> STATUS -> TMP -> PC -> MAR_offset.
    ok(b.connect_mux(RtlNode::Reg(acc), RtlNode::Reg(status), 0));
    ok(b.connect_mux(RtlNode::Reg(status), RtlNode::Reg(tmp), 0));
    ok(b.connect_mux(RtlNode::Reg(tmp), RtlNode::Reg(pc), 0));
    ok(b.connect_mux(RtlNode::Reg(pc), RtlNode::Reg(mar_off), 0));
    // Mux M: the existing non-HSCAN shortcut Version 2 steers (Fig. 5).
    ok(b.connect_mux(RtlNode::Port(data), RtlNode::Reg(mar_off), 1));
    // Address outputs.
    ok(b.connect_reg_to_port(mar_off, a_lo));
    ok(b.connect_reg_to_port(mar_page, a_hi));

    // Control chains: Reset -> C1 -> C2 -> Read, Interrupt -> C3 -> C4 ->
    // Write; two cycles each, "the Read and Write chain in Fig. 4".
    let c1 = b.register("C1", 1).expect("fresh name");
    let c2 = b.register("C2", 1).expect("fresh name");
    let c3 = b.register("C3", 1).expect("fresh name");
    let c4 = b.register("C4", 1).expect("fresh name");
    ok(b.connect_port_to_reg(reset, c1));
    ok(b.connect_reg_to_reg(c1, c2));
    ok(b.connect_reg_to_port(c2, read));
    ok(b.connect_port_to_reg(intr, c3));
    ok(b.connect_reg_to_reg(c3, c4));
    ok(b.connect_reg_to_port(c4, write));

    // Register file: eight 8-bit registers hanging off the accumulator
    // (forked scan chains, no effect on the Fig. 6 latencies).
    let mut prev = acc;
    for k in 0..8 {
        let rf = b.register(&format!("RF{k}"), 8).expect("fresh name");
        ok(b.connect_mux(RtlNode::Reg(prev), RtlNode::Reg(rf), 1));
        prev = rf;
    }

    // Datapath and control logic: the ALU around the accumulator, the PC
    // incrementer, and the instruction decoder.
    let alu = b
        .functional_unit("alu", socet_rtl::FuKind::Alu, 8)
        .expect("fresh name");
    ok(b.connect_reg_to_fu(acc, alu));
    ok(b.connect_reg_to_fu(prev, alu));
    ok(b.connect_mux(RtlNode::Fu(alu), RtlNode::Reg(acc), 1));
    let inc = b
        .functional_unit("pc_inc", socet_rtl::FuKind::Inc, 8)
        .expect("fresh name");
    ok(b.connect_reg_to_fu(pc, inc));
    ok(b.connect_mux(RtlNode::Fu(inc), RtlNode::Reg(pc), 1));
    let decode = b
        .functional_unit("decode", socet_rtl::FuKind::Random { gates: 700 }, 8)
        .expect("fresh name");
    ok(b.connect_reg_to_fu(ir, decode));
    ok(b.connect_mux(RtlNode::Fu(decode), RtlNode::Reg(tmp), 1));

    b.build().expect("CPU netlist is statically consistent")
}

/// Builds the barcode PREPROCESSOR core.
///
/// Ports: `NUM\[8\]` in (the bar widths), `Reset` control in; `DB\[8\]` out
/// (to the CPU's `Data` and the DISPLAY's `D`), `Address\[12\]` out (to the
/// RAM only — unobservable without the Fig. 9 system mux), `Eoc` control
/// out.
pub fn preprocessor_core() -> Core {
    let mut b = CoreBuilder::new("PREPROCESSOR");
    let num = b.port("NUM", Direction::In, 8).expect("fresh name");
    let reset = b.control_port("Reset", Direction::In).expect("fresh name");
    let db = b.port("DB", Direction::Out, 8).expect("fresh name");
    let addr = b.port("Address", Direction::Out, 12).expect("fresh name");
    let eoc = b
        .port_with_class("Eoc", Direction::Out, 1, socet_rtl::SignalClass::Control)
        .expect("fresh name");

    let ok = |r: Result<socet_rtl::ConnectionId, socet_rtl::RtlError>| {
        r.expect("PREPROCESSOR wiring is statically consistent");
    };
    // Five-stage width pipeline: NUM -> W1..W4 -> DBR -> DB (Fig. 8(a),
    // NUM->DB = 5 in Version 1).
    let w1 = b.register("W1", 8).expect("fresh name");
    let w2 = b.register("W2", 8).expect("fresh name");
    let w3 = b.register("W3", 8).expect("fresh name");
    let w4 = b.register("W4", 8).expect("fresh name");
    let dbr = b.register("DBR", 8).expect("fresh name");
    ok(b.connect_mux(RtlNode::Port(num), RtlNode::Reg(w1), 0));
    ok(b.connect_mux(RtlNode::Reg(w1), RtlNode::Reg(w2), 0));
    ok(b.connect_mux(RtlNode::Reg(w2), RtlNode::Reg(w3), 0));
    ok(b.connect_mux(RtlNode::Reg(w3), RtlNode::Reg(w4), 0));
    ok(b.connect_mux(RtlNode::Reg(w4), RtlNode::Reg(dbr), 0));
    ok(b.connect_reg_to_port(dbr, db));
    // The Version-2 shortcut: NUM -> DBR in one cycle.
    ok(b.connect_mux(RtlNode::Port(num), RtlNode::Reg(dbr), 1));

    // Address counter path: NUM -> AC1 -> ADDR -> Address (two cycles).
    let ac1 = b.register("AC1", 8).expect("fresh name");
    let addr_r = b.register("ADDR", 12).expect("fresh name");
    ok(b.connect_mux(RtlNode::Port(num), RtlNode::Reg(ac1), 0));
    ok(b.connect_mux_slice(
        RtlNode::Reg(ac1),
        BitRange::full(8),
        RtlNode::Reg(addr_r),
        BitRange::new(0, 7),
        0,
    ));
    ok(b.connect_mux_slice(
        RtlNode::Reg(ac1),
        BitRange::new(0, 3),
        RtlNode::Reg(addr_r),
        BitRange::new(8, 11),
        0,
    ));
    ok(b.connect_reg_to_port(addr_r, addr));

    // End-of-conversion control chain: Reset -> E1 -> E2 -> Eoc (the §5.2
    // edge (Reset, Eoc) with latency 2).
    let e1 = b.register("E1", 1).expect("fresh name");
    let e2 = b.register("E2", 1).expect("fresh name");
    ok(b.connect_port_to_reg(reset, e1));
    ok(b.connect_reg_to_reg(e1, e2));
    ok(b.connect_reg_to_port(e2, eoc));

    // FIFO bank off the width pipeline (scan forks) and the bar-width
    // detection logic.
    let mut prev = w2;
    for k in 0..6 {
        let f = b.register(&format!("F{k}"), 8).expect("fresh name");
        ok(b.connect_mux(RtlNode::Reg(prev), RtlNode::Reg(f), 1));
        prev = f;
    }
    let detect = b
        .functional_unit("detect", socet_rtl::FuKind::Random { gates: 350 }, 8)
        .expect("fresh name");
    ok(b.connect_reg_to_fu(w1, detect));
    ok(b.connect_reg_to_fu(prev, detect)); // FIFO tail is observed here
    ok(b.connect_mux(RtlNode::Fu(detect), RtlNode::Reg(ac1), 1));
    let counter = b
        .functional_unit("addr_inc", socet_rtl::FuKind::Inc, 12)
        .expect("fresh name");
    ok(b.connect_reg_to_fu(addr_r, counter));
    ok(b.connect_mux(RtlNode::Fu(counter), RtlNode::Reg(addr_r), 1));

    b.build()
        .expect("PREPROCESSOR netlist is statically consistent")
}

/// Builds the DISPLAY core: 66 flip-flops, 20 internal input bits, HSCAN
/// depth 4, six seven-segment output ports.
///
/// Ports: `ALo\[8\]`/`AHi\[4\]` in (the CPU's `Address`), `D\[8\]` in (the data
/// bus); `P1..P6` out (display segment codes).
pub fn display_core() -> Core {
    let mut b = CoreBuilder::new("DISPLAY");
    let a_lo = b.port("ALo", Direction::In, 8).expect("fresh name");
    let a_hi = b.port("AHi", Direction::In, 4).expect("fresh name");
    let d = b.port("D", Direction::In, 8).expect("fresh name");
    let p: Vec<_> = (1..=6)
        .map(|k| {
            b.port(&format!("P{k}"), Direction::Out, 7)
                .expect("fresh name")
        })
        .collect();

    let ok = |r: Result<socet_rtl::ConnectionId, socet_rtl::RtlError>| {
        r.expect("DISPLAY wiring is statically consistent");
    };
    // 66 flip-flops: RA(12) + RB(12) + PB1(12) + PB2(14) + RD(8) + RD2(8).
    // Declaration order matters: RA leads so the main HSCAN chain is
    // RA -> RB -> PB1 -> PB2 (sequential depth 4, the paper's value).
    let ra = b.register("RA", 12).expect("fresh name");
    let rb = b.register("RB", 12).expect("fresh name");
    let pb1 = b.register("PB1", 12).expect("fresh name");
    let pb2 = b.register("PB2", 14).expect("fresh name");
    let rd = b.register("RD", 8).expect("fresh name");
    let rd2 = b.register("RD2", 8).expect("fresh name");

    // Address register is C-split across the two address slices.
    ok(b.connect_slice(
        RtlNode::Port(a_lo),
        BitRange::full(8),
        RtlNode::Reg(ra),
        BitRange::new(0, 7),
    ));
    ok(b.connect_slice(
        RtlNode::Port(a_hi),
        BitRange::full(4),
        RtlNode::Reg(ra),
        BitRange::new(8, 11),
    ));
    ok(b.connect_mux(RtlNode::Reg(ra), RtlNode::Reg(rb), 0));
    ok(b.connect_mux(RtlNode::Reg(rb), RtlNode::Reg(pb1), 0));
    // PB2 is C-split: codes from the address pipeline plus two bits of the
    // data pipeline.
    ok(b.connect_mux_slice(
        RtlNode::Reg(pb1),
        BitRange::full(12),
        RtlNode::Reg(pb2),
        BitRange::new(0, 11),
        0,
    ));
    ok(b.connect_mux_slice(
        RtlNode::Reg(rd2),
        BitRange::new(0, 1),
        RtlNode::Reg(pb2),
        BitRange::new(12, 13),
        0,
    ));
    // Data pipeline: D -> RD -> RD2 -> P6 (D -> OUT in two cycles).
    ok(b.connect_port_to_reg(d, rd));
    ok(b.connect_mux(RtlNode::Reg(rd), RtlNode::Reg(rd2), 0));
    // Version-2 shortcuts: the address value can steer straight into PB1.
    ok(b.connect_mux_slice(
        RtlNode::Port(a_lo),
        BitRange::full(8),
        RtlNode::Reg(pb1),
        BitRange::new(0, 7),
        1,
    ));
    ok(b.connect_mux_slice(
        RtlNode::Port(a_hi),
        BitRange::full(4),
        RtlNode::Reg(pb1),
        BitRange::new(8, 11),
        1,
    ));
    // Six display ports.
    ok(b.connect_slice(
        RtlNode::Reg(pb1),
        BitRange::new(0, 6),
        RtlNode::Port(p[0]),
        BitRange::full(7),
    ));
    ok(b.connect_slice(
        RtlNode::Reg(pb1),
        BitRange::new(5, 11),
        RtlNode::Port(p[1]),
        BitRange::full(7),
    ));
    ok(b.connect_slice(
        RtlNode::Reg(pb2),
        BitRange::new(0, 6),
        RtlNode::Port(p[2]),
        BitRange::full(7),
    ));
    ok(b.connect_slice(
        RtlNode::Reg(pb2),
        BitRange::new(7, 13),
        RtlNode::Port(p[3]),
        BitRange::full(7),
    ));
    ok(b.connect_slice(
        RtlNode::Reg(pb2),
        BitRange::new(0, 6),
        RtlNode::Port(p[4]),
        BitRange::full(7),
    ));
    ok(b.connect_slice(
        RtlNode::Reg(rd2),
        BitRange::new(0, 6),
        RtlNode::Port(p[5]),
        BitRange::full(7),
    ));
    // Segment decode logic.
    let segdec = b
        .functional_unit("segdec", socet_rtl::FuKind::Random { gates: 320 }, 8)
        .expect("fresh name");
    ok(b.connect_reg_to_fu(rd, segdec));
    ok(b.connect_mux_slice(
        RtlNode::Fu(segdec),
        BitRange::full(8),
        RtlNode::Reg(rd2),
        BitRange::full(8),
        1,
    ));

    b.build().expect("DISPLAY netlist is statically consistent")
}

/// A memory macro used for the RAM/ROM instances: a single data register
/// between its ports (the paper excludes memories from transparency
/// routing; this model only makes the netlist complete).
pub fn memory_core(name: &str, addr_width: u16, data_width: u16) -> Core {
    let mut b = CoreBuilder::new(name);
    let addr = b
        .port("Addr", Direction::In, addr_width)
        .expect("fresh name");
    let din = b
        .port("Din", Direction::In, data_width)
        .expect("fresh name");
    let dout = b
        .port("Dout", Direction::Out, data_width)
        .expect("fresh name");
    let ar = b.register("AR", addr_width).expect("fresh name");
    let dr = b.register("DR", data_width).expect("fresh name");
    b.connect_port_to_reg(addr, ar).expect("consistent");
    b.connect_mux(RtlNode::Port(din), RtlNode::Reg(dr), 0)
        .expect("consistent");
    b.connect_reg_to_port(dr, dout).expect("consistent");
    let array = b
        .functional_unit("array", socet_rtl::FuKind::Random { gates: 64 }, data_width)
        .expect("fresh name");
    b.connect_reg_to_fu(ar, array).expect("consistent");
    b.connect_mux(RtlNode::Fu(array), RtlNode::Reg(dr), 1)
        .expect("consistent");
    b.build().expect("memory netlist is statically consistent")
}

/// Assembles System 1 (Fig. 2): PREPROCESSOR → {CPU, DISPLAY} with the
/// RAM/ROM as memory cores.
///
/// Chip pins: `NUM\[8\]`, `Reset`, `Video_Int` in; `PO_PORT1..6\[7\]` out.
/// The dashed Fig. 2 path — `NUM → DB → Data → Address → A` — is the test
/// access route for the DISPLAY.
///
/// # Examples
///
/// ```
/// let soc = socet_socs::barcode_system();
/// assert_eq!(soc.logic_cores().len(), 3);
/// assert_eq!(soc.cores().len(), 5);
/// ```
pub fn barcode_system() -> Soc {
    let cpu = Arc::new(cpu_core());
    let prep = Arc::new(preprocessor_core());
    let disp = Arc::new(display_core());
    let ram = Arc::new(memory_core("RAM", 12, 8));
    let rom = Arc::new(memory_core("ROM", 12, 8));

    let mut sb = SocBuilder::new("System1");
    let num = sb.input_pin("NUM", 8).expect("fresh name");
    let reset = sb.input_pin("Reset", 1).expect("fresh name");
    let po: Vec<_> = (1..=6)
        .map(|k| {
            sb.output_pin(&format!("PO_PORT{k}"), 7)
                .expect("fresh name")
        })
        .collect();

    let u_prep = sb.instantiate("PREPROCESSOR", prep.clone()).expect("fresh");
    let u_cpu = sb.instantiate("CPU", cpu.clone()).expect("fresh");
    let u_disp = sb.instantiate("DISPLAY", disp.clone()).expect("fresh");
    let u_ram = sb.instantiate_memory("RAM", ram.clone()).expect("fresh");
    let u_rom = sb.instantiate_memory("ROM", rom.clone()).expect("fresh");

    let find = |c: &Core, n: &str| c.find_port(n).expect("port exists");
    let ok = |r: Result<(), socet_rtl::RtlError>| r.expect("System 1 wiring is consistent");

    // Chip inputs.
    ok(sb.connect_pin_to_core(num, u_prep, find(&prep, "NUM")));
    ok(sb.connect_pin_to_core(reset, u_prep, find(&prep, "Reset")));
    ok(sb.connect_pin_to_core(reset, u_cpu, find(&cpu, "Reset")));
    // The PREPROCESSOR's end-of-conversion interrupt drives the CPU — the
    // CCG edge whose (Reset, Eoc) chain §5.2 counts when testing the CPU.
    ok(sb.connect_cores(u_prep, find(&prep, "Eoc"), u_cpu, find(&cpu, "Interrupt")));

    // The shared data bus: PREPROCESSOR.DB feeds the CPU and the DISPLAY.
    ok(sb.connect_cores(u_prep, find(&prep, "DB"), u_cpu, find(&cpu, "Data")));
    ok(sb.connect_cores(u_prep, find(&prep, "DB"), u_disp, find(&disp, "D")));
    ok(sb.connect_cores(u_prep, find(&prep, "DB"), u_ram, find(&ram, "Din")));

    // CPU address bus: to the DISPLAY's A and the memories.
    ok(sb.connect_cores(u_cpu, find(&cpu, "AddrLo"), u_disp, find(&disp, "ALo")));
    ok(sb.connect_cores(u_cpu, find(&cpu, "AddrHi"), u_disp, find(&disp, "AHi")));
    ok(sb.connect(
        socet_rtl::SocEndpoint::CorePort {
            core: u_cpu,
            port: find(&cpu, "AddrLo"),
            range: BitRange::full(8),
        },
        socet_rtl::SocEndpoint::CorePort {
            core: u_ram,
            port: find(&ram, "Addr"),
            range: BitRange::new(0, 7),
        },
    ));
    ok(sb.connect(
        socet_rtl::SocEndpoint::CorePort {
            core: u_cpu,
            port: find(&cpu, "AddrHi"),
            range: BitRange::full(4),
        },
        socet_rtl::SocEndpoint::CorePort {
            core: u_rom,
            port: find(&rom, "Addr"),
            range: BitRange::new(0, 3),
        },
    ));
    // PREPROCESSOR writes bar widths to the RAM.
    ok(sb.connect(
        socet_rtl::SocEndpoint::CorePort {
            core: u_prep,
            port: find(&prep, "Address"),
            range: BitRange::full(12),
        },
        socet_rtl::SocEndpoint::CorePort {
            core: u_ram,
            port: find(&ram, "Addr"),
            range: BitRange::full(12),
        },
    ));
    // ROM program path back into the CPU is part of the functional design;
    // at test time memories are bypassed, so this net is informational.
    ok(sb.connect_cores(u_rom, find(&rom, "Dout"), u_ram, find(&ram, "Din")));

    // DISPLAY ports are the chip outputs.
    for (k, pin) in po.iter().enumerate() {
        ok(sb.connect_core_to_pin(u_disp, find(&disp, &format!("P{}", k + 1)), *pin));
    }

    sb.build().expect("System 1 is statically consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_cells::{CellLibrary, DftCosts};
    use socet_hscan::insert_hscan;
    use socet_transparency::synthesize_versions;

    #[test]
    fn display_matches_paper_characteristics() {
        let disp = display_core();
        assert_eq!(disp.flip_flop_count(), 66, "the paper's 66 flip-flops");
        assert_eq!(disp.input_bits(), 20, "the paper's 20 internal inputs");
        let hscan = insert_hscan(&disp, &DftCosts::default());
        assert_eq!(hscan.sequential_depth(), 4, "HSCAN depth 4");
        assert_eq!(
            hscan.test_length(105),
            525,
            "105 vectors -> 525 HSCAN vectors"
        );
    }

    #[test]
    fn cpu_versions_match_fig6() {
        let cpu = cpu_core();
        let costs = DftCosts::default();
        let hscan = insert_hscan(&cpu, &costs);
        let versions = synthesize_versions(&cpu, &hscan, &costs);
        let data = cpu.find_port("Data").unwrap();
        let a_lo = cpu.find_port("AddrLo").unwrap();
        let a_hi = cpu.find_port("AddrHi").unwrap();
        let lat: Vec<(u32, u32)> = versions
            .iter()
            .map(|v| {
                (
                    v.pair_latency(data, a_lo).unwrap(),
                    v.pair_latency(data, a_hi).unwrap(),
                )
            })
            .collect();
        assert_eq!(lat, vec![(6, 2), (1, 2), (1, 1)], "Fig. 6 latencies");
        let lib = CellLibrary::generic_08um();
        let ovh: Vec<u64> = versions.iter().map(|v| v.overhead_cells(&lib)).collect();
        assert_eq!(ovh, vec![3, 10, 30], "Fig. 6 overheads");
    }

    #[test]
    fn preprocessor_versions_match_fig8a_latencies() {
        let prep = preprocessor_core();
        let costs = DftCosts::default();
        let hscan = insert_hscan(&prep, &costs);
        let versions = synthesize_versions(&prep, &hscan, &costs);
        let num = prep.find_port("NUM").unwrap();
        let db = prep.find_port("DB").unwrap();
        let reset = prep.find_port("Reset").unwrap();
        let eoc = prep.find_port("Eoc").unwrap();
        assert_eq!(versions[0].pair_latency(num, db), Some(5), "v1 NUM->DB = 5");
        assert_eq!(versions[1].pair_latency(num, db), Some(1), "v2 NUM->DB = 1");
        assert_eq!(versions[2].pair_latency(num, db), Some(1), "v3 NUM->DB = 1");
        assert_eq!(
            versions[0].pair_latency(reset, eoc),
            Some(2),
            "Reset->Eoc = 2"
        );
        let addr = prep.find_port("Address").unwrap();
        assert_eq!(
            versions[0].pair_latency(num, addr),
            Some(2),
            "v1 NUM->A = 2"
        );
    }

    #[test]
    fn display_versions_match_fig8b_latencies() {
        let disp = display_core();
        let costs = DftCosts::default();
        let hscan = insert_hscan(&disp, &costs);
        let versions = synthesize_versions(&disp, &hscan, &costs);
        let d = disp.find_port("D").unwrap();
        let a_lo = disp.find_port("ALo").unwrap();
        let out_latency = |v: &socet_transparency::CoreVersion, input| {
            (1..=6)
                .filter_map(|k| v.pair_latency(input, disp.find_port(&format!("P{k}")).unwrap()))
                .min()
                .unwrap()
        };
        assert_eq!(out_latency(&versions[0], d), 2, "v1 D->OUT = 2");
        assert_eq!(out_latency(&versions[0], a_lo), 3, "v1 A->OUT = 3");
        assert_eq!(out_latency(&versions[1], a_lo), 1, "v2 A->OUT = 1");
        assert_eq!(out_latency(&versions[2], d), 1, "v3 D->OUT = 1");
    }

    #[test]
    fn system1_assembles() {
        let soc = barcode_system();
        assert_eq!(soc.cores().len(), 5);
        assert_eq!(soc.logic_cores().len(), 3);
        assert_eq!(soc.primary_inputs().len(), 2);
        assert_eq!(soc.primary_outputs().len(), 6);
        assert!(soc.find_core("CPU").is_some());
        assert!(soc.core(soc.find_core("RAM").unwrap()).is_memory());
    }

    #[test]
    fn versions_are_complete_for_all_system1_cores() {
        let costs = DftCosts::default();
        for core in [cpu_core(), preprocessor_core(), display_core()] {
            let hscan = insert_hscan(&core, &costs);
            for v in synthesize_versions(&core, &hscan, &costs) {
                assert!(v.is_complete(&core), "{} {}", core.name(), v.name());
            }
        }
    }
}
