//! System 2 of the paper's evaluation: a graphics processor core \[9\], a
//! GCD core from the 1995 high-level-synthesis repository \[10\], and an
//! X.25 protocol core \[11\].
//!
//! The three cores form a pipeline — graphics feeds the GCD's second
//! operand, the GCD result feeds the X.25 transmitter — so the two
//! downstream cores are embedded and reachable only through their
//! neighbours' transparency, like System 1's CPU and DISPLAY.

use socet_rtl::{Core, CoreBuilder, Direction, RtlNode, Soc, SocBuilder};
use std::sync::Arc;

/// Builds the graphics-processor core (control-flow intensive, after
/// Raghunathan et al. \[9\]).
///
/// Ports: `Cmd\[16\]`, `Go` in; `Pixel\[12\]`, `Done` out.
pub fn graphics_core() -> Core {
    let mut b = CoreBuilder::new("GRAPHICS");
    let cmd = b.port("Cmd", Direction::In, 16).expect("fresh name");
    let go = b.control_port("Go", Direction::In).expect("fresh name");
    let pixel = b.port("Pixel", Direction::Out, 12).expect("fresh name");
    let done = b
        .port_with_class("Done", Direction::Out, 1, socet_rtl::SignalClass::Control)
        .expect("fresh name");
    let ok = |r: Result<socet_rtl::ConnectionId, socet_rtl::RtlError>| {
        r.expect("GRAPHICS wiring is statically consistent");
    };

    let cmd_r = b.register("CMD", 16).expect("fresh name");
    let x = b.register("X", 12).expect("fresh name");
    let y = b.register("Y", 12).expect("fresh name");
    let color = b.register("COLOR", 12).expect("fresh name");
    let out_r = b.register("OUT", 12).expect("fresh name");
    ok(b.connect_mux(RtlNode::Port(cmd), RtlNode::Reg(cmd_r), 0));
    ok(b.connect_mux_slice(
        RtlNode::Reg(cmd_r),
        socet_rtl::BitRange::new(0, 11),
        RtlNode::Reg(x),
        socet_rtl::BitRange::full(12),
        0,
    ));
    ok(b.connect_mux(RtlNode::Reg(x), RtlNode::Reg(y), 0));
    ok(b.connect_mux(RtlNode::Reg(y), RtlNode::Reg(color), 0));
    ok(b.connect_mux(RtlNode::Reg(color), RtlNode::Reg(out_r), 0));
    ok(b.connect_reg_to_port(out_r, pixel));
    // Version-2 shortcut: the command bus can steer straight to the output
    // register.
    ok(b.connect_mux_slice(
        RtlNode::Port(cmd),
        socet_rtl::BitRange::new(0, 11),
        RtlNode::Reg(out_r),
        socet_rtl::BitRange::full(12),
        1,
    ));

    // Control chain Go -> Done.
    let g1 = b.register("G1", 1).expect("fresh name");
    let g2 = b.register("G2", 1).expect("fresh name");
    ok(b.connect_port_to_reg(go, g1));
    ok(b.connect_reg_to_reg(g1, g2));
    ok(b.connect_reg_to_port(g2, done));

    // Frame-buffer line registers forked off COLOR, plus datapath logic.
    let mut prev = color;
    for k in 0..4 {
        let fb = b.register(&format!("FB{k}"), 12).expect("fresh name");
        ok(b.connect_mux(RtlNode::Reg(prev), RtlNode::Reg(fb), 1));
        prev = fb;
    }
    let blend = b
        .functional_unit("blend", socet_rtl::FuKind::Alu, 12)
        .expect("fresh name");
    ok(b.connect_reg_to_fu(x, blend));
    ok(b.connect_reg_to_fu(y, blend));
    ok(b.connect_mux(RtlNode::Fu(blend), RtlNode::Reg(color), 1));
    let ctl = b
        .functional_unit("gfx_ctl", socet_rtl::FuKind::Random { gates: 420 }, 12)
        .expect("fresh name");
    ok(b.connect_reg_to_fu(cmd_r, ctl));
    ok(b.connect_mux(RtlNode::Fu(ctl), RtlNode::Reg(x), 1));

    b.build()
        .expect("GRAPHICS netlist is statically consistent")
}

/// Builds the GCD core (greatest common divisor, after the HLSynth'95
/// repository \[10\]).
///
/// Ports: `X\[12\]`, `Y\[12\]`, `Start` in; `G\[12\]`, `Rdy` out.
pub fn gcd_core() -> Core {
    let mut b = CoreBuilder::new("GCD");
    let x = b.port("X", Direction::In, 12).expect("fresh name");
    let y = b.port("Y", Direction::In, 12).expect("fresh name");
    let start = b.control_port("Start", Direction::In).expect("fresh name");
    let g = b.port("G", Direction::Out, 12).expect("fresh name");
    let rdy = b
        .port_with_class("Rdy", Direction::Out, 1, socet_rtl::SignalClass::Control)
        .expect("fresh name");
    let ok = |r: Result<socet_rtl::ConnectionId, socet_rtl::RtlError>| {
        r.expect("GCD wiring is statically consistent");
    };

    let rx = b.register("RX", 12).expect("fresh name");
    let ry = b.register("RY", 12).expect("fresh name");
    let rg = b.register("RG", 12).expect("fresh name");
    ok(b.connect_mux(RtlNode::Port(x), RtlNode::Reg(rx), 0));
    ok(b.connect_mux(RtlNode::Port(y), RtlNode::Reg(ry), 0));
    ok(b.connect_mux(RtlNode::Reg(rx), RtlNode::Reg(rg), 0));
    ok(b.connect_mux(RtlNode::Reg(ry), RtlNode::Reg(rg), 1));
    ok(b.connect_reg_to_port(rg, g));

    let s1 = b.register("S1", 1).expect("fresh name");
    ok(b.connect_port_to_reg(start, s1));
    ok(b.connect_reg_to_port(s1, rdy));

    // The subtract/compare loop.
    let sub = b
        .functional_unit("sub", socet_rtl::FuKind::Sub, 12)
        .expect("fresh name");
    ok(b.connect_reg_to_fu(rx, sub));
    ok(b.connect_reg_to_fu(ry, sub));
    ok(b.connect_mux(RtlNode::Fu(sub), RtlNode::Reg(rx), 1));
    let cmp = b
        .functional_unit("cmp", socet_rtl::FuKind::Cmp, 12)
        .expect("fresh name");
    ok(b.connect_reg_to_fu(rx, cmp));
    ok(b.connect_reg_to_fu(ry, cmp));
    ok(b.connect_mux(RtlNode::Fu(cmp), RtlNode::Reg(ry), 2));
    let ctl = b
        .functional_unit("gcd_ctl", socet_rtl::FuKind::Random { gates: 180 }, 12)
        .expect("fresh name");
    ok(b.connect_reg_to_fu(rg, ctl));
    ok(b.connect_mux(RtlNode::Fu(ctl), RtlNode::Reg(rg), 2));

    b.build().expect("GCD netlist is statically consistent")
}

/// Builds the X.25 protocol core (after Bhattacharya et al. \[11\]): a deep
/// transmit buffer whose Version-1 transparency latency is the longest in
/// System 2.
///
/// Ports: `RxD\[12\]`, `Ctl` in; `TxD\[12\]`, `Stat` out.
pub fn x25_core() -> Core {
    let mut b = CoreBuilder::new("X25");
    let rxd = b.port("RxD", Direction::In, 12).expect("fresh name");
    let ctl = b.control_port("Ctl", Direction::In).expect("fresh name");
    let txd = b.port("TxD", Direction::Out, 12).expect("fresh name");
    let stat = b
        .port_with_class("Stat", Direction::Out, 1, socet_rtl::SignalClass::Control)
        .expect("fresh name");
    let ok = |r: Result<socet_rtl::ConnectionId, socet_rtl::RtlError>| {
        r.expect("X25 wiring is statically consistent");
    };

    // Eight-deep packet buffer: RxD -> B0 -> ... -> B7 -> TxD.
    let bufs: Vec<_> = (0..8)
        .map(|k| b.register(&format!("B{k}"), 12).expect("fresh name"))
        .collect();
    ok(b.connect_mux(RtlNode::Port(rxd), RtlNode::Reg(bufs[0]), 0));
    for w in bufs.windows(2) {
        ok(b.connect_mux(RtlNode::Reg(w[0]), RtlNode::Reg(w[1]), 0));
    }
    ok(b.connect_reg_to_port(bufs[7], txd));
    // Cut-through shortcut for Version 2.
    ok(b.connect_mux(RtlNode::Port(rxd), RtlNode::Reg(bufs[7]), 1));

    let c1 = b.register("C1", 1).expect("fresh name");
    let c2 = b.register("C2", 1).expect("fresh name");
    ok(b.connect_port_to_reg(ctl, c1));
    ok(b.connect_reg_to_reg(c1, c2));
    ok(b.connect_reg_to_port(c2, stat));

    let crc = b
        .functional_unit("crc", socet_rtl::FuKind::Random { gates: 260 }, 12)
        .expect("fresh name");
    ok(b.connect_reg_to_fu(bufs[0], crc));
    ok(b.connect_mux(RtlNode::Fu(crc), RtlNode::Reg(bufs[3]), 1));

    b.build().expect("X25 netlist is statically consistent")
}

/// Assembles System 2: `GRAPHICS → GCD → X25` with the graphics command
/// bus and the GCD's first operand at chip pins.
///
/// # Examples
///
/// ```
/// let soc = socet_socs::system2();
/// assert_eq!(soc.logic_cores().len(), 3);
/// ```
pub fn system2() -> Soc {
    let gfx = Arc::new(graphics_core());
    let gcd = Arc::new(gcd_core());
    let x25 = Arc::new(x25_core());

    let mut sb = SocBuilder::new("System2");
    let cmd = sb.input_pin("Cmd", 16).expect("fresh name");
    let go = sb.input_pin("Go", 1).expect("fresh name");
    let opx = sb.input_pin("OpX", 12).expect("fresh name");
    let start = sb.input_pin("Start", 1).expect("fresh name");
    let link_ctl = sb.input_pin("LinkCtl", 1).expect("fresh name");
    let txd = sb.output_pin("TxD", 12).expect("fresh name");
    let done = sb.output_pin("Done", 1).expect("fresh name");
    let rdy = sb.output_pin("Rdy", 1).expect("fresh name");
    let stat = sb.output_pin("Stat", 1).expect("fresh name");

    let u_gfx = sb.instantiate("GRAPHICS", gfx.clone()).expect("fresh");
    let u_gcd = sb.instantiate("GCD", gcd.clone()).expect("fresh");
    let u_x25 = sb.instantiate("X25", x25.clone()).expect("fresh");

    let find = |c: &Core, n: &str| c.find_port(n).expect("port exists");
    let ok = |r: Result<(), socet_rtl::RtlError>| r.expect("System 2 wiring is consistent");

    ok(sb.connect_pin_to_core(cmd, u_gfx, find(&gfx, "Cmd")));
    ok(sb.connect_pin_to_core(go, u_gfx, find(&gfx, "Go")));
    ok(sb.connect_pin_to_core(opx, u_gcd, find(&gcd, "X")));
    ok(sb.connect_pin_to_core(start, u_gcd, find(&gcd, "Start")));
    ok(sb.connect_pin_to_core(link_ctl, u_x25, find(&x25, "Ctl")));

    // The pipeline: graphics pixels are the GCD's second operand, the GCD
    // result is the X.25 payload.
    ok(sb.connect_cores(u_gfx, find(&gfx, "Pixel"), u_gcd, find(&gcd, "Y")));
    ok(sb.connect_cores(u_gcd, find(&gcd, "G"), u_x25, find(&x25, "RxD")));

    ok(sb.connect_core_to_pin(u_x25, find(&x25, "TxD"), txd));
    ok(sb.connect_core_to_pin(u_gfx, find(&gfx, "Done"), done));
    ok(sb.connect_core_to_pin(u_gcd, find(&gcd, "Rdy"), rdy));
    ok(sb.connect_core_to_pin(u_x25, find(&x25, "Stat"), stat));

    sb.build().expect("System 2 is statically consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use socet_cells::DftCosts;
    use socet_hscan::insert_hscan;
    use socet_transparency::synthesize_versions;

    #[test]
    fn system2_assembles() {
        let soc = system2();
        assert_eq!(soc.cores().len(), 3);
        assert_eq!(soc.logic_cores().len(), 3);
        assert_eq!(soc.primary_inputs().len(), 5);
        assert_eq!(soc.primary_outputs().len(), 4);
    }

    #[test]
    fn x25_buffer_dominates_v1_latency() {
        let x25 = x25_core();
        let costs = DftCosts::default();
        let hscan = insert_hscan(&x25, &costs);
        let versions = synthesize_versions(&x25, &hscan, &costs);
        let rxd = x25.find_port("RxD").unwrap();
        let txd = x25.find_port("TxD").unwrap();
        assert_eq!(versions[0].pair_latency(rxd, txd), Some(8), "8-deep buffer");
        assert_eq!(versions[1].pair_latency(rxd, txd), Some(1), "cut-through");
    }

    #[test]
    fn all_system2_versions_complete() {
        let costs = DftCosts::default();
        for core in [graphics_core(), gcd_core(), x25_core()] {
            let hscan = insert_hscan(&core, &costs);
            for v in synthesize_versions(&core, &hscan, &costs) {
                assert!(v.is_complete(&core), "{} {}", core.name(), v.name());
            }
        }
    }

    #[test]
    fn graphics_ladder_is_monotone() {
        let gfx = graphics_core();
        let costs = DftCosts::default();
        let hscan = insert_hscan(&gfx, &costs);
        let versions = synthesize_versions(&gfx, &hscan, &costs);
        let cmd = gfx.find_port("Cmd").unwrap();
        let pixel = gfx.find_port("Pixel").unwrap();
        let lats: Vec<u32> = versions
            .iter()
            .map(|v| v.pair_latency(cmd, pixel).unwrap())
            .collect();
        assert!(lats.windows(2).all(|w| w[0] >= w[1]), "{lats:?}");
        assert_eq!(*lats.last().unwrap(), 1);
    }
}
