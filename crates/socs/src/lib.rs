//! The paper's example systems-on-chip, reconstructed as `socet-rtl`
//! netlists.
//!
//! * [`barcode_system`] — **System 1**, the barcode-scanning embedded SOC
//!   of Fig. 2: CPU (Fig. 3), PREPROCESSOR, DISPLAY plus BIST-tested RAM
//!   and ROM. The individual cores are also exported ([`cpu_core`],
//!   [`preprocessor_core`], [`display_core`], [`memory_core`]) so the
//!   core-level experiments (Figs. 6 and 8) can run on them directly.
//! * [`system2()`](system2::system2) — **System 2**: graphics processor \[9\] → GCD \[10\] → X.25
//!   protocol core \[11\] pipeline.
//!
//! The models are calibrated to the paper's reported characteristics: the
//! DISPLAY has 66 flip-flops, 20 internal input bits and HSCAN depth 4;
//! the CPU reproduces Fig. 6's version ladder exactly (latencies 6/2 →
//! 1/2 → 1/1 at 3/10/30 cells); the PREPROCESSOR carries the `(Reset,
//! Eoc)` control chain used in §5.2's ΔTAT example.
//!
//! # Examples
//!
//! ```
//! let soc = socet_socs::barcode_system();
//! assert_eq!(soc.name(), "System1");
//! assert_eq!(soc.logic_cores().len(), 3);
//! ```

pub mod barcode;
pub mod synthetic;
pub mod system2;

pub use barcode::{barcode_system, cpu_core, display_core, memory_core, preprocessor_core};
pub use synthetic::{generate_soc, SocSpec, SynthCoreSpec, SyntheticConfig};
pub use system2::{gcd_core, graphics_core, system2, x25_core};
